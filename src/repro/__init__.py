"""RingCNN reproduction (ISCA 2021).

Algebraically-sparse ring tensors for energy-efficient CNN-based
computational imaging: the ring-algebra framework (Section III), RingCNN
modeling and training (Section IV), and the eRingCNN accelerator model
(Section V), plus every substrate needed to reproduce the paper's
evaluation on CPU.

Quick start::

    from repro import rings, models, experiments
    spec, f_h = rings.catalog.proposed_pair(4)   # the paper's (R_I4, f_H)
    print(experiments.table1.format_result())     # Table I

See README.md and DESIGN.md.
"""

from . import experiments, hardware, imaging, models, nn, pruning, quant, rings, train

__version__ = "1.0.0"


def __getattr__(name: str):
    # repro.serving and repro.tune are resolved lazily (PEP 562): the
    # CLI's list/run paths — and every multiprocessing spawn worker they
    # launch — must not pay those stacks' imports unless actually used.
    if name in ("serving", "tune"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "comms",
    "experiments",
    "hardware",
    "imaging",
    "models",
    "nn",
    "pruning",
    "quant",
    "rings",
    "serving",
    "train",
    "tune",
    "__version__",
]
