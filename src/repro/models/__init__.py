"""Model zoo: ERNet family, baselines and the algebra layer factories."""

from .baselines import FFDNet, SRResNet, VDSR, ffdnet, srresnet, vdsr
from .ernet import ERNet, ERNetConfig, dn_ernet_pu, parse_config_name, sr4_ernet
from .factory import (
    DepthwiseFactory,
    LayerFactory,
    RealFactory,
    RingFactory,
    make_factory,
)
from .resnet import ResNetSmall, resnet_small

__all__ = [
    "FFDNet",
    "SRResNet",
    "VDSR",
    "ffdnet",
    "srresnet",
    "vdsr",
    "ERNet",
    "ERNetConfig",
    "dn_ernet_pu",
    "parse_config_name",
    "sr4_ernet",
    "DepthwiseFactory",
    "LayerFactory",
    "RealFactory",
    "RingFactory",
    "make_factory",
    "ResNetSmall",
    "resnet_small",
]
