"""Layer factories: one model topology, many algebras (paper Fig. 5).

A :class:`LayerFactory` decides how each convolution and activation in a
model is realized: real-valued, ring tensors with component-wise ReLU,
the proposed (R_I, f_H) with directional ReLU, or depth-wise separable
(the low-rank baseline of Fig. 1).  Building the same topology with
different factories is exactly the paper's "convert any existing
real-valued model structure into a RingCNN alternative" (Section IV-A).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..nn.layers import (
    Conv2d,
    DirectionalReLU2d,
    ReLU,
    RingConv2d,
    Sequential,
)
from ..nn.module import Module
from ..rings.base import Ring
from ..rings.catalog import RingSpec, get_ring
from ..rings.nonlinearity import DirectionalReLU, RingNonlinearity

__all__ = [
    "LayerFactory",
    "RealFactory",
    "RingFactory",
    "DepthwiseFactory",
    "identity_ring_tensor",
    "make_factory",
]


def identity_ring_tensor(n: int) -> np.ndarray:
    """Diagonal indexing tensor of R_I for arbitrary n (used for DWC)."""
    m_tensor = np.zeros((n, n, n))
    for i in range(n):
        m_tensor[i, i, i] = 1.0
    return m_tensor


class LayerFactory:
    """Builds convolutions and activations for one algebra choice."""

    name = "base"

    def conv(
        self, in_channels: int, out_channels: int, kernel_size: int, seed: int, **kwargs
    ) -> Module:
        raise NotImplementedError

    def act(self, channels: int) -> Module:
        raise NotImplementedError

    def weight_compression(self) -> float:
        """Weight-count reduction factor vs the real-valued model."""
        return 1.0


class RealFactory(LayerFactory):
    """Plain real-valued convolutions + ReLU (the paper's baseline)."""

    name = "real"

    def conv(self, in_channels, out_channels, kernel_size, seed, **kwargs) -> Module:
        return Conv2d(in_channels, out_channels, kernel_size, seed=seed, **kwargs)

    def act(self, channels: int) -> Module:
        return ReLU()


@dataclasses.dataclass
class RingFactory(LayerFactory):
    """Ring convolutions with the ring's paired non-linearity.

    Layers whose channel counts are not divisible by n (image-domain head
    and tail convolutions) stay real-valued — a documented deviation from
    the paper needed because our scaled-down models have 1-channel I/O.
    These layers are a negligible share of weights and compute.
    """

    spec: RingSpec
    nonlinearity: RingNonlinearity

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"{self.spec.paper_symbol}+{self.nonlinearity.name}"

    def conv(self, in_channels, out_channels, kernel_size, seed, **kwargs) -> Module:
        n = self.spec.n
        if in_channels % n or out_channels % n:
            return Conv2d(in_channels, out_channels, kernel_size, seed=seed, **kwargs)
        return RingConv2d(
            in_channels, out_channels, kernel_size, self.spec.ring, seed=seed, **kwargs
        )

    def act(self, channels: int) -> Module:
        if isinstance(self.nonlinearity, DirectionalReLU) and channels % self.nonlinearity.n == 0:
            return DirectionalReLU2d(self.nonlinearity)
        return ReLU()

    def weight_compression(self) -> float:
        return float(self.spec.n)


class DepthwiseFactory(LayerFactory):
    """Depth-wise separable convolutions (the low-rank baseline of Fig. 1)."""

    name = "dwc"

    def conv(self, in_channels, out_channels, kernel_size, seed, **kwargs) -> Module:
        if kernel_size == 1 or in_channels == 1:
            return Conv2d(in_channels, out_channels, kernel_size, seed=seed, **kwargs)
        bias = kwargs.pop("bias", True)
        depthwise = RingConv2d(
            in_channels,
            in_channels,
            kernel_size,
            Ring(f"R_I{in_channels}", identity_ring_tensor(in_channels)),
            bias=False,
            seed=seed,
            **kwargs,
        )
        pointwise = Conv2d(in_channels, out_channels, 1, bias=bias, seed=seed + 1)
        return Sequential(depthwise, pointwise)

    def act(self, channels: int) -> Module:
        return ReLU()


def make_factory(kind: str, n: int = 4) -> LayerFactory:
    """Factory lookup used by experiments.

    Args:
        kind: ``"real"``, ``"dwc"``, a catalog ring key (uses the ring's
            default non-linearity), or ``"<ring>+fcw"`` / ``"<ring>+fh"``
            to force a non-linearity.
        n: Tuple dimension for the ``"proposed"`` shorthand.
    """
    from ..rings.nonlinearity import ComponentReLU, hadamard_relu, householder_relu

    kind = kind.strip().lower()
    if kind == "real":
        return RealFactory()
    if kind == "dwc":
        return DepthwiseFactory()
    if kind == "proposed":
        spec = get_ring(f"ri{n}")
        return RingFactory(spec=spec, nonlinearity=hadamard_relu(n))
    if "+" in kind:
        ring_key, nl_key = kind.split("+", 1)
        spec = get_ring(ring_key)
        if nl_key in ("fh", "f_h"):
            nonlin: RingNonlinearity = hadamard_relu(spec.n)
        elif nl_key in ("fo4", "f_o4"):
            nonlin = householder_relu()
        elif nl_key in ("fcw", "f_cw"):
            nonlin = ComponentReLU(n=spec.n)
        else:
            raise KeyError(f"unknown non-linearity {nl_key!r}")
        return RingFactory(spec=spec, nonlinearity=nonlin)
    spec = get_ring(kind)
    return RingFactory(spec=spec, nonlinearity=spec.default_nonlinearity())
