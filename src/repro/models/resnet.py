"""Small ResNet for the recognition study (paper Appendix C).

A scaled-down ResNet-56 stand-in: three stages of residual blocks with
stride-2 transitions, global average pooling, linear classifier.  When
built with a ring factory, convolutions and their non-linearities use
(R_I, f_H) while batch normalization stays real-valued — exactly the
Appendix C setup.
"""

from __future__ import annotations

from ..nn.layers import BatchNorm2d, Conv2d, GlobalAvgPool, Linear, Sequential
from ..nn.module import Module
from ..nn.tensor import Tensor
from .factory import LayerFactory, RealFactory

__all__ = ["ResNetSmall", "resnet_small"]


class _BasicBlock(Module):
    """conv-bn-act-conv-bn + skip, with optional stride-2 downsample."""

    def __init__(
        self, in_channels: int, out_channels: int, stride: int, factory: LayerFactory, seed: int
    ) -> None:
        super().__init__()
        self.conv1 = factory.conv(in_channels, out_channels, 3, seed=seed, stride=stride)
        self.bn1 = BatchNorm2d(out_channels)
        self.act1 = factory.act(out_channels)
        self.conv2 = factory.conv(out_channels, out_channels, 3, seed=seed + 1)
        self.bn2 = BatchNorm2d(out_channels)
        self.act2 = factory.act(out_channels)
        self.stride = stride
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Module | None = Conv2d(
                in_channels, out_channels, 1, stride=stride, padding=0, seed=seed + 2
            )
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.act1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        skip = self.shortcut(x) if self.shortcut is not None else x
        return self.act2(out + skip)


class ResNetSmall(Module):
    """Three-stage residual classifier (ResNet-56 stand-in)."""

    def __init__(
        self,
        blocks_per_stage: int = 2,
        base_width: int = 8,
        num_classes: int = 10,
        factory: LayerFactory | None = None,
        in_channels: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__()
        factory = factory if factory is not None else RealFactory()
        widths = [base_width, base_width * 2, base_width * 4]
        self.stem = Conv2d(in_channels, widths[0], 3, seed=seed)
        self.stem_bn = BatchNorm2d(widths[0])
        self.stem_act = factory.act(widths[0])
        stages = []
        prev = widths[0]
        for stage_idx, width in enumerate(widths):
            stride = 1 if stage_idx == 0 else 2
            blocks = [
                _BasicBlock(prev, width, stride, factory, seed=seed + 100 * stage_idx)
            ]
            for b in range(1, blocks_per_stage):
                blocks.append(
                    _BasicBlock(width, width, 1, factory, seed=seed + 100 * stage_idx + 10 * b)
                )
            stages.append(Sequential(*blocks))
            prev = width
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool()
        self.classifier = Linear(widths[-1], num_classes, seed=seed + 999)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_act(self.stem_bn(self.stem(x)))
        out = self.stages(out)
        return self.classifier(self.pool(out))


def resnet_small(
    blocks_per_stage: int = 2,
    base_width: int = 8,
    num_classes: int = 10,
    factory: LayerFactory | None = None,
    seed: int = 0,
) -> ResNetSmall:
    """Convenience constructor for the Appendix C experiments."""
    return ResNetSmall(
        blocks_per_stage=blocks_per_stage,
        base_width=base_width,
        num_classes=num_classes,
        factory=factory,
        seed=seed,
    )
