"""Baseline computational-imaging CNNs: SRResNet, VDSR, FFDNet.

Scaled-down reconstructions of the advanced/traditional baselines the
paper compares against (Fig. 1, Table IV).  Each accepts a
:class:`~repro.models.factory.LayerFactory`, so the Fig. 1 sweep can build
pruned / DWC / ring variants of the identical topology.
"""

from __future__ import annotations

import numpy as np

from ..imaging.degrade import bicubic_upsample
from ..nn.functional import pixel_shuffle, pixel_unshuffle
from ..nn.layers import Sequential
from ..nn.module import Module
from ..nn.tensor import Tensor, concat
from .factory import LayerFactory, RealFactory

__all__ = ["SRResNet", "VDSR", "FFDNet", "srresnet", "vdsr", "ffdnet"]


class _ResBlock(Module):
    """SRResNet-style residual block (BN omitted at this scale)."""

    def __init__(self, channels: int, factory: LayerFactory, seed: int) -> None:
        super().__init__()
        self.conv1 = factory.conv(channels, channels, 3, seed=seed)
        self.act = factory.act(channels)
        self.conv2 = factory.conv(channels, channels, 3, seed=seed + 1)

    def forward(self, x: Tensor) -> Tensor:
        return x + self.conv2(self.act(self.conv1(x)))


class SRResNet(Module):
    """SRResNet [31] for x4 SR: head, B residual blocks, x4 shuffle tail."""

    def __init__(
        self,
        blocks: int = 4,
        width: int = 16,
        factory: LayerFactory | None = None,
        in_channels: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__()
        factory = factory if factory is not None else RealFactory()
        self.head = factory.conv(in_channels, width, 3, seed=seed)
        self.head_act = factory.act(width)
        self.body = Sequential(
            *[_ResBlock(width, factory, seed=seed + 10 * (i + 1)) for i in range(blocks)]
        )
        self.fuse = factory.conv(width, width, 3, seed=seed + 500)
        self.tail = factory.conv(width, in_channels * 16, 3, seed=seed + 600)
        for _, param in self.tail.named_parameters():
            param.data[...] = 0.0  # start at the bicubic identity

    def forward(self, x: Tensor) -> Tensor:
        feat = self.head_act(self.head(x))
        body = self.fuse(self.body(feat)) + feat  # global residual over the body
        upsampled = Tensor(bicubic_upsample(x.data, 4))
        return upsampled + pixel_shuffle(self.tail(body), 4)


class VDSR(Module):
    """VDSR [26]: plain deep CNN on the bicubic-upsampled input, residual out."""

    def __init__(
        self,
        depth: int = 6,
        width: int = 16,
        factory: LayerFactory | None = None,
        in_channels: int = 1,
        scale: int = 4,
        seed: int = 0,
    ) -> None:
        super().__init__()
        factory = factory if factory is not None else RealFactory()
        self.scale = scale
        layers: list[Module] = [factory.conv(in_channels, width, 3, seed=seed), factory.act(width)]
        for i in range(depth - 2):
            layers.append(factory.conv(width, width, 3, seed=seed + 10 * (i + 1)))
            layers.append(factory.act(width))
        layers.append(factory.conv(width, in_channels, 3, seed=seed + 900))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        upsampled = Tensor(bicubic_upsample(x.data, self.scale))
        return upsampled + self.net(upsampled)


class FFDNet(Module):
    """FFDNet [50]: denoising on pixel-unshuffled features with a noise map."""

    def __init__(
        self,
        depth: int = 4,
        width: int = 16,
        factory: LayerFactory | None = None,
        in_channels: int = 1,
        sigma: float = 15.0 / 255.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        factory = factory if factory is not None else RealFactory()
        self.sigma = sigma
        unshuffled = in_channels * 4
        layers: list[Module] = [
            factory.conv(unshuffled + 1, width, 3, seed=seed),
            factory.act(width),
        ]
        for i in range(depth - 2):
            layers.append(factory.conv(width, width, 3, seed=seed + 10 * (i + 1)))
            layers.append(factory.act(width))
        layers.append(factory.conv(width, unshuffled, 3, seed=seed + 900))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        z = pixel_unshuffle(x, 2)
        batch, _, height, width = z.shape
        noise_map = Tensor(np.full((batch, 1, height, width), self.sigma))
        feat = concat([z, noise_map], axis=1)
        out = self.net(feat) + z
        return pixel_shuffle(out, 2)


def srresnet(blocks: int = 4, width: int = 16, factory=None, seed: int = 0) -> SRResNet:
    """Convenience constructor mirroring the paper's naming."""
    return SRResNet(blocks=blocks, width=width, factory=factory, seed=seed)


def vdsr(depth: int = 6, width: int = 16, factory=None, seed: int = 0) -> VDSR:
    """VDSR-style real-valued CNN baseline at the paper's depth/width."""
    return VDSR(depth=depth, width=width, factory=factory, seed=seed)


def ffdnet(depth: int = 4, width: int = 16, factory=None, seed: int = 0) -> FFDNet:
    """FFDNet-style real-valued denoising baseline (shuffle-downsampled)."""
    return FFDNet(depth=depth, width=width, factory=factory, seed=seed)
