"""ERNet model family — the eCNN backbone models the paper builds on.

The eCNN paper [21] defines ERNets by three knobs the RingCNN paper
reuses in names like ``SR4ERNet-B17R3N1``:

* **B** — number of ERModules (residual blocks),
* **R** — base pumping ratio (here: width multiplier, channels = base*R),
* **N** — number of additional pumping layers appended before the tail.

The exact eCNN topology is not in the provided text, so this is a
faithful *reconstruction* honouring those knobs (see DESIGN.md):
residual conv-act-conv modules between an image-domain head and tail,
with pixel-unshuffle input for denoising (``DnERNet-PU``) and a x4
pixel-shuffle tail for SR (``SR4ERNet``).  All algebra comparisons hold
this topology fixed, which is what the paper's experiments require.
"""

from __future__ import annotations

import dataclasses

from ..imaging.degrade import bicubic_upsample
from ..nn.compile import traced_call
from ..nn.functional import pixel_shuffle, pixel_unshuffle
from ..nn.layers import Sequential
from ..nn.module import Module
from ..nn.tensor import Tensor
from .factory import LayerFactory, RealFactory

__all__ = ["ERNetConfig", "ERModule", "ERNet", "dn_ernet_pu", "sr4_ernet", "parse_config_name"]


@dataclasses.dataclass(frozen=True)
class ERNetConfig:
    """Configuration of one ERNet (paper Fig. 9 captions).

    Attributes:
        task: ``"denoise"`` or ``"sr4"``.
        blocks: ERModule count B.
        ratio: Base pumping ratio R (width = base_width * R).
        extra_layers: Additional pumping layer count N.
        base_width: Channels per unit of R (scaled down from eCNN).
        in_channels: Image channels (1 = greyscale).
    """

    task: str = "denoise"
    blocks: int = 2
    ratio: int = 2
    extra_layers: int = 0
    base_width: int = 8
    in_channels: int = 1

    @property
    def width(self) -> int:
        return self.base_width * self.ratio

    @property
    def name(self) -> str:
        prefix = "DnERNet-PU" if self.task == "denoise" else "SR4ERNet"
        return f"{prefix}-B{self.blocks}R{self.ratio}N{self.extra_layers}"


def parse_config_name(name: str) -> tuple[int, int, int]:
    """Parse ``"B17R3N1"`` style suffixes into (B, R, N)."""
    import re

    match = re.fullmatch(r"B(\d+)R(\d+)N(\d+)", name)
    if not match:
        raise ValueError(f"cannot parse ERNet config name {name!r}")
    return tuple(int(g) for g in match.groups())  # type: ignore[return-value]


class ERModule(Module):
    """One residual module: conv3x3 - act - conv3x3 + skip."""

    def __init__(self, channels: int, factory: LayerFactory, seed: int) -> None:
        super().__init__()
        self.conv1 = factory.conv(channels, channels, 3, seed=seed)
        self.act = factory.act(channels)
        self.conv2 = factory.conv(channels, channels, 3, seed=seed + 1)

    def forward(self, x: Tensor) -> Tensor:
        return x + self.conv2(self.act(self.conv1(x)))


class ERNet(Module):
    """ERNet for denoising (with pixel-unshuffle) or x4 super-resolution."""

    def __init__(
        self, config: ERNetConfig, factory: LayerFactory | None = None, seed: int = 0
    ) -> None:
        super().__init__()
        factory = factory if factory is not None else RealFactory()
        self.config = config
        self.factory_name = factory.name
        width = config.width
        if config.task == "denoise":
            head_in = config.in_channels * 4  # after pixel-unshuffle by 2
            tail_out = config.in_channels * 4
        elif config.task == "sr4":
            head_in = config.in_channels
            tail_out = config.in_channels * 16  # before pixel-shuffle by 4
        else:
            raise ValueError(f"unknown task {config.task!r}")
        self.head = factory.conv(head_in, width, 3, seed=seed)
        self.head_act = factory.act(width)
        self.body = Sequential(
            *[ERModule(width, factory, seed=seed + 10 * (i + 1)) for i in range(config.blocks)]
        )
        self.pump = Sequential(
            *[
                Sequential(
                    factory.conv(width, width, 3, seed=seed + 1000 + 10 * i),
                    factory.act(width),
                )
                for i in range(config.extra_layers)
            ]
        )
        self.tail = factory.conv(width, tail_out, 3, seed=seed + 2000)
        _zero_init_tail(self.tail)

    def forward(self, x: Tensor) -> Tensor:
        if self.config.task == "denoise":
            z = pixel_unshuffle(x, 2)
            residual_in = z
            z = self.head_act(self.head(z))
            z = self.body(z)
            z = self.pump(z)
            z = self.tail(z) + residual_in  # predict the noise-free unshuffle
            return pixel_shuffle(z, 2)
        z = self.head_act(self.head(x))
        z = self.body(z)
        z = self.pump(z)
        z = self.tail(z)
        # Global bicubic skip keeps tiny-scale training stable: the net
        # learns the residual over bicubic upsampling (VDSR-style).
        # traced_call keeps the skip gradient-free (as the plain Tensor
        # wrap did) while letting Predictor.compile() replay it instead
        # of constant-folding one input's upsampling into the plan.
        upsampled = traced_call(bicubic_upsample, x, 4)
        return upsampled + pixel_shuffle(z, 4)


def _zero_init_tail(module: Module) -> None:
    """Zero the last convolution so residual models start at the identity."""
    for _, param in module.named_parameters():
        param.data[...] = 0.0


def dn_ernet_pu(
    blocks: int = 2,
    ratio: int = 2,
    extra_layers: int = 0,
    factory: LayerFactory | None = None,
    base_width: int = 8,
    seed: int = 0,
) -> ERNet:
    """DnERNet-PU: denoising ERNet with pixel-unshuffled input (Fig. 9 top)."""
    config = ERNetConfig(
        task="denoise",
        blocks=blocks,
        ratio=ratio,
        extra_layers=extra_layers,
        base_width=base_width,
    )
    return ERNet(config, factory=factory, seed=seed)


def sr4_ernet(
    blocks: int = 2,
    ratio: int = 2,
    extra_layers: int = 0,
    factory: LayerFactory | None = None,
    base_width: int = 8,
    seed: int = 0,
) -> ERNet:
    """SR4ERNet: four-times super-resolution ERNet (Fig. 9 bottom)."""
    config = ERNetConfig(
        task="sr4",
        blocks=blocks,
        ratio=ratio,
        extra_layers=extra_layers,
        base_width=base_width,
    )
    return ERNet(config, factory=factory, seed=seed)
