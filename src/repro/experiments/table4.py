"""Experiment: Table IV — PSNR performance of models on eRingCNN.

Compares, per task and throughput target: a classical baseline (CBM3D
stand-in for denoising, bicubic/VDSR for SR), the advanced CNN baselines
(FFDNet, SRResNet), the real-valued eCNN ERNet, and the eRingCNN-n2/n4
RingCNN models.  Throughput targets map to model depth (HD30 deeper,
UHD30 shallower — the paper's compact configurations).
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import ndimage

from ..imaging.datasets import TaskData
from ..imaging.degrade import bicubic_upsample
from ..imaging.metrics import average_psnr
from ..models.baselines import FFDNet, SRResNet
from .runner import make_task, run_quality, train_restoration
from .settings import SMALL, QualityScale, get_scale
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = ["Table4Row", "run", "format_result", "classical_denoise", "to_jsonable"]


def classical_denoise(noisy: np.ndarray, sigma: float = 15.0 / 255.0) -> np.ndarray:
    """CBM3D stand-in: best-of-sweep Gaussian smoothing.

    BM3D's transform-domain collaborative filtering is out of scope; a
    tuned Gaussian filter plays the classical-baseline role (clearly
    below the CNN methods, as in the paper's Table IV).
    """
    best, best_score = noisy, -np.inf
    for s in (0.6, 0.8, 1.0, 1.3):
        cand = ndimage.gaussian_filter(noisy, sigma=(0, 0, s, s))
        score = -np.mean(np.abs(np.diff(cand, axis=-1)))  # prefer smoother
        if score > best_score:
            best, best_score = cand, score
    return best


@dataclasses.dataclass(frozen=True)
class Table4Row:
    """One method's PSNR at one (task, throughput) cell."""

    task: str
    target: str
    method: str
    psnr_db: float


def _throughput_blocks(target: str) -> int:
    return {"HD30": 2, "UHD30": 1}[target]


def run(
    scale: QualityScale = SMALL,
    targets: tuple[str, ...] = ("HD30", "UHD30"),
    tasks: tuple[str, ...] = ("denoise", "sr4"),
) -> list[Table4Row]:
    """Run the experiment and return its artifact payload."""
    rows: list[Table4Row] = []
    for task in tasks:
        for target in targets:
            target_scale = dataclasses.replace(scale, blocks=_throughput_blocks(target))
            data = make_task(task, target_scale)
            rows.extend(_classical_rows(task, target, data))
            rows.extend(_cnn_baseline_rows(task, target, data, target_scale))
            for kind, label in (
                ("real", "eCNN (ERNet)"),
                ("ri2+fh", "eRingCNN-n2"),
                ("ri4+fh", "eRingCNN-n4"),
            ):
                res = run_quality(kind, task, target_scale, data=data)
                rows.append(Table4Row(task, target, label, res.psnr_db))
    return rows


def _classical_rows(task: str, target: str, data: TaskData) -> list[Table4Row]:
    if task == "denoise":
        den = classical_denoise(data.test_inputs)
        psnr = average_psnr(den, data.test_targets, shave=2)
        return [Table4Row(task, target, "CBM3D (stand-in)", psnr)]
    up = bicubic_upsample(data.test_inputs, 4)
    psnr = average_psnr(up, data.test_targets, shave=2)
    return [Table4Row(task, target, "bicubic", psnr)]


def _cnn_baseline_rows(
    task: str, target: str, data: TaskData, scale: QualityScale
) -> list[Table4Row]:
    if task == "denoise":
        model = FFDNet(depth=3 + scale.blocks, width=8 * scale.ratio, seed=0)
        res = train_restoration(model, data, scale, label="FFDNet")
        return [Table4Row(task, target, "FFDNet", res.psnr_db)]
    model = SRResNet(blocks=scale.blocks, width=8 * scale.ratio, seed=0)
    res = train_restoration(model, data, scale, label="SRResNet")
    return [Table4Row(task, target, "SRResNet", res.psnr_db)]


def format_result(rows: list[Table4Row]) -> str:
    """Render the cached result as the paper-style text report."""
    lines = [f"{'task':<8} {'target':<7} {'method':<18} {'PSNR dB':>8}"]
    for row in rows:
        lines.append(f"{row.task:<8} {row.target:<7} {row.method:<18} {row.psnr_db:>8.2f}")
    return "\n".join(lines)


def to_jsonable(rows: list[Table4Row]) -> list[dict]:
    """Artifact rows for the Table IV JSON payload."""
    return _jsonable(rows)


register(
    name="table4",
    description="Table IV: PSNR of classical/CNN/eRingCNN methods per throughput target",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={
        "small": {"scale": get_scale("small"), "targets": ("HD30",), "tasks": ("denoise",)},
        "paper": {"scale": get_scale("paper")},
    },
)
