"""``python -m repro`` — orchestrate the paper's experiments.

Subcommands:

* ``list``   — show every registered experiment and its cache status.
* ``run``    — execute experiments (``all`` or a subset) at a scale
  preset, in parallel with ``--jobs N``, writing fingerprinted JSON
  artifacts under ``results/``.  Re-runs are cache hits unless
  ``--force``; ``--warm-start`` lets experiments reuse cached trained
  weights (:mod:`repro.experiments.weights`) instead of retraining.
* ``train``  — train one model (``<task>[:<kind>]``) through the
  checkpointable :class:`repro.train.TrainEngine`, saving a resumable
  ``.npz`` checkpoint each epoch; ``--resume`` continues a previous run
  bit-for-bit from its checkpoint.
* ``report`` — render the paper-style tables/figures from cached
  artifacts without recomputing anything.
* ``serve-bench`` — benchmark the :mod:`repro.serving` inference server:
  closed-loop concurrent clients, per-request vs micro-batched dispatch,
  per-backend rows, with a bit-identity check against serial inference.
  ``--procs N`` switches to the process-sharded server
  (:class:`repro.serving.ShardedInferenceServer`): N spawn workers with
  shared-memory tensor transport, compared against a 1-proc baseline.
* ``tune`` — run the :mod:`repro.tune` autotuner for one model
  (``<task>[:<kind>]``) over a shape grid, persisting fingerprinted
  winners under ``<results-dir>/tuning``; re-invocations are cache hits.
  ``--tuned`` on ``run`` / ``serve-bench`` makes inference paths consult
  that cache (bit-identical to untuned; schedule only).

Parallel runs use ``multiprocessing`` with the spawn start method and
per-(experiment, scale) deterministic seeding, so ``--jobs N`` output
is bit-identical to a serial run.

``--backend NAME[:ARG]`` selects the :mod:`repro.nn.backend` kernel
backend for the nn hot path (e.g. ``threaded:4``); every registered
backend produces bit-identical numbers, so artifacts and cache
fingerprints are backend-invariant.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time
from collections.abc import Sequence
from typing import Any

from repro.nn import backend as nn_backend

from . import artifacts, registry
from .spawn import ensure_registered, export_env, spawn_context

__all__ = ["build_parser", "run_one", "main"]


def run_one(name: str, scale: str) -> dict[str, Any]:
    """Execute one experiment and return its artifact as a plain dict.

    Module-level (hence picklable) so it can serve as the worker for
    ``multiprocessing.Pool``; the serial path calls the same function so
    both paths produce identical artifacts.
    """
    ensure_registered()
    experiment = registry.get(name)
    settings, digest = artifacts.settings_digest(experiment, scale)
    result = experiment.execute(scale)
    artifact = artifacts.Artifact(
        experiment=name,
        scale=scale,
        fingerprint=digest,
        settings=settings,
        result=experiment.to_jsonable(result),
        formatted=experiment.format_result(result),
    )
    return artifact.to_dict()


def _run_one_task(task: tuple[str, str]) -> dict[str, Any]:
    """Fault-isolating wrapper: one failure must not abort the batch.

    Returns either a normal artifact dict or an ``{"error": ...}``
    payload, so the parent can keep harvesting (and caching) the other
    experiments' results instead of tearing the pool down.
    """
    name, scale = task
    try:
        return run_one(name, scale)
    except Exception as exc:  # the boundary where worker faults become data
        return {"experiment": name, "scale": scale, "error": f"{type(exc).__name__}: {exc}"}


def _resolve_names(requested: Sequence[str]) -> list[str]:
    known = registry.names()
    if not requested or "all" in requested:
        return known
    unknown = [name for name in requested if name not in known]
    if unknown:
        raise SystemExit(
            f"unknown experiment(s): {', '.join(unknown)}\n"
            f"known: {', '.join(known)}"
        )
    # Preserve the user's order but drop duplicates.
    seen: dict[str, None] = {}
    for name in requested:
        seen.setdefault(name)
    return list(seen)


def _cmd_list(args: argparse.Namespace) -> int:
    store = artifacts.ArtifactStore(args.results_dir)
    rows = []
    for experiment in registry.all_experiments():
        cached = []
        for scale in sorted(experiment.scales):
            _, digest = artifacts.settings_digest(experiment, scale)
            if store.load(experiment.name, scale, digest) is not None:
                cached.append(scale)
        rows.append((experiment.name, experiment.description, cached))
    width = max(len(name) for name, _, _ in rows)
    print(f"{len(rows)} experiments (artifacts under {store.root}):")
    for name, description, cached in rows:
        marker = f"  [cached: {', '.join(cached)}]" if cached else ""
        print(f"  {name:<{width}}  {description}{marker}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = _resolve_names(args.experiments)
    store = artifacts.ArtifactStore(args.results_dir)
    jobs = max(1, args.jobs)
    if args.tuned:
        # Schedule-only: tuned inference is bit-identical to untuned, so
        # (like --warm-start) the flag stays out of artifact
        # fingerprints; the cache sits beside the artifacts so
        # --results-dir isolates it too.  Exported so spawn workers
        # consult the same cache.
        from repro.tune.cache import TUNED_ENV, TUNING_DIR_ENV

        export_env(TUNED_ENV, "1")
        export_env(TUNING_DIR_ENV, str(pathlib.Path(args.results_dir) / "tuning"))
    if args.warm_start:
        # Exported (like --backend) so spawn workers inherit it; the
        # flag stays out of artifact fingerprints because a warm start
        # reproduces the cold result byte for byte.  The cache lives
        # beside the artifacts so --results-dir isolates both.
        from . import weights

        export_env(weights.WARM_START_ENV, "1")
        export_env(
            weights.WEIGHTS_DIR_ENV, str(pathlib.Path(args.results_dir) / "weights")
        )

    pending: list[str] = []
    for name in names:
        experiment = registry.get(name)
        _, digest = artifacts.settings_digest(experiment, args.scale)
        cached = None if args.force else store.load(name, args.scale, digest)
        if cached is not None:
            print(f"{name:<10} {args.scale:<6} cache hit   {digest}")
        else:
            pending.append(name)

    if not pending:
        print(f"all {len(names)} experiment(s) served from cache")
        return 0

    started = time.perf_counter()
    computed = 0
    failed: list[str] = []

    def _store(payload: dict[str, Any], note: str) -> None:
        # Save (or report) each result as it arrives, so completed work
        # survives a failure or interrupt in another experiment.
        nonlocal computed
        name = payload["experiment"]
        if "error" in payload:
            failed.append(name)
            print(f"{name:<10} {args.scale:<6} FAILED {payload['error']}")
            return
        print(f"{name:<10} {args.scale:<6} ran {note} {payload['fingerprint']}")
        path = store.save(artifacts.Artifact.from_dict(payload))
        computed += 1
        print(f"{name:<10} {args.scale:<6} wrote {path}")

    if jobs == 1 or len(pending) == 1:
        for name in pending:
            t0 = time.perf_counter()
            payload = _run_one_task((name, args.scale))
            _store(payload, f"{time.perf_counter() - t0:6.1f}s")
    else:
        # Spawn (not fork) so workers start from identical interpreter
        # state on every platform; run_one reseeds deterministically.
        context = spawn_context()
        with context.Pool(processes=min(jobs, len(pending))) as pool:
            tasks = [(name, args.scale) for name in pending]
            # Unordered: each artifact lands the moment its worker
            # finishes, and faults come back as data, so one failing
            # experiment can't discard the completed work of the others.
            for payload in pool.imap_unordered(_run_one_task, tasks):
                _store(payload, f"(jobs={jobs})")

    print(
        f"{computed}/{len(pending)} experiments computed in "
        f"{time.perf_counter() - started:.1f}s "
        f"({len(names) - len(pending)} served from cache"
        + (f", {len(failed)} failed: {', '.join(failed)})" if failed else ")")
    )
    return 1 if failed else 0


def _cmd_train(args: argparse.Namespace) -> int:
    # Local imports: `python -m repro list/run` never pays for them.
    import dataclasses
    import functools

    import numpy as np

    from repro.experiments.settings import get_scale
    from repro.models.factory import make_factory
    from repro.nn.data import ArrayDataset, DataLoader
    from repro.nn.trainer import TrainConfig
    from repro.train import (
        CheckpointCallback,
        CheckpointError,
        ParallelTrainEngine,
        TrainEngine,
        load_checkpoint,
    )

    from .runner import build_task_model, evaluate_psnr, make_task, model_for_task

    task, _, kind = args.model.partition(":")
    kind = kind or "real"
    if task not in ("denoise", "sr4"):
        raise SystemExit(f"unknown task {task!r}; model is <task>[:<kind>], task denoise|sr4")
    try:
        factory = make_factory(kind) if kind != "real" else None
    except KeyError as exc:
        raise SystemExit(f"unknown algebra kind {kind!r}: {exc}") from None

    scale = get_scale(args.scale)
    ckpt_path = pathlib.Path(
        args.checkpoint
        or pathlib.Path(args.results_dir) / "checkpoints" / f"{task}-{kind}-{args.scale}.npz"
    )

    resumed = None
    if args.resume:
        try:
            resumed = load_checkpoint(ckpt_path)
        except CheckpointError as exc:
            raise SystemExit(f"--resume: {exc}") from None
    # The schedule horizon: explicit --epochs, else whatever the
    # checkpoint trained toward (so a resume continues the same cosine
    # decay), else the scale preset.
    if args.epochs is not None:
        epochs = args.epochs
    elif resumed is not None and resumed.config:
        epochs = int(resumed.config["epochs"])
    else:
        epochs = scale.epochs
    config = TrainConfig(epochs=epochs, lr=scale.lr, seed=scale.seed)

    data = make_task(task, scale)
    model = model_for_task(task, factory, scale, seed=args.seed)
    loader = DataLoader(
        ArrayDataset(data.train_inputs, data.train_targets),
        batch_size=scale.batch_size,
        seed=scale.seed,
    )
    model_spec = {"family": "ernet", "kind": kind, **dataclasses.asdict(model.config)}
    callbacks = [CheckpointCallback(ckpt_path, every=args.save_every, model_spec=model_spec)]
    if args.grain is not None and args.jobs is None:
        raise SystemExit("--grain only applies to the data-parallel engine; pass --jobs")
    if args.jobs is not None:
        # Grain-sharded engine: byte-identical checkpoints for every N,
        # so --jobs may change freely between a run and its resume.
        if args.jobs < 1:
            raise SystemExit("--jobs must be >= 1")
        engine = ParallelTrainEngine(
            model,
            config,
            callbacks=callbacks,
            jobs=args.jobs,
            **({"grain": args.grain} if args.grain is not None else {}),
            model_factory=functools.partial(
                build_task_model, task, kind, scale, args.seed
            ),
        )
    else:
        engine = TrainEngine(model, config, callbacks=callbacks)
    if resumed is not None:
        try:
            engine.load_checkpoint(ckpt_path, loader=loader)
        except (CheckpointError, KeyError, ValueError) as exc:
            raise SystemExit(f"--resume: checkpoint does not match this model: {exc}") from None
        print(f"{args.model:<12} resumed epoch {engine.epoch} from {ckpt_path}")

    todo = (
        min(args.train_epochs, max(0, epochs - engine.epoch))
        if args.train_epochs is not None
        else max(0, epochs - engine.epoch)
    )
    if todo == 0:
        print(f"{args.model:<12} already at epoch {engine.epoch}/{epochs}; nothing to train")
    else:
        started = time.perf_counter()
        try:
            result = engine.fit(loader, epochs=todo)
        finally:
            if isinstance(engine, ParallelTrainEngine):
                engine.close()
        elapsed = time.perf_counter() - started
        jobs_note = f" (jobs={args.jobs})" if args.jobs is not None else ""
        print(
            f"{args.model:<12} {args.scale:<6} trained {todo} epoch(s) "
            f"to {engine.epoch}/{epochs} in {elapsed:.1f}s{jobs_note} "
            f"(loss {result.final_loss:.5f}, lr {result.lr_trace[-1]:.2e}, "
            f"grad-norm {float(np.mean(result.grad_norms)):.3f} mean)"
        )
    psnr = evaluate_psnr(model, data)
    print(f"{args.model:<12} {args.scale:<6} test PSNR {psnr:.2f} dB")
    print(f"{args.model:<12} checkpoint {ckpt_path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    names = _resolve_names(args.experiments)
    store = artifacts.ArtifactStore(args.results_dir)
    missing: list[str] = []
    for name in names:
        experiment = registry.get(name)
        _, digest = artifacts.settings_digest(experiment, args.scale)
        artifact = store.load(name, args.scale, digest) or store.latest(name, args.scale)
        if artifact is None:
            missing.append(name)
            continue
        print(f"== {name} ({args.scale}, {artifact.fingerprint}) ==")
        print(f"   {experiment.description}")
        print(artifact.formatted)
        print()
    if missing:
        print(
            f"no cached artifact for: {', '.join(missing)} "
            f"(run `python -m repro run {' '.join(missing)} --scale {args.scale}` first)"
        )
        # Missing-by-request is an error; "report everything you have" is not.
        if args.experiments and "all" not in args.experiments:
            return 1
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    # Imported here (not at module top) so `python -m repro list/run`
    # never pays for the serving stack.
    from repro.serving.bench import (
        ServeBenchConfig,
        ShardedBenchConfig,
        run_serve_bench,
        run_sharded_bench,
    )

    backends = [spec.strip() for spec in args.backends.split(",") if spec.strip()]
    if not backends:
        raise SystemExit("--backends must name at least one backend")
    for spec in backends:
        try:
            nn_backend.make_backend(spec)  # validate before the long run
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    if args.clients < 1 or args.requests < 1 or args.workers < 1 or args.max_batch < 1:
        raise SystemExit("--clients/--requests/--workers/--max-batch must be >= 1")
    if args.image_size < 2 or args.image_size % 2:
        raise SystemExit("--image-size must be even (pixel-unshuffle by 2) and >= 2")
    if args.procs:
        # Process-sharded mode: compare a 1-proc baseline against the
        # requested shard count on the same seeded mixed-shape workload.
        if args.procs < 1:
            raise SystemExit("--procs must be >= 1")
        procs = (1,) if args.procs == 1 else (1, args.procs)
        config = ShardedBenchConfig(
            clients=args.clients,
            requests_per_client=args.requests,
            image_size=args.image_size,
            procs=procs,
            max_batch=args.max_batch,
            backend=backends[0],
            seed=args.seed,
            compiled=args.compiled,
            tuned=args.tuned,
        )
        report = run_sharded_bench(config)
        print(report.format())
        if not report.bit_identical:
            print("ERROR: sharded outputs differ from serial inference")
            return 1
        return 0
    config = ServeBenchConfig(
        clients=args.clients,
        requests_per_client=args.requests,
        image_size=args.image_size,
        workers=args.workers,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        backends=tuple(backends),
        seed=args.seed,
        compiled=args.compiled,
        tuned=args.tuned,
    )
    report = run_serve_bench(config)
    print(report.format())
    if not report.bit_identical:
        print("ERROR: served outputs differ from serial inference")
        return 1
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    # Local imports: list/run/report never pay for the tuning stack.
    from repro.experiments.settings import get_scale
    from repro.models.factory import make_factory
    from repro.tune import TuningCache, lookup, tune_model

    from .runner import model_for_task

    task, _, kind = args.model.partition(":")
    kind = kind or "real"
    if task not in ("denoise", "sr4"):
        raise SystemExit(f"unknown task {task!r}; model is <task>[:<kind>], task denoise|sr4")
    try:
        factory = make_factory(kind) if kind != "real" else None
    except KeyError as exc:
        raise SystemExit(f"unknown algebra kind {kind!r}: {exc}") from None
    sizes = []
    for token in args.shapes.split(","):
        token = token.strip()
        if not token:
            continue
        size = int(token)
        if size < 2 or (task == "denoise" and size % 2):
            raise SystemExit(
                f"--shapes entries must be >= 2 (and even for denoise), got {size}"
            )
        sizes.append(size)
    if not sizes or args.batch < 1 or args.trials < 1:
        raise SystemExit("--shapes needs at least one size; --batch/--trials must be >= 1")

    scale = get_scale(args.scale)
    model = model_for_task(task, factory, scale, seed=args.seed)
    model.eval()
    cache = TuningCache(pathlib.Path(args.results_dir) / "tuning")
    print(
        f"tuning {args.model} ({args.scale}) over sizes {sizes}, batch {args.batch}; "
        f"cache {cache.root}"
    )
    for size in sizes:
        shape = (1, size, size)
        if not args.force:
            existing = lookup(model, shape, args.batch, cache=cache)
            if existing is not None:
                print(
                    f"  {size:>4}px  cache hit   {existing.fingerprint}  "
                    f"winner {existing.winner.label()} (speedup {existing.speedup:.2f}x)"
                )
                continue
        t0 = time.perf_counter()
        entry = tune_model(
            model,
            shape,
            args.batch,
            seed=args.seed,
            trials=args.trials,
            warmup=args.warmup,
            top_k=args.top_k,
            cache=cache,
        )
        measured = sum(1 for t in entry.trials if t["median_s"] is not None)
        print(
            f"  {size:>4}px  tuned       {entry.fingerprint}  "
            f"winner {entry.winner.label()} (default {entry.default.label()}, "
            f"speedup {entry.speedup:.2f}x, {measured} measured of "
            f"{len(entry.trials)} candidates, {time.perf_counter() - t0:.1f}s)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run and report the paper's experiments (registry-driven).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scale",
            choices=registry.SCALE_NAMES,
            default="small",
            help="scale preset: 'small' smoke runs or the 'paper' recipe",
        )
        sub.add_argument(
            "--results-dir",
            default=str(artifacts.DEFAULT_RESULTS_DIR),
            help="artifact directory (default: <repo>/results)",
        )
        sub.add_argument(
            "--backend",
            default=None,
            metavar="NAME[:ARG]",
            help=(
                "kernel backend for the nn hot path "
                f"({', '.join(nn_backend.available_backends())}; e.g. threaded:4). "
                f"Exported as {nn_backend.BACKEND_ENV_VAR} so --jobs workers "
                "inherit it."
            ),
        )

    sub_list = subparsers.add_parser("list", help="show registered experiments")
    add_common(sub_list)
    sub_list.set_defaults(func=_cmd_list)

    sub_run = subparsers.add_parser("run", help="execute experiments, cache artifacts")
    sub_run.add_argument(
        "experiments", nargs="+", help="experiment names, or 'all'"
    )
    sub_run.add_argument(
        "--jobs", type=int, default=1, help="parallel worker processes (default 1)"
    )
    sub_run.add_argument(
        "--force", action="store_true", help="recompute even on a cache hit"
    )
    sub_run.add_argument(
        "--warm-start",
        action="store_true",
        help=(
            "reuse cached trained weights (results/weights/) for "
            "experiments whose training fingerprint matches; results are "
            "byte-identical to cold runs"
        ),
    )
    sub_run.add_argument(
        "--tuned",
        action="store_true",
        help=(
            "serve inference through cached autotuned schedules "
            "(<results-dir>/tuning, populated by `python -m repro tune`); "
            "bit-identical to untuned, so artifacts are unaffected"
        ),
    )
    add_common(sub_run)
    sub_run.set_defaults(func=_cmd_run)

    sub_train = subparsers.add_parser(
        "train", help="train one model with the checkpointable engine"
    )
    sub_train.add_argument(
        "model",
        help="what to train: <task>[:<kind>], e.g. denoise:real or sr4:ri4+fh",
    )
    sub_train.add_argument(
        "--epochs",
        type=int,
        default=None,
        help="total schedule horizon (default: the scale preset's; on "
        "--resume, the checkpoint's)",
    )
    sub_train.add_argument(
        "--train-epochs",
        type=int,
        default=None,
        metavar="K",
        help="run at most K epochs this invocation (checkpoint, resume later)",
    )
    sub_train.add_argument(
        "--resume",
        action="store_true",
        help="continue bit-for-bit from the checkpoint file",
    )
    sub_train.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="checkpoint file (default: <results-dir>/checkpoints/<task>-<kind>-<scale>.npz)",
    )
    sub_train.add_argument(
        "--save-every",
        type=int,
        default=1,
        metavar="N",
        help="checkpoint cadence in epochs (default 1)",
    )
    sub_train.add_argument("--seed", type=int, default=0, help="model init seed")
    sub_train.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="data-parallel worker processes; grain-sharded numerics make "
        "checkpoints byte-identical for every N (default: the classic "
        "serial engine)",
    )
    sub_train.add_argument(
        "--grain",
        type=int,
        default=None,
        metavar="G",
        help="samples per gradient grain under --jobs (default 2); part of "
        "the numerics, like batch size — keep it fixed across resumes",
    )
    add_common(sub_train)
    sub_train.set_defaults(func=_cmd_train)

    sub_report = subparsers.add_parser(
        "report", help="render cached artifacts as the paper's tables/figures"
    )
    sub_report.add_argument(
        "experiments", nargs="*", help="experiment names (default: all)"
    )
    add_common(sub_report)
    sub_report.set_defaults(func=_cmd_report)

    sub_serve = subparsers.add_parser(
        "serve-bench",
        help="benchmark the micro-batching inference server (repro.serving)",
    )
    sub_serve.add_argument(
        "--clients", type=int, default=8, help="concurrent closed-loop clients"
    )
    sub_serve.add_argument(
        "--requests", type=int, default=8, help="requests per client"
    )
    sub_serve.add_argument(
        "--image-size", type=int, default=24, help="square request size in pixels"
    )
    sub_serve.add_argument(
        "--workers", type=int, default=2, help="server worker threads"
    )
    sub_serve.add_argument(
        "--procs",
        type=int,
        default=0,
        metavar="N",
        help=(
            "benchmark the process-sharded server with N worker processes "
            "(shared-memory transport) against a 1-proc baseline instead of "
            "the thread server; uses the first --backends entry"
        ),
    )
    sub_serve.add_argument(
        "--max-batch", type=int, default=8, help="micro-batch flush threshold"
    )
    sub_serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=10.0,
        help="how long an under-full batch waits for stragglers",
    )
    sub_serve.add_argument(
        "--backends",
        default="numpy",
        metavar="SPEC[,SPEC...]",
        help=(
            "comma-separated kernel backends to compare "
            f"({', '.join(nn_backend.available_backends())})"
        ),
    )
    sub_serve.add_argument("--seed", type=int, default=0, help="workload seed")
    sub_serve.add_argument(
        "--compiled",
        action="store_true",
        help=(
            "serve through the trace-once compiled path (Predictor.compile); "
            "bit-identical to eager, checked against the eager serial reference"
        ),
    )
    sub_serve.add_argument(
        "--tuned",
        action="store_true",
        help=(
            "servers consult the autotuning cache (REPRO_TUNING_DIR, default "
            "results/tuning); the serial reference stays untuned, so the "
            "bit-identity verdict certifies tuned == untuned"
        ),
    )
    sub_serve.set_defaults(func=_cmd_serve_bench)

    sub_tune = subparsers.add_parser(
        "tune",
        help="autotune backend x tile x micro-batch for one model (repro.tune)",
    )
    sub_tune.add_argument(
        "model",
        help="what to tune: <task>[:<kind>], e.g. denoise:real or sr4:ri4+fh",
    )
    sub_tune.add_argument(
        "--shapes",
        default="16,24",
        metavar="SIZE[,SIZE...]",
        help="square request sizes (pixels) to tune, comma-separated (default 16,24)",
    )
    sub_tune.add_argument(
        "--batch", type=int, default=8, help="offered batch ceiling (default 8)"
    )
    sub_tune.add_argument(
        "--trials", type=int, default=3, help="timed runs per candidate (default 3)"
    )
    sub_tune.add_argument(
        "--warmup", type=int, default=1, help="discarded runs per candidate (default 1)"
    )
    sub_tune.add_argument(
        "--top-k",
        type=int,
        default=6,
        help="analytically best candidates to measure (default 6)",
    )
    sub_tune.add_argument("--seed", type=int, default=0, help="probe input seed")
    sub_tune.add_argument(
        "--force", action="store_true", help="retune even on a cache hit"
    )
    add_common(sub_tune)
    sub_tune.set_defaults(func=_cmd_tune)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run the experiment CLI; returns the process exit code."""
    ensure_registered()
    args = build_parser().parse_args(argv)
    if getattr(args, "backend", None):
        try:
            nn_backend.make_backend(args.backend)  # validate before exporting
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        # Exported (not a context manager) so multiprocessing spawn
        # workers pick the same backend up; precedence stays with any
        # use_backend context active inside the experiment code itself.
        export_env(nn_backend.BACKEND_ENV_VAR, args.backend)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-print; swallow the
        # noise (and keep Python's shutdown flush from re-raising).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
