"""Experiment: Fig. 15 — quality versus energy-per-pixel curves.

Each accelerator (eCNN, eRingCNN-n2, eRingCNN-n4) forms a curve over
compact model configurations: deeper models cost proportionally more
cycles (lower pixel throughput at fixed clock) and therefore more energy
per pixel; quality rises with depth.  The paper's finding: eRingCNN
curves sit left of eCNN's, and n4 wins at low energy budgets.
"""

from __future__ import annotations

import dataclasses

from ..hardware.accelerator import (
    ECNN,
    ERINGCNN_N2,
    ERINGCNN_N4,
    AcceleratorConfig,
    model_accelerator,
)
from .runner import make_task, run_quality
from .settings import SMALL, QualityScale, get_scale
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = ["Fig15Point", "run", "format_result", "to_jsonable"]

_TILE = 8  # output pixels per engine pass

_KIND_FOR = {"eCNN": "real", "eRingCNN-n2": "ri2+fh", "eRingCNN-n4": "ri4+fh"}


@dataclasses.dataclass(frozen=True)
class Fig15Point:
    """One point of one accelerator's curve."""

    accelerator: str
    blocks: int
    psnr_db: float
    energy_per_pixel_nj: float


def _energy_per_pixel_nj(config: AcceleratorConfig, layers: int) -> float:
    """Power / pixel-throughput: layers passes of the engine per pixel tile."""
    report = model_accelerator(config)
    pixels_per_second = _TILE * config.freq_hz / layers
    return report.total_power_w / pixels_per_second * 1e9


def run(
    task: str = "denoise",
    scale: QualityScale = SMALL,
    block_sweep: tuple[int, ...] = (1, 2, 3),
) -> list[Fig15Point]:
    """Run the experiment and return its artifact payload."""
    points = []
    for config in (ECNN, ERINGCNN_N2, ERINGCNN_N4):
        kind = _KIND_FOR[config.name]
        for blocks in block_sweep:
            cfg_scale = dataclasses.replace(scale, blocks=blocks)
            data = make_task(task, cfg_scale)
            res = run_quality(kind, task, cfg_scale, data=data)
            layers = 2 * blocks + 2  # head + B modules (2 convs each) + tail
            points.append(
                Fig15Point(
                    accelerator=config.name,
                    blocks=blocks,
                    psnr_db=res.psnr_db,
                    energy_per_pixel_nj=_energy_per_pixel_nj(config, layers),
                )
            )
    return points


def format_result(points: list[Fig15Point]) -> str:
    """Render the cached result as the paper-style text report."""
    lines = [f"{'accelerator':<13} {'blocks':>6} {'PSNR dB':>8} {'nJ/pixel':>9}"]
    for p in sorted(points, key=lambda p: (p.accelerator, p.blocks)):
        lines.append(
            f"{p.accelerator:<13} {p.blocks:>6} {p.psnr_db:>8.2f} {p.energy_per_pixel_nj:>9.2f}"
        )
    return "\n".join(lines)


def to_jsonable(points: list[Fig15Point]) -> list[dict]:
    """Artifact points for the Fig. 15 JSON payload."""
    return _jsonable(points)


register(
    name="fig15",
    description="Fig. 15: quality versus energy-per-pixel operating curves",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={
        "small": {"task": "denoise", "scale": get_scale("small"), "block_sweep": (1,)},
        "paper": {"task": "denoise", "scale": get_scale("paper"), "block_sweep": (1, 2, 3)},
    },
)
