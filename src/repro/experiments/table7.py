"""Experiment: Table VII — comparison with eCNN and Diffy."""

from __future__ import annotations

from ..hardware.compare import ComparisonRow, diffy_comparison
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = ["run", "format_result", "PAPER_GAINS", "to_jsonable"]

# Paper: energy-efficiency gains over Diffy at FFDNet-level Full-HD 20 fps.
PAPER_GAINS = {"eRingCNN-n2": 2.71, "eRingCNN-n4": 4.59}


def run() -> list[ComparisonRow]:
    """Run the experiment and return its artifact payload."""
    return diffy_comparison()


def format_result(rows: list[ComparisonRow] | None = None) -> str:
    """Render the cached result as the paper-style text report."""
    rows = rows if rows is not None else run()
    lines = [f"{'design':<20} {'eq.TOPS/W':>10} {'gain vs Diffy':>14}   (paper)"]
    for row in rows:
        paper = PAPER_GAINS.get(row.name)
        paper_txt = f"({paper:.2f}x)" if paper else ""
        gain = f"{row.gain_vs_reference:.2f}x" if row.gain_vs_reference else "-"
        lines.append(
            f"{row.name:<20} {row.equivalent_tops_per_watt:>10.1f} {gain:>14}   {paper_txt}"
        )
    return "\n".join(lines)


def to_jsonable(rows: list[ComparisonRow]) -> list[dict]:
    """Artifact rows for the Table VII JSON payload."""
    return _jsonable(rows)


register(
    name="table7",
    description="Table VII: equivalent-TOPS/W comparison against Diffy",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={"small": {}, "paper": {}},
)
