"""Experiment: Fig. 12 — area efficiency versus PSNR for 8-bit engines.

For each ring: the FRCONV/RCONV engine area efficiency from the hardware
model (synthesis stand-in) and the test PSNR of the 8-bit quantized
SR model trained with that algebra.  Paper finding: (R_I, f_H) gives the
smallest area *and* the best quality; area efficiencies track the 8-bit
complexity estimates of Table I.
"""

from __future__ import annotations

import dataclasses

from ..hardware.engine import engine_for_ring, real_engine
from ..imaging.datasets import TaskData
from ..models.factory import make_factory
from ..quant.quantize import QuantizingFactory, calibrate, quantize_weights
from .runner import (
    evaluate_psnr,
    make_task,
    model_for_task,
    model_spec_for,
    train_restoration,
)
from .settings import SMALL, QualityScale, get_scale
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = ["Fig12Point", "run", "format_result", "quantized_psnr", "to_jsonable"]

# Factory keys and the engine they map to.
DEFAULT_RINGS = ["real", "ri4+fh", "rh4+fcw", "ro4+fcw", "rh4i+fcw", "h+fcw", "ri2+fh", "c"]


@dataclasses.dataclass(frozen=True)
class Fig12Point:
    """One engine point: area efficiency and 8-bit PSNR."""

    kind: str
    area_efficiency: float
    psnr_fixed_db: float
    psnr_float_db: float


def quantized_psnr(
    kind: str,
    task: str,
    scale: QualityScale,
    data: TaskData,
    word_bits: int = 8,
    seed: int = 0,
) -> tuple[float, float]:
    """(fixed-point PSNR, float PSNR) of one algebra variant.

    Trains with quantization points present but disabled, then applies
    dynamic weight quantization + activation calibration (the paper's
    quantize-then-fine-tune flow at reduced scale).
    """
    base = make_factory(kind)
    factory = QuantizingFactory(base, word_bits=word_bits)
    model = model_for_task(task, factory, scale, seed=seed)
    # Cache key uses the quantizing factory's full name (base algebra +
    # word bits + mode); not rebuildable via make_factory, so no
    # "family" marker — the bundle serves warm starts only.
    spec = dict(model_spec_for(model, model.factory_name, seed))
    spec.pop("family", None)
    train_restoration(model, data, scale, label=kind, cache_spec=spec)
    psnr_float = evaluate_psnr(model, data)
    quantize_weights(model, word_bits)
    calibrate(model, data.train_inputs[: max(4, len(data.train_inputs) // 4)])
    psnr_fixed = evaluate_psnr(model, data)
    return psnr_fixed, psnr_float


def run(
    task: str = "sr4",
    scale: QualityScale = SMALL,
    kinds: list[str] | None = None,
    data: TaskData | None = None,
) -> list[Fig12Point]:
    """Run the experiment and return its artifact payload."""
    kinds = kinds if kinds is not None else DEFAULT_RINGS
    data = data if data is not None else make_task(task, scale)
    base_area = real_engine(3).total.area_um2
    points = []
    for kind in kinds:
        ring_key = kind.split("+")[0]
        area = (
            base_area
            if ring_key == "real"
            else engine_for_ring(ring_key, 3).total.area_um2
        )
        fixed, flt = quantized_psnr(kind, task, scale, data)
        points.append(
            Fig12Point(
                kind=kind,
                area_efficiency=base_area / area,
                psnr_fixed_db=fixed,
                psnr_float_db=flt,
            )
        )
    return points


def format_result(points: list[Fig12Point]) -> str:
    """Render the cached result as the paper-style text report."""
    lines = [f"{'ring':<10} {'area-eff':>9} {'PSNR(8b)':>9} {'PSNR(fp)':>9}"]
    for p in sorted(points, key=lambda p: -p.area_efficiency):
        lines.append(
            f"{p.kind:<10} {p.area_efficiency:>8.2f}x {p.psnr_fixed_db:>9.2f} {p.psnr_float_db:>9.2f}"
        )
    return "\n".join(lines)


def to_jsonable(points: list[Fig12Point]) -> list[dict]:
    """Artifact points for the Fig. 12 JSON payload."""
    return _jsonable(points)


register(
    name="fig12",
    description="Fig. 12: engine area efficiency versus 8-bit quality",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={
        "small": {"task": "sr4", "scale": get_scale("small"), "kinds": ["real", "ri2+fh"]},
        "paper": {"task": "sr4", "scale": get_scale("paper")},
    },
)
