"""Experiment: Fig. 10 — ablation between (R_I, f_H) and R_H.

The two structures differ in (1) whether weights multiply features
directly or after the filter transform, and (2) whether the Hadamard
transforms appear at every convolution (R_H) or only around the
non-linearity (R_I, f_H).  R_H imitates (R_I, f_H) in two steps:

* **train on transformed weights g~** — reparameterize each R_H
  convolution by its diagonal-domain weights (same function class,
  different training dynamics), and
* **structure modification** — remove the redundant back-to-back
  transforms, which *is* (R_I, f_H).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..imaging.datasets import TaskData
from ..models.factory import LayerFactory, RingFactory, make_factory
from ..nn.functional import conv2d, ring_expand
from ..nn.init import ring_kaiming_normal
from ..nn.layers import Conv2d, ReLU
from ..nn.module import Module
from ..nn.tensor import Parameter, Tensor
from ..rings.catalog import RingSpec, get_ring
from ..rings.nonlinearity import ComponentReLU
from .runner import QualityResult, make_task, model_for_task, train_restoration
from .settings import SMALL, QualityScale, get_scale
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = [
    "TransformedRingConv2d",
    "TransformedRingFactory",
    "Fig10Result",
    "run",
    "format_result",
    "to_jsonable",
]


class TransformedRingConv2d(Module):
    """Ring convolution parameterized by the transformed weights g~.

    Stores the m diagonal-domain components per tuple pair; the real
    filter bank is ``W = Tz diag(g~) Tx`` per pair, realized through the
    generalized expansion tensor ``M'[i, p, j] = Tz[i, p] Tx[p, j]``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        spec: RingSpec,
        stride: int = 1,
        padding: int | None = None,
        bias: bool = True,
        seed: int | None = None,
    ) -> None:
        super().__init__()
        n = spec.n
        if in_channels % n or out_channels % n:
            raise ValueError("channels must be multiples of the tuple size")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.spec = spec
        m = spec.fast.num_products
        self.expansion = np.einsum("ip,pj->ipj", spec.fast.tz, spec.fast.tx)
        self.g_t = Parameter(
            ring_kaiming_normal(
                (out_channels // n, in_channels // n, m, kernel_size, kernel_size),
                fan_in=in_channels * kernel_size**2,
                seed=seed,
            )
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        weight = ring_expand(self.g_t, self.expansion)
        return conv2d(x, weight, self.bias, stride=self.stride, padding=self.padding)


@dataclasses.dataclass
class TransformedRingFactory(LayerFactory):
    """R_H layers trained on g~ (Fig. 10's middle variant)."""

    spec: RingSpec

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"{self.spec.paper_symbol}~g"

    def conv(self, in_channels, out_channels, kernel_size, seed, **kwargs) -> Module:
        n = self.spec.n
        if in_channels % n or out_channels % n:
            return Conv2d(in_channels, out_channels, kernel_size, seed=seed, **kwargs)
        return TransformedRingConv2d(
            in_channels, out_channels, kernel_size, self.spec, seed=seed, **kwargs
        )

    def act(self, channels: int) -> Module:
        return ReLU()

    def weight_compression(self) -> float:
        return self.spec.n * self.spec.n / self.spec.fast.num_products


@dataclasses.dataclass(frozen=True)
class Fig10Result:
    """PSNR of the three ablation variants."""

    task: str
    baseline: QualityResult  # R_H with component-wise ReLU
    transformed: QualityResult  # trained on g~
    modified: QualityResult  # structure modification = (R_I, f_H)


def run(
    task: str = "sr4",
    scale: QualityScale = SMALL,
    ring: str = "rh4",
    data: TaskData | None = None,
    seed: int = 0,
) -> Fig10Result:
    """Run the experiment and return its artifact payload."""
    data = data if data is not None else make_task(task, scale)
    spec = get_ring(ring)
    n = spec.n

    base_factory = RingFactory(spec=spec, nonlinearity=ComponentReLU(n=n))
    base_model = model_for_task(task, base_factory, scale, seed=seed)
    baseline = train_restoration(base_model, data, scale, label=f"{ring}+fcw")

    t_factory = TransformedRingFactory(spec=spec)
    t_model = model_for_task(task, t_factory, scale, seed=seed)
    transformed = train_restoration(t_model, data, scale, label=f"{ring} on g~")

    mod_factory = make_factory(f"ri{n}+fh")
    mod_model = model_for_task(task, mod_factory, scale, seed=seed)
    modified = train_restoration(mod_model, data, scale, label=f"(R_I{n}, f_H)")

    return Fig10Result(task=task, baseline=baseline, transformed=transformed, modified=modified)


def format_result(result: Fig10Result) -> str:
    """Render the cached result as the paper-style text report."""
    return "\n".join(
        [
            f"Fig.10 ablation on {result.task}:",
            f"  {result.baseline.label:<14} {result.baseline.psnr_db:6.2f} dB",
            f"  {result.transformed.label:<14} {result.transformed.psnr_db:6.2f} dB",
            f"  {result.modified.label:<14} {result.modified.psnr_db:6.2f} dB",
        ]
    )


def to_jsonable(result: Fig10Result) -> dict:
    """Artifact payload for the three ablation variants."""
    return _jsonable(result)


register(
    name="fig10",
    description="Fig. 10: structure-modification ablation (R_H vs g~ vs (R_I, f_H))",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={
        "small": {"task": "sr4", "scale": get_scale("small"), "ring": "rh2"},
        "paper": {"task": "sr4", "scale": get_scale("paper"), "ring": "rh4"},
    },
)
