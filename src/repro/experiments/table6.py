"""Experiment: Table VI — area and power breakdowns of eRingCNN."""

from __future__ import annotations

import dataclasses

from ..hardware.accelerator import ERINGCNN_N2, ERINGCNN_N4, model_accelerator
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = ["Table6Row", "run", "format_result", "PAPER_FRACTIONS", "to_jsonable"]

# Paper Table VI: conv-engine shares of total area / power.
PAPER_FRACTIONS = {
    "eRingCNN-n2": {"area": 0.5742, "power": 0.8651},
    "eRingCNN-n4": {"area": 0.4563, "power": 0.7656},
}


@dataclasses.dataclass(frozen=True)
class Table6Row:
    """Breakdown of one accelerator."""

    name: str
    areas_mm2: dict[str, float]
    powers_w: dict[str, float]
    conv_area_fraction: float
    conv_power_fraction: float
    drelu_share_3x3: float


def run() -> list[Table6Row]:
    """Run the experiment and return its artifact payload."""
    rows = []
    for config in (ERINGCNN_N2, ERINGCNN_N4):
        report = model_accelerator(config)
        engine = report.conv3x3
        rows.append(
            Table6Row(
                name=config.name,
                areas_mm2=dict(report.areas_mm2),
                powers_w=dict(report.powers_w),
                conv_area_fraction=report.conv_area_fraction,
                conv_power_fraction=report.conv_power_fraction,
                drelu_share_3x3=engine.nonlinearity.area_um2 / engine.total.area_um2,
            )
        )
    return rows


def format_result(rows: list[Table6Row] | None = None) -> str:
    """Render the cached result as the paper-style text report."""
    rows = rows if rows is not None else run()
    lines = []
    for row in rows:
        anchors = PAPER_FRACTIONS[row.name]
        lines.append(f"== {row.name}")
        total_area = sum(row.areas_mm2.values())
        total_power = sum(row.powers_w.values())
        for key in row.areas_mm2:
            lines.append(
                f"   {key:<14} {row.areas_mm2[key]:7.2f} mm2 ({row.areas_mm2[key]/total_area:5.1%})"
                f"   {row.powers_w[key]:6.3f} W ({row.powers_w[key]/total_power:5.1%})"
            )
        lines.append(
            f"   conv share: area {row.conv_area_fraction:.1%} (paper {anchors['area']:.1%}), "
            f"power {row.conv_power_fraction:.1%} (paper {anchors['power']:.1%}); "
            f"f_H block = {row.drelu_share_3x3:.1%} of the 3x3 engine"
        )
    return "\n".join(lines)


def to_jsonable(rows: list[Table6Row]) -> list[dict]:
    """Artifact rows for the Table VI JSON payload."""
    return _jsonable(rows)


register(
    name="table6",
    description="Table VI: area/power breakdown of the eRingCNN accelerators",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={"small": {}, "paper": {}},
)
