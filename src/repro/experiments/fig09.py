"""Experiment: Fig. 9 — PSNR comparison of different rings.

Trains the same ERNet backbone (DnERNet-PU for denoising, SR4ERNet for
x4 SR) under every ring algebra and reports test PSNR.  The paper's
findings to reproduce: R_I with the component-wise ReLU is worst (no
information mixing); the proposed (R_I, f_H) is best and constantly
outperforms the others; (R_I4, f_O4) is inferior to (R_I4, f_H).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..imaging.datasets import TaskData
from .runner import QualityResult, make_task, run_quality
from .settings import SMALL, QualityScale, get_scale
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = ["RING_SETS", "Fig9Result", "run", "format_result", "to_jsonable"]

# Factory keys per tuple dimension; mirrors the bars of Fig. 9.
RING_SETS: dict[int, list[str]] = {
    2: ["real", "ri2+fcw", "rh2", "c", "ri2+fh"],
    4: ["real", "ri4+fcw", "rh4", "ro4", "rh4i", "ro4i", "h", "ri4+fo4", "ri4+fh"],
}


@dataclasses.dataclass(frozen=True)
class Fig9Result:
    """All bars of one task panel."""

    task: str
    n: int
    results: list[QualityResult]

    def psnr_of(self, kind: str) -> float:
        for result in self.results:
            if result.label == kind:
                return result.psnr_db
        raise KeyError(kind)


def run(
    task: str = "denoise",
    n: int = 4,
    scale: QualityScale = SMALL,
    kinds: list[str] | None = None,
    seeds: tuple[int, ...] = (0, 1),
    data: TaskData | None = None,
) -> Fig9Result:
    """One panel of Fig. 9 (averaged over seeds for stability)."""
    kinds = kinds if kinds is not None else RING_SETS[n]
    data = data if data is not None else make_task(task, scale)
    results = []
    for kind in kinds:
        psnrs, params, losses = [], 0, []
        for seed in seeds:
            res = run_quality(kind, task, scale, data=data, seed=seed)
            psnrs.append(res.psnr_db)
            params = res.parameters
            losses.append(res.final_train_loss)
        results.append(
            QualityResult(
                label=kind,
                task=task,
                psnr_db=float(np.mean(psnrs)),
                parameters=params,
                final_train_loss=float(np.mean(losses)),
            )
        )
    return Fig9Result(task=task, n=n, results=results)


def format_result(result: Fig9Result) -> str:
    """Render the cached result as the paper-style text report."""
    lines = [f"Fig.9 panel: task={result.task}, n={result.n}"]
    best = max(r.psnr_db for r in result.results)
    for r in sorted(result.results, key=lambda r: -r.psnr_db):
        marker = " <= best" if r.psnr_db == best else ""
        lines.append(f"  {r.label:<10} {r.psnr_db:6.2f} dB  ({r.parameters} params){marker}")
    return "\n".join(lines)


def to_jsonable(result: Fig9Result) -> dict:
    """Artifact payload; each bar is a model-free QualityResult dict."""
    return _jsonable(result)


register(
    name="fig09",
    description="Fig. 9: ring-algebra quality comparison (one task panel)",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={
        "small": {"task": "denoise", "n": 2, "scale": get_scale("small"), "seeds": (0,)},
        "paper": {"task": "denoise", "n": 4, "scale": get_scale("paper"), "seeds": (0, 1)},
    },
)
