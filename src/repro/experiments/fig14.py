"""Experiment: Fig. 14 — area/power efficiency of eRingCNN over eCNN."""

from __future__ import annotations

from ..hardware.compare import EfficiencyGains, fig14_efficiencies
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = ["run", "format_result", "PAPER_GAINS", "to_jsonable"]

PAPER_GAINS = {
    "eRingCNN-n2": {"engine_area": 2.08, "engine_energy": 2.00, "chip_area": 1.64, "chip_energy": 1.85},
    "eRingCNN-n4": {"engine_area": 3.77, "engine_energy": 3.84, "chip_area": 2.36, "chip_energy": 3.12},
}


def run() -> list[EfficiencyGains]:
    """Run the experiment and return its artifact payload."""
    return fig14_efficiencies()


def format_result(gains: list[EfficiencyGains] | None = None) -> str:
    """Render the cached result as the paper-style text report."""
    gains = gains if gains is not None else run()
    lines = [
        f"{'design':<13} {'eng-area':>9} {'eng-energy':>10} {'chip-area':>9} {'chip-energy':>11}   (paper)"
    ]
    for g in gains:
        p = PAPER_GAINS[g.name]
        lines.append(
            f"{g.name:<13} {g.engine_area_gain:>8.2f}x {g.engine_energy_gain:>9.2f}x "
            f"{g.chip_area_gain:>8.2f}x {g.chip_energy_gain:>10.2f}x   "
            f"({p['engine_area']:.2f}/{p['engine_energy']:.2f}/{p['chip_area']:.2f}/{p['chip_energy']:.2f})"
        )
    return "\n".join(lines)


def to_jsonable(gains: list[EfficiencyGains]) -> list[dict]:
    """Artifact rows for the Fig. 14 JSON payload."""
    return _jsonable(gains)


register(
    name="fig14",
    description="Fig. 14: engine/chip area and energy efficiency gains",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={"small": {}, "paper": {}},
)
