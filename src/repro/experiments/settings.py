"""Training settings (paper Table III) and experiment scale presets.

The paper's Table III distinguishes a *lightweight* setting (algebra
comparisons, Figs. 9-12) from a *polishment* setting (final models,
Table IV) — larger datasets, more epochs, lower final learning rate.
We mirror both recipes at CPU scale; the ``PAPER_TABLE3`` record keeps
the original numbers for documentation and tests.
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "PaperSetting",
    "PAPER_TABLE3",
    "QualityScale",
    "TINY",
    "SMALL",
    "MEDIUM",
    "SCALES",
    "get_scale",
]


@dataclasses.dataclass(frozen=True)
class PaperSetting:
    """One row of the paper's Table III (as described in the text)."""

    name: str
    datasets: tuple[str, ...]
    optimizer: str
    loss: str
    note: str


PAPER_TABLE3 = {
    "lightweight": PaperSetting(
        name="lightweight",
        datasets=("DIV2K",),
        optimizer="Adam",
        loss="MSE",
        note="used for the ring-algebra comparisons (Section VI-A)",
    ),
    "polishment": PaperSetting(
        name="polishment",
        datasets=("DIV2K", "Waterloo Exploration"),
        optimizer="Adam",
        loss="MSE",
        note="used for the final eRingCNN models (Section VI-B)",
    ),
    "finetune-8bit": PaperSetting(
        name="finetune-8bit",
        datasets=("DIV2K",),
        optimizer="Adam",
        loss="MSE",
        note="quantize to 8-bit then fine-tune (bottom of Table III)",
    ),
}


@dataclasses.dataclass(frozen=True)
class QualityScale:
    """CPU-scale stand-in for a Table III recipe.

    Attributes:
        train_count / test_count / size: Synthetic corpus dimensions.
        epochs / lr / batch_size: Training loop parameters.
        blocks / ratio: Default ERNet configuration at this scale.
    """

    name: str
    train_count: int
    test_count: int
    size: int
    epochs: int
    lr: float
    batch_size: int
    blocks: int
    ratio: int
    seed: int = 0


TINY = QualityScale(
    name="tiny", train_count=12, test_count=4, size=16, epochs=12, lr=3e-3,
    batch_size=6, blocks=1, ratio=1,
)
SMALL = QualityScale(
    name="small", train_count=24, test_count=6, size=24, epochs=40, lr=3e-3,
    batch_size=8, blocks=1, ratio=1,
)
MEDIUM = QualityScale(
    name="medium", train_count=48, test_count=8, size=24, epochs=80, lr=3e-3,
    batch_size=8, blocks=2, ratio=2,
)

#: Named presets, including the CLI's vocabulary: ``"small"`` smoke runs
#: use the TINY recipe, ``"paper"`` uses SMALL — the CPU-scale stand-in
#: for the paper's Table III settings (see module docstring).
SCALES: dict[str, QualityScale] = {
    "tiny": TINY,
    "small": TINY,
    "medium": MEDIUM,
    "paper": SMALL,
}


def get_scale(name: str) -> QualityScale:
    """Look up a :class:`QualityScale` preset by CLI name."""
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(
            f"unknown scale {name!r}; choose from: {', '.join(sorted(SCALES))}"
        ) from None
