"""Experiment: Table V — design configuration & layout performance."""

from __future__ import annotations

import dataclasses

from ..hardware.accelerator import (
    ERINGCNN_N2,
    ERINGCNN_N4,
    UHD30,
    AcceleratorReport,
    dram_bandwidth_gbps,
    model_accelerator,
)
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = ["Table5Row", "run", "format_result", "PAPER_VALUES", "to_jsonable"]

# Published anchors (paper Table V) for side-by-side reporting.
PAPER_VALUES = {
    "eRingCNN-n2": {"area_mm2": 33.73, "power_w": 3.76, "weight_kb": 960},
    "eRingCNN-n4": {"area_mm2": 23.36, "power_w": 2.22, "weight_kb": 480},
}


@dataclasses.dataclass(frozen=True)
class Table5Row:
    """One accelerator's configuration and modeled layout figures."""

    name: str
    ring_dimension: int
    sparsity: str
    weight_memory_kb: float
    macs_per_cycle: int
    frequency_mhz: float
    equivalent_tops: float
    area_mm2: float
    power_w: float
    dram_gbps: float
    report: AcceleratorReport


def run() -> list[Table5Row]:
    """Run the experiment and return its artifact payload."""
    rows = []
    for config, n in ((ERINGCNN_N2, 2), (ERINGCNN_N4, 4)):
        report = model_accelerator(config)
        rows.append(
            Table5Row(
                name=config.name,
                ring_dimension=n,
                sparsity=f"{100 * (1 - 1 / n):.0f}%",
                weight_memory_kb=config.weight_memory_kb,
                macs_per_cycle=report.real_macs_per_cycle(),
                frequency_mhz=config.freq_hz / 1e6,
                equivalent_tops=report.equivalent_tops(),
                area_mm2=report.total_area_mm2,
                power_w=report.total_power_w,
                dram_gbps=dram_bandwidth_gbps(UHD30),
                report=report,
            )
        )
    return rows


def format_result(rows: list[Table5Row] | None = None) -> str:
    """Render the cached result as the paper-style text report."""
    rows = rows if rows is not None else run()
    lines = [
        f"{'design':<13} {'n':>2} {'sparsity':>8} {'weights':>8} {'MACs/cyc':>9} "
        f"{'MHz':>5} {'eq.TOPS':>7} {'area mm2':>9} {'power W':>8} {'paper':>15}"
    ]
    for row in rows:
        anchor = PAPER_VALUES[row.name]
        lines.append(
            f"{row.name:<13} {row.ring_dimension:>2} {row.sparsity:>8} "
            f"{row.weight_memory_kb:>6.0f}KB {row.macs_per_cycle:>9} "
            f"{row.frequency_mhz:>5.0f} {row.equivalent_tops:>7.1f} "
            f"{row.area_mm2:>9.2f} {row.power_w:>8.2f} "
            f"{anchor['area_mm2']:>6.2f}/{anchor['power_w']:.2f}W"
        )
    lines.append(f"DRAM bandwidth at UHD30: {rows[0].dram_gbps:.2f} GB/s (paper: 1.93)")
    return "\n".join(lines)


def to_jsonable(rows: list[Table5Row]) -> list[dict]:
    """Artifact rows; the nested accelerator report serializes too."""
    return _jsonable(rows)


register(
    name="table5",
    description="Table V: accelerator configurations and modeled layout figures",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={"small": {}, "paper": {}},
)
