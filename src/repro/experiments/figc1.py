"""Experiment: Fig. C-1 — recognition: RingCNN versus structured pruning.

A small ResNet on a synthetic 10-class grating dataset stands in for
ResNet-56 on CIFAR-100 (offline substitution, see DESIGN.md).  RingCNN
variants use (R_I, f_H) for convolutions with real-valued batch norm
(the Appendix C setup); the baseline is LeGR-style structured filter
pruning at matching compute budgets.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..models.factory import make_factory
from ..models.resnet import resnet_small
from ..nn.data import ArrayDataset, DataLoader
from ..nn.loss import cross_entropy_loss
from ..nn.module import Module
from ..nn.optim import Adam
from ..nn.tensor import Tensor, no_grad
from ..pruning.structured import apply_channel_masks, channel_sparsity, structured_masks
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = ["make_classification_data", "FigC1Point", "run", "format_result", "to_jsonable"]


def make_classification_data(
    count: int = 120, size: int = 16, classes: int = 10, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic grating classes: orientation/frequency determined by label."""
    rng = np.random.default_rng(seed)
    xs, ys = [], []
    for _ in range(count):
        label = int(rng.integers(classes))
        theta = np.pi * label / classes
        freq = 0.12 + 0.018 * label
        phase = rng.uniform(0, 2 * np.pi)
        yy, xx = np.mgrid[0:size, 0:size]
        img = np.sin(2 * np.pi * freq * (np.cos(theta) * xx + np.sin(theta) * yy) + phase)
        img = 0.5 + 0.4 * img + 0.15 * rng.standard_normal((size, size))
        xs.append(img[None])
        ys.append(label)
    return np.stack(xs), np.array(ys)


def _train_classifier(
    model: Module, x: np.ndarray, y: np.ndarray, epochs: int, lr: float, seed: int
) -> None:
    loader = DataLoader(ArrayDataset(x, y), batch_size=16, seed=seed)
    optimizer = Adam(model.parameters(), lr=lr)
    model.train()
    for _ in range(epochs):
        for inputs, labels in loader:
            optimizer.zero_grad()
            loss = cross_entropy_loss(model(Tensor(inputs)), labels)
            loss.backward()
            optimizer.step()
    model.eval()


def _accuracy(model: Module, x: np.ndarray, y: np.ndarray) -> float:
    with no_grad():
        logits = model(Tensor(x)).data
    return float((logits.argmax(axis=1) == y).mean())


@dataclasses.dataclass(frozen=True)
class FigC1Point:
    """One method point: accuracy at a compute-efficiency budget."""

    method: str
    computation_efficiency: float
    accuracy: float


def run(
    epochs: int = 15,
    lr: float = 3e-3,
    train_count: int = 200,
    test_count: int = 60,
    seed: int = 0,
) -> list[FigC1Point]:
    """Run the experiment and return its artifact payload."""
    x_train, y_train = make_classification_data(train_count, seed=seed)
    x_test, y_test = make_classification_data(test_count, seed=seed + 999)
    points = []

    base = resnet_small(blocks_per_stage=1, base_width=8, seed=seed)
    _train_classifier(base, x_train, y_train, epochs, lr, seed)
    points.append(FigC1Point("ResNet (1x)", 1.0, _accuracy(base, x_test, y_test)))

    # LeGR-style structured pruning at 2x, fine-tuned briefly.
    pruned = resnet_small(blocks_per_stage=1, base_width=8, seed=seed)
    pruned.load_state_dict(base.state_dict())
    masks = structured_masks(pruned, compression=2.0)
    apply_channel_masks(pruned, masks)
    _train_classifier(pruned, x_train, y_train, max(2, epochs // 2), lr / 3, seed)
    apply_channel_masks(pruned, masks)
    eff = 1.0 / (1.0 - channel_sparsity(masks))
    points.append(FigC1Point("LeGR (2x)", eff, _accuracy(pruned, x_test, y_test)))

    # RingCNN (R_I, f_H) with real-valued batch norm (Appendix C).
    for n in (2, 4):
        ring = resnet_small(
            blocks_per_stage=1, base_width=8, factory=make_factory(f"ri{n}+fh"), seed=seed
        )
        _train_classifier(ring, x_train, y_train, epochs, lr, seed)
        points.append(
            FigC1Point(f"RingCNN n={n}", float(n), _accuracy(ring, x_test, y_test))
        )
    return points


def format_result(points: list[FigC1Point]) -> str:
    """Render the cached result as the paper-style text report."""
    lines = [f"{'method':<14} {'comp-eff':>9} {'accuracy':>9}"]
    for p in points:
        lines.append(f"{p.method:<14} {p.computation_efficiency:>8.2f}x {p.accuracy:>8.1%}")
    return "\n".join(lines)


def to_jsonable(points: list[FigC1Point]) -> list[dict]:
    """Artifact points for the Fig. C1 JSON payload."""
    return _jsonable(points)


register(
    name="figc1",
    description="Fig. C1: recognition (classification) accuracy at compute budgets",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={
        "small": {"epochs": 3, "train_count": 60, "test_count": 24},
        "paper": {},
    },
)
