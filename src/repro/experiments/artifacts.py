"""Artifact store: fingerprinted JSON results under ``results/``.

Every experiment run serializes to one JSON file keyed by a fingerprint
of (experiment name, scale name, the scale's run kwargs, schema
version).  Re-running with the same key is a cache hit — the stored
artifact is returned without recomputation — while changing the scale
or any registered setting changes the fingerprint and forces a miss.

Artifacts are deliberately *deterministic*: no timestamps, hostnames or
durations are stored inside the file, so a serial run and a
``--jobs N`` run of the same experiments produce byte-identical
artifacts (the acceptance test for the parallel executor).
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import os
import pathlib
from collections.abc import Mapping
from typing import Any

import numpy as np

from ..nn.module import Module

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_RESULTS_DIR",
    "to_jsonable",
    "canonical_json",
    "fingerprint",
    "resolved_settings",
    "settings_digest",
    "Artifact",
    "ArtifactStore",
]

#: Bump when the artifact layout changes; part of every fingerprint.
SCHEMA_VERSION = 1

#: Repo-root ``results/`` directory (``src/repro/experiments/`` -> root).
DEFAULT_RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "results"


def to_jsonable(obj: Any) -> Any:
    """Recursively convert experiment results to JSON-serializable data.

    Handles the types the experiment dataclasses actually carry:
    dataclasses become dicts, NumPy arrays/scalars become lists/numbers,
    tuples become lists, and trained :class:`Module` instances are
    dropped (``None``) — weights belong in checkpoints, not result
    artifacts.  Objects may override the conversion by defining their
    own ``to_jsonable()`` method.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if hasattr(obj, "to_jsonable") and not isinstance(obj, type):
        return obj.to_jsonable()
    if isinstance(obj, Module):
        return None
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, np.ndarray):
        return to_jsonable(obj.tolist())
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, Mapping):
        converted: dict[str, Any] = {}
        for key, value in obj.items():
            skey = str(key)
            if skey in converted:
                # Silent data loss (and fingerprint aliasing) otherwise.
                raise ValueError(f"mapping keys collide after str(): {key!r}")
            converted[skey] = to_jsonable(value)
        return converted
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj) if isinstance(obj, (set, frozenset)) else obj
        return [to_jsonable(item) for item in items]
    return str(obj)


def canonical_json(obj: Any) -> str:
    """Stable JSON encoding (sorted keys, no whitespace) for hashing."""
    return json.dumps(to_jsonable(obj), sort_keys=True, separators=(",", ":"))


def fingerprint(name: str, scale: str, settings: Mapping[str, Any]) -> str:
    """Cache key of one (experiment, scale, settings) combination."""
    payload = canonical_json(
        {
            "experiment": name,
            "scale": scale,
            "settings": settings,
            "schema": SCHEMA_VERSION,
        }
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def resolved_settings(experiment: Any, scale: str) -> dict[str, Any]:
    """Fully-resolved run kwargs for one (experiment, scale), in JSON form.

    The experiment's ``run()`` signature defaults overlaid with the
    registered scale preset — so the fingerprint shifts (forcing a cache
    miss) when *any* run parameter changes, including defaults the
    preset leaves untouched, not just the handful the preset pins.
    """
    settings: dict[str, Any] = {}
    for name, param in inspect.signature(experiment.run).parameters.items():
        if param.default is not inspect.Parameter.empty:
            settings[name] = param.default
    settings.update(experiment.kwargs_for(scale))
    return to_jsonable(settings)


def settings_digest(experiment: Any, scale: str) -> tuple[dict[str, Any], str]:
    """The (settings, fingerprint) cache key for one (experiment, scale)."""
    settings = resolved_settings(experiment, scale)
    return settings, fingerprint(experiment.name, scale, settings)


@dataclasses.dataclass(frozen=True)
class Artifact:
    """One cached experiment result.

    ``result`` is the JSON form of the experiment's native return value
    and ``formatted`` the paper-style text rendering, captured at run
    time so ``report`` never needs to re-execute anything.
    """

    experiment: str
    scale: str
    fingerprint: str
    settings: Mapping[str, Any]
    result: Any
    formatted: str
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "scale": self.scale,
            "fingerprint": self.fingerprint,
            "settings": to_jsonable(self.settings),
            "result": self.result,
            "formatted": self.formatted,
            "schema_version": self.schema_version,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Artifact":
        return cls(
            experiment=data["experiment"],
            scale=data["scale"],
            fingerprint=data["fingerprint"],
            settings=data.get("settings", {}),
            result=data.get("result"),
            formatted=data.get("formatted", ""),
            schema_version=data.get("schema_version", SCHEMA_VERSION),
        )


class ArtifactStore:
    """Filesystem-backed cache of experiment artifacts.

    Files live flat under ``root`` as
    ``<experiment>--<scale>--<fingerprint>.json`` so humans can browse
    them while lookups stay O(1) by key.
    """

    def __init__(self, root: str | pathlib.Path = DEFAULT_RESULTS_DIR):
        self.root = pathlib.Path(root)

    def path_for(self, artifact_or_key: "Artifact | tuple[str, str, str]") -> pathlib.Path:
        key = (
            (artifact_or_key.experiment, artifact_or_key.scale, artifact_or_key.fingerprint)
            if isinstance(artifact_or_key, Artifact)
            else artifact_or_key
        )
        name, scale, digest = key
        return self.root / f"{name}--{scale}--{digest}.json"

    @staticmethod
    def _read(path: pathlib.Path) -> Artifact | None:
        """Parse one artifact file; corrupt or stale files are misses.

        A run killed mid-write (or a stale schema) must degrade to a
        recompute-and-overwrite, never crash every later command.
        """
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if data.get("schema_version") != SCHEMA_VERSION:
            return None
        return Artifact.from_dict(data)

    def load(self, name: str, scale: str, digest: str) -> Artifact | None:
        """The cached artifact for a fingerprint, or None on a miss."""
        path = self.path_for((name, scale, digest))
        if not path.exists():
            return None
        return self._read(path)

    def save(self, artifact: Artifact) -> pathlib.Path:
        """Serialize an artifact; deterministic bytes for identical runs.

        Written to a temp file then atomically renamed, so an interrupt
        can never leave a truncated artifact behind.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(artifact)
        text = json.dumps(artifact.to_dict(), sort_keys=True, indent=2)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(text + "\n")
        os.replace(tmp, path)
        return path

    def latest(self, name: str, scale: str) -> Artifact | None:
        """Any stored artifact for (experiment, scale), newest first.

        Used by ``report`` so it can render results even after settings
        drifted (it prefers the exact-fingerprint hit when one exists).
        """
        candidates = sorted(
            self.root.glob(f"{name}--{scale}--*.json"),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        )
        for path in candidates:
            artifact = self._read(path)
            if artifact is not None:
                return artifact
        return None
