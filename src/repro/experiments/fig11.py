"""Experiment: Fig. 11 — algebraic sparsity versus unstructured pruning.

RingCNNs over (R_I, f_H) at n = 2/4/8 (2x/4x/8x compression) are trained
directly; the real-valued CNN is pre-trained, magnitude-pruned to each
ratio, and fine-tuned.  The paper's finding: RingCNN delivers better
quality than pruning at every ratio, and n = 2 can beat the original 1x
networks.
"""

from __future__ import annotations

import dataclasses

from ..imaging.datasets import TaskData
from ..nn.data import ArrayDataset, DataLoader
from ..nn.trainer import TrainConfig, train_model
from ..pruning.magnitude import finetune_pruned, prune_model
from .runner import evaluate_psnr, make_task, model_for_task, run_quality
from .settings import SMALL, QualityScale, get_scale
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = ["Fig11Point", "run", "format_result", "to_jsonable"]


@dataclasses.dataclass(frozen=True)
class Fig11Point:
    """One curve point: method at a compression ratio."""

    method: str  # "ring" or "pruning" or "original"
    compression: float
    psnr_db: float


def run(
    task: str = "sr4",
    scale: QualityScale = SMALL,
    compressions: tuple[float, ...] = (2.0, 4.0, 8.0),
    data: TaskData | None = None,
    seed: int = 0,
) -> list[Fig11Point]:
    """Run the experiment and return its artifact payload."""
    data = data if data is not None else make_task(task, scale)
    points: list[Fig11Point] = []

    # Original (1x) real-valued network, trained with the same budget plus
    # the fine-tuning epochs for fairness (paper Fig. 11 caption).
    original = model_for_task(task, None, scale, seed=seed)
    loader = DataLoader(
        ArrayDataset(data.train_inputs, data.train_targets),
        batch_size=scale.batch_size,
        seed=scale.seed,
    )
    extra = max(2, scale.epochs // 2)
    train_model(original, loader, TrainConfig(epochs=scale.epochs + extra, lr=scale.lr))
    points.append(Fig11Point("original", 1.0, evaluate_psnr(original, data)))

    # Weight pruning: pre-train, prune, fine-tune (paper: 200 more epochs).
    for ratio in compressions:
        model = model_for_task(task, None, scale, seed=seed)
        train_model(model, loader, TrainConfig(epochs=scale.epochs, lr=scale.lr))
        masks = prune_model(model, ratio)
        finetune_pruned(model, masks, loader, TrainConfig(epochs=extra, lr=scale.lr / 3))
        points.append(Fig11Point("pruning", ratio, evaluate_psnr(model, data)))

    # RingCNN (R_I, f_H): trained directly with the same total budget.
    ring_scale = dataclasses.replace(scale, epochs=scale.epochs + extra)
    for n, ratio in ((2, 2.0), (4, 4.0), (8, 8.0)):
        if ratio not in compressions:
            continue
        res = run_quality(f"ri{n}+fh", task, ring_scale, data=data, seed=seed)
        points.append(Fig11Point("ring", ratio, res.psnr_db))
    return points


def format_result(points: list[Fig11Point]) -> str:
    """Render the cached result as the paper-style text report."""
    lines = [f"{'method':<10} {'compression':>11} {'PSNR dB':>8}"]
    for p in sorted(points, key=lambda p: (p.compression, p.method)):
        lines.append(f"{p.method:<10} {p.compression:>10.0f}x {p.psnr_db:>8.2f}")
    return "\n".join(lines)


def to_jsonable(points: list[Fig11Point]) -> list[dict]:
    """Artifact points for the Fig. 11 JSON payload."""
    return _jsonable(points)


register(
    name="fig11",
    description="Fig. 11: compression-ratio sweep, ring algebra vs weight pruning",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={
        "small": {"task": "sr4", "scale": get_scale("small"), "compressions": (2.0,)},
        "paper": {"task": "sr4", "scale": get_scale("paper"), "compressions": (2.0, 4.0, 8.0)},
    },
)
