"""Experiment drivers — one module per table/figure of the paper.

Each module exposes ``run(...)`` returning structured results,
``format_result(...)`` rendering the paper's rows/series as text, and a
``to_jsonable(...)`` adapter for the artifact store; importing this
package registers every experiment with :mod:`.registry`, which backs
the ``python -m repro`` CLI (:mod:`.cli`) and the fingerprinted JSON
artifact cache (:mod:`.artifacts`).
See DESIGN.md section 4 for the experiment index.
"""

from . import (
    ablations,
    artifacts,
    weights,
    fig01,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    figc1,
    registry,
    spawn,
    table1,
    table2,
    table4,
    table5,
    table6,
    table7,
    table8,
)
from .runner import (
    QualityResult,
    make_task,
    run_quality,
    train_restoration,
    train_with_cache,
)
from .settings import MEDIUM, PAPER_TABLE3, SMALL, TINY, QualityScale

__all__ = [
    "ablations",
    "artifacts",
    "weights",
    "fig01",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "figc1",
    "registry",
    "spawn",
    "table1",
    "table2",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "QualityResult",
    "make_task",
    "run_quality",
    "train_restoration",
    "train_with_cache",
    "MEDIUM",
    "PAPER_TABLE3",
    "SMALL",
    "TINY",
    "QualityScale",
]
