"""Shared train-and-evaluate pipeline for the quality experiments.

Every figure that reports PSNR uses this runner so all algebra variants
see the identical data, loss, optimizer and schedule — the paper's
"trained using the same training strategy" requirement (Fig. 1 caption).
"""

from __future__ import annotations

import dataclasses

from ..imaging.datasets import TaskData, make_denoising_task, make_sr_task
from ..imaging.metrics import average_psnr
from ..models.ernet import dn_ernet_pu, sr4_ernet
from ..models.factory import LayerFactory, make_factory
from ..nn.data import ArrayDataset, DataLoader
from ..nn.inference import Predictor
from ..nn.module import Module
from ..nn.trainer import TrainConfig, train_model
from .settings import QualityScale, SMALL

__all__ = [
    "QualityResult",
    "make_task",
    "model_for_task",
    "evaluate_psnr",
    "train_restoration",
    "run_quality",
]


@dataclasses.dataclass(frozen=True)
class QualityResult:
    """Outcome of one train-and-evaluate run.

    ``model`` carries the trained network itself (excluded from
    comparison/repr) so callers can keep serving it — e.g. through a
    :class:`~repro.nn.inference.Predictor` — without retraining.
    """

    label: str
    task: str
    psnr_db: float
    parameters: int
    final_train_loss: float
    model: Module | None = dataclasses.field(default=None, compare=False, repr=False)

    def to_jsonable(self) -> dict:
        """Artifact-ready dict; the trained model itself is not serialized
        (weights belong in checkpoints, not result artifacts)."""
        return {
            "label": self.label,
            "task": self.task,
            "psnr_db": float(self.psnr_db),
            "parameters": int(self.parameters),
            "final_train_loss": float(self.final_train_loss),
        }


def make_task(task: str, scale: QualityScale) -> TaskData:
    """Build the synthetic dataset for ``"denoise"`` or ``"sr4"``."""
    if task == "denoise":
        return make_denoising_task(
            train_count=scale.train_count,
            test_count=scale.test_count,
            size=scale.size,
            seed=scale.seed,
        )
    if task == "sr4":
        return make_sr_task(
            train_count=scale.train_count,
            test_count=scale.test_count,
            size=scale.size,
            factor=4,
            seed=scale.seed,
        )
    raise ValueError(f"unknown task {task!r}")


def model_for_task(
    task: str, factory: LayerFactory | None, scale: QualityScale, seed: int = 0
) -> Module:
    """The ERNet backbone for a task at a given scale."""
    if task == "denoise":
        return dn_ernet_pu(
            blocks=scale.blocks, ratio=scale.ratio, factory=factory, seed=seed
        )
    return sr4_ernet(blocks=scale.blocks, ratio=scale.ratio, factory=factory, seed=seed)


def evaluate_psnr(
    model: Module,
    data: TaskData,
    shave: int = 2,
    batch_size: int = 8,
    backend: str | None = None,
) -> float:
    """Average test-set PSNR of a trained model.

    Evaluation runs through the batched/tiled :class:`Predictor`, so the
    test set is processed in bounded-memory mini-batches (and oversized
    images would be tiled with a receptive-field halo) while producing
    the same pixels as one whole-set forward pass.  ``backend`` selects
    the kernel backend for those forwards (every backend is
    bit-identical, so reported PSNR never depends on it); by default the
    ambient :func:`repro.nn.backend.current_backend` applies.
    """
    pred = Predictor(model, batch_size=batch_size, backend=backend)(data.test_inputs)
    return average_psnr(pred, data.test_targets, shave=shave)


def train_restoration(
    model: Module, data: TaskData, scale: QualityScale, label: str = "model"
) -> QualityResult:
    """Train on the task's train split and report test PSNR."""
    loader = DataLoader(
        ArrayDataset(data.train_inputs, data.train_targets),
        batch_size=scale.batch_size,
        seed=scale.seed,
    )
    config = TrainConfig(epochs=scale.epochs, lr=scale.lr, seed=scale.seed)
    result = train_model(model, loader, config)
    return QualityResult(
        label=label,
        task=data.task,
        psnr_db=evaluate_psnr(model, data),
        parameters=model.num_parameters(),
        final_train_loss=result.final_loss,
        model=model,
    )


def run_quality(
    kind: str,
    task: str = "denoise",
    scale: QualityScale = SMALL,
    data: TaskData | None = None,
    seed: int = 0,
) -> QualityResult:
    """Train one algebra variant (factory key) on one task and score it."""
    data = data if data is not None else make_task(task, scale)
    factory = make_factory(kind) if kind != "real" else None
    model = model_for_task(task, factory, scale, seed=seed)
    return train_restoration(model, data, scale, label=kind)
