"""Shared train-and-evaluate pipeline for the quality experiments.

Every figure that reports PSNR uses this runner so all algebra variants
see the identical data, loss, optimizer and schedule — the paper's
"trained using the same training strategy" requirement (Fig. 1 caption).
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections.abc import Mapping
from typing import Any

from ..imaging.datasets import TaskData, make_denoising_task, make_sr_task
from ..imaging.metrics import average_psnr
from ..models.ernet import dn_ernet_pu, sr4_ernet
from ..models.factory import LayerFactory, make_factory
from ..nn.data import ArrayDataset, DataLoader
from ..nn.inference import Predictor
from ..nn.module import Module
from ..nn.trainer import TrainConfig, TrainResult
from ..train.engine import TrainEngine
from .settings import QualityScale, SMALL
from .weights import WeightCache, training_fingerprint, warm_start_enabled

__all__ = [
    "QualityResult",
    "make_task",
    "model_for_task",
    "build_task_model",
    "model_spec_for",
    "evaluate_psnr",
    "train_with_cache",
    "train_restoration",
    "run_quality",
]


@dataclasses.dataclass(frozen=True)
class QualityResult:
    """Outcome of one train-and-evaluate run.

    ``model`` carries the trained network itself (excluded from
    comparison/repr) so callers can keep serving it — e.g. through a
    :class:`~repro.nn.inference.Predictor` — without retraining.
    """

    label: str
    task: str
    psnr_db: float
    parameters: int
    final_train_loss: float
    model: Module | None = dataclasses.field(default=None, compare=False, repr=False)

    def to_jsonable(self) -> dict:
        """Artifact-ready dict; the trained model itself is not serialized
        (weights belong in checkpoints, not result artifacts)."""
        return {
            "label": self.label,
            "task": self.task,
            "psnr_db": float(self.psnr_db),
            "parameters": int(self.parameters),
            "final_train_loss": float(self.final_train_loss),
        }


def make_task(task: str, scale: QualityScale) -> TaskData:
    """Build the synthetic dataset for ``"denoise"`` or ``"sr4"``."""
    if task == "denoise":
        return make_denoising_task(
            train_count=scale.train_count,
            test_count=scale.test_count,
            size=scale.size,
            seed=scale.seed,
        )
    if task == "sr4":
        return make_sr_task(
            train_count=scale.train_count,
            test_count=scale.test_count,
            size=scale.size,
            factor=4,
            seed=scale.seed,
        )
    raise ValueError(f"unknown task {task!r}")


def model_for_task(
    task: str, factory: LayerFactory | None, scale: QualityScale, seed: int = 0
) -> Module:
    """The ERNet backbone for a task at a given scale."""
    if task == "denoise":
        return dn_ernet_pu(
            blocks=scale.blocks, ratio=scale.ratio, factory=factory, seed=seed
        )
    return sr4_ernet(blocks=scale.blocks, ratio=scale.ratio, factory=factory, seed=seed)


def build_task_model(task: str, kind: str, scale: QualityScale, seed: int = 0) -> Module:
    """Picklable zero-state builder of a task's backbone.

    Equivalent to ``model_for_task(task, make_factory(kind), scale,
    seed)``, but importable by name — which is what lets it cross a
    spawn boundary: the data-parallel trainer's workers receive
    ``functools.partial(build_task_model, ...)`` and rebuild the
    architecture themselves, where a :class:`LayerFactory` instance
    (which may close over unpicklable kernels) could not travel.
    """
    return model_for_task(task, make_factory(kind), scale, seed=seed)


def evaluate_psnr(
    model: Module,
    data: TaskData,
    shave: int = 2,
    batch_size: int = 8,
    backend: str | None = None,
) -> float:
    """Average test-set PSNR of a trained model.

    Evaluation runs through the batched/tiled :class:`Predictor`, so the
    test set is processed in bounded-memory mini-batches (and oversized
    images would be tiled with a receptive-field halo) while producing
    the same pixels as one whole-set forward pass.  ``backend`` selects
    the kernel backend for those forwards (every backend is
    bit-identical, so reported PSNR never depends on it); by default the
    ambient :func:`repro.nn.backend.current_backend` applies.
    """
    pred = Predictor(model, batch_size=batch_size, backend=backend)(data.test_inputs)
    return average_psnr(pred, data.test_targets, shave=shave)


def model_spec_for(model: Module, kind: str, seed: int) -> dict[str, Any]:
    """Cache-key description of one model construction.

    ERNets contribute their full config (and stay rebuildable from a
    checkpoint via ``family``/``kind``); other models fall back to class
    name + parameter count, which together with the init seed and
    factory kind pins the architecture for every model in the repo.
    """
    spec: dict[str, Any] = {"model": type(model).__name__, "kind": kind, "seed": seed}
    config = getattr(model, "config", None)
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        spec.update(dataclasses.asdict(config))
        if type(model).__name__ == "ERNet":
            spec["family"] = "ernet"
    else:
        spec["parameters"] = model.num_parameters()
    return spec


def _data_digest(data: TaskData) -> str:
    """Content hash of the training split (exact, recipe-independent)."""
    sha = hashlib.sha256()
    for arr in (data.train_inputs, data.train_targets):
        sha.update(str(arr.shape).encode())
        sha.update(arr.tobytes())
    return sha.hexdigest()[:16]


def train_with_cache(
    model: Module,
    data: TaskData,
    scale: QualityScale,
    label: str = "model",
    spec: Mapping[str, Any] | None = None,
) -> TrainResult:
    """Train with the shared recipe, warm-starting from cached weights.

    Cold path (warm starts disabled, or no ``spec``): bit-identical to
    the original ``train_model`` flow — fresh seeded loader, the shared
    :class:`TrainConfig`, the engine's loop.  With ``REPRO_WARM_START``
    set and a cache hit on the (model spec, training data, TrainConfig)
    fingerprint, the stored weights and loss history are restored
    instead — producing the exact arrays and ``TrainResult`` the cold
    path would, without the training time.
    """
    config = TrainConfig(epochs=scale.epochs, lr=scale.lr, seed=scale.seed)
    digest = None
    if spec is not None and warm_start_enabled():
        cache = WeightCache()
        full_spec = dict(spec)
        full_spec["data"] = _data_digest(data)
        full_spec["loader"] = {"batch_size": scale.batch_size, "seed": scale.seed}
        digest = training_fingerprint(full_spec, config)
        hit = cache.load(label, digest)
        if hit is not None:
            model.load_state_dict(hit.model_state)
            model.eval()
            return WeightCache.result_of(hit)
    loader = DataLoader(
        ArrayDataset(data.train_inputs, data.train_targets),
        batch_size=scale.batch_size,
        seed=scale.seed,
    )
    result = TrainEngine(model, config).fit(loader)
    if digest is not None:
        rebuildable = spec if spec and spec.get("family") == "ernet" else None
        cache.store(label, digest, model, result, model_spec=rebuildable)
    return result


def train_restoration(
    model: Module,
    data: TaskData,
    scale: QualityScale,
    label: str = "model",
    cache_spec: Mapping[str, Any] | None = None,
) -> QualityResult:
    """Train on the task's train split and report test PSNR."""
    result = train_with_cache(model, data, scale, label=label, spec=cache_spec)
    return QualityResult(
        label=label,
        task=data.task,
        psnr_db=evaluate_psnr(model, data),
        parameters=model.num_parameters(),
        final_train_loss=result.final_loss,
        model=model,
    )


def run_quality(
    kind: str,
    task: str = "denoise",
    scale: QualityScale = SMALL,
    data: TaskData | None = None,
    seed: int = 0,
) -> QualityResult:
    """Train one algebra variant (factory key) on one task and score it."""
    data = data if data is not None else make_task(task, scale)
    factory = make_factory(kind) if kind != "real" else None
    model = model_for_task(task, factory, scale, seed=seed)
    return train_restoration(
        model, data, scale, label=kind, cache_spec=model_spec_for(model, kind, seed)
    )
