"""Spawn-worker plumbing shared by the CLI and the serving cluster.

Every multi-process feature in the repo — ``python -m repro run
--jobs N`` (PR 2) and the process-sharded inference cluster
(:mod:`repro.serving.cluster`) — uses the same three ingredients, and
they live here so no caller re-implements them:

* **Spawn, never fork.**  :func:`spawn_context` returns the
  ``multiprocessing`` spawn context, so workers start from identical
  fresh-interpreter state on every platform (fork would clone thread
  locks, open BLAS pools and the parent's RNG mid-state).
* **Environment inheritance.**  Spawned children inherit
  ``os.environ``, which is how process-wide knobs (``REPRO_BACKEND``,
  ``REPRO_WARM_START``, ``REPRO_WEIGHTS_DIR``) reach workers without
  threading them through every call signature.  :func:`export_env` is
  the one sanctioned way to set them.
* **Deterministic per-worker seeds.**  :func:`worker_seed` derives a
  seed from stable string parts only (crc32, no process state), so a
  worker's randomness is a pure function of *what* it is running, never
  of *when* or *where* — the property behind the serial-vs-parallel
  bit-identity guarantees.

:func:`ensure_registered` rounds this out for experiment workers, which
start from an interpreter where only the pickled entry module has been
imported and must re-import the experiment package to repopulate the
registry.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.context
import os
import zlib

__all__ = ["spawn_context", "ensure_registered", "export_env", "worker_seed"]


def spawn_context() -> multiprocessing.context.SpawnContext:
    """The multiprocessing spawn context every repro worker pool uses.

    Spawn (not fork) so workers start from identical interpreter state
    on every platform; deterministic behavior then comes from explicit
    seeding (:func:`worker_seed`, :meth:`Experiment.seed_for`), not from
    accidentally inherited parent state.
    """
    return multiprocessing.get_context("spawn")


def ensure_registered() -> None:
    """Import the experiment package so every module self-registers.

    Needed explicitly in spawn workers, which start from a fresh
    interpreter where only the worker entry module has been imported;
    calling it again in the parent is a no-op (module cache).
    """
    import repro.experiments  # noqa: F401


def export_env(name: str, value: str) -> None:
    """Export a process-wide knob so spawn workers inherit it.

    Environment (not a context manager or argument plumbing) because
    spawned children copy ``os.environ`` at start; precedence stays
    with any context manager active inside the worker code itself
    (cf. ``use_backend`` vs ``REPRO_BACKEND``).
    """
    os.environ[name] = value


def worker_seed(*parts: object) -> int:
    """Deterministic seed for one worker/run, from stable parts only.

    Derived with crc32 over the ``:``-joined string forms, so serial
    and parallel executions (and re-runs in fresh processes) that name
    the same parts get the same seed — the exact formula
    :meth:`repro.experiments.registry.Experiment.seed_for` has used
    since PR 2, hoisted here so cluster workers share it.
    """
    return zlib.crc32(":".join(str(part) for part in parts).encode()) & 0x7FFFFFFF
