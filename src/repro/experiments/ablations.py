"""Ablation studies for the design choices DESIGN.md calls out.

1. **On-the-fly vs MAC-based directional ReLU** (paper Section V): the
   conventional pipeline quantizes before each Hadamard transform and
   loses up to 0.2 dB; the on-the-fly pipeline keeps full precision.
2. **Component-wise vs single Q-format** (paper Section IV-C): after the
   directional ReLU the tuple components have different dynamic ranges;
   a single shared Q-format causes saturation errors.
3. **Directional ReLU normalization**: the 1/n factor realized as a
   Q-format shift in hardware; training-side scale sensitivity.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..imaging.datasets import TaskData
from ..models.factory import make_factory
from ..nn.layers import DirectionalReLU2d
from ..nn.tensor import Tensor
from ..quant.qformat import choose_qformat, componentwise_qformats
from ..quant.quantize import QuantizingFactory, calibrate, quantize_weights
from ..rings.nonlinearity import hadamard_relu
from .runner import evaluate_psnr, make_task, model_for_task, train_restoration
from .settings import SMALL, QualityScale, get_scale
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = [
    "DreluPipelineResult",
    "drelu_pipeline_ablation",
    "QformatResult",
    "qformat_ablation",
    "format_drelu",
    "format_qformat",
    "AblationResult",
    "run",
    "format_result",
    "to_jsonable",
]


@dataclasses.dataclass(frozen=True)
class DreluPipelineResult:
    """PSNR of the two fixed-point directional-ReLU realizations."""

    task: str
    psnr_float_db: float
    psnr_onthefly_db: float
    psnr_naive_db: float

    @property
    def naive_penalty_db(self) -> float:
        """What the MAC-based pipeline loses vs on-the-fly (paper: <= 0.2 dB)."""
        return self.psnr_onthefly_db - self.psnr_naive_db


def drelu_pipeline_ablation(
    task: str = "denoise",
    scale: QualityScale = SMALL,
    n: int = 4,
    word_bits: int = 8,
    data: TaskData | None = None,
    seed: int = 0,
) -> DreluPipelineResult:
    """Train once; evaluate under both fixed-point pipelines."""
    data = data if data is not None else make_task(task, scale)
    results = {}
    state = None
    psnr_float = 0.0
    for mode in ("onthefly", "naive"):
        factory = QuantizingFactory(
            make_factory(f"ri{n}+fh"), word_bits=word_bits, directional_mode=mode
        )
        model = model_for_task(task, factory, scale, seed=seed)
        if state is None:
            train_restoration(model, data, scale, label=f"drelu-{mode}")
            state = model.state_dict()
            psnr_float = evaluate_psnr(model, data)
        else:
            model.load_state_dict(state)
            model.eval()
        quantize_weights(model, word_bits)
        calibrate(model, data.train_inputs[: max(4, len(data.train_inputs) // 4)])
        results[mode] = evaluate_psnr(model, data)
    return DreluPipelineResult(
        task=task,
        psnr_float_db=psnr_float,
        psnr_onthefly_db=results["onthefly"],
        psnr_naive_db=results["naive"],
    )


@dataclasses.dataclass(frozen=True)
class QformatResult:
    """Quantization error of the directional-ReLU output under two formats."""

    n: int
    rms_componentwise: float
    rms_single: float

    @property
    def improvement(self) -> float:
        return self.rms_single / max(self.rms_componentwise, 1e-15)


def qformat_ablation(n: int = 4, word_bits: int = 8, seed: int = 0) -> QformatResult:
    """Component-wise vs single Q-format on directional-ReLU outputs.

    Builds features whose tuple components have realistic, *different*
    dynamic ranges after f_H (the paper's motivation for per-component
    formats).
    """
    rng = np.random.default_rng(seed)
    relu = DirectionalReLU2d(hadamard_relu(n))
    # Post-ReLU features: component 0 (the H-domain DC) carries most of
    # the energy — emulate with scaled tuple components.
    scales = 2.0 ** np.arange(n, 0, -1)  # e.g. 16, 8, 4, 2
    x = rng.standard_normal((4, 2 * n, 8, 8))
    for comp in range(n):
        x[:, comp::n] *= scales[comp]
    y = relu(Tensor(x)).data

    cw_formats = componentwise_qformats(y, n=n, axis=1, word_bits=word_bits)
    err_cw = np.zeros_like(y)
    for comp in range(n):
        sl = y[:, comp::n]
        err_cw[:, comp::n] = cw_formats[comp].quantize(sl) - sl
    single = choose_qformat(y, word_bits)
    err_single = single.quantize(y) - y
    return QformatResult(
        n=n,
        rms_componentwise=float(np.sqrt(np.mean(err_cw**2))),
        rms_single=float(np.sqrt(np.mean(err_single**2))),
    )


def format_drelu(result: DreluPipelineResult) -> str:
    """Render the dRELU threshold ablation as the paper-style text table."""
    return "\n".join(
        [
            f"directional-ReLU fixed-point pipelines ({result.task}):",
            f"  float:       {result.psnr_float_db:6.2f} dB",
            f"  on-the-fly:  {result.psnr_onthefly_db:6.2f} dB",
            f"  MAC-based:   {result.psnr_naive_db:6.2f} dB",
            f"  naive penalty: {result.naive_penalty_db:+.3f} dB (paper: up to 0.2 dB)",
        ]
    )


def format_qformat(result: QformatResult) -> str:
    """Render the quantization-format ablation as the paper-style text table."""
    return "\n".join(
        [
            f"Q-format ablation for the directional ReLU (n={result.n}):",
            f"  component-wise RMS error: {result.rms_componentwise:.5f}",
            f"  single-format RMS error:  {result.rms_single:.5f}",
            f"  improvement: {result.improvement:.2f}x (paper: single format "
            "causes large saturation errors)",
        ]
    )


@dataclasses.dataclass(frozen=True)
class AblationResult:
    """Both appendix ablations bundled into one artifact."""

    drelu: DreluPipelineResult
    qformat: QformatResult


def run(
    task: str = "denoise",
    scale: QualityScale = SMALL,
    n: int = 4,
    word_bits: int = 8,
    seed: int = 0,
) -> AblationResult:
    """Run the directional-ReLU pipeline and Q-format ablations together."""
    return AblationResult(
        drelu=drelu_pipeline_ablation(
            task=task, scale=scale, n=n, word_bits=word_bits, seed=seed
        ),
        qformat=qformat_ablation(n=n, word_bits=word_bits, seed=seed),
    )


def format_result(result: AblationResult) -> str:
    """Render the cached result as the paper-style text report."""
    return format_drelu(result.drelu) + "\n\n" + format_qformat(result.qformat)


def to_jsonable(result: AblationResult) -> dict:
    """Artifact payload for both ablations."""
    return _jsonable(result)


register(
    name="ablations",
    description="Appendix ablations: directional-ReLU pipelines and Q-format choice",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={
        "small": {"task": "denoise", "scale": get_scale("small")},
        "paper": {"task": "denoise", "scale": get_scale("paper")},
    },
)
