"""Fingerprinted trained-weight cache (the artifact cache's sibling).

The JSON artifact cache (:mod:`repro.experiments.artifacts`) memoizes
*results*; this module memoizes the expensive part that produces them —
trained weights.  A cache entry is keyed by a fingerprint of everything
that determines the training outcome: the model spec (architecture +
factory kind + init seed), the resolved :class:`TrainConfig`, the data
recipe (task + scale + seed) and a schema version.  Since training is
deterministic, two experiments that would train the identical model
(e.g. the real-valued baseline that several figures share) can
*warm-start* from one cached run and produce byte-identical result
artifacts — the cached bundle carries the full loss history alongside
the weights, so even ``final_train_loss`` matches a cold run exactly.

Warm-starting is opt-in and out-of-band (the ``REPRO_WARM_START``
environment variable, set by ``python -m repro run --warm-start``), so
it never enters artifact fingerprints: a warm-started run writes the
same artifact bytes a cold run would.

Entries are :class:`repro.train.Checkpoint` files (weights-only) under
``results/weights/``, written atomically like every other artifact.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import re
from collections.abc import Mapping
from typing import Any

from ..nn.module import Module
from ..nn.trainer import TrainConfig, TrainResult
from ..train.checkpoint import Checkpoint, CheckpointError
from .artifacts import DEFAULT_RESULTS_DIR, canonical_json

__all__ = [
    "WEIGHTS_SCHEMA",
    "DEFAULT_WEIGHTS_DIR",
    "WARM_START_ENV",
    "warm_start_enabled",
    "weights_root",
    "training_fingerprint",
    "WeightCache",
]

#: Bump when the cached-bundle layout or training semantics change.
WEIGHTS_SCHEMA = 1

DEFAULT_WEIGHTS_DIR = DEFAULT_RESULTS_DIR / "weights"

#: Environment flag enabling warm starts (read/write-through the cache).
WARM_START_ENV = "REPRO_WARM_START"

#: Environment override for the cache directory.  The CLI exports it as
#: ``<results-dir>/weights`` so ``--results-dir`` isolates weight caches
#: the same way it isolates artifacts (and spawn workers inherit it).
WEIGHTS_DIR_ENV = "REPRO_WEIGHTS_DIR"


def warm_start_enabled() -> bool:
    """Whether experiment training may consult the weight cache."""
    return os.environ.get(WARM_START_ENV, "").strip().lower() in ("1", "true", "yes", "on")


def weights_root() -> pathlib.Path:
    """The active cache directory (env override, else the default)."""
    override = os.environ.get(WEIGHTS_DIR_ENV, "").strip()
    return pathlib.Path(override) if override else pathlib.Path(DEFAULT_WEIGHTS_DIR)


def training_fingerprint(spec: Mapping[str, Any], config: TrainConfig) -> str:
    """Digest of one deterministic training run.

    ``spec`` describes the model and data (architecture knobs, factory
    kind, init seed, task, scale recipe); the training configuration and
    schema version are folded in here so callers can't forget them.
    """
    payload = canonical_json(
        {"spec": spec, "train_config": config.to_jsonable(), "schema": WEIGHTS_SCHEMA}
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _slug(label: str) -> str:
    """Filesystem-safe rendering of an experiment label."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label) or "model"


class WeightCache:
    """Filesystem store of trained-weight bundles keyed by fingerprint.

    Files live flat under ``root`` as ``<label>--<fingerprint>.npz`` —
    browsable like the JSON artifacts, O(1) by key.  The label is
    cosmetic; only the fingerprint identifies an entry.
    """

    def __init__(self, root: str | pathlib.Path | None = None) -> None:
        # Resolved at call time (not def time) so the env override and
        # tests repointing DEFAULT_WEIGHTS_DIR both take effect.
        self.root = pathlib.Path(root) if root is not None else weights_root()

    def path_for(self, label: str, digest: str) -> pathlib.Path:
        return self.root / f"{_slug(label)}--{digest}.npz"

    # ------------------------------------------------------------------
    def load(self, label: str, digest: str) -> Checkpoint | None:
        """The cached bundle for a fingerprint, or None on a miss.

        Lookup is by fingerprint: the exact label's file is preferred,
        but any entry with the digest hits — so experiments that train
        the identical model under different labels share one bundle.
        Corrupt or truncated files degrade to a miss (retrain and
        overwrite), mirroring the artifact store's behavior.
        """
        preferred = self.path_for(label, digest)
        candidates = [preferred] if preferred.exists() else []
        candidates += [p for p in self.root.glob(f"*--{digest}.npz") if p != preferred]
        for path in candidates:
            try:
                return Checkpoint.load(path)
            except CheckpointError:
                continue
        return None

    def store(
        self,
        label: str,
        digest: str,
        model: Module,
        result: TrainResult,
        model_spec: Mapping[str, Any] | None = None,
    ) -> pathlib.Path:
        """Save trained weights plus their loss history under a key."""
        checkpoint = Checkpoint.capture(
            model=model,
            epoch=result.epochs,
            history={
                "train_losses": [float(x) for x in result.train_losses],
                "val_losses": [float(x) for x in result.val_losses],
                "lr_trace": [float(x) for x in result.lr_trace],
                "grad_norms": [float(x) for x in result.grad_norms],
            },
            model_spec=model_spec,
        )
        return checkpoint.save(self.path_for(label, digest))

    # ------------------------------------------------------------------
    @staticmethod
    def result_of(checkpoint: Checkpoint) -> TrainResult:
        """Rebuild the :class:`TrainResult` a cold training run returned."""
        history = checkpoint.history
        losses = list(history.get("train_losses", []))
        return TrainResult(
            train_losses=losses,
            final_loss=losses[-1] if losses else float("nan"),
            lr_trace=list(history.get("lr_trace", [])),
            grad_norms=list(history.get("grad_norms", [])),
            val_losses=list(history.get("val_losses", [])),
        )
