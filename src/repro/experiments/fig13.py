"""Experiment: Fig. 13 — quantization degradation and eCNN vs eRingCNN.

Top panel: PSNR drop of 8-bit quantized models from their float versions
(paper: ~0.11-0.12 dB for ring tensors, similar to real).  Bottom panel:
PSNR difference of quantized eRingCNN models from quantized eCNN models
(paper: +0.01 dB average for n2, -0.11 dB for n4).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .fig12 import quantized_psnr
from .runner import make_task
from .settings import SMALL, QualityScale, get_scale
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = [
    "Fig13Target",
    "Fig13Row",
    "run",
    "format_result",
    "ring_vs_real_delta",
    "DEFAULT_TARGETS",
    "to_jsonable",
]


@dataclasses.dataclass(frozen=True)
class Fig13Target:
    """One application target (task at a throughput tier)."""

    name: str
    task: str
    blocks: int


DEFAULT_TARGETS = [
    Fig13Target("Dn-HD30", "denoise", 2),
    Fig13Target("Dn-UHD30", "denoise", 1),
    Fig13Target("SR-HD30", "sr4", 2),
    Fig13Target("SR-UHD30", "sr4", 1),
]


@dataclasses.dataclass(frozen=True)
class Fig13Row:
    """Per-target quantization results for one algebra."""

    target: str
    kind: str
    psnr_float_db: float
    psnr_fixed_db: float

    @property
    def degradation_db(self) -> float:
        return self.psnr_float_db - self.psnr_fixed_db


def run(
    scale: QualityScale = SMALL,
    kinds: tuple[str, ...] = ("real", "ri2+fh", "ri4+fh"),
    targets: list[Fig13Target] | None = None,
) -> list[Fig13Row]:
    """Run the experiment and return its artifact payload."""
    targets = targets if targets is not None else DEFAULT_TARGETS
    rows = []
    for target in targets:
        target_scale = dataclasses.replace(scale, blocks=target.blocks)
        data = make_task(target.task, target_scale)
        for kind in kinds:
            fixed, flt = quantized_psnr(kind, target.task, target_scale, data)
            rows.append(
                Fig13Row(
                    target=target.name, kind=kind, psnr_float_db=flt, psnr_fixed_db=fixed
                )
            )
    return rows


def ring_vs_real_delta(rows: list[Fig13Row], ring_kind: str) -> float:
    """Average quantized-PSNR delta of a ring variant vs real (bottom panel)."""
    deltas = []
    by_target: dict[str, dict[str, Fig13Row]] = {}
    for row in rows:
        by_target.setdefault(row.target, {})[row.kind] = row
    for target_rows in by_target.values():
        if "real" in target_rows and ring_kind in target_rows:
            deltas.append(
                target_rows[ring_kind].psnr_fixed_db - target_rows["real"].psnr_fixed_db
            )
    return float(np.mean(deltas)) if deltas else float("nan")


def format_result(rows: list[Fig13Row]) -> str:
    """Render the cached result as the paper-style text report."""
    lines = [f"{'target':<10} {'ring':<8} {'float dB':>9} {'8-bit dB':>9} {'drop dB':>8}"]
    for row in rows:
        lines.append(
            f"{row.target:<10} {row.kind:<8} {row.psnr_float_db:>9.2f} "
            f"{row.psnr_fixed_db:>9.2f} {row.degradation_db:>8.3f}"
        )
    for kind in ("ri2+fh", "ri4+fh"):
        if any(r.kind == kind for r in rows):
            lines.append(
                f"avg quantized delta {kind} vs real: {ring_vs_real_delta(rows, kind):+.3f} dB"
            )
    return "\n".join(lines)


def to_jsonable(rows: list[Fig13Row]) -> list[dict]:
    """Artifact rows including the derived per-row degradation."""
    return [dict(_jsonable(row), degradation_db=row.degradation_db) for row in rows]


register(
    name="fig13",
    description="Fig. 13: 8-bit quantization degradation per application target",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={
        "small": {
            "scale": get_scale("small"),
            "kinds": ("real", "ri2+fh"),
            "targets": [Fig13Target("Dn-UHD30", "denoise", 1)],
        },
        "paper": {"scale": get_scale("paper")},
    },
)
