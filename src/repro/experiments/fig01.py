"""Experiment: Fig. 1 — computation efficiency versus image quality.

Applies the paper's complexity-reducing methods to SRResNet on the x4 SR
task, all trained with the same strategy:

* unstructured magnitude weight pruning at 2x / 4x / 8x,
* depth-wise convolution (low-rank sparsity),
* depth reduction and channel reduction (compact modeling),
* RingCNN over (R_I, f_H) at n = 2 / 4 / 8.

Computation efficiency is real multiplications of the baseline divided
by real multiplications of the method (per low-res pixel).
"""

from __future__ import annotations

import dataclasses

from ..imaging.datasets import TaskData, make_sr_task
from ..models.baselines import SRResNet
from ..models.factory import make_factory
from ..nn.data import ArrayDataset, DataLoader
from ..nn.layers import Conv2d, RingConv2d
from ..nn.module import Module
from ..nn.trainer import TrainConfig
from ..pruning.magnitude import finetune_pruned, prune_model
from .runner import evaluate_psnr, model_spec_for, train_with_cache
from .settings import SMALL, QualityScale, get_scale
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = ["Fig1Point", "run", "format_result", "count_macs", "to_jsonable"]


@dataclasses.dataclass(frozen=True)
class Fig1Point:
    """One (method, efficiency, PSNR) point of Fig. 1."""

    method: str
    computation_efficiency: float
    psnr_db: float
    parameters: int


def count_macs(model: Module, sparsity_discount: float = 1.0) -> float:
    """Real multiplications per pixel across all conv layers."""
    total = 0.0
    for module in model.modules():
        if isinstance(module, RingConv2d):
            total += module.macs_per_pixel()
        elif isinstance(module, Conv2d):
            total += module.macs_per_pixel()
    return total / sparsity_discount


def _train(model: Module, data: TaskData, scale: QualityScale, kind: str) -> float:
    """Train one Fig. 1 method point through the shared cached recipe."""
    train_with_cache(
        model, data, scale, label=f"fig01-{kind}", spec=model_spec_for(model, kind, 0)
    )
    return evaluate_psnr(model, data)


def run(
    scale: QualityScale = SMALL,
    blocks: int = 2,
    width: int = 16,
    compressions: tuple[float, ...] = (2.0, 4.0, 8.0),
    data: TaskData | None = None,
) -> list[Fig1Point]:
    """All Fig. 1 method points."""
    data = data if data is not None else make_sr_task(
        train_count=scale.train_count,
        test_count=scale.test_count,
        size=scale.size,
        seed=scale.seed,
    )
    points: list[Fig1Point] = []

    # --- real-valued baseline (1x) ----------------------------------------
    baseline = SRResNet(blocks=blocks, width=width, seed=0)
    base_macs = count_macs(baseline)
    psnr = _train(baseline, data, scale, "real")
    base_state = baseline.state_dict()
    points.append(Fig1Point("SRResNet (1x)", 1.0, psnr, baseline.num_parameters()))

    # --- unstructured weight pruning ---------------------------------------
    for ratio in compressions:
        model = SRResNet(blocks=blocks, width=width, seed=0)
        model.load_state_dict(base_state)  # prune the pre-trained model
        masks = prune_model(model, ratio)
        loader = DataLoader(
            ArrayDataset(data.train_inputs, data.train_targets),
            batch_size=scale.batch_size,
            seed=scale.seed,
        )
        finetune_pruned(
            model, masks, loader, TrainConfig(epochs=max(2, scale.epochs // 2), lr=scale.lr / 3)
        )
        points.append(
            Fig1Point(
                f"weight pruning ({ratio:.0f}x)",
                ratio,
                evaluate_psnr(model, data),
                model.num_parameters(),
            )
        )

    # --- depth-wise convolution ---------------------------------------------
    dwc = SRResNet(blocks=blocks, width=width, factory=make_factory("dwc"), seed=0)
    psnr = _train(dwc, data, scale, "dwc")
    points.append(
        Fig1Point("depth-wise conv", base_macs / count_macs(dwc), psnr, dwc.num_parameters())
    )

    # --- compact modeling: depth and channel reduction -----------------------
    shallow = SRResNet(blocks=max(1, blocks // 2), width=width, seed=0)
    psnr = _train(shallow, data, scale, "real")
    points.append(
        Fig1Point(
            "depth reduction", base_macs / count_macs(shallow), psnr, shallow.num_parameters()
        )
    )
    narrow = SRResNet(blocks=blocks, width=width // 2, seed=0)
    psnr = _train(narrow, data, scale, "real")
    points.append(
        Fig1Point(
            "channel reduction", base_macs / count_macs(narrow), psnr, narrow.num_parameters()
        )
    )

    # --- RingCNN over (R_I, f_H) ---------------------------------------------
    for n in (2, 4, 8):
        if width % n:
            continue
        model = SRResNet(blocks=blocks, width=width, factory=make_factory(f"ri{n}+fh"), seed=0)
        psnr = _train(model, data, scale, f"ri{n}+fh")
        points.append(
            Fig1Point(
                f"RingCNN n={n}", base_macs / count_macs(model), psnr, model.num_parameters()
            )
        )
    return points


def format_result(points: list[Fig1Point] | None = None, **kwargs) -> str:
    """Render the cached result as the paper-style text report."""
    points = points if points is not None else run(**kwargs)
    lines = [f"{'method':<24} {'comp-eff':>9} {'PSNR dB':>8} {'params':>8}"]
    for p in points:
        lines.append(
            f"{p.method:<24} {p.computation_efficiency:>8.2f}x {p.psnr_db:>8.2f} {p.parameters:>8}"
        )
    return "\n".join(lines)


def to_jsonable(points: list[Fig1Point]) -> list[dict]:
    """Artifact points for the Fig. 1 JSON payload."""
    return _jsonable(points)


register(
    name="fig01",
    description="Fig. 1: computation efficiency versus image quality trade-off",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={
        "small": {"scale": get_scale("small"), "blocks": 1, "width": 8, "compressions": (2.0,)},
        "paper": {"scale": get_scale("paper"), "blocks": 2, "width": 16, "compressions": (2.0, 4.0, 8.0)},
    },
)
