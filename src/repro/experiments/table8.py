"""Experiment: Table VIII — comparison across sparsity approaches."""

from __future__ import annotations

from ..hardware.compare import ComparisonRow, table8_comparison
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = ["run", "format_result", "PAPER_BAND", "to_jsonable"]

# Paper: eRingCNN provides "equivalent 19.1-28.4 TOPS/W" at synthesis level.
PAPER_BAND = (19.1, 28.4)


def run() -> list[ComparisonRow]:
    """Run the experiment and return its artifact payload."""
    return table8_comparison()


def format_result(rows: list[ComparisonRow] | None = None) -> str:
    """Render the cached result as the paper-style text report."""
    rows = rows if rows is not None else run()
    lines = [f"{'design':<20} {'sparsity':<28} {'compress':>8} {'eq.TOPS/W':>10}"]
    for row in rows:
        lines.append(
            f"{row.name:<20} {row.sparsity_kind:<28} {row.compression:>7.1f}x "
            f"{row.equivalent_tops_per_watt:>10.1f}"
        )
    lines.append(f"(paper band for eRingCNN: {PAPER_BAND[0]}-{PAPER_BAND[1]} eq.TOPS/W)")
    return "\n".join(lines)


def to_jsonable(rows: list[ComparisonRow]) -> list[dict]:
    """Artifact rows for the Table VIII JSON payload."""
    return _jsonable(rows)


register(
    name="table8",
    description="Table VIII: sparsity-style comparison of accelerator designs",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={"small": {}, "paper": {}},
)
