"""Experiment: Table II — isomorphic G and fast algorithms per ring.

For every catalog ring we report the structured form of G (sign and
permutation pattern), the transform matrices of the fast algorithm, and
an exactness check of the bilinear identity.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..rings.catalog import RingSpec, table1_rings
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = ["Table2Row", "run", "format_result", "to_jsonable"]


@dataclasses.dataclass(frozen=True)
class Table2Row:
    """One ring's Table II entry."""

    symbol: str
    n: int
    num_products: int
    sign: np.ndarray | None
    perm: np.ndarray | None
    tg: np.ndarray
    tx: np.ndarray
    tz: np.ndarray
    exact: bool
    residual: float


def _row(spec: RingSpec) -> Table2Row:
    sp = spec.ring.sign_perm()
    return Table2Row(
        symbol=spec.paper_symbol,
        n=spec.n,
        num_products=spec.fast.num_products,
        sign=sp[0] if sp else None,
        perm=sp[1] if sp else None,
        tg=spec.fast.tg,
        tx=spec.fast.tx,
        tz=spec.fast.tz,
        exact=spec.fast.verify(spec.ring, atol=1e-6),
        residual=spec.fast.residual(spec.ring),
    )


def run() -> list[Table2Row]:
    """Table II rows for every ring the paper tabulates."""
    return [_row(spec) for n in (2, 4) for spec in table1_rings(n)]


def format_result(rows: list[Table2Row] | None = None) -> str:
    """Render the cached result as the paper-style text report."""
    rows = rows if rows is not None else run()
    lines = []
    for row in rows:
        lines.append(f"== {row.symbol} (n={row.n}, m={row.num_products}, exact={row.exact})")
        if row.perm is not None:
            lines.append(f"   P = {row.perm.astype(int).tolist()}")
            lines.append(f"   S = {row.sign.astype(int).tolist()}")
        lines.append(f"   residual(M - Tz(Tg x Tx)) = {row.residual:.2e}")
    return "\n".join(lines)


def to_jsonable(rows: list[Table2Row]) -> list[dict]:
    """Artifact rows; the CP factors serialize as nested lists."""
    return _jsonable(rows)


register(
    name="table2",
    description="Table II: CP-synthesized fast algorithms for every tabulated ring",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={"small": {}, "paper": {}},
)
