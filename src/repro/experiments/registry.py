"""Declarative registry of the paper's experiments.

Every table/figure module self-registers here at import time with a
name, a one-line description, per-scale keyword presets, a ``run``
callable and adapters that turn its native result into JSON and into
the formatted text the paper shows.  The registry is what the CLI
(``python -m repro``), the artifact cache and CI enumerate — adding an
experiment module with a ``register(...)`` call is all it takes to make
it runnable, cacheable and reportable.

Scales are *presets of run kwargs*, not global knobs: ``"small"`` is a
seconds-scale smoke configuration, ``"paper"`` the full CPU-scale
reproduction recipe.  Presets must stay JSON-serializable (via
:func:`repro.experiments.artifacts.to_jsonable`) because they are
hashed into the artifact fingerprint.
"""

from __future__ import annotations

import dataclasses
import re
from collections.abc import Callable, Mapping
from typing import Any

import numpy as np

from .spawn import worker_seed

__all__ = [
    "Experiment",
    "SCALE_NAMES",
    "register",
    "get",
    "names",
    "all_experiments",
    "unregister",
]

#: The scale presets every experiment must provide.
SCALE_NAMES = ("small", "paper")


@dataclasses.dataclass(frozen=True)
class Experiment:
    """One registered table/figure experiment.

    Attributes:
        name: Registry key, e.g. ``"table1"`` or ``"fig09"``.
        description: One line for ``python -m repro list``.
        run: The experiment entry point; called as ``run(**scales[scale])``.
        format_result: Renders a run's native result as the paper's text.
        to_jsonable: Converts the native result to JSON-serializable data.
        scales: Mapping of scale name to the kwargs ``run`` receives.
    """

    name: str
    description: str
    run: Callable[..., Any]
    format_result: Callable[[Any], str]
    to_jsonable: Callable[[Any], Any]
    scales: Mapping[str, Mapping[str, Any]]

    def kwargs_for(self, scale: str) -> Mapping[str, Any]:
        """The run kwargs behind a scale preset."""
        try:
            return self.scales[scale]
        except KeyError:
            known = ", ".join(sorted(self.scales))
            raise KeyError(
                f"experiment {self.name!r} has no scale {scale!r} (known: {known})"
            ) from None

    def seed_for(self, scale: str) -> int:
        """Deterministic global-RNG seed for one (experiment, scale) run.

        Derived from stable string hashes only (via
        :func:`repro.experiments.spawn.worker_seed`), so serial and
        parallel executions (and re-runs in fresh processes) start from
        the same NumPy global state and produce bit-identical results.
        """
        return worker_seed(self.name, scale)

    def execute(self, scale: str) -> Any:
        """Run at a scale preset with deterministic global seeding."""
        kwargs = self.kwargs_for(scale)
        # Sanctioned global seeding: this is the *process boundary* of an
        # experiment run (serial, or freshly spawned worker), and legacy
        # experiment code below may draw from the global RNG.  Seeding it
        # here is what makes serial and parallel runs bit-identical.
        np.random.seed(self.seed_for(scale))  # reprolint: disable=determinism
        return self.run(**kwargs)


_REGISTRY: dict[str, Experiment] = {}


def register(
    name: str,
    description: str,
    run: Callable[..., Any],
    format_result: Callable[[Any], str],
    scales: Mapping[str, Mapping[str, Any]],
    to_jsonable: Callable[[Any], Any] | None = None,
) -> Experiment:
    """Add an experiment to the registry (idempotent per name).

    ``to_jsonable`` defaults to the generic artifact encoder
    (:func:`repro.experiments.artifacts.to_jsonable`); pass an adapter
    only when the result needs custom serialization (cf. ``fig13``).

    Re-registering the same name replaces the entry — this keeps module
    reloads (pytest importmode quirks, ``importlib.reload``) harmless.
    """
    if to_jsonable is None:
        from .artifacts import to_jsonable as generic_to_jsonable

        to_jsonable = generic_to_jsonable
    missing = [s for s in SCALE_NAMES if s not in scales]
    if missing:
        raise ValueError(f"experiment {name!r} is missing scale presets: {missing}")
    experiment = Experiment(
        name=name,
        description=description,
        run=run,
        format_result=format_result,
        to_jsonable=to_jsonable,
        scales={k: dict(v) for k, v in scales.items()},
    )
    _REGISTRY[name] = experiment
    return experiment


def unregister(name: str) -> None:
    """Remove an entry (used by tests to keep the registry pristine)."""
    _REGISTRY.pop(name, None)


def get(name: str) -> Experiment:
    """Look up one experiment; KeyError lists valid names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from: {', '.join(names())}"
        ) from None


def _order_key(name: str) -> tuple:
    """Tables first, then figures, then the rest — each numerically."""
    match = re.fullmatch(r"(table|fig|figc)(\d+)", name)
    if match:
        group = {"table": 0, "fig": 1, "figc": 2}[match.group(1)]
        return (group, int(match.group(2)), name)
    return (3, 0, name)


def names() -> list[str]:
    """All registered names in paper order (tables, figures, extras)."""
    return sorted(_REGISTRY, key=_order_key)


def all_experiments() -> list[Experiment]:
    """All registered experiments in paper order."""
    return [_REGISTRY[name] for name in names()]
