"""Experiment: Table I — properties of ring algebras."""

from __future__ import annotations

from ..rings.properties import RingProperties, format_table1, table1
from .artifacts import to_jsonable as _jsonable
from .registry import register

__all__ = ["run", "format_result", "to_jsonable"]


def run(feature_bits: int = 8, weight_bits: int = 8) -> list[RingProperties]:
    """All Table I rows (n = 2 and n = 4)."""
    return table1(feature_bits=feature_bits, weight_bits=weight_bits)


def format_result(rows: list[RingProperties] | None = None) -> str:
    """Printable reproduction of Table I."""
    return format_table1(rows)


def to_jsonable(rows: list[RingProperties]) -> list[dict]:
    """Artifact rows for the Table I JSON payload."""
    return _jsonable(rows)


register(
    name="table1",
    description="Table I: ring-algebra properties and multiplication efficiency",
    run=run,
    format_result=format_result,
    to_jsonable=to_jsonable,
    scales={"small": {}, "paper": {}},
)
