"""Shared-memory slot rings: zero-pickle tensor transport between processes.

Every multi-process subsystem that moves arrays between a parent and
its spawn workers uses this module: the process-sharded server
(:mod:`repro.serving.cluster`) carries request/response images through
it, and the data-parallel trainer (:mod:`repro.train.parallel`) carries
weight broadcasts and per-grain gradients.  Pickling a float64 array
costs a full serialize/deserialize copy through a pipe, which at
serving or per-step training rates dwarfs the GEMM work for small
payloads.  Instead, one :class:`ShmRing` carves a single
``multiprocessing.shared_memory`` segment into fixed-size *slots*; only
tiny descriptors (slot index, shape, request id) ever cross a queue.
(The module grew up as ``repro/serving/shm.py``; it was hoisted here
unchanged when training became the second consumer.)

Slot lifecycle (one request, happy path)::

    router:  acquire() ──▶ put_array(slot, 0, request)
                            │  descriptor via worker task queue
    worker:  get_array(slot, 0, req_shape)      # copy out, compute
             put_array(slot, response_offset(req), response)
                            │  descriptor via response queue
    router:  get_array(slot, response_offset(req), resp_shape)
             release(slot)

The response region starts *after* the request payload
(:func:`ShmRing.response_offset`), so the request bytes stay intact
until the router frees the slot — this is what makes worker-crash
retry safe: a re-dispatched descriptor finds the original request
payload untouched, and a slot is released exactly once, by whoever
resolves the request.

**Ownership and hygiene.**  The creating process (the router) owns the
segment: only it may :meth:`~ShmRing.destroy` (close + unlink) it.
Worker-side :class:`RingClient` attachments deliberately unregister
from the ``resource_tracker`` so a worker's exit — clean or crashed —
never unlinks a segment out from under the cluster.  Every live
owner-created segment is recorded in a module registry;
:func:`active_segments` is the hook the leak tests assert on after
drain, abort and crash paths.
"""

from __future__ import annotations

import threading
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["ShmRing", "RingClient", "active_segments"]

#: Segments created (and not yet destroyed) by this process, by name.
_LIVE_SEGMENTS: set[str] = set()
_LIVE_LOCK = threading.Lock()


def active_segments() -> list[str]:
    """Names of shared-memory segments this process created and still owns.

    The shm-hygiene contract: after a cluster is closed — via drain,
    abort, or crash recovery — this list must be empty.  Tests assert
    on it instead of on garbage collection.
    """
    with _LIVE_LOCK:
        return sorted(_LIVE_SEGMENTS)


def _slot_array(
    buf, slot: int, slot_bytes: int, offset: int, shape: tuple[int, ...], dtype
) -> np.ndarray:
    """A numpy view into one slot's bytes at ``offset`` (no copy)."""
    dtype = np.dtype(dtype)
    nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if offset < 0 or offset + nbytes > slot_bytes:
        raise ValueError(
            f"array of {nbytes} bytes at offset {offset} does not fit a "
            f"{slot_bytes}-byte slot"
        )
    start = slot * slot_bytes + offset
    return np.ndarray(shape, dtype=dtype, buffer=buf, offset=start)


class _RingBase:
    """Array access shared by the owner (:class:`ShmRing`) and workers
    (:class:`RingClient`); subclasses own attachment and lifecycle."""

    _shm: shared_memory.SharedMemory
    slots: int
    slot_bytes: int

    def put_array(self, slot: int, offset: int, array: np.ndarray) -> int:
        """Copy ``array``'s bytes into ``slot`` at ``offset``; returns the
        end offset (where a following payload may start)."""
        self._check_slot(slot)
        array = np.ascontiguousarray(array)
        view = _slot_array(self._shm.buf, slot, self.slot_bytes, offset, array.shape, array.dtype)
        view[...] = array
        return offset + array.nbytes

    def get_array(
        self, slot: int, offset: int, shape: tuple[int, ...], dtype=np.float64
    ) -> np.ndarray:
        """Copy an array of ``shape``/``dtype`` out of ``slot`` at ``offset``."""
        self._check_slot(slot)
        return _slot_array(self._shm.buf, slot, self.slot_bytes, offset, tuple(shape), dtype).copy()

    @staticmethod
    def response_offset(request_shape: tuple[int, ...], dtype=np.float64) -> int:
        """Where a response payload starts: just past the request bytes.

        Fixed by the request alone (not the response), so a retry after
        a worker crash recomputes the same offset and the request bytes
        below it are never clobbered.
        """
        return int(np.prod(request_shape, dtype=np.int64)) * np.dtype(dtype).itemsize

    def fits(self, request_shape: tuple[int, ...], response_shape: tuple[int, ...],
             dtype=np.float64) -> bool:
        """Whether a request and its response fit one slot together."""
        itemsize = np.dtype(dtype).itemsize
        need = (
            int(np.prod(request_shape, dtype=np.int64))
            + int(np.prod(response_shape, dtype=np.int64))
        ) * itemsize
        return need <= self.slot_bytes

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} out of range [0, {self.slots})")

    @property
    def name(self) -> str:
        """The segment name workers attach to."""
        return self._shm.name


class ShmRing(_RingBase):
    """Owner side of a slot ring: allocates the segment and the free list.

    Args:
        slots: Number of fixed-size slots.  The cluster sizes this to
            its admission limit, so "a slot is free" and "the request
            was admitted" are the same event.
        slot_bytes: Capacity of one slot; must hold one request payload
            plus its response payload (see :meth:`fits`).

    Thread-safe: ``acquire``/``release`` may be called from the client
    threads and the collector thread concurrently.
    """

    def __init__(self, slots: int, slot_bytes: int) -> None:
        if slots <= 0:
            raise ValueError("slots must be positive")
        if slot_bytes <= 0:
            raise ValueError("slot_bytes must be positive")
        self.slots = slots
        self.slot_bytes = int(slot_bytes)
        self._shm = shared_memory.SharedMemory(create=True, size=slots * self.slot_bytes)
        self._lock = threading.Lock()
        self._free_changed = threading.Condition(self._lock)
        self._free: list[int] = list(range(slots))[::-1]  # pop() hands out slot 0 first
        self._destroyed = False
        with _LIVE_LOCK:
            _LIVE_SEGMENTS.add(self._shm.name)

    # ------------------------------------------------------------------
    def acquire(self, timeout: float | None = 0.0) -> int | None:
        """Claim a free slot; ``None`` when none frees up within ``timeout``.

        ``timeout=0`` (the default) never blocks — the admission
        controller's probe; ``timeout=None`` waits indefinitely.
        """
        with self._lock:
            if timeout is None or timeout > 0.0:
                self._free_changed.wait_for(
                    lambda: self._free or self._destroyed, timeout=timeout
                )
            if self._destroyed or not self._free:
                return None
            return self._free.pop()

    def release(self, slot: int) -> None:
        """Return a slot to the free list (exactly once per acquire)."""
        self._check_slot(slot)
        with self._lock:
            if self._destroyed:
                return
            if slot in self._free:
                raise ValueError(f"slot {slot} released twice")
            self._free.append(slot)
            self._free_changed.notify()

    def free_slots(self) -> int:
        """How many slots are currently unclaimed."""
        with self._lock:
            return len(self._free)

    # ------------------------------------------------------------------
    def destroy(self) -> None:
        """Close and unlink the segment (idempotent; owner only).

        After this, every attached :class:`RingClient` still holds a
        valid mapping (POSIX keeps the memory alive until the last
        close), but the name is gone and the hygiene registry no longer
        lists the segment.
        """
        with self._lock:
            if self._destroyed:
                return
            self._destroyed = True
            self._free_changed.notify_all()
        self._shm.close()
        self._shm.unlink()
        with _LIVE_LOCK:
            _LIVE_SEGMENTS.discard(self._shm.name)

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *exc) -> None:
        self.destroy()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering it with the resource tracker.

    Attaching normally *registers* the name (Python 3.11 registers on
    both create and attach), but spawn children share the parent's
    tracker process and its cache is a set — a child's later
    *unregister* would therefore delete the owner's entry and make the
    owner's ``unlink`` trip a tracker ``KeyError``.  Suppressing the
    registration at attach time keeps the tracker's view exactly "one
    entry per segment, owned by its creator".
    """
    original_register = resource_tracker.register

    def _skip_shared_memory(resource_name: str, rtype: str) -> None:
        if rtype != "shared_memory":  # pragma: no cover - not hit for shm
            original_register(resource_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class RingClient(_RingBase):
    """Worker-side attachment to an existing ring (no lifecycle ownership).

    The attachment is never registered with the ``resource_tracker``
    (see :func:`_attach_untracked`): the router owns the segment, and a
    worker exit — including ``os._exit`` after a crash injection — must
    never unlink it or corrupt the tracker's accounting.
    """

    def __init__(self, name: str, slots: int, slot_bytes: int) -> None:
        self.slots = slots
        self.slot_bytes = int(slot_bytes)
        self._shm = _attach_untracked(name)

    def close(self) -> None:
        """Drop this attachment (the owner's segment lives on)."""
        self._shm.close()

    def __enter__(self) -> "RingClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
