"""Deterministic-order reductions and flat parameter/gradient views.

Float addition is not associative, so "sum these gradient shards" only
has one answer if the *shape* of the summation is pinned.
:func:`tree_reduce` is that pin: a fixed pairwise (balanced binary
tree) summation whose result is a pure function of the operand list —
its order and length — and never of how the operands were produced,
which process computed them, or how many workers there are.  The
data-parallel trainer (:mod:`repro.train.parallel`) reduces per-grain
gradient vectors with it, which is what makes ``--jobs N`` checkpoints
bit-identical for every ``N``: the same grains are summed in the same
tree no matter how they were farmed out.

:func:`flatten_arrays` / :func:`unflatten_into` convert between a list
of parameter-shaped arrays and one contiguous float64 vector — the
transport representation a gradient or weight broadcast travels in
through a :class:`repro.comms.shm.ShmRing` slot.  Both directions are
exact byte copies; no reduction, rounding or dtype change happens in
transit.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["tree_reduce", "flatten_arrays", "unflatten_into"]


def tree_reduce(items: Sequence[np.ndarray]):
    """Sum ``items`` by fixed pairwise (balanced binary tree) reduction.

    Level by level, adjacent pairs are combined — ``[a+b, c+d, ...]``,
    with an odd trailing operand carried up unchanged — until one value
    remains.  The reduction tree depends only on ``len(items)``, so the
    result is bit-reproducible for a given operand list regardless of
    who computed the operands.  Works for any operands supporting
    ``+`` (nd-arrays, ``np.float64`` scalars).
    """
    if len(items) == 0:
        raise ValueError("tree_reduce needs at least one operand")
    level = list(items)
    while len(level) > 1:
        paired = [level[i] + level[i + 1] for i in range(0, len(level) - 1, 2)]
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
    return level[0]


def flatten_arrays(arrays: Sequence[np.ndarray | None], like: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate ``arrays`` into one contiguous float64 vector.

    ``like`` supplies the template shapes: a ``None`` entry in
    ``arrays`` (e.g. a parameter whose gradient was never touched)
    contributes zeros of the matching template's shape, so the flat
    layout is always the full ``like`` layout.
    """
    parts = [
        np.zeros(t.shape, dtype=np.float64).ravel()
        if a is None
        else np.asarray(a, dtype=np.float64).ravel()
        for a, t in zip(arrays, like, strict=True)
    ]
    if not parts:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate(parts)


def unflatten_into(vector: np.ndarray, arrays: Sequence[np.ndarray]) -> None:
    """Copy a flat vector back into parameter-shaped ``arrays`` in place.

    The inverse of :func:`flatten_arrays` for a fully-materialized
    target list; sizes must match exactly.
    """
    vector = np.asarray(vector)
    total = sum(a.size for a in arrays)
    if vector.size != total:
        raise ValueError(
            f"flat vector has {vector.size} elements, targets need {total}"
        )
    offset = 0
    for array in arrays:
        array[...] = vector[offset : offset + array.size].reshape(array.shape)
        offset += array.size
