"""Process-communication layer: shared-memory transport + deterministic reduce.

``repro.comms`` is what the repo's multi-process subsystems have in
common, factored out so neither owns it:

* :mod:`repro.comms.shm` — shared-memory slot rings
  (:class:`ShmRing` / :class:`RingClient`): fixed-size slots carved out
  of one ``multiprocessing.shared_memory`` segment, so tensors cross
  process boundaries as raw bytes while only tiny descriptors travel
  through queues.  Hoisted from ``repro/serving/shm.py`` (PR 8) when
  data-parallel training became the second consumer; the serving module
  re-exports it for compatibility.
* :mod:`repro.comms.reduce` — :func:`tree_reduce`, the fixed-order
  pairwise summation behind the trainer's deterministic gradient
  all-reduce, plus the flat-vector packing helpers
  (:func:`flatten_arrays` / :func:`unflatten_into`) gradients and
  weight broadcasts travel in.

Consumers: :class:`repro.serving.ShardedInferenceServer` (request and
response images) and :class:`repro.train.ParallelTrainEngine` (weight
broadcasts, per-grain gradients).  Both inherit the same hygiene
contract: segments are created and unlinked by exactly one owner
process, and :func:`active_segments` must be empty after teardown.
"""

from .reduce import flatten_arrays, tree_reduce, unflatten_into
from .shm import RingClient, ShmRing, active_segments

__all__ = [
    "ShmRing",
    "RingClient",
    "active_segments",
    "tree_reduce",
    "flatten_arrays",
    "unflatten_into",
]
