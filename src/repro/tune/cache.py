"""Fingerprinted on-disk tuning cache (the weight cache's sibling).

:mod:`repro.experiments.weights` memoizes trained weights;
:mod:`repro.experiments.artifacts` memoizes results; this module
memoizes the third expensive product of a run — *measured scheduling
decisions*.  A cache entry records the winning
:class:`~repro.tune.space.TunedConfig` for one tuning key, which is a
fingerprint of everything the measurement depended on:

* the **model signature** (architecture class, config dataclass,
  parameter shapes — weights themselves are irrelevant to schedule
  cost, so a finetuned model reuses its architecture's entry);
* the **input shape** (C, H, W) and the offered **batch** ceiling;
* **backend availability** (the registered spec names a winner could
  have been drawn from);
* **host metadata** (usable CPUs, machine, platform, python) — the same
  facts ``benchmarks/conftest.py`` stamps into every benchmark twin,
  for the same reason: a measured number means nothing on different
  hardware, so a cache entry must never silently transfer across
  machines;
* a schema version.

Entries are small JSON files under ``results/tuning/`` (override with
``REPRO_TUNING_DIR``), written atomically like every other artifact,
one file per key: ``<label>--<fingerprint>.json``.  Corrupt files
degrade to a miss (retune and overwrite).

Nothing in an entry changes result bytes: a tuned configuration is a
schedule (backend spec, tile geometry, micro-batch), and every tuned
path is bit-identical to its untuned counterpart — so the tuning cache
never enters experiment artifact fingerprints, mirroring the
warm-start discipline of the weight cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import platform
import re
import sys
from collections.abc import Mapping
from typing import Any

from ..experiments.artifacts import canonical_json
from ..nn.backend import available_backends, usable_cpu_count
from ..nn.module import Module
from .space import TunedConfig

__all__ = [
    "TUNING_SCHEMA",
    "DEFAULT_TUNING_DIR",
    "TUNING_DIR_ENV",
    "TUNED_ENV",
    "tuned_enabled",
    "tuning_root",
    "host_metadata",
    "model_signature",
    "tuning_fingerprint",
    "TuningEntry",
    "TuningCache",
]

#: Bump when the entry layout or tuning semantics change.
TUNING_SCHEMA = 1

#: Repo-root ``results/tuning`` (``src/repro/tune/`` -> root).
DEFAULT_TUNING_DIR = pathlib.Path(__file__).resolve().parents[3] / "results" / "tuning"

#: Environment override for the cache directory (the CLI exports it as
#: ``<results-dir>/tuning`` so ``--results-dir`` isolates tuning caches
#: the same way it isolates artifacts and weights).
TUNING_DIR_ENV = "REPRO_TUNING_DIR"

#: Environment flag making Predictors consult the tuning cache by
#: default (set by ``python -m repro run --tuned`` / ``serve-bench
#: --tuned`` so spawn workers inherit it).
TUNED_ENV = "REPRO_TUNED"


def tuned_enabled() -> bool:
    """Whether Predictors default to consulting the tuning cache."""
    return os.environ.get(TUNED_ENV, "").strip().lower() in ("1", "true", "yes", "on")


def tuning_root() -> pathlib.Path:
    """The active cache directory (env override, else the default)."""
    override = os.environ.get(TUNING_DIR_ENV, "").strip()
    return pathlib.Path(override) if override else pathlib.Path(DEFAULT_TUNING_DIR)


def host_metadata() -> dict[str, Any]:
    """The environment facts a measured schedule depends on.

    Field-compatible with the host block ``benchmarks/conftest.py``
    writes into benchmark twins (minus the ambient backend env, which
    is a per-process knob, not a host fact).
    """
    return {
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
    }


def model_signature(model: Module) -> dict[str, Any]:
    """Architecture-identifying (weight-agnostic) signature of a model.

    Schedule cost depends on what GEMMs run, not on the numbers inside
    them, so the signature captures the class, the config dataclass
    (when the model carries one, e.g. :class:`~repro.models.ernet.ERNetConfig`)
    and the full named-parameter shape layout — enough that two models
    tune to the same entry iff they run the same kernel geometry.
    """
    config = getattr(model, "config", None)
    signature: dict[str, Any] = {"class": type(model).__name__}
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        signature["config"] = dataclasses.asdict(config)
    shapes = [
        [name, list(param.data.shape)] for name, param in model.named_parameters()
    ]
    signature["param_shapes"] = hashlib.sha256(
        canonical_json(shapes).encode()
    ).hexdigest()[:16]
    return signature


def tuning_fingerprint(
    signature: Mapping[str, Any],
    shape: tuple[int, ...],
    batch: int,
    *,
    backends: list[str] | None = None,
    host: Mapping[str, Any] | None = None,
) -> str:
    """Digest of one tuning decision's full context.

    ``backends`` and ``host`` default to the live environment; tests
    pass explicit values to prove invalidation.
    """
    payload = canonical_json(
        {
            "model": signature,
            "shape": list(shape),
            "batch": int(batch),
            "backends": sorted(backends if backends is not None else available_backends()),
            "host": dict(host if host is not None else host_metadata()),
            "schema": TUNING_SCHEMA,
        }
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _slug(label: str) -> str:
    """Filesystem-safe rendering of an entry label."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label) or "model"


@dataclasses.dataclass(frozen=True)
class TuningEntry:
    """One cached tuning decision.

    Attributes:
        fingerprint: The key digest the entry was stored under.
        shape: Tuned (C, H, W) request shape.
        batch: Offered batch ceiling the search assumed.
        winner: The measured-best configuration.
        default: The configuration the untuned path would have used.
        speedup: Default-over-winner median-time ratio (>= 1.0 means the
            winner is no slower than the default on the tuning probe).
        trials: Per-candidate measurement records (spec, analytic score,
            median seconds, parity verdict) — the search's audit trail.
    """

    fingerprint: str
    shape: tuple[int, ...]
    batch: int
    winner: TunedConfig
    default: TunedConfig
    speedup: float
    trials: list[dict] = dataclasses.field(default_factory=list)

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "schema": TUNING_SCHEMA,
            "fingerprint": self.fingerprint,
            "shape": list(self.shape),
            "batch": self.batch,
            "winner": self.winner.to_jsonable(),
            "default": self.default.to_jsonable(),
            "speedup": self.speedup,
            "trials": self.trials,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TuningEntry":
        if int(payload.get("schema", -1)) != TUNING_SCHEMA:
            raise ValueError(f"tuning entry schema mismatch: {payload.get('schema')!r}")
        return cls(
            fingerprint=str(payload["fingerprint"]),
            shape=tuple(int(x) for x in payload["shape"]),
            batch=int(payload["batch"]),
            winner=TunedConfig.from_dict(payload["winner"]),
            default=TunedConfig.from_dict(payload["default"]),
            speedup=float(payload["speedup"]),
            trials=list(payload.get("trials", [])),
        )


class TuningCache:
    """Filesystem store of tuning entries keyed by fingerprint.

    Files live flat under ``root`` as ``<label>--<fingerprint>.json``
    (the weight cache's naming); the label is cosmetic, only the
    fingerprint identifies an entry.
    """

    def __init__(self, root: str | pathlib.Path | None = None) -> None:
        # Resolved at call time (not def time) so the env override and
        # tests repointing the default both take effect.
        self.root = pathlib.Path(root) if root is not None else tuning_root()

    def path_for(self, label: str, digest: str) -> pathlib.Path:
        return self.root / f"{_slug(label)}--{digest}.json"

    # ------------------------------------------------------------------
    def load(self, label: str, digest: str) -> TuningEntry | None:
        """The cached entry for a fingerprint, or None on a miss.

        Any file carrying the digest hits (labels are cosmetic);
        corrupt or mismatched files degrade to a miss, mirroring the
        artifact and weight stores.
        """
        preferred = self.path_for(label, digest)
        candidates = [preferred] if preferred.exists() else []
        candidates += [p for p in self.root.glob(f"*--{digest}.json") if p != preferred]
        for path in candidates:
            try:
                payload = json.loads(path.read_text())
                entry = TuningEntry.from_dict(payload)
            except (OSError, ValueError, KeyError, TypeError):
                continue
            if entry.fingerprint == digest:
                return entry
        return None

    def store(self, label: str, entry: TuningEntry) -> pathlib.Path:
        """Save one entry atomically (temp file + rename) under its key."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(label, entry.fingerprint)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(entry.to_jsonable(), sort_keys=True, indent=2) + "\n")
        os.replace(tmp, path)
        return path
