"""Measured-trial autotuning: seed analytically, verify bits, time, cache.

The search loop (:func:`tune_model`) is the repo's hardware<->software
loop closed end to end:

1. :func:`~repro.tune.space.candidate_space` enumerates the
   deterministic backend x tile x micro-batch candidate list;
2. :func:`~repro.tune.roofline.rank_candidates` orders it by analytic
   cost so only the ``top_k`` promising points (plus, always, the
   default configuration) pay for wall-clock trials;
3. each measured candidate first runs a **parity guard**: its output on
   the probe batch must equal the default configuration's output *byte
   for byte* (``np.array_equal``), or it is disqualified — this is what
   lets every cached winner claim tuned == untuned bitwise without
   hedging (tile geometries that would reassociate a BLAS reduction
   simply never win);
4. surviving candidates get ``warmup`` discarded runs then a
   median-of-``trials`` :func:`time.perf_counter` timing; the winner is
   the fastest median, ties broken toward the default and then by
   label, so the outcome is deterministic given the measurements.

The probe inputs come from ``np.random.default_rng(seed)`` and every
stage (candidate order, trial schedule, tie-breaks) is a pure function
of (model, shape, batch, seed, registered backends), so two runs on the
same host replay the same schedule — only the timings themselves vary,
which is why they are medians of repeated short trials.

:func:`lookup` is the consumer side: fingerprint the context, load the
entry, and *refuse* it when the cached winner's backend spec is no
longer constructible (graceful fallback — a stale cache must never turn
into a crash or a silently different schedule source).
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from ..nn.backend import available_backends
from ..nn.module import Module
from .cache import TuningCache, TuningEntry, model_signature, tuning_fingerprint
from .roofline import rank_candidates
from .space import TunedConfig, bucket_batch, candidate_space, default_config

__all__ = ["lookup", "model_label", "tune_model"]


def model_label(model: Module) -> str:
    """Cosmetic cache-file label for a model (class name, plus task)."""
    label = type(model).__name__.lower()
    task = getattr(getattr(model, "config", None), "task", None)
    return f"{label}-{task}" if task else label


def _predictor_for(model: Module, config: TunedConfig):
    # Deferred: repro.nn.inference imports this package lazily for its
    # tuned path; importing it at module scope would be circular.
    from ..nn.inference import Predictor

    return Predictor(
        model,
        batch_size=config.batch_size,
        tile=config.tile,
        backend=config.backend,
        tuned=False,  # the tuner must never consult the cache it fills
    )


def _time_config(
    model: Module,
    config: TunedConfig,
    probe: np.ndarray,
    reference: np.ndarray | None,
    *,
    warmup: int,
    trials: int,
) -> tuple[float, bool, np.ndarray]:
    """Median trial seconds, parity verdict and output for one candidate."""
    predictor = _predictor_for(model, config)
    output = predictor.predict(probe)
    parity = reference is None or (
        output.shape == reference.shape and np.array_equal(output, reference)
    )
    if not parity:
        return float("inf"), False, output
    for _ in range(max(warmup - 1, 0)):  # first (parity) run was a warmup too
        predictor.predict(probe)
    samples = []
    for _ in range(max(trials, 1)):
        started = time.perf_counter()
        predictor.predict(probe)
        samples.append(time.perf_counter() - started)
    return statistics.median(samples), True, output


def tune_model(
    model: Module,
    shape: tuple[int, ...],
    batch: int,
    *,
    seed: int = 0,
    trials: int = 3,
    warmup: int = 1,
    top_k: int = 6,
    cache: TuningCache | None = None,
    store: bool = True,
) -> TuningEntry:
    """Search the configuration space for one (model, shape, batch) key.

    Args:
        model: The model to schedule (weights untouched; eval-mode runs).
        shape: Request (C, H, W) shape the entry will serve.
        batch: Offered batch ceiling; quantized via
            :func:`~repro.tune.space.bucket_batch` into the tuning key.
        seed: Pins the probe inputs (and therefore the whole schedule).
        trials: Timed runs per candidate (the median is scored).
        warmup: Discarded runs per candidate before timing.
        top_k: Analytically best candidates measured (default included
            regardless of its rank).
        cache: Destination store; the default cache when omitted.
        store: Persist the winning entry (disable for dry runs).

    Returns:
        The :class:`~repro.tune.cache.TuningEntry` (stored unless
        ``store=False``).
    """
    if len(shape) != 3:
        raise ValueError(f"expected a (C, H, W) request shape, got {shape}")
    bucket = bucket_batch(batch)
    candidates = candidate_space(model, shape, batch)
    ranked = rank_candidates(model, shape, bucket, candidates)
    base = default_config(model, batch)
    measured = [config for config, _ in ranked[: max(top_k, 1)]]
    if base not in measured:
        measured.append(base)
    # Measure the default first so every other candidate has the parity
    # reference; remaining measured candidates keep their analytic order.
    measured.sort(key=lambda config: (config != base,))
    scores = {config: score for config, score in ranked}

    rng = np.random.default_rng(seed)
    probe = rng.standard_normal((bucket, *map(int, shape)))

    records: list[dict] = []
    reference: np.ndarray | None = None
    timings: dict[TunedConfig, float] = {}
    for config in measured:
        median, parity, output = _time_config(
            model, config, probe, reference, warmup=warmup, trials=trials
        )
        if config == base:
            reference = output
        timings[config] = median
        records.append(
            {
                "config": config.to_jsonable(),
                "label": config.label(),
                "analytic": scores[config],
                "median_s": median if parity else None,
                "parity": parity,
            }
        )
    # Unmeasured candidates stay in the audit trail with their scores.
    records.extend(
        {
            "config": config.to_jsonable(),
            "label": config.label(),
            "analytic": score,
            "median_s": None,
            "parity": None,
        }
        for config, score in ranked
        if config not in timings
    )

    survivors = [config for config in measured if timings[config] != float("inf")]
    winner = min(
        survivors, key=lambda config: (timings[config], config != base, config.label())
    )
    entry = TuningEntry(
        fingerprint=tuning_fingerprint(model_signature(model), tuple(shape), bucket),
        shape=tuple(int(x) for x in shape),
        batch=bucket,
        winner=winner,
        default=base,
        speedup=timings[base] / timings[winner] if timings[winner] > 0 else 1.0,
        trials=records,
    )
    if store:
        (cache if cache is not None else TuningCache()).store(model_label(model), entry)
    return entry


def lookup(
    model: Module,
    shape: tuple[int, ...],
    batch: int,
    *,
    cache: TuningCache | None = None,
    signature: dict | None = None,
) -> TuningEntry | None:
    """The applicable cache entry for a serving context, or None.

    Misses (no entry, wrong schema, corrupt file) and **inapplicable
    hits** both return None: an entry whose winner names a backend spec
    that is not currently constructible — e.g. the cache was populated
    with more backends registered than this process has — is refused
    outright rather than partially applied, so consumers always fall
    back to the untuned defaults as one coherent configuration.
    """
    if len(shape) != 3:
        return None
    cache = cache if cache is not None else TuningCache()
    signature = signature if signature is not None else model_signature(model)
    bucket = bucket_batch(batch)
    digest = tuning_fingerprint(signature, tuple(shape), bucket)
    entry = cache.load(model_label(model), digest)
    if entry is None:
        return None
    if entry.winner.backend is not None:
        name = entry.winner.backend.partition(":")[0].strip().lower()
        if name not in available_backends():
            return None
    return entry
