"""Analytic (roofline-style) seeding of the autotuner's search.

Measuring every point of the backend x tile x micro-batch space is
wasteful — most candidates are obviously bad.  This module ranks them
*before* any clock starts, reusing the two analytic models the repo
already trusts:

* :func:`repro.hardware.throughput.cycles_per_pixel` supplies the
  compute intensity of the model (engine passes per output pixel, the
  paper's Section VI-B scheduling metric) — the **compute roof**;
* :class:`repro.hardware.cost.CostModel` prices the im2col working set
  of one micro-batch against a nominal on-chip SRAM budget — candidates
  whose working set spills past the budget pay a bandwidth penalty, the
  **memory roof**.

On top of those rooflines sit the three schedule-dependent factors the
knobs actually control: halo recompute overhead (smaller tiles redo
more border context), per-forward dispatch overhead (smaller
micro-batches amortize less), and backend parallel efficiency (an
Amdahl-style speedup for the threaded backend, capped by usable CPUs).

Scores are *relative* costs for ranking only — lower is better, the
absolute scale is meaningless, and measured trials (not this model)
pick the final winner.  The function is pure and deterministic: equal
inputs always produce equal scores, which keeps the seeded trial
schedule replayable.
"""

from __future__ import annotations

import math

from ..hardware.cost import CostModel
from ..hardware.throughput import cycles_per_pixel, layers_of_model
from ..nn.backend import usable_cpu_count
from ..nn.inference import plan_for_model
from ..nn.module import Module
from .space import TunedConfig

__all__ = ["analytic_cost", "rank_candidates"]

#: Nominal on-chip buffer budget the blocked/threaded working sets are
#: judged against, in KB (a few MB of L2/LLC share per core).
_SRAM_BUDGET_KB = 2048.0

#: Relative cost of one forward-call dispatch (python + graph overhead)
#: in per-pixel work units; amortized over the micro-batch.
_DISPATCH_OVERHEAD = 4096.0

#: Fraction of the hot path that parallelizes across backend threads
#: (Amdahl's law serial remainder covers im2col copies and dispatch).
_PARALLEL_FRACTION = 0.85


def _parallel_speedup(jobs: int) -> float:
    """Amdahl-style attainable speedup of ``jobs`` threads on this host."""
    effective = max(1, min(jobs, usable_cpu_count()))
    return 1.0 / ((1.0 - _PARALLEL_FRACTION) + _PARALLEL_FRACTION / effective)


def _backend_factor(backend: str | None) -> float:
    """Relative compute-time multiplier of a backend spec (1.0 = reference)."""
    if backend is None:
        return 1.0
    name, _, arg = backend.partition(":")
    name = name.strip().lower()
    if name == "threaded":
        jobs = int(arg) if arg else usable_cpu_count()
        # A small constant chunking bonus applies even single-core: the
        # per-group im2col working set shrinks below the monolithic
        # path's (see bench_backends), which the SRAM term below cannot
        # see because it prices the whole micro-batch.
        return 0.95 / _parallel_speedup(jobs)
    if name == "blocked":
        return 1.0  # memory shaping, priced by the SRAM term
    return 1.0


def analytic_cost(
    model: Module,
    shape: tuple[int, ...],
    batch: int,
    config: TunedConfig,
    cost_model: CostModel | None = None,
) -> float:
    """Relative cost estimate of serving ``batch`` images of ``shape``.

    Lower is better.  Deterministic in its inputs; see the module
    docstring for the terms.
    """
    cost_model = cost_model if cost_model is not None else CostModel()
    channels, h, w = (int(x) for x in shape)
    plan = plan_for_model(model, tile=config.tile)
    layers = layers_of_model(model)
    intensity = cycles_per_pixel(layers) if layers else 1.0

    # Compute roof: pixels actually convolved, halo recompute included.
    th, tw = min(plan.tile, h), min(plan.tile, w)
    crop_h = min(h, th + 2 * plan.halo)
    crop_w = min(w, tw + 2 * plan.halo)
    crops = math.ceil(h / th) * math.ceil(w / tw)
    pixels = batch * crops * crop_h * crop_w
    compute = pixels * intensity

    # Memory roof: price one micro-batch's im2col working set against
    # the SRAM budget; spilling costs proportionally more "cycles".
    kernel_terms = sum(
        layer.in_channels * layer.kernel_size**2 for layer in layers
    ) or channels * 9
    widest = max(kernel_terms, 1) / max(len(layers), 1)
    working_set_kb = (
        config.batch_size * widest * crop_h * crop_w * 8.0 / 1024.0
    )
    budget = cost_model.sram(_SRAM_BUDGET_KB)
    spill = max(1.0, working_set_kb / _SRAM_BUDGET_KB)
    # energy_pj scales with capacity touched; normalize by the budget's
    # own energy so the term stays a dimensionless multiplier.
    memory_factor = 1.0 + 0.25 * (spill - 1.0) * (
        cost_model.sram(min(working_set_kb, 8 * _SRAM_BUDGET_KB)).energy_pj
        / budget.energy_pj
    )

    # Dispatch overhead: forwards needed to cover the crop jobs.
    jobs = batch * crops
    forwards = math.ceil(jobs / config.batch_size)
    dispatch = forwards * _DISPATCH_OVERHEAD

    return (compute * memory_factor + dispatch) * _backend_factor(config.backend)


def rank_candidates(
    model: Module,
    shape: tuple[int, ...],
    batch: int,
    candidates: list[TunedConfig],
    cost_model: CostModel | None = None,
) -> list[tuple[TunedConfig, float]]:
    """Candidates with their analytic costs, cheapest first.

    Ties break on the candidate's label so the order is total and
    deterministic regardless of input order.
    """
    scored = [
        (config, analytic_cost(model, shape, batch, config, cost_model))
        for config in candidates
    ]
    scored.sort(key=lambda pair: (pair[1], pair[0].label()))
    return scored
