"""The autotuner's configuration space: backend spec x tile x micro-batch.

A :class:`TunedConfig` names one point of the space the tuner searches
— the three scheduling knobs every inference path in the repo already
exposes (:class:`~repro.nn.inference.Predictor` takes all three as
constructor arguments).  None of them changes result bytes:

* **backend spec** — registered backends are bit-parity with
  :class:`~repro.nn.backend.NumpyBackend` by contract (PR 3);
* **micro-batch** — batching is bit-exact on every backend (splitting
  along the batch axis runs the very same per-slice GEMMs);
* **tile** — regroups which pixels are computed together; the tuner's
  parity guard (:mod:`repro.tune.tuner`) measures every candidate
  against the default configuration's bytes and discards any whose
  geometry change would reassociate a BLAS reduction, so cached winners
  are bit-identical by construction, not by hope.

:func:`candidate_space` enumerates the space deterministically — same
model, shape, batch and registered backends always yield the same
candidate list in the same order — which is what makes the analytic
ranking (and therefore the measured trial schedule) replayable.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from typing import Any

from ..nn.backend import available_backends, usable_cpu_count
from ..nn.inference import DEFAULT_TILE, plan_for_model
from ..nn.module import Module

__all__ = ["TunedConfig", "bucket_batch", "candidate_space", "default_config"]

#: Tile-edge candidates before divisor rounding; DEFAULT_TILE is always
#: added so the untuned geometry is always in the race.
_TILE_CANDIDATES = (24, 32, 48, 64, 96)

#: Per-backend samples-per-block candidates for ``blocked``.
_BLOCK_ARGS = (1, 4)


@dataclasses.dataclass(frozen=True)
class TunedConfig:
    """One point of the search space (a schedule, never semantics).

    Attributes:
        backend: Kernel backend spec string (``name[:arg]``), or None
            for the ambient-backend default.
        tile: Tile edge handed to :func:`~repro.nn.inference.plan_for_model`
            (the model-derived halo/scale/divisor stay authoritative).
        batch_size: Micro-batch size — images (or tile crops) per
            forward pass, and the serving flush threshold.
    """

    backend: str | None
    tile: int
    batch_size: int

    def __post_init__(self) -> None:
        if self.tile <= 0:
            raise ValueError("tile must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")

    def label(self) -> str:
        """Compact human rendering (used in trial tables and logs)."""
        return f"{self.backend or 'ambient'}/tile{self.tile}/mb{self.batch_size}"

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "tile": self.tile,
            "batch_size": self.batch_size,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TunedConfig":
        backend = payload.get("backend")
        return cls(
            backend=str(backend) if backend is not None else None,
            tile=int(payload["tile"]),
            batch_size=int(payload["batch_size"]),
        )


def bucket_batch(batch: int) -> int:
    """Round a batch ceiling up to the next power of two (min 1).

    Tuning keys quantize the offered batch so a Predictor built with
    ``batch_size=6`` and one built with ``batch_size=8`` share a cache
    entry instead of each forcing a fresh search.
    """
    if batch < 1:
        raise ValueError("batch must be positive")
    bucket = 1
    while bucket < batch:
        bucket *= 2
    return bucket


def default_config(model: Module, batch: int, tile: int | None = None) -> TunedConfig:
    """The configuration the untuned path would use for this model.

    ``backend=None`` (the ambient-backend precedence), the model-derived
    default tiling plan, and the offered batch as the micro-batch.
    """
    plan = plan_for_model(model, tile=tile if tile is not None else DEFAULT_TILE)
    return TunedConfig(backend=None, tile=plan.tile, batch_size=batch)


def _backend_candidates() -> list[str]:
    """Deterministic backend spec candidates from the live registry.

    One spec per registered name, parameterized for this host: the
    threaded backend gets the usable-CPU worker count (min 2 — chunking
    wins even single-core on the wide grouped GEMMs), the blocked
    backend gets the fixed block candidates.  Unregistered names never
    appear, so a winner is always constructible where it was measured.
    """
    specs: list[str] = []
    for name in available_backends():  # sorted by contract
        if name == "threaded":
            specs.append(f"threaded:{max(2, usable_cpu_count())}")
        elif name == "blocked":
            specs.extend(f"blocked:{block}" for block in _BLOCK_ARGS)
        else:
            specs.append(name)
    return specs


def _micro_batches(batch: int) -> list[int]:
    """Powers of two up to (and including) the offered batch bucket."""
    ceiling = bucket_batch(batch)
    sizes = []
    size = 1
    while size <= ceiling:
        sizes.append(size)
        size *= 2
    return sizes


def candidate_space(
    model: Module, shape: tuple[int, ...], batch: int
) -> list[TunedConfig]:
    """Enumerate the deterministic candidate list for one tuning key.

    Tile candidates are rounded onto the model's divisor grid and
    deduplicated; shapes that fit inside every tile candidate collapse
    the tile axis to the default (for such shapes every tile >= the
    image runs the identical batched path, so varying it only bloats
    the trial schedule).  The default configuration is always element 0.
    """
    if len(shape) != 3:
        raise ValueError(f"expected a (C, H, W) request shape, got {shape}")
    base = default_config(model, batch)
    plan = plan_for_model(model, tile=base.tile)
    divisor = plan.divisor
    tiles: list[int] = []
    for tile in (base.tile, *_TILE_CANDIDATES):
        rounded = max(-(-tile // divisor) * divisor, divisor)
        if rounded not in tiles:
            tiles.append(rounded)
    h, w = int(shape[1]), int(shape[2])
    if h <= min(tiles) and w <= min(tiles):
        tiles = [base.tile]
    candidates = [base]
    for backend in [None, *_backend_candidates()]:
        for tile in tiles:
            for micro in _micro_batches(batch):
                config = TunedConfig(backend=backend, tile=tile, batch_size=micro)
                if config != base:
                    candidates.append(config)
    return candidates
