"""Roofline-seeded autotuning of inference schedules.

``repro.tune`` closes the repo's hardware<->software loop: the analytic
:mod:`repro.hardware` cost model ranks the backend x tile x micro-batch
configuration space (:mod:`repro.tune.roofline`), short measured trials
pick a winner under a bit-identity parity guard
(:mod:`repro.tune.tuner`), and winners persist in a fingerprinted
on-disk cache (:mod:`repro.tune.cache`) keyed by model spec, request
shape, batch bucket, backend availability and host metadata — so a
tuned schedule never silently transfers to a machine it was not
measured on.

Consumers opt in per call site (``Predictor(..., tuned=True)``,
``InferenceServer(..., tuned=True)``, ``python -m repro run --tuned``)
or process-wide via ``REPRO_TUNED=1``; every tuned path falls back to
the untuned defaults on a cache miss and is bit-identical to its
untuned counterpart by construction — tuning changes schedule, never
semantics.
"""

from .cache import (
    TUNED_ENV,
    TUNING_DIR_ENV,
    TuningCache,
    TuningEntry,
    host_metadata,
    model_signature,
    tuned_enabled,
    tuning_fingerprint,
    tuning_root,
)
from .roofline import analytic_cost, rank_candidates
from .space import TunedConfig, bucket_batch, candidate_space, default_config
from .tuner import lookup, model_label, tune_model

__all__ = [
    "TUNED_ENV",
    "TUNING_DIR_ENV",
    "TunedConfig",
    "TuningCache",
    "TuningEntry",
    "analytic_cost",
    "bucket_batch",
    "candidate_space",
    "default_config",
    "host_metadata",
    "lookup",
    "model_label",
    "model_signature",
    "rank_candidates",
    "tune_model",
    "tuned_enabled",
    "tuning_fingerprint",
    "tuning_root",
]
