"""Fast bilinear algorithms for ring multiplication (paper Section III-B).

A fast algorithm computes ``z = g . x`` in three steps (paper eqs. 6-8):

    filter/data transform:      g~ = Tg g,   x~ = Tx x      (m-tuples)
    component-wise product:     z~ = g~ o x~
    reconstruction transform:   z  = Tz z~

It is *exact* for a ring with indexing tensor M iff

    M[i, k, j] == sum_p Tz[i, p] * Tg[p, k] * Tx[p, j]

which is a rank-m CP decomposition of M.  This module provides the
algorithm container, exact verification, a reconstruction-matrix solver
(given candidate Tg/Tx), and automatic synthesis from diagonalization
(Appendix A) or CP decomposition.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .base import Ring
from .grank import cp_decompose

__all__ = [
    "FastAlgorithm",
    "solve_reconstruction",
    "fast_from_diagonalization",
    "fast_from_cp",
    "identity_fast",
    "synthesize_fast",
]


@dataclasses.dataclass(frozen=True)
class FastAlgorithm:
    """A bilinear fast algorithm (Tg, Tx, Tz) with m component-wise products.

    Attributes:
        tg: (m, n) filter transform.
        tx: (m, n) data transform.
        tz: (n, m) reconstruction transform.
    """

    tg: np.ndarray
    tx: np.ndarray
    tz: np.ndarray

    def __post_init__(self) -> None:
        tg = np.asarray(self.tg, dtype=float)
        tx = np.asarray(self.tx, dtype=float)
        tz = np.asarray(self.tz, dtype=float)
        if tg.shape != tx.shape or tz.shape != (tg.shape[1], tg.shape[0]):
            raise ValueError(
                f"inconsistent shapes: Tg {tg.shape}, Tx {tx.shape}, Tz {tz.shape}"
            )
        object.__setattr__(self, "tg", tg)
        object.__setattr__(self, "tx", tx)
        object.__setattr__(self, "tz", tz)

    @property
    def n(self) -> int:
        """Tuple dimension."""
        return self.tg.shape[1]

    @property
    def num_products(self) -> int:
        """m — the number of real-valued multiplications (paper eq. 7)."""
        return self.tg.shape[0]

    def bilinear_tensor(self) -> np.ndarray:
        """The indexing tensor this algorithm realizes: M[i,k,j]."""
        return np.einsum("ip,pk,pj->ikj", self.tz, self.tg, self.tx)

    def residual(self, ring: Ring) -> float:
        """Max-abs deviation from the ring's indexing tensor (0 => exact)."""
        return float(np.max(np.abs(self.bilinear_tensor() - ring.m_tensor)))

    def verify(self, ring: Ring, atol: float = 1e-8) -> bool:
        """Exact structural verification against a ring."""
        return self.residual(ring) <= atol

    def apply(self, g: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Compute g . x through the three-step pipeline; broadcasts batches."""
        g_t = np.einsum("pk,...k->...p", self.tg, np.asarray(g, dtype=float))
        x_t = np.einsum("pj,...j->...p", self.tx, np.asarray(x, dtype=float))
        return np.einsum("ip,...p->...i", self.tz, g_t * x_t)

    def transform_filter(self, g: np.ndarray) -> np.ndarray:
        """g~ = Tg g (applied once per weight; paper Section IV-C)."""
        return np.einsum("pk,...k->...p", self.tg, np.asarray(g, dtype=float))

    def transform_data(self, x: np.ndarray) -> np.ndarray:
        """x~ = Tx x."""
        return np.einsum("pj,...j->...p", self.tx, np.asarray(x, dtype=float))

    def reconstruct(self, z_t: np.ndarray) -> np.ndarray:
        """z = Tz z~."""
        return np.einsum("ip,...p->...i", self.tz, np.asarray(z_t, dtype=float))

    def fold_scale_into_filter(self) -> "FastAlgorithm":
        """Push per-product scale factors of Tz into Tg.

        Hardware keeps Tx and Tz as pure adder trees (entries in
        {-1, 0, +1}); any common scale of a Tz column is moved into the
        (offline) filter transform.  Returns an equivalent algorithm.
        """
        tz = self.tz.copy()
        tg = self.tg.copy()
        for p in range(self.num_products):
            col = tz[:, p]
            nz = np.abs(col[np.abs(col) > 1e-12])
            if len(nz) == 0:
                continue
            scale = float(nz.min())
            if scale not in (0.0, 1.0):
                tz[:, p] /= scale
                tg[p, :] *= scale
        return FastAlgorithm(tg=tg, tx=self.tx, tz=tz)


def solve_reconstruction(
    ring: Ring, tg: np.ndarray, tx: np.ndarray, atol: float = 1e-8
) -> FastAlgorithm | None:
    """Solve for Tz given candidate transforms, or None if no exact Tz exists.

    For each output i we need ``M[i] == sum_p Tz[i, p] * outer(Tg[p], Tx[p])``:
    a least-squares problem in the m unknowns Tz[i, :].
    """
    tg = np.asarray(tg, dtype=float)
    tx = np.asarray(tx, dtype=float)
    n = ring.n
    m = tg.shape[0]
    design = np.stack([np.outer(tg[p], tx[p]).reshape(-1) for p in range(m)], axis=1)
    tz = np.zeros((n, m))
    for i in range(n):
        target = ring.m_tensor[i].reshape(-1)
        sol, *_ = np.linalg.lstsq(design, target, rcond=None)
        if np.max(np.abs(design @ sol - target)) > atol:
            return None
        tz[i] = sol
    algo = FastAlgorithm(tg=tg, tx=tx, tz=tz)
    return algo if algo.verify(ring, atol=atol) else None


def identity_fast(n: int) -> FastAlgorithm:
    """The trivial fast algorithm of R_I: all transforms are the identity."""
    eye = np.eye(n)
    return FastAlgorithm(tg=eye, tx=eye.copy(), tz=eye.copy())


def fast_from_diagonalization(ring: Ring, seed: int = 0) -> FastAlgorithm | None:
    """Minimal algorithm for a real-diagonalizable G (paper Theorem A.1b).

    With ``G = T^-1 D T`` the algorithm is ``Tz = T^-1``, ``Tx = T`` and
    ``Tg`` maps g to diag(D); m = rank(G) = n.
    """
    t_mat = ring.real_diagonalizer(seed=seed)
    if t_mat is None:
        return None
    t_inv = np.linalg.inv(t_mat)
    n = ring.n
    # Tg from the diagonal of T G(e_k) T^-1, linear in g.
    tg = np.zeros((n, n))
    for k in range(n):
        tg[:, k] = np.diag(t_mat @ ring.basis_matrices()[k] @ t_inv)
    algo = FastAlgorithm(tg=tg, tx=t_mat, tz=t_inv)
    return algo if algo.verify(ring) else None


def fast_from_cp(ring: Ring, rank: int, seed: int = 0, restarts: int = 20) -> FastAlgorithm | None:
    """Fast algorithm from a rank-``rank`` CP decomposition of M.

    Used for non-diagonalizable rings (complex field, circulant family,
    quaternions).  Factors are numeric; use hand-crafted algorithms from
    the catalog when adder-friendly coefficients matter.
    """
    factors = cp_decompose(ring.m_tensor, rank, seed=seed, restarts=restarts)
    if factors is None:
        return None
    a_fac, b_fac, c_fac = factors  # M[i,k,j] = sum_p A[i,p] B[k,p] C[j,p]
    algo = FastAlgorithm(tg=b_fac.T, tx=c_fac.T, tz=a_fac)
    return algo if algo.verify(ring, atol=1e-6) else None


def synthesize_fast(ring: Ring, max_rank: int | None = None, seed: int = 0) -> FastAlgorithm:
    """Best-effort fast algorithm for any ring.

    Tries, in order: diagonalization over R (optimal, m = n), then CP
    decompositions with increasing rank up to ``max_rank`` (default 2n),
    finally the always-valid outer-product algorithm with m = n^2.
    """
    algo = fast_from_diagonalization(ring, seed=seed)
    if algo is not None:
        return algo
    n = ring.n
    cap = max_rank if max_rank is not None else 2 * n
    for rank in range(n, cap + 1):
        algo = fast_from_cp(ring, rank, seed=seed)
        if algo is not None:
            return algo
    # Fallback: one product per (k, j) pair — always exact.
    tg = np.zeros((n * n, n))
    tx = np.zeros((n * n, n))
    tz = np.zeros((n, n * n))
    for k in range(n):
        for j in range(n):
            p = k * n + j
            tg[p, k] = 1.0
            tx[p, j] = 1.0
            tz[:, p] = ring.m_tensor[:, k, j]
    return FastAlgorithm(tg=tg, tx=tx, tz=tz)
