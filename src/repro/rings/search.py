"""Proper-ring search under conditions C1-C3 (paper Section III-C).

The paper confines the design space with three assumptions:

* **C1** — exclusive sub-product distribution with a ring unity:
  ``G[i, j] = S[i, j] g[P[i, j]]`` where P's first column is the identity
  and its diagonal is zero (so ``g . 1 = 1 . g = g``).
* **C2** — commutativity, equivalent to the cyclic-mapping condition
  ``P[i, P[i, j]] = j`` and ``S[i, j] = S[i, P[i, j]]``.
* **C3** — keep only sign matrices minimising the generic rank of the
  bilinear tensor M(S; P), estimated by randomized CP decomposition.

This module enumerates permutation-indexing matrices and sign matrices,
filters by the ring axioms, estimates granks, and clusters the survivors
into isomorphism classes — reproducing the paper's findings (n = 2: only
R_H2 and C; n = 4: one grank-4 permutation with two variants and one
grank-5 permutation with four variants).
"""

from __future__ import annotations

import dataclasses
import itertools

import numpy as np

from .base import Ring, indexing_tensor_from_sp
from .grank import estimate_grank

__all__ = [
    "proper_permutations",
    "cyclic_sign_patterns",
    "are_isomorphic",
    "SearchResult",
    "RingCandidate",
    "search_proper_rings",
]


def _row_involutions(n: int, i: int) -> list[tuple[int, ...]]:
    """Row-i candidates: involutions sigma with sigma(0) = i (hence sigma(i) = 0).

    C1 forces ``P[i, 0] = i`` and ``P[i, i] = 0``; C2 forces each row, as a
    map j -> P[i, j], to be an involution.
    """
    rest = [j for j in range(n) if j not in (0, i)] if i != 0 else list(range(1, n))
    rows = []
    for pairing in _involutions(rest):
        row = [0] * n
        row[0] = i
        row[i] = 0
        for a, b in pairing:
            row[a], row[b] = b, a
        rows.append(tuple(row))
    return rows


def _involutions(items: list[int]) -> list[list[tuple[int, int]]]:
    """All involutions of ``items`` as lists of 2-cycles (fixed points (a, a))."""
    if not items:
        return [[]]
    head, rest = items[0], items[1:]
    out = [[(head, head)] + tail for tail in _involutions(rest)]
    for idx, other in enumerate(rest):
        remaining = rest[:idx] + rest[idx + 1 :]
        out.extend([(head, other)] + tail for tail in _involutions(remaining))
    return out


def proper_permutations(n: int) -> list[np.ndarray]:
    """All permutation-indexing matrices P satisfying C1 and C2's P-part.

    Requires every row and column of P to be a permutation of {0..n-1},
    ``P[:, 0] = range(n)``, ``diag(P) = 0`` and row-involution closure.
    """
    candidates: list[np.ndarray] = []
    row_options = [_row_involutions(n, i) for i in range(n)]
    for rows in itertools.product(*row_options):
        p_mat = np.array(rows, dtype=int)
        if all(len(set(p_mat[:, j])) == n for j in range(n)):
            candidates.append(p_mat)
    return candidates


def cyclic_sign_patterns(p_mat: np.ndarray) -> list[np.ndarray]:
    """All sign matrices satisfying C1 (first column and diagonal +1) and C2.

    The free slots are the orbits of j -> P[i, j] within each row,
    excluding column 0 and the diagonal.
    """
    n = p_mat.shape[0]
    slots: list[list[tuple[int, int]]] = []
    seen: set[tuple[int, int]] = set()
    for i in range(n):
        for j in range(n):
            if j == 0 or j == i or (i, j) in seen:
                continue
            jp = int(p_mat[i, j])
            seen.add((i, j))
            slot = [(i, j)]
            if jp not in (j,) and (i, jp) not in seen and jp != 0 and jp != i:
                seen.add((i, jp))
                slot.append((i, jp))
            slots.append(slot)
    patterns = []
    for bits in itertools.product((1.0, -1.0), repeat=len(slots)):
        s_mat = np.ones((n, n))
        for slot, bit in zip(slots, bits, strict=True):
            for (i, j) in slot:
                s_mat[i, j] = bit
        patterns.append(s_mat)
    return patterns


def _signed_permutation_matrices(n: int) -> list[np.ndarray]:
    """Unity-preserving signed permutations Q (Q e0 = e0) for isomorphism tests."""
    mats = []
    for perm in itertools.permutations(range(1, n)):
        full = (0,) + perm
        for signs in itertools.product((1.0, -1.0), repeat=n - 1):
            q_mat = np.zeros((n, n))
            q_mat[0, 0] = 1.0
            for row, col in enumerate(full[1:], start=1):
                q_mat[row, col] = signs[row - 1]
            mats.append(q_mat)
    return mats


def are_isomorphic(ring_a: Ring, ring_b: Ring) -> bool:
    """Whether a unity-preserving signed permutation maps ring_a onto ring_b.

    phi(x) = Q x is a ring isomorphism iff phi(a . b) = phi(a) . phi(b);
    bilinearity makes checking all basis pairs exact.
    """
    if ring_a.n != ring_b.n:
        return False
    n = ring_a.n
    eye = np.eye(n)
    for q_mat in _signed_permutation_matrices(n):
        ok = True
        for k in range(n):
            for j in range(n):
                lhs = q_mat @ ring_a.multiply(eye[k], eye[j])
                rhs = ring_b.multiply(q_mat @ eye[k], q_mat @ eye[j])
                if not np.allclose(lhs, rhs, atol=1e-9):
                    ok = False
                    break
            if not ok:
                break
        if ok:
            return True
    return False


@dataclasses.dataclass(frozen=True)
class RingCandidate:
    """One survivor of the search with its estimated grank."""

    ring: Ring
    sign: np.ndarray
    perm: np.ndarray
    grank: int


@dataclasses.dataclass(frozen=True)
class SearchResult:
    """Search output for one tuple dimension n.

    Attributes:
        n: Tuple dimension searched.
        permutation_classes: Non-isomorphic permutation matrices found.
        candidates: All commutative+associative rings with granks.
        minimal: Candidates achieving the minimum grank of their
            permutation class (the paper's condition C3), deduplicated up
            to isomorphism.
    """

    n: int
    permutation_classes: list[np.ndarray]
    candidates: list[RingCandidate]
    minimal: list[RingCandidate]

    def min_grank_of_perm(self, p_mat: np.ndarray) -> int:
        """Minimum estimated grank among candidates sharing P (condition C3)."""
        granks = [
            cand.grank for cand in self.candidates if np.array_equal(cand.perm, p_mat)
        ]
        if not granks:
            raise ValueError("permutation not present in candidates")
        return min(granks)


def _dedupe_permutations(perms: list[np.ndarray]) -> list[np.ndarray]:
    """Group P-matrices by all-plus-ring isomorphism; keep one per class."""
    classes: list[np.ndarray] = []
    for p_mat in perms:
        ring = Ring("p", indexing_tensor_from_sp(np.ones_like(p_mat, dtype=float), p_mat))
        if not any(
            are_isomorphic(
                ring,
                Ring("q", indexing_tensor_from_sp(np.ones_like(rep, dtype=float), rep)),
            )
            for rep in classes
        ):
            classes.append(p_mat)
    return classes


def search_proper_rings(
    n: int,
    grank_cap: int | None = None,
    restarts: int = 12,
    seed: int = 0,
    dedupe: bool = True,
) -> SearchResult:
    """Run the full C1-C3 search for tuple dimension n.

    Args:
        n: Tuple dimension (the paper explores 2 and 4).
        grank_cap: Upper bound passed to the grank estimator
            (defaults to 2n).
        restarts: CP-ALS restarts per rank probe.
        seed: Seed for the randomized grank estimation.
        dedupe: Deduplicate minimal candidates up to isomorphism.

    Returns:
        A :class:`SearchResult`; ``result.minimal`` reproduces the paper's
        ring-variant counts (2 for n = 2; 2 + 4 for n = 4).
    """
    perm_classes = _dedupe_permutations(proper_permutations(n)) if dedupe else proper_permutations(n)
    candidates: list[RingCandidate] = []
    cap = grank_cap if grank_cap is not None else 2 * n
    for p_mat in perm_classes:
        for s_mat in cyclic_sign_patterns(p_mat):
            ring = Ring("cand", indexing_tensor_from_sp(s_mat, p_mat))
            if not (ring.is_commutative() and ring.is_associative()):
                continue
            grank = estimate_grank(
                ring.m_tensor, min_rank=max(2, n - 1), max_rank=cap, seed=seed, restarts=restarts
            )
            candidates.append(RingCandidate(ring=ring, sign=s_mat, perm=p_mat, grank=grank))
    # Note: sign variants are NOT deduplicated by abstract isomorphism —
    # e.g. R_H4 and R_O4 are isomorphic as rings (both are R^4 in a
    # rotated basis) yet the paper counts them as distinct variants
    # because their transform hardware differs.  Each distinct (S, P)
    # achieving the minimum grank of its permutation class is kept.
    minimal: list[RingCandidate] = []
    for p_mat in perm_classes:
        local = [c for c in candidates if np.array_equal(c.perm, p_mat)]
        if not local:
            continue
        best = min(c.grank for c in local)
        minimal.extend(c for c in local if c.grank == best)
    return SearchResult(
        n=n, permutation_classes=perm_classes, candidates=candidates, minimal=minimal
    )
