"""Core ring-algebra machinery (paper Section III-A).

A *ring* here is the set of real-valued n-tuples equipped with
component-wise addition and a bilinear multiplication

    z = g . x,     z_i = sum_{j,k} M[i, k, j] * g_k * x_j        (paper eq. 3)

where ``M`` is a 3-D *indexing tensor* whose entries are -1, 0 or 1.  The
multiplication is isomorphic to a matrix-vector product ``z = G(g) x`` with

    G(g)[i, j] = sum_k M[i, k, j] * g_k                           (paper eq. 4)

Rings satisfying the *exclusive sub-product distribution* (paper eq. 9)
are fully described by a sign matrix ``S`` and a permutation-indexing
matrix ``P``:  ``G[i, j] = S[i, j] * g[P[i, j]]``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "Ring",
    "indexing_tensor_from_sp",
    "sp_from_indexing_tensor",
    "random_tuples",
]


def indexing_tensor_from_sp(sign: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Build the indexing tensor M from a sign matrix and permutation matrix.

    ``M[i, k, j] = sign[i, j]`` if ``perm[i, j] == k`` else 0 (paper eq. 9).

    Args:
        sign: (n, n) array with entries in {-1, +1}.
        perm: (n, n) integer array; every row and column must be a
            permutation of {0, ..., n-1} for a *proper* ring, but this
            constructor does not enforce that (``R_I`` uses a degenerate P).

    Returns:
        (n, n, n) float array M indexed as ``M[i, k, j]``.
    """
    sign = np.asarray(sign, dtype=float)
    perm = np.asarray(perm, dtype=int)
    if sign.shape != perm.shape or sign.ndim != 2 or sign.shape[0] != sign.shape[1]:
        raise ValueError("sign and perm must be square matrices of equal shape")
    n = sign.shape[0]
    m_tensor = np.zeros((n, n, n))
    for i in range(n):
        for j in range(n):
            m_tensor[i, perm[i, j], j] = sign[i, j]
    return m_tensor


def sp_from_indexing_tensor(m_tensor: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
    """Recover (S, P) from an indexing tensor, or None if M is not exclusive.

    The inverse of :func:`indexing_tensor_from_sp`: succeeds only when each
    (i, j) fibre ``M[i, :, j]`` has exactly one non-zero entry equal to +-1.
    """
    m_tensor = np.asarray(m_tensor, dtype=float)
    n = m_tensor.shape[0]
    sign = np.zeros((n, n))
    perm = np.zeros((n, n), dtype=int)
    for i in range(n):
        for j in range(n):
            fibre = m_tensor[i, :, j]
            nz = np.nonzero(fibre)[0]
            if len(nz) != 1 or abs(fibre[nz[0]]) != 1.0:
                return None
            perm[i, j] = nz[0]
            sign[i, j] = fibre[nz[0]]
    return sign, perm


def random_tuples(n: int, count: int, rng: np.random.Generator) -> np.ndarray:
    """Sample ``count`` random n-tuples for property checks, shape (count, n)."""
    return rng.standard_normal((count, n))


@dataclasses.dataclass(frozen=True)
class Ring:
    """An n-tuple ring defined by its bilinear indexing tensor.

    Attributes:
        name: Human-readable symbol, e.g. ``"C"`` or ``"R_H4"``.
        m_tensor: The (n, n, n) indexing tensor ``M[i, k, j]`` of eq. (3).
        description: One-line provenance note.
    """

    name: str
    m_tensor: np.ndarray
    description: str = ""

    def __post_init__(self) -> None:
        m_tensor = np.asarray(self.m_tensor, dtype=float)
        if m_tensor.ndim != 3 or len(set(m_tensor.shape)) != 1:
            raise ValueError("indexing tensor must be cubical (n, n, n)")
        object.__setattr__(self, "m_tensor", m_tensor)

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Tuple dimension (the paper's n)."""
        return self.m_tensor.shape[0]

    @property
    def dof(self) -> int:
        """Degrees of freedom of the isomorphic matrix G (always n here)."""
        return self.n

    def sign_perm(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Return (S, P) when the ring is exclusive (paper eq. 9), else None."""
        return sp_from_indexing_tensor(self.m_tensor)

    def is_exclusive(self) -> bool:
        """True when every sub-product g_k x_j feeds exactly one output."""
        return self.sign_perm() is not None

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def isomorphic_matrix(self, g: np.ndarray) -> np.ndarray:
        """Matrix G(g) with ``g . x == G(g) @ x`` (paper eq. 4).

        ``g`` may carry leading batch dimensions: shape (..., n) maps to
        (..., n, n).
        """
        g = np.asarray(g, dtype=float)
        return np.einsum("ikj,...k->...ij", self.m_tensor, g)

    def multiply(self, g: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Ring product ``g . x`` (paper eq. 2/3); broadcasts over batches."""
        g = np.asarray(g, dtype=float)
        x = np.asarray(x, dtype=float)
        return np.einsum("ikj,...k,...j->...i", self.m_tensor, g, x)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Ring addition: component-wise vector addition."""
        return np.asarray(a, dtype=float) + np.asarray(b, dtype=float)

    def unity(self) -> np.ndarray | None:
        """The multiplicative unity ``1`` (paper condition C1), if it exists.

        Solves ``G(e) = I`` for ``e`` via least squares and verifies both
        ``e . x == x`` and ``x . e == x`` structurally.
        """
        n = self.n
        # G(e) = I  <=>  sum_k M[i,k,j] e_k = delta_ij : n^2 equations.
        coeffs = self.m_tensor.transpose(0, 2, 1).reshape(n * n, n)
        rhs = np.eye(n).reshape(n * n)
        e, *_ = np.linalg.lstsq(coeffs, rhs, rcond=None)
        if not np.allclose(coeffs @ e, rhs, atol=1e-9):
            return None
        # Left unity as well: x . e == x  <=>  sum_j M[i,k,j] e_j = delta_ik.
        coeffs_left = self.m_tensor.reshape(n * n, n)
        if not np.allclose(coeffs_left @ e, np.eye(n).reshape(n * n), atol=1e-9):
            return None
        return e

    # ------------------------------------------------------------------
    # algebraic property checks (paper Appendix B)
    # ------------------------------------------------------------------
    def is_commutative(self) -> bool:
        """Exact commutativity check: M[i, k, j] == M[i, j, k] for all i."""
        return bool(np.allclose(self.m_tensor, self.m_tensor.transpose(0, 2, 1)))

    def basis_matrices(self) -> np.ndarray:
        """Isomorphic matrices E_k of the standard-basis tuples e_k.

        Lemma B.2: ``G(g) = sum_k g_k E_k`` with ``E_k[i, j] = M[i, k, j]``.
        Returns shape (n, n, n) indexed as ``E[k]``.
        """
        return self.m_tensor.transpose(1, 0, 2).copy()

    def is_associative(self, samples: int = 8, seed: int = 0) -> bool:
        """Associativity via Lemma B.1: C == A @ B whenever c = a . b.

        Checked exactly on the bilinear structure: associativity holds iff
        ``G(a . b) == G(a) @ G(b)`` for all a, b, which is a bilinear
        identity — verifying it on a spanning set (all basis pairs) is exact.
        """
        basis = self.basis_matrices()
        n = self.n
        for k in range(n):
            for j in range(n):
                prod = self.multiply(np.eye(n)[k], np.eye(n)[j])
                if not np.allclose(self.isomorphic_matrix(prod), basis[k] @ basis[j], atol=1e-9):
                    return False
        # Redundant randomized spot-check guards indexing mistakes above.
        rng = np.random.default_rng(seed)
        for _ in range(samples):
            a, b, c = rng.standard_normal((3, n))
            left = self.multiply(self.multiply(a, b), c)
            right = self.multiply(a, self.multiply(b, c))
            if not np.allclose(left, right, atol=1e-8):
                return False
        return True

    def is_distributive(self, samples: int = 4, seed: int = 0) -> bool:
        """Distributivity holds by bilinearity; randomized sanity check."""
        rng = np.random.default_rng(seed)
        n = self.n
        for _ in range(samples):
            a, b, c = rng.standard_normal((3, n))
            if not np.allclose(self.multiply(a, b + c), self.multiply(a, b) + self.multiply(a, c)):
                return False
        return True

    def satisfies_c1(self) -> bool:
        """Condition C1: first column of G is g itself and unity is e_0."""
        sp = self.sign_perm()
        if sp is None:
            return False
        sign, perm = sp
        first_col_ok = np.array_equal(perm[:, 0], np.arange(self.n)) and np.all(sign[:, 0] == 1)
        diag_ok = np.all(np.diag(perm) == 0) and np.all(np.diag(sign) == 1)
        e = self.unity()
        unity_ok = e is not None and np.allclose(e, np.eye(self.n)[0])
        return bool(first_col_ok and diag_ok and unity_ok)

    def satisfies_c2(self) -> bool:
        """Condition C2 (cyclic mapping): P[i, P[i, j]] == j, S[i, j] == S[i, P[i, j]].

        Equivalent to commutativity for exclusive rings.
        """
        sp = self.sign_perm()
        if sp is None:
            return False
        sign, perm = sp
        n = self.n
        for i in range(n):
            for j in range(n):
                jp = perm[i, j]
                if perm[i, jp] != j or sign[i, jp] != sign[i, j]:
                    return False
        return True

    def permutation_matrices_commute(self) -> bool:
        """Condition (iii) of Theorem B.3: E_k E_j == E_j E_k for all j, k."""
        basis = self.basis_matrices()
        n = self.n
        for k in range(n):
            for j in range(k + 1, n):
                if not np.allclose(basis[k] @ basis[j], basis[j] @ basis[k], atol=1e-9):
                    return False
        return True

    # ------------------------------------------------------------------
    # diagonalizability (paper Appendix A)
    # ------------------------------------------------------------------
    def real_diagonalizer(self, seed: int = 0, trials: int = 4) -> np.ndarray | None:
        """A real T with ``T @ G(g) @ inv(T) = diag`` for *all* g, or None.

        Because ``G(g) = sum g_k E_k``, a simultaneous diagonalizer of the
        basis matrices E_k diagonalizes the whole family.  We eigendecompose
        G at a generic random g and verify on every basis matrix.
        """
        rng = np.random.default_rng(seed)
        basis = self.basis_matrices()
        for _ in range(trials):
            g = rng.standard_normal(self.n)
            mat = self.isomorphic_matrix(g)
            eigvals, eigvecs = np.linalg.eig(mat)
            if np.abs(eigvals.imag).max() > 1e-9 or np.abs(eigvecs.imag).max() > 1e-9:
                continue
            try:
                t_inv = eigvecs.real
                t_mat = np.linalg.inv(t_inv)
            except np.linalg.LinAlgError:
                continue
            ok = all(
                np.allclose(t_mat @ e_k @ t_inv, np.diag(np.diag(t_mat @ e_k @ t_inv)), atol=1e-8)
                for e_k in basis
            )
            if ok:
                return t_mat
        return None

    def matrix_rank(self, seed: int = 0) -> int:
        """rank(G(g)) at a generic g — the paper's rank(G)."""
        rng = np.random.default_rng(seed)
        return int(np.linalg.matrix_rank(self.isomorphic_matrix(rng.standard_normal(self.n))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ring(name={self.name!r}, n={self.n})"
