"""The named rings of the paper (Table I) with verified fast algorithms.

Every entry bundles a :class:`~repro.rings.base.Ring` with its fast
multiplication algorithm and the adder-friendly *hardware* transform
variant used for fixed-point bitwidth analysis (paper Fig. 3 / Table I).

Catalog (paper symbols):

====== ======================= ==========================================
key    paper symbol            construction
====== ======================= ==========================================
real   R                       real numbers (n = 1)
ri2    R_I2                    identity ring, component-wise products
ri4    R_I4                    identity ring
ri8    R_I8                    identity ring (used for 8x compression)
c      C                       complex field, 3-mult fast algorithm
rh2    R_H2                    2-tuple XOR ring, Hadamard-diagonalized
h      H                       quaternions, Howell-Lafon 8-mult algorithm
rh4    R_H4                    4-tuple XOR (dyadic-convolution) ring
ro4    R_O4                    XOR permutation with Hadamard sign pattern,
                               diagonalized by the reflected Householder O
rh4i   R_H4-I                  plain circulant (CirCNN-alike), 5 mults
ro4i   R_O4-I                  O-conjugated circulant, 5 mults
rh4ii  R_H4-II                 circulant permutation, sign variant (5 mults)
ro4ii  R_O4-II                 circulant permutation, sign variant (5 mults)
====== ======================= ==========================================

The sign patterns of R_H4-II / R_O4-II come from this repo's own
proper-ring search (:mod:`repro.rings.search`); the paper's Table II pins
exact labels we cannot recover from the text, so the assignment between
the two remaining search results is a documented reconstruction choice.
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from .base import Ring, indexing_tensor_from_sp
from .fast import FastAlgorithm, fast_from_cp, identity_fast, solve_reconstruction
from .nonlinearity import (
    ComponentReLU,
    RingNonlinearity,
    hadamard_relu,
    householder_relu,
)
from .transforms import hadamard, reflected_householder

__all__ = ["RingSpec", "get_ring", "ring_names", "table1_rings", "proposed_pair", "proposed_pair_o4"]


@dataclasses.dataclass(frozen=True)
class RingSpec:
    """A catalog entry: ring + fast algorithm + hardware-analysis metadata.

    Attributes:
        key: Catalog lookup key (lowercase).
        paper_symbol: Symbol used in the paper, e.g. ``"R_H4-I"``.
        ring: The algebraic structure.
        fast: Exact fast multiplication algorithm (m products).
        hw_fast: Adder-friendly transform variant used for bitwidth
            analysis; entries of Tg/Tx are in {-1, 0, +1} up to per-row
            power-of-two scales that hardware folds into Q-formats.  For
            CP-synthesized rings this is the complexity-equivalent member
            of the same family (documented per entry).
        family: One of ``real``, ``identity``, ``xor``, ``circulant``,
            ``division``.
        grank: The paper's generic-rank figure for this ring's M.
        notes: Provenance remarks.
    """

    key: str
    paper_symbol: str
    ring: Ring
    fast: FastAlgorithm
    hw_fast: FastAlgorithm
    family: str
    grank: int
    notes: str = ""

    @property
    def n(self) -> int:
        """Tuple dimension."""
        return self.ring.n

    @property
    def num_products(self) -> int:
        """Real multiplications per ring product (the paper's m)."""
        return self.fast.num_products

    def default_nonlinearity(self) -> RingNonlinearity:
        """The non-linearity the paper pairs with this ring.

        Identity rings use the directional ReLU f_H (the proposed design);
        every other ring uses the conventional component-wise ReLU.
        """
        if self.family == "identity" and self.n > 1:
            return hadamard_relu(self.n)
        return ComponentReLU(n=self.n)


# ----------------------------------------------------------------------
# sign / permutation patterns
# ----------------------------------------------------------------------
def _xor_perm(n: int) -> np.ndarray:
    return np.array([[i ^ j for j in range(n)] for i in range(n)])


def _circulant_perm(n: int) -> np.ndarray:
    return np.array([[(i - j) % n for j in range(n)] for i in range(n)])


_QUATERNION_SIGN = np.array(
    [[1, -1, -1, -1], [1, 1, -1, 1], [1, 1, 1, -1], [1, -1, 1, 1]], dtype=float
)
# Sign pattern of R_O4 (and of R_O4-I on the circulant permutation): the
# 4x4 Hadamard matrix itself, arising from conjugation by O (search result).
_HADAMARD_SIGN = np.array(
    [[1, 1, 1, 1], [1, 1, -1, -1], [1, -1, 1, -1], [1, -1, -1, 1]], dtype=float
)
# Remaining two circulant-permutation sign variants found by the search.
_CIRC_SIGN_II = np.array(
    [[1, -1, 1, -1], [1, 1, 1, 1], [1, -1, 1, -1], [1, 1, 1, 1]], dtype=float
)
_CIRC_SIGN_II_O = np.array(
    [[1, -1, 1, -1], [1, 1, -1, -1], [1, 1, 1, 1], [1, -1, -1, 1]], dtype=float
)


# ----------------------------------------------------------------------
# hand-verified fast algorithms
# ----------------------------------------------------------------------
def _complex_fast() -> FastAlgorithm:
    """3-mult complex product: z0 = g0 x0 - g1 x1, z1 = g0 x1 + g1 x0."""
    return FastAlgorithm(
        tg=np.array([[1, 0], [-1, 1], [1, 1]], dtype=float),
        tx=np.array([[1, 1], [1, 0], [0, 1]], dtype=float),
        tz=np.array([[1, 0, -1], [1, 1, 0]], dtype=float),
    )


def _quaternion_fast() -> FastAlgorithm:
    """Howell-Lafon 8-multiplication quaternion product [20]."""
    tg = np.array(
        [
            [1, 1, 0, 0],
            [0, 0, -1, 1],
            [-1, 1, 0, 0],
            [0, 0, 1, 1],
            [0, 1, 0, 1],
            [0, 1, 0, -1],
            [1, 0, 1, 0],
            [1, 0, -1, 0],
        ],
        dtype=float,
    )
    tx = np.array(
        [
            [1, 1, 0, 0],
            [0, 0, 1, -1],
            [0, 0, 1, 1],
            [-1, 1, 0, 0],
            [0, 1, 1, 0],
            [0, 1, -1, 0],
            [1, 0, 0, -1],
            [1, 0, 0, 1],
        ],
        dtype=float,
    )
    tz = 0.5 * np.array(
        [
            [0, 2, 0, 0, -1, -1, 1, 1],
            [2, 0, 0, 0, -1, -1, -1, -1],
            [0, 0, -2, 0, 1, -1, 1, -1],
            [0, 0, 0, -2, 1, -1, -1, 1],
        ],
        dtype=float,
    )
    return FastAlgorithm(tg=tg, tx=tx, tz=tz)


def _xor_fast(n: int) -> FastAlgorithm:
    """Dyadic convolution via Hadamard: G = (1/n) H diag(H g) H."""
    h_mat = hadamard(n)
    return FastAlgorithm(tg=h_mat / n, tx=h_mat.copy(), tz=h_mat.copy())


def _householder_fast() -> FastAlgorithm:
    """R_O4 diagonalization: G = (1/4) O^t diag(O g) O."""
    o_mat = reflected_householder(4)
    return FastAlgorithm(tg=o_mat / 4.0, tx=o_mat.copy(), tz=o_mat.T.copy())


def _circulant_fast() -> FastAlgorithm:
    """5-mult circular convolution via a real DFT factorization.

    Eigen-components: DC and Nyquist (one real mult each) plus a single
    conjugate complex pair handled with the 3-mult complex algorithm.
    """
    tg = np.array(
        [
            [1, 1, 1, 1],
            [1, -1, 1, -1],
            [1, 0, -1, 0],
            [-1, 1, 1, -1],
            [1, 1, -1, -1],
        ],
        dtype=float,
    )
    tx = np.array(
        [
            [1, 1, 1, 1],
            [1, -1, 1, -1],
            [1, 1, -1, -1],
            [1, 0, -1, 0],
            [0, 1, 0, -1],
        ],
        dtype=float,
    )
    tz = 0.25 * np.array(
        [
            [1, 1, 2, 0, -2],
            [1, -1, 2, 2, 0],
            [1, 1, -2, 0, 2],
            [1, -1, -2, -2, 0],
        ],
        dtype=float,
    )
    return FastAlgorithm(tg=tg, tx=tx, tz=tz)


def _conjugated_circulant_fast(ring: Ring) -> FastAlgorithm:
    """Fast algorithm for an orthogonal conjugate of the circulant ring.

    For G'(g') = Q C(h) Q^t with Q = O/2 the transforms conjugate as
    Tx' = Tx Q^t, Tz' = Q Tz, and Tg' = Tg L where h = L g' is recovered
    from the basis matrices.  Tz' is re-solved exactly for robustness.
    """
    q_mat = reflected_householder(4) / 2.0
    base = _circulant_fast()
    e0 = np.eye(4)[0]
    l_mat = np.stack(
        [q_mat.T @ ring.basis_matrices()[k] @ q_mat @ e0 for k in range(4)], axis=1
    )
    algo = solve_reconstruction(ring, base.tg @ l_mat, base.tx @ q_mat.T)
    if algo is None:
        raise RuntimeError("conjugated circulant fast algorithm failed to verify")
    return algo


# ----------------------------------------------------------------------
# catalog construction
# ----------------------------------------------------------------------
def _make_identity(n: int) -> RingSpec:
    m_tensor = np.zeros((n, n, n))
    for i in range(n):
        m_tensor[i, i, i] = 1.0
    ring = Ring(f"R_I{n}" if n > 1 else "R", m_tensor)
    algo = identity_fast(n)
    return RingSpec(
        key="real" if n == 1 else f"ri{n}",
        paper_symbol="R" if n == 1 else f"R_I{n}",
        ring=ring,
        fast=algo,
        hw_fast=algo,
        family="real" if n == 1 else "identity",
        grank=n,
        notes="diagonal G; identity transforms; pairs with the directional ReLU f_H",
    )


def _make_xor(n: int) -> RingSpec:
    ring = Ring(f"R_H{n}", indexing_tensor_from_sp(np.ones((n, n)), _xor_perm(n)))
    algo = _xor_fast(n)
    hw = FastAlgorithm(tg=hadamard(n), tx=hadamard(n), tz=hadamard(n))
    return RingSpec(
        key=f"rh{n}",
        paper_symbol=f"R_H{n}",
        ring=ring,
        fast=algo,
        hw_fast=hw,
        family="xor",
        grank=n,
        notes="dyadic convolution, diagonalized by the Hadamard transform (HadaNet-alike)",
    )


def _make_complex() -> RingSpec:
    ring = Ring(
        "C", indexing_tensor_from_sp(np.array([[1, -1], [1, 1]]), _xor_perm(2))
    )
    algo = _complex_fast()
    return RingSpec(
        key="c",
        paper_symbol="C",
        ring=ring,
        fast=algo,
        hw_fast=algo,
        family="division",
        grank=3,
        notes="complex field; rotation matrix G; grank 3 > rank 2 (not R-diagonalizable)",
    )


def _make_quaternion() -> RingSpec:
    ring = Ring("H", indexing_tensor_from_sp(_QUATERNION_SIGN, _xor_perm(4)))
    algo = _quaternion_fast()
    return RingSpec(
        key="h",
        paper_symbol="H",
        ring=ring,
        fast=algo,
        hw_fast=algo,
        family="division",
        grank=8,
        notes="quaternions; non-commutative; Howell-Lafon 8-mult algorithm [20]",
    )


def _make_ro4() -> RingSpec:
    ring = Ring("R_O4", indexing_tensor_from_sp(_HADAMARD_SIGN, _xor_perm(4)))
    algo = _householder_fast()
    o_mat = reflected_householder(4)
    hw = FastAlgorithm(tg=o_mat, tx=o_mat.copy(), tz=o_mat.T.copy())
    if not algo.verify(ring):
        raise RuntimeError("R_O4 fast algorithm failed verification")
    return RingSpec(
        key="ro4",
        paper_symbol="R_O4",
        ring=ring,
        fast=algo,
        hw_fast=hw,
        family="xor",
        grank=4,
        notes="XOR permutation, Hadamard sign pattern; diagonalized by reflected Householder O",
    )


def _make_circulant() -> RingSpec:
    ring = Ring("R_H4-I", indexing_tensor_from_sp(np.ones((4, 4)), _circulant_perm(4)))
    algo = _circulant_fast()
    return RingSpec(
        key="rh4i",
        paper_symbol="R_H4-I",
        ring=ring,
        fast=algo,
        hw_fast=algo.fold_scale_into_filter(),
        family="circulant",
        grank=5,
        notes="circular convolution as CirCNN; five real mults via complex Fourier transform",
    )


def _make_circulant_o() -> RingSpec:
    ring = Ring("R_O4-I", indexing_tensor_from_sp(_HADAMARD_SIGN, _circulant_perm(4)))
    algo = _conjugated_circulant_fast(ring)
    return RingSpec(
        key="ro4i",
        paper_symbol="R_O4-I",
        ring=ring,
        fast=algo,
        hw_fast=_circulant_fast(),  # complexity-equivalent family member
        family="circulant",
        grank=5,
        notes="O-conjugate of the circulant ring (verified numerically by the search)",
    )


def _make_circulant_variant(key: str, symbol: str, sign: np.ndarray, note: str) -> RingSpec:
    ring = Ring(symbol, indexing_tensor_from_sp(sign, _circulant_perm(4)))
    algo = fast_from_cp(ring, rank=5, seed=7, restarts=40)
    if algo is None:  # pragma: no cover - deterministic construction
        raise RuntimeError(f"CP synthesis failed for {symbol}")
    return RingSpec(
        key=key,
        paper_symbol=symbol,
        ring=ring,
        fast=algo,
        hw_fast=_circulant_fast(),  # complexity-equivalent family member
        family="circulant",
        grank=5,
        notes=note,
    )


_BUILDERS = {
    "real": lambda: _make_identity(1),
    "ri2": lambda: _make_identity(2),
    "ri4": lambda: _make_identity(4),
    "ri8": lambda: _make_identity(8),
    "c": _make_complex,
    "h": _make_quaternion,
    "rh2": lambda: _make_xor(2),
    "rh4": lambda: _make_xor(4),
    "ro4": _make_ro4,
    "rh4i": _make_circulant,
    "ro4i": _make_circulant_o,
    "rh4ii": lambda: _make_circulant_variant(
        "rh4ii",
        "R_H4-II",
        _CIRC_SIGN_II,
        "circulant-permutation sign variant from the proper-ring search "
        "(assignment between II-labels is a reconstruction choice)",
    ),
    "ro4ii": lambda: _make_circulant_variant(
        "ro4ii",
        "R_O4-II",
        _CIRC_SIGN_II_O,
        "circulant-permutation sign variant from the proper-ring search "
        "(assignment between II-labels is a reconstruction choice)",
    ),
}

_ALIASES = {
    "r": "real",
    "r_i2": "ri2",
    "r_i4": "ri4",
    "r_i8": "ri8",
    "r_h2": "rh2",
    "r_h4": "rh4",
    "r_o4": "ro4",
    "r_h4-i": "rh4i",
    "r_h4-ii": "rh4ii",
    "r_o4-i": "ro4i",
    "r_o4-ii": "ro4ii",
}


def ring_names() -> list[str]:
    """All canonical catalog keys."""
    return sorted(_BUILDERS)


@functools.lru_cache(maxsize=None)
def _build(key: str) -> RingSpec:
    spec = _BUILDERS[key]()
    if not spec.fast.verify(spec.ring, atol=1e-6):
        raise RuntimeError(f"catalog ring {key} has an invalid fast algorithm")
    return spec


def get_ring(name: str) -> RingSpec:
    """Fetch a catalog entry by key or paper symbol (case-insensitive)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _BUILDERS:
        raise KeyError(f"unknown ring {name!r}; known: {ring_names()}")
    return _build(key)


def table1_rings(n: int) -> list[RingSpec]:
    """The rings compared in the paper's Table I for a given n."""
    if n == 2:
        return [get_ring(k) for k in ("ri2", "rh2", "c")]
    if n == 4:
        return [
            get_ring(k)
            for k in ("ri4", "rh4", "ro4", "rh4i", "rh4ii", "ro4i", "ro4ii", "h")
        ]
    raise ValueError("the paper tabulates n = 2 and n = 4")


def proposed_pair(n: int) -> tuple[RingSpec, RingNonlinearity]:
    """The paper's proposed ring (R_I, f_H) for a given tuple dimension."""
    spec = get_ring(f"ri{n}") if n > 1 else get_ring("real")
    nonlin = hadamard_relu(n) if n > 1 else ComponentReLU(n=1)
    return spec, nonlin


def proposed_pair_o4() -> tuple[RingSpec, RingNonlinearity]:
    """The alternative n = 4 pair (R_I4, f_O4) (paper Section III-E)."""
    return get_ring("ri4"), householder_relu()
