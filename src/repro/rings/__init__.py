"""Ring algebra for neural networks (paper Section III)."""

from . import backprop, catalog, properties, search
from .base import Ring, indexing_tensor_from_sp, sp_from_indexing_tensor
from .catalog import RingSpec, get_ring, proposed_pair, ring_names, table1_rings
from .fast import FastAlgorithm, identity_fast, solve_reconstruction, synthesize_fast
from .grank import estimate_grank
from .nonlinearity import ComponentReLU, DirectionalReLU, hadamard_relu, householder_relu
from .transforms import hadamard, reflected_householder

__all__ = [
    "backprop",
    "catalog",
    "properties",
    "search",
    "Ring",
    "indexing_tensor_from_sp",
    "sp_from_indexing_tensor",
    "RingSpec",
    "get_ring",
    "proposed_pair",
    "ring_names",
    "table1_rings",
    "FastAlgorithm",
    "identity_fast",
    "solve_reconstruction",
    "synthesize_fast",
    "estimate_grank",
    "ComponentReLU",
    "DirectionalReLU",
    "hadamard_relu",
    "householder_relu",
    "hadamard",
    "reflected_householder",
]
