"""Backprop expressed in ring terminology (paper Section IV-B).

Training treats a RingCNN as the isomorphic real-valued CNN, so
``grad_x L = G(g)^T grad_z L``.  For the paper's rings this transpose is
itself a ring multiplication by an *adjoint weight*:

* ``R_I``, ``R_H``, ``R_O4`` — G is symmetric, so ``grad_x = g . grad_z``;
* ``R_H4-I`` (circulant) — ``grad_x = g_c . grad_z`` with the circular
  fold ``g_c = (g0, g3, g2, g1)``;
* ``H`` (quaternions) — ``grad_x = g* . grad_z`` with the quaternion
  conjugate ``g* = (g0, -g1, -g2, -g3)``.

:func:`adjoint_weight` recovers the adjoint for *any* ring by solving the
linear system ``G(h) = G(g)^T`` over the basis matrices (when solvable).
"""

from __future__ import annotations

import numpy as np

from .catalog import RingSpec

__all__ = [
    "adjoint_weight",
    "circular_fold",
    "quaternion_conjugate",
    "grad_input",
    "verify_backprop_identity",
]


def circular_fold(g: np.ndarray) -> np.ndarray:
    """g_c: index reversal modulo n — the circulant ring's adjoint weight."""
    g = np.asarray(g, dtype=float)
    return np.concatenate([g[:1], g[:0:-1]])


def quaternion_conjugate(g: np.ndarray) -> np.ndarray:
    """g*: negate the vector part — the quaternion adjoint weight."""
    g = np.asarray(g, dtype=float)
    out = -g
    out[0] = g[0]
    return out


def adjoint_weight(spec: RingSpec, g: np.ndarray, atol: float = 1e-9) -> np.ndarray | None:
    """Solve ``G(h) = G(g)^T`` for h, or None if the transpose leaves the ring.

    Since ``G(h) = sum_k h_k E_k`` the problem is linear in h; exact
    solvability means the gradient flow of Backprop is itself a ring
    multiplication (the paper's Section IV-B observation).
    """
    g = np.asarray(g, dtype=float)
    n = spec.n
    basis = spec.ring.basis_matrices()  # (n, n, n), E_k
    design = basis.reshape(n, n * n).T  # columns are vec(E_k)
    target = spec.ring.isomorphic_matrix(g).T.reshape(n * n)
    h, *_ = np.linalg.lstsq(design, target, rcond=None)
    if np.max(np.abs(design @ h - target)) > atol:
        return None
    return h


def grad_input(spec: RingSpec, g: np.ndarray, grad_z: np.ndarray) -> np.ndarray:
    """grad_x L = G(g)^T grad_z L, computed in matrix form (ground truth)."""
    return np.einsum(
        "...ji,...j->...i", spec.ring.isomorphic_matrix(np.asarray(g, dtype=float)),
        np.asarray(grad_z, dtype=float),
    )


def verify_backprop_identity(
    spec: RingSpec, seed: int = 0, samples: int = 8, atol: float = 1e-8
) -> bool:
    """Check grad_x = adjoint(g) . grad_z on random weights/gradients."""
    rng = np.random.default_rng(seed)
    for _ in range(samples):
        g = rng.standard_normal(spec.n)
        grad_z = rng.standard_normal(spec.n)
        h = adjoint_weight(spec, g)
        if h is None:
            return False
        lhs = spec.ring.multiply(h, grad_z)
        rhs = grad_input(spec, g, grad_z)
        if not np.allclose(lhs, rhs, atol=atol):
            return False
    return True
