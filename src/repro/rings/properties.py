"""Ring resource analysis — reproduces the paper's Table I.

For each ring we report the degrees of freedom of G, the number of real
multiplications m of the fast algorithm, and the fixed-point multiplier
complexity.  Following Section III-D, the circuit complexity of one
multiplier is approximated by the product of its input bitwidths, and the
transforms Tg / Tx widen the inputs of the component-wise products
(Fig. 3); efficiencies are relative to the real-valued baseline which
needs ``n^2`` multipliers of ``w x w`` bits per n-tuple in/out pair.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .catalog import RingSpec, table1_rings
from .transforms import transform_bit_growth

__all__ = [
    "RingProperties",
    "row_bit_growth",
    "product_bitwidths",
    "analyze_ring",
    "table1",
    "format_table1",
]


def row_bit_growth(row: np.ndarray) -> int:
    """Bit growth of a single transform row (see transform_bit_growth)."""
    return transform_bit_growth(np.asarray(row, dtype=float).reshape(1, -1))


def _normalized_rows(mat: np.ndarray) -> np.ndarray:
    """Scale each row so its smallest non-zero magnitude is 1.

    Hardware folds per-row power-of-two scales into Q-formats; bitwidth
    growth is a property of the +-1 adder pattern, not the scale.
    """
    mat = np.asarray(mat, dtype=float).copy()
    for idx, row in enumerate(mat):
        nz = np.abs(row[np.abs(row) > 1e-12])
        if len(nz):
            mat[idx] = row / nz.min()
    return mat


def product_bitwidths(
    spec: RingSpec, feature_bits: int = 8, weight_bits: int = 8
) -> list[tuple[int, int]]:
    """Input bitwidths (wg_p, wx_p) of each component-wise product."""
    tg = _normalized_rows(spec.hw_fast.tg)
    tx = _normalized_rows(spec.hw_fast.tx)
    widths = []
    for p in range(spec.hw_fast.num_products):
        wg = weight_bits + row_bit_growth(tg[p])
        wx = feature_bits + row_bit_growth(tx[p])
        widths.append((wg, wx))
    return widths


@dataclasses.dataclass(frozen=True)
class RingProperties:
    """One Table I row.

    Attributes:
        key: Catalog key.
        symbol: Paper symbol.
        n: Tuple dimension.
        dof: Real-valued weights per G (always n for rings; n^2 for R^nxn).
        num_products: m — real multiplications of the fast algorithm.
        grank: Generic rank of the indexing tensor.
        rank_g: rank(G) at generic weights.
        diagonalizable: Whether G is diagonalizable over R.
        commutative: Ring commutativity.
        storage_efficiency: Weight-storage gain vs real-valued (= n).
        mult_efficiency: Multiplication-count gain (= n^2 / m).
        complexity_8bit: Sum over products of wg_p * wx_p.
        efficiency_8bit: n^2 * w^2 / complexity_8bit — the paper's
            rightmost Table I column.
    """

    key: str
    symbol: str
    n: int
    dof: int
    num_products: int
    grank: int
    rank_g: int
    diagonalizable: bool
    commutative: bool
    storage_efficiency: float
    mult_efficiency: float
    complexity_8bit: int
    efficiency_8bit: float


def analyze_ring(
    spec: RingSpec, feature_bits: int = 8, weight_bits: int = 8
) -> RingProperties:
    """Compute the paper's Table I metrics for one catalog ring."""
    n = spec.n
    widths = product_bitwidths(spec, feature_bits=feature_bits, weight_bits=weight_bits)
    complexity = int(sum(wg * wx for wg, wx in widths))
    baseline = n * n * feature_bits * weight_bits
    return RingProperties(
        key=spec.key,
        symbol=spec.paper_symbol,
        n=n,
        dof=spec.ring.dof,
        num_products=spec.fast.num_products,
        grank=spec.grank,
        rank_g=spec.ring.matrix_rank(),
        diagonalizable=spec.ring.real_diagonalizer() is not None,
        commutative=spec.ring.is_commutative(),
        storage_efficiency=float(n),
        mult_efficiency=n * n / spec.fast.num_products,
        complexity_8bit=complexity,
        efficiency_8bit=baseline / complexity,
    )


def table1(feature_bits: int = 8, weight_bits: int = 8) -> list[RingProperties]:
    """All Table I rows for n = 2 and n = 4."""
    rows = []
    for n in (2, 4):
        for spec in table1_rings(n):
            rows.append(analyze_ring(spec, feature_bits, weight_bits))
    return rows


def format_table1(rows: list[RingProperties] | None = None) -> str:
    """Render Table I as printable text."""
    rows = rows if rows is not None else table1()
    header = (
        f"{'ring':<8} {'n':>2} {'DoF':>4} {'m':>3} {'grank':>5} {'diag/R':>6} "
        f"{'comm':>5} {'store-eff':>9} {'mult-eff':>8} {'cmplx8b':>8} {'eff8b':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.symbol:<8} {row.n:>2} {row.dof:>4} {row.num_products:>3} "
            f"{row.grank:>5} {str(row.diagonalizable):>6} {str(row.commutative):>5} "
            f"{row.storage_efficiency:>8.1f}x {row.mult_efficiency:>7.2f}x "
            f"{row.complexity_8bit:>8} {row.efficiency_8bit:>5.2f}x"
        )
    return "\n".join(lines)
