"""Ring non-linearities (paper Sections III-A and III-E).

Two families:

* component-wise ReLU ``f_cw`` (paper eq. 5) — the conventional choice,
  which leaves tuple components un-mixed; and
* directional ReLU ``f_dir(y) = U f_cw(V y)`` (paper Section III-E) — the
  proposed co-design that performs the ReLU along rotated axes, mixing
  information between components so that the identity ring R_I recovers
  full model capacity.  The paper's instance is ``f_H(y) = H f_cw(H y)``;
  ``f_O4`` uses the reflected Householder matrix instead.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .transforms import hadamard, reflected_householder

__all__ = [
    "RingNonlinearity",
    "component_relu",
    "ComponentReLU",
    "DirectionalReLU",
    "hadamard_relu",
    "householder_relu",
]


def component_relu(y: np.ndarray) -> np.ndarray:
    """Component-wise ReLU on the trailing tuple axis (paper eq. 5)."""
    return np.maximum(0.0, np.asarray(y, dtype=float))


@dataclasses.dataclass(frozen=True)
class RingNonlinearity:
    """Base class: a unary non-linearity acting on trailing n-tuples."""

    n: int
    name: str = "f"

    def __call__(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def mixes_components(self) -> bool:
        """Whether information flows between tuple components."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class ComponentReLU(RingNonlinearity):
    """f_cw: independent real-valued ReLU per component."""

    name: str = "f_cw"

    def __call__(self, y: np.ndarray) -> np.ndarray:
        return component_relu(y)

    def mixes_components(self) -> bool:
        return False


@dataclasses.dataclass(frozen=True)
class DirectionalReLU(RingNonlinearity):
    """f_dir(y) = U f_cw(V y) (paper Section III-E).

    Attributes:
        u_mat: (n, n) output-axis matrix U.
        v_mat: (n, n) direction matrix V.

    Notes:
        When U = V = H the paper writes f_H (eq. 10).  We normalise so
        that U V = I whenever V is a scaled orthogonal matrix — i.e. the
        composition is the identity on the positive cone, matching the
        fixed-point hardware where the 1/n factor is a Q-format shift.
    """

    u_mat: np.ndarray = None  # type: ignore[assignment]
    v_mat: np.ndarray = None  # type: ignore[assignment]
    name: str = "f_dir"

    def __post_init__(self) -> None:
        u_mat = np.asarray(self.u_mat, dtype=float)
        v_mat = np.asarray(self.v_mat, dtype=float)
        if u_mat.shape != (self.n, self.n) or v_mat.shape != (self.n, self.n):
            raise ValueError("U and V must be (n, n)")
        object.__setattr__(self, "u_mat", u_mat)
        object.__setattr__(self, "v_mat", v_mat)

    def __call__(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=float)
        rotated = np.einsum("ij,...j->...i", self.v_mat, y)
        return np.einsum("ij,...j->...i", self.u_mat, np.maximum(0.0, rotated))

    def mixes_components(self) -> bool:
        return True


def hadamard_relu(n: int, normalized: bool = True) -> DirectionalReLU:
    """The paper's f_H(y) = H f_cw(H y) (eq. 10).

    With ``normalized=True`` the reconstruction uses H/n so that
    f_H degenerates to the identity on inputs already in the positive
    H-cone; hardware realises the 1/n as a Q-format right-shift (Fig. 8).
    """
    h_mat = hadamard(n)
    u_mat = h_mat / n if normalized else h_mat
    return DirectionalReLU(n=n, u_mat=u_mat, v_mat=h_mat, name="f_H")


def householder_relu(normalized: bool = True) -> DirectionalReLU:
    """The n = 4 variant f_O4(y) = O f_cw(O y) (paper Section III-E)."""
    o_mat = reflected_householder(4)
    u_mat = o_mat.T / 4 if normalized else o_mat
    return DirectionalReLU(n=4, u_mat=u_mat, v_mat=o_mat, name="f_O4")
