"""Tensor generic-rank estimation via randomized CP-ALS (paper Section III-C).

The paper evaluates ``grank(M(S; P))`` with the CP-ARLS algorithm [6] in
MATLAB to apply condition (C3).  We implement the same idea in numpy:
alternating-least-squares CP decomposition with random restarts; the
generic rank estimate is the smallest rank whose best fit is (numerically)
exact.  For the tiny tensors involved (n <= 8, so at most 8x8x8) this is
fast and reliable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cp_als", "cp_decompose", "cp_fit", "estimate_grank"]


def _unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding (matricization) of a 3-way tensor."""
    return np.moveaxis(tensor, mode, 0).reshape(tensor.shape[mode], -1)


def _khatri_rao(a_fac: np.ndarray, b_fac: np.ndarray) -> np.ndarray:
    """Column-wise Khatri-Rao product of two (dim, rank) factor matrices."""
    rank = a_fac.shape[1]
    return (a_fac[:, None, :] * b_fac[None, :, :]).reshape(-1, rank)


def cp_als(
    tensor: np.ndarray,
    rank: int,
    rng: np.random.Generator,
    iters: int = 400,
    tol: float = 1e-12,
) -> tuple[list[np.ndarray], float]:
    """One CP-ALS run; returns factors [A, B, C] and relative squared error.

    ``tensor[i, k, j] ~= sum_p A[i, p] B[k, p] C[j, p]``.
    """
    tensor = np.asarray(tensor, dtype=float)
    dims = tensor.shape
    factors = [rng.standard_normal((d, rank)) for d in dims]
    norm_sq = float(np.sum(tensor**2))
    if norm_sq == 0.0:
        return factors, 0.0
    last_err = np.inf
    for _ in range(iters):
        for mode in range(3):
            others = [factors[m] for m in range(3) if m != mode]
            # Khatri-Rao ordering must match the unfolding's column order.
            kr = _khatri_rao(others[0], others[1])
            unfolded = _unfold(tensor, mode)
            sol, *_ = np.linalg.lstsq(kr, unfolded.T, rcond=None)
            factors[mode] = sol.T
        approx = np.einsum("ip,kp,jp->ikj", *factors)
        err = float(np.sum((tensor - approx) ** 2) / norm_sq)
        if abs(last_err - err) < tol and err < 1e-10:
            break
        last_err = err
    return factors, last_err


def cp_fit(tensor: np.ndarray, rank: int, seed: int = 0, restarts: int = 20) -> float:
    """Best relative squared error over random restarts at a given rank."""
    rng = np.random.default_rng(seed)
    best = np.inf
    for _ in range(restarts):
        _, err = cp_als(tensor, rank, rng)
        best = min(best, err)
        if best < 1e-16:
            break
    return best


def cp_decompose(
    tensor: np.ndarray, rank: int, seed: int = 0, restarts: int = 20, tol: float = 1e-10
) -> list[np.ndarray] | None:
    """Exact rank-``rank`` CP factors if attainable, else None."""
    rng = np.random.default_rng(seed)
    for _ in range(restarts):
        factors, err = cp_als(tensor, rank, rng)
        if err < tol:
            return factors
    return None


def estimate_grank(
    tensor: np.ndarray,
    min_rank: int = 1,
    max_rank: int | None = None,
    seed: int = 0,
    restarts: int = 20,
    tol: float = 1e-10,
) -> int:
    """Smallest rank with (numerically) exact CP fit — the paper's grank.

    Randomized ALS can under-report fit quality (local minima), so the
    estimate is an upper bound on the true generic rank; restarts make
    over-estimation unlikely for these tiny +-1 tensors.
    """
    tensor = np.asarray(tensor, dtype=float)
    cap = max_rank if max_rank is not None else int(np.prod(tensor.shape[:2]))
    for rank in range(min_rank, cap + 1):
        if cp_fit(tensor, rank, seed=seed, restarts=restarts) < tol:
            return rank
    return cap
