"""Structured transform matrices used by fast ring multiplication.

The paper's fast algorithms (Section III-B) are built from matrices with
only simple +-1 coefficients so that, in hardware, they reduce to adder
trees: the Hadamard transform H, the reflected Householder matrix O
(Section III-C), and real-valued DFT building blocks for circulant rings.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "hadamard",
    "reflected_householder",
    "is_signed_matrix",
    "transform_bit_growth",
]


def hadamard(n: int) -> np.ndarray:
    """Sylvester-construction Hadamard matrix of order n (n a power of two).

    Entries are +-1 and ``H @ H.T == n * I``.
    """
    if n < 1 or n & (n - 1):
        raise ValueError(f"Hadamard order must be a power of two, got {n}")
    h_mat = np.array([[1.0]])
    while h_mat.shape[0] < n:
        h_mat = np.block([[h_mat, h_mat], [h_mat, -h_mat]])
    return h_mat


def reflected_householder(n: int = 4) -> np.ndarray:
    """The paper's reflected Householder matrix O = 2 L1 (I - 2 v v^t).

    With ``L1 = diag(1, -1, ..., -1)`` and ``v = (1/2)(1, ..., 1)^t`` for
    n = 4.  For general n we keep ``v = 1/sqrt(n)`` so that O has +-1
    entries only when n = 4 (the paper's case); O always satisfies
    ``O @ O.T == n * I`` for n = 4.
    """
    if n != 4:
        raise ValueError("the paper defines O only for n = 4")
    l1_mat = np.diag([1.0, -1.0, -1.0, -1.0])
    v = np.full((4, 1), 0.5)
    o_mat = 2.0 * l1_mat @ (np.eye(4) - 2.0 * v @ v.T)
    return o_mat


def is_signed_matrix(mat: np.ndarray, atol: float = 1e-9) -> bool:
    """True when every entry of ``mat`` is in {-1, 0, +1}."""
    mat = np.asarray(mat, dtype=float)
    return bool(np.all(np.min(np.abs(mat[..., None] - np.array([-1.0, 0.0, 1.0])), axis=-1) < atol))


def transform_bit_growth(t_mat: np.ndarray) -> int:
    """Worst-case bit growth of a fixed-point vector through transform T.

    An output component is ``sum_j T[i, j] x_j``; its magnitude grows by at
    most ``max_i sum_j |T[i, j]|``, i.e. ``ceil(log2(.))`` extra integer
    bits (paper Section III-D / Fig. 3).  Fractional +-1/2 style entries do
    not *add* bits; growth below 1 is clamped to zero.
    """
    t_mat = np.asarray(t_mat, dtype=float)
    worst = float(np.max(np.sum(np.abs(t_mat), axis=1)))
    if worst <= 1.0:
        return 0
    return int(np.ceil(np.log2(worst)))
