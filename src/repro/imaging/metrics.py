"""Image-quality metrics: PSNR (the paper's metric) and SSIM."""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["psnr", "average_psnr", "ssim"]


def psnr(pred: np.ndarray, target: np.ndarray, shave: int = 0, peak: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB on [0, peak] images.

    Args:
        shave: Border pixels excluded from the computation (SR convention).
    """
    pred = np.asarray(pred, dtype=float)
    target = np.asarray(target, dtype=float)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    if shave:
        pred = pred[..., shave:-shave, shave:-shave]
        target = target[..., shave:-shave, shave:-shave]
    mse = float(np.mean((np.clip(pred, 0, peak) - target) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(peak**2 / mse)


def average_psnr(
    preds: np.ndarray, targets: np.ndarray, shave: int = 0, peak: float = 1.0
) -> float:
    """Mean per-image PSNR over a stack (the paper averages over test sets)."""
    values = [psnr(p, t, shave=shave, peak=peak) for p, t in zip(preds, targets, strict=True)]
    finite = [v for v in values if np.isfinite(v)]
    return float(np.mean(finite)) if finite else float("inf")


def ssim(
    pred: np.ndarray, target: np.ndarray, peak: float = 1.0, sigma: float = 1.5
) -> float:
    """Structural similarity with a Gaussian window (single channel)."""
    pred = np.asarray(pred, dtype=float)
    target = np.asarray(target, dtype=float)
    c1 = (0.01 * peak) ** 2
    c2 = (0.03 * peak) ** 2
    mu_p = ndimage.gaussian_filter(pred, sigma)
    mu_t = ndimage.gaussian_filter(target, sigma)
    var_p = ndimage.gaussian_filter(pred**2, sigma) - mu_p**2
    var_t = ndimage.gaussian_filter(target**2, sigma) - mu_t**2
    cov = ndimage.gaussian_filter(pred * target, sigma) - mu_p * mu_t
    num = (2 * mu_p * mu_t + c1) * (2 * cov + c2)
    den = (mu_p**2 + mu_t**2 + c1) * (var_p + var_t + c2)
    return float(np.mean(num / den))
