"""Image degradations: AWGN for denoising, bicubic resampling for SR.

Bicubic uses the Keys kernel (a = -0.5), the convention of the SR
literature the paper evaluates against (VDSR, SRResNet).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "add_gaussian_noise",
    "bicubic_kernel",
    "bicubic_downsample",
    "bicubic_upsample",
]


def add_gaussian_noise(
    img: np.ndarray, sigma: float, rng: np.random.Generator | None = None, seed: int = 0
) -> np.ndarray:
    """AWGN with std ``sigma`` on the [0, 1] scale (paper: sigma = 15/255)."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    return img + sigma * rng.standard_normal(img.shape)


def bicubic_kernel(x: np.ndarray, a: float = -0.5) -> np.ndarray:
    """Keys cubic interpolation kernel."""
    x = np.abs(x)
    out = np.zeros_like(x)
    near = x <= 1
    far = (x > 1) & (x < 2)
    out[near] = (a + 2) * x[near] ** 3 - (a + 3) * x[near] ** 2 + 1
    out[far] = a * x[far] ** 3 - 5 * a * x[far] ** 2 + 8 * a * x[far] - 4 * a
    return out


def _resample_axis(img: np.ndarray, scale: float, axis: int) -> np.ndarray:
    """Bicubic resample along one axis by a rational scale factor.

    Gather form, not a dense (size_out, size_in) matrix product: each
    output sample reads exactly its ``2 * support`` taps and reduces them
    in one fixed order.  A dense GEMM reduces over the whole input axis,
    and BLAS picks its accumulation structure from that axis' length — so
    the same output sample could come back with different *bits* when
    computed over a tile crop instead of the full image.  The gather
    reduction depends only on the sample's own taps, making the resample
    crop-invariant (the property tiled SR inference relies on), and is
    O(support) per sample instead of O(size_in) as a bonus.
    """
    size_in = img.shape[axis]
    size_out = int(round(size_in * scale))
    # Output sample i maps to input coordinate (i + 0.5)/scale - 0.5.
    coords = (np.arange(size_out) + 0.5) / scale - 0.5
    width = max(1.0, 1.0 / scale)  # widen the kernel when minifying
    support = int(np.ceil(2 * width))
    left = np.floor(coords).astype(int) - support + 1
    taps = left[:, None] + np.arange(2 * support)  # (size_out, 2*support)
    weights = bicubic_kernel((taps - coords[:, None]) / width)
    weights /= weights.sum(axis=1, keepdims=True)
    taps = np.clip(taps, 0, size_in - 1)  # replicate borders
    moved = np.moveaxis(img, axis, -1)
    out = (moved[..., taps] * weights).sum(axis=-1)
    return np.moveaxis(out, -1, axis)


def bicubic_downsample(img: np.ndarray, factor: int) -> np.ndarray:
    """Anti-aliased bicubic down-sampling of the last two axes by ``factor``."""
    out = _resample_axis(img, 1.0 / factor, axis=-2)
    return _resample_axis(out, 1.0 / factor, axis=-1)


def bicubic_upsample(img: np.ndarray, factor: int) -> np.ndarray:
    """Bicubic up-sampling of the last two axes by ``factor``."""
    out = _resample_axis(img, float(factor), axis=-2)
    return _resample_axis(out, float(factor), axis=-1)
