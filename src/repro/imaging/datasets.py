"""Task datasets: denoising and super-resolution pairs over the corpus.

The named test sets (``synthetic-set5`` etc.) are deterministic stand-ins
for the paper's Set5 / Set14 / BSD100 / Urban100 / CBSD68 — same role
(fixed held-out evaluation images), different pixels (see DESIGN.md).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .degrade import add_gaussian_noise, bicubic_downsample
from .synthetic import make_corpus

__all__ = [
    "TaskData",
    "denoising_pairs",
    "super_resolution_pairs",
    "make_denoising_task",
    "make_sr_task",
    "TEST_SET_SPECS",
    "named_test_set",
]

# name -> (image count, image size, seed): small fixed held-out sets.
TEST_SET_SPECS: dict[str, tuple[int, int, int]] = {
    "synthetic-set5": (5, 32, 101),
    "synthetic-set14": (14, 32, 102),
    "synthetic-bsd100": (20, 32, 103),
    "synthetic-urban100": (20, 32, 104),
    "synthetic-cbsd68": (17, 32, 105),
}


@dataclasses.dataclass(frozen=True)
class TaskData:
    """Train/test arrays for one restoration task.

    inputs/targets have shape (N, C, H, W); targets are clean images.
    """

    task: str
    train_inputs: np.ndarray
    train_targets: np.ndarray
    test_inputs: np.ndarray
    test_targets: np.ndarray


def denoising_pairs(
    images: np.ndarray, sigma: float, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """(noisy, clean) pairs with channel axis added, shapes (N, 1, H, W)."""
    rng = np.random.default_rng(seed)
    clean = images[:, None]
    noisy = add_gaussian_noise(clean, sigma, rng=rng)
    return noisy, clean


def super_resolution_pairs(
    images: np.ndarray, factor: int
) -> tuple[np.ndarray, np.ndarray]:
    """(low-res, high-res) pairs; low-res is bicubic-downsampled by ``factor``."""
    clean = images[:, None]
    low = bicubic_downsample(clean, factor)
    return low, clean


def make_denoising_task(
    train_count: int = 24,
    test_count: int = 6,
    size: int = 24,
    sigma: float = 15.0 / 255.0,
    seed: int = 0,
) -> TaskData:
    """A complete denoising task at the paper's sigma = 15 (on 0-255 scale)."""
    train = make_corpus(train_count, size, seed=seed)
    test = make_corpus(test_count, size, seed=seed + 5000)
    train_in, train_tg = denoising_pairs(train, sigma, seed=seed + 1)
    test_in, test_tg = denoising_pairs(test, sigma, seed=seed + 2)
    return TaskData("denoise", train_in, train_tg, test_in, test_tg)


def make_sr_task(
    train_count: int = 24,
    test_count: int = 6,
    size: int = 24,
    factor: int = 4,
    seed: int = 0,
) -> TaskData:
    """A complete SRx``factor`` task (paper: four-times SR)."""
    if size % factor:
        raise ValueError("image size must be divisible by the SR factor")
    train = make_corpus(train_count, size, seed=seed + 100)
    test = make_corpus(test_count, size, seed=seed + 5100)
    train_in, train_tg = super_resolution_pairs(train, factor)
    test_in, test_tg = super_resolution_pairs(test, factor)
    return TaskData(f"sr{factor}", train_in, train_tg, test_in, test_tg)


def named_test_set(name: str) -> np.ndarray:
    """Fetch a fixed synthetic stand-in test set by name, shape (N, H, W)."""
    if name not in TEST_SET_SPECS:
        raise KeyError(f"unknown test set {name!r}; known: {sorted(TEST_SET_SPECS)}")
    count, size, seed = TEST_SET_SPECS[name]
    return make_corpus(count, size, seed=seed)
