"""Imaging substrate: synthetic corpus, degradations, metrics, datasets."""

from .datasets import (
    TEST_SET_SPECS,
    TaskData,
    denoising_pairs,
    make_denoising_task,
    make_sr_task,
    named_test_set,
    super_resolution_pairs,
)
from .degrade import (
    add_gaussian_noise,
    bicubic_downsample,
    bicubic_kernel,
    bicubic_upsample,
)
from .metrics import average_psnr, psnr, ssim
from .synthetic import make_corpus, random_image

__all__ = [
    "TEST_SET_SPECS",
    "TaskData",
    "denoising_pairs",
    "make_denoising_task",
    "make_sr_task",
    "named_test_set",
    "super_resolution_pairs",
    "add_gaussian_noise",
    "bicubic_downsample",
    "bicubic_kernel",
    "bicubic_upsample",
    "average_psnr",
    "psnr",
    "ssim",
    "make_corpus",
    "random_image",
]
