"""Synthetic procedural image corpus.

Substitutes for the paper's training/test datasets (DIV2K, Waterloo,
Set5/Set14/BSD100/Urban100/CBSD68 — unavailable offline; see DESIGN.md).
Images combine band-limited textures, oriented gratings, checkerboards
and smooth gradients so that denoising and super-resolution have genuine
high-frequency content to restore.  All generation is seeded.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = [
    "band_limited_texture",
    "oriented_grating",
    "checkerboard",
    "smooth_gradient",
    "random_image",
    "make_corpus",
]


def band_limited_texture(
    size: int, rng: np.random.Generator, scales: tuple[float, ...] = (1.0, 2.0, 4.0)
) -> np.ndarray:
    """Multi-scale filtered noise in [0, 1] — a natural-texture stand-in."""
    img = np.zeros((size, size))
    for scale in scales:
        layer = ndimage.gaussian_filter(rng.standard_normal((size, size)), sigma=scale)
        img += layer / max(scale, 1.0)
    lo, hi = img.min(), img.max()
    return (img - lo) / (hi - lo + 1e-12)


def oriented_grating(size: int, rng: np.random.Generator) -> np.ndarray:
    """Sine grating with random orientation, frequency and phase."""
    theta = rng.uniform(0, np.pi)
    freq = rng.uniform(0.05, 0.35)
    phase = rng.uniform(0, 2 * np.pi)
    yy, xx = np.mgrid[0:size, 0:size]
    wave = np.sin(2 * np.pi * freq * (np.cos(theta) * xx + np.sin(theta) * yy) + phase)
    return 0.5 + 0.5 * wave


def checkerboard(size: int, rng: np.random.Generator) -> np.ndarray:
    """Checkerboard with a random cell size — hard edges for SR."""
    cell = int(rng.integers(2, max(3, size // 4)))
    yy, xx = np.mgrid[0:size, 0:size]
    return (((yy // cell) + (xx // cell)) % 2).astype(float)


def smooth_gradient(size: int, rng: np.random.Generator) -> np.ndarray:
    """Linear luminance ramp in a random direction."""
    theta = rng.uniform(0, 2 * np.pi)
    yy, xx = np.mgrid[0:size, 0:size]
    ramp = np.cos(theta) * xx + np.sin(theta) * yy
    lo, hi = ramp.min(), ramp.max()
    return (ramp - lo) / (hi - lo + 1e-12)


def random_image(size: int, rng: np.random.Generator) -> np.ndarray:
    """One synthetic image in [0, 1]: random blend of all generators."""
    components = [
        band_limited_texture(size, rng),
        oriented_grating(size, rng),
        checkerboard(size, rng),
        smooth_gradient(size, rng),
    ]
    weights = rng.dirichlet(np.ones(len(components)))
    img = sum(w * c for w, c in zip(weights, components, strict=True))
    return np.clip(img, 0.0, 1.0)


def make_corpus(count: int, size: int, seed: int = 0) -> np.ndarray:
    """A deterministic stack of synthetic images, shape (count, size, size)."""
    rng = np.random.default_rng(seed)
    return np.stack([random_image(size, rng) for _ in range(count)])
