"""Checkpointable training engine (the ROADMAP's training subsystem).

:class:`TrainEngine` runs the paper's shared training strategy
(:class:`~repro.nn.trainer.TrainConfig`) with a callback protocol
(:class:`Callback`: ``on_epoch_start/end``, ``on_batch_end``,
``on_checkpoint``, ...), per-epoch validation hooks, and full history
capture (epoch losses, lr trace, per-step gradient norms).  Its
numerics are bit-identical to the original ``train_model`` loop.

:class:`ParallelTrainEngine` is the data-parallel sibling: ``jobs``
spawn workers each compute per-grain gradients that are combined by a
deterministic-order tree all-reduce over shared memory
(:mod:`repro.comms`), with checkpoints byte-identical for any worker
count (see :mod:`repro.train.parallel` for the grain invariant).

:class:`Checkpoint` bundles model + optimizer + scheduler + data-loader
RNG + epoch + history into one ``.npz`` file, with the engine's
guarantee that train-N → save → load → train-M equals training N+M
epochs straight through, bit for bit.  Compression passes compose as
callbacks (:class:`repro.pruning.SparsityMaskCallback`,
:class:`repro.quant.WeightQuantCallback`) instead of bespoke loops, and
the serving stack loads checkpoints directly
(``Predictor.from_checkpoint``).
"""

from ..nn.trainer import TrainConfig, TrainResult
from .callbacks import Callback, CheckpointCallback, EvalCallback, LambdaCallback
from .checkpoint import Checkpoint, CheckpointError, load_checkpoint
from .engine import TrainEngine, TrainHistory
from .parallel import DEFAULT_GRAIN, ParallelTrainEngine

__all__ = [
    "TrainConfig",
    "TrainResult",
    "Callback",
    "CheckpointCallback",
    "EvalCallback",
    "LambdaCallback",
    "Checkpoint",
    "CheckpointError",
    "load_checkpoint",
    "TrainEngine",
    "TrainHistory",
    "ParallelTrainEngine",
    "DEFAULT_GRAIN",
]
