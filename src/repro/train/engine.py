"""The checkpointable training engine behind every training consumer.

One loop, many consumers: the quality experiments, the pruning
fine-tune, quantization-aware fine-tuning and the CLI all drive
:class:`TrainEngine`.  The inner numerics are exactly the original
``train_model`` loop — per batch: ``zero_grad``, forward, loss,
``backward``, clip, ``step``; per epoch: scheduler step — so a run with
no callbacks reproduces the pre-engine weights bit for bit.  What the
engine adds around that core:

* a callback protocol (:mod:`repro.train.callbacks`) with hook points
  that never perturb the numerics when unused,
* epoch losses weighted by actual batch size (a partial final batch
  contributes its samples, not a full batch's worth),
* history capture — losses, lr trace, pre-clip gradient norms,
  validation losses,
* checkpoint save/restore with bit-identical resume
  (:mod:`repro.train.checkpoint`).
"""

from __future__ import annotations

import dataclasses
import warnings
from collections.abc import Iterable, Sequence
from typing import Any

from ..nn.data import DataLoader
from ..nn.module import Module
from ..nn.optim import Adam, CosineLR, LRScheduler, Optimizer, clip_grad_norm
from ..nn.tensor import Tensor
from ..nn.trainer import TrainConfig, TrainResult
from .callbacks import Callback
from .checkpoint import Checkpoint

__all__ = ["TrainEngine", "TrainHistory"]


@dataclasses.dataclass
class TrainHistory:
    """Everything the engine records while training.

    Persisted inside checkpoints, so a resumed run's history continues
    seamlessly from the saved one (identical to an uninterrupted run).
    """

    train_losses: list[float] = dataclasses.field(default_factory=list)
    val_losses: list[float] = dataclasses.field(default_factory=list)
    lr_trace: list[float] = dataclasses.field(default_factory=list)
    grad_norms: list[float] = dataclasses.field(default_factory=list)

    def to_jsonable(self) -> dict[str, list[float]]:
        return {
            "train_losses": [float(x) for x in self.train_losses],
            "val_losses": [float(x) for x in self.val_losses],
            "lr_trace": [float(x) for x in self.lr_trace],
            "grad_norms": [float(x) for x in self.grad_norms],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TrainHistory":
        return cls(
            train_losses=list(data.get("train_losses", [])),
            val_losses=list(data.get("val_losses", [])),
            lr_trace=list(data.get("lr_trace", [])),
            grad_norms=list(data.get("grad_norms", [])),
        )

    def result(self) -> TrainResult:
        """The history as the classic :class:`TrainResult` record."""
        return TrainResult(
            train_losses=list(self.train_losses),
            final_loss=self.train_losses[-1] if self.train_losses else float("nan"),
            lr_trace=list(self.lr_trace),
            grad_norms=list(self.grad_norms),
            val_losses=list(self.val_losses),
        )


class TrainEngine:
    """Callback-driven, checkpointable trainer for one model.

    Args:
        model: The network to train in place.
        config: The shared recipe; ``config.epochs`` is the *total*
            schedule horizon (the cosine decay spans it even when the
            epochs are split across checkpoint/resume segments).
        optimizer: Defaults to Adam at ``config.lr`` (the paper's
            choice); pass one to change the update rule.
        scheduler: Defaults to cosine decay to
            ``config.lr * config.min_lr_ratio`` over ``config.epochs``.
        callbacks: :class:`~repro.train.callbacks.Callback` instances,
            invoked in order at each hook point.

    Attributes:
        epoch: Completed-epoch counter (resumes from checkpoints).
        history: The cross-segment :class:`TrainHistory`.
    """

    def __init__(
        self,
        model: Module,
        config: TrainConfig,
        optimizer: Optimizer | None = None,
        scheduler: LRScheduler | None = None,
        callbacks: Sequence[Callback] = (),
    ) -> None:
        self.model = model
        self.config = config
        self.params = model.parameters()
        self.optimizer = (
            optimizer if optimizer is not None else Adam(self.params, lr=config.lr)
        )
        self.scheduler = (
            scheduler
            if scheduler is not None
            else CosineLR(
                self.optimizer,
                total=config.epochs,
                min_lr=config.lr * config.min_lr_ratio,
            )
        )
        self.callbacks = list(callbacks)
        self.epoch = 0
        self.history = TrainHistory()
        self._loader: DataLoader | None = None
        self._loader_untracked = False

    # ------------------------------------------------------------------
    def _emit(self, hook: str, *args) -> None:
        for callback in self.callbacks:
            getattr(callback, hook)(self, *args)

    # ------------------------------------------------------------------
    def _batch_gradients(self, inputs, targets) -> float:
        """Leave the batch gradient in ``param.grad``; return the batch loss.

        The one step subclasses reschedule: :class:`TrainEngine` runs
        the classic full-batch ``zero_grad → forward → loss → backward``;
        the data-parallel engine (:mod:`repro.train.parallel`) shards
        the batch into grains and all-reduces per-grain gradients in a
        deterministic order.  Clipping, the optimizer step and all
        bookkeeping stay in :meth:`fit`, shared by both.
        """
        self.optimizer.zero_grad()
        pred = self.model(Tensor(inputs))
        loss = self.config.loss_fn(pred, targets)
        loss.backward()
        return float(loss.data)

    # ------------------------------------------------------------------
    def fit(
        self,
        loader: Iterable[tuple],
        epochs: int | None = None,
    ) -> TrainResult:
        """Train for ``epochs`` more epochs (default: up to the horizon).

        Returns the full-history :class:`TrainResult` — after a resume
        it covers the restored epochs too, identical to what one
        uninterrupted run would report.

        Raises:
            ValueError: if an epoch yields no batches at all (e.g. a
                ``drop_last`` loader over a dataset smaller than one
                batch) — recording a fabricated 0.0 epoch loss would
                poison :class:`TrainHistory` and the lr schedule.
        """
        remaining = (
            epochs if epochs is not None else max(0, self.config.epochs - self.epoch)
        )
        if isinstance(loader, DataLoader):
            self._loader = loader
            self._loader_untracked = False
        else:
            # A plain iterable has no shuffle RNG to checkpoint; remember
            # that so save_checkpoint can warn about unrestorable resume.
            self._loader = None
            self._loader_untracked = True
        # Clipping is off only when grad_clip is None; an explicit 0.0
        # means clip-to-zero (freeze), not "disabled" — a truthiness
        # test here once silently dropped that case.
        max_norm = (
            float("inf") if self.config.grad_clip is None else self.config.grad_clip
        )
        self.model.train()
        self._emit("on_train_start")
        for _ in range(remaining):
            self.model.train()
            self._emit("on_epoch_start")
            weighted_loss, samples = 0.0, 0
            for inputs, targets in loader:
                loss_value = self._batch_gradients(inputs, targets)
                # Pre-clip global norm; with clipping off the infinite
                # threshold makes this a pure measurement.
                grad_norm = clip_grad_norm(self.params, max_norm)
                self.optimizer.step()
                batch = len(inputs)
                weighted_loss += loss_value * batch
                samples += batch
                self.history.grad_norms.append(grad_norm)
                self._emit("on_batch_end", loss_value, grad_norm)
            if samples == 0:
                raise ValueError(
                    "epoch produced no batches: the loader is empty (a drop_last "
                    "loader over fewer samples than one batch?); refusing to "
                    "record a fabricated 0.0 epoch loss"
                )
            self.history.lr_trace.append(self.optimizer.lr)
            self.scheduler.step()
            self.history.train_losses.append(weighted_loss / samples)
            self.epoch += 1
            self._emit("on_epoch_end", self.history.train_losses[-1])
        self.model.eval()
        result = self.history.result()
        self._emit("on_train_end", result)
        return result

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def capture(self, model_spec: dict | None = None) -> Checkpoint:
        """Snapshot the full resumable state as a :class:`Checkpoint`."""
        return Checkpoint.capture(
            model=self.model,
            optimizer=self.optimizer,
            scheduler=self.scheduler,
            epoch=self.epoch,
            history=self.history.to_jsonable(),
            loader=self._loader,
            config=self.config,
            model_spec=model_spec,
        )

    def save_checkpoint(self, path, model_spec: dict | None = None) -> Checkpoint:
        """Serialize the engine state to ``path`` (.npz) and notify hooks.

        Warns (``RuntimeWarning``) when the last ``fit`` was driven by a
        plain iterable instead of a :class:`~repro.nn.data.DataLoader`:
        such a checkpoint carries no shuffle-RNG state, so a resumed run
        cannot replay the batch order and the bit-identical-resume
        guarantee does not hold.
        """
        if self._loader is None and self._loader_untracked:
            warnings.warn(
                "checkpoint carries no data-loader RNG state: fit() was driven "
                "by a plain iterable, so a resumed run cannot restore the "
                "shuffle order; pass a repro.nn.data.DataLoader to fit() for "
                "bit-identical resume",
                RuntimeWarning,
                stacklevel=2,
            )
        checkpoint = self.capture(model_spec=model_spec)
        checkpoint.save(path)
        self._emit("on_checkpoint", path, checkpoint)
        return checkpoint

    def load_checkpoint(self, path, loader: DataLoader | None = None) -> Checkpoint:
        """Restore engine (and optionally loader RNG) state from ``path``.

        The engine must have been constructed over the same model
        architecture, optimizer type and schedule configuration the
        checkpoint was saved from; ``fit`` then continues bit-for-bit.
        """
        checkpoint = Checkpoint.load(path)
        checkpoint.restore(
            model=self.model,
            optimizer=self.optimizer,
            scheduler=self.scheduler,
            loader=loader,
        )
        self.epoch = checkpoint.epoch
        self.history = TrainHistory.from_dict(checkpoint.history)
        return checkpoint
