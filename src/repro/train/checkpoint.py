"""Checkpoint bundles: model + optimizer + scheduler + RNG + history.

One ``.npz`` file holds everything a resumed run needs to continue bit
for bit: every parameter array, the optimizer's update buffers (SGD
velocities / Adam moments), the scheduler's epoch counter, the data
loader's shuffle-RNG state, the NumPy global RNG, the completed-epoch
count and the training history.  All non-array state travels as one
canonical JSON blob under the ``meta`` key, so nothing is pickled and a
checkpoint written on one platform loads on any other.

Files are written atomically (temp file + rename); loading a truncated,
corrupted or wrong-schema file raises :class:`CheckpointError` rather
than propagating whatever np.load tripped over.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import zipfile
from collections.abc import Mapping
from typing import Any

import numpy as np

from ..nn.data import DataLoader
from ..nn.module import Module
from ..nn.optim import LRScheduler, Optimizer
from ..nn.trainer import TrainConfig

__all__ = ["CHECKPOINT_SCHEMA", "Checkpoint", "CheckpointError", "load_checkpoint"]

#: Bump when the on-disk layout changes; older files refuse to load.
CHECKPOINT_SCHEMA = 1

#: Optimizer state entries that are lists of per-parameter arrays.
_BUFFER_KEYS = ("m", "v", "velocity")


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, truncated, corrupted or mismatched."""


def _encode_numpy_rng() -> tuple[dict[str, Any], np.ndarray]:
    """The legacy global RNG state as (json-able meta, keys array)."""
    name, keys, pos, has_gauss, cached = np.random.get_state()
    meta = {"name": name, "pos": int(pos), "has_gauss": int(has_gauss), "cached": float(cached)}
    return meta, np.asarray(keys)


@dataclasses.dataclass
class Checkpoint:
    """One resumable training snapshot.

    ``optimizer_state`` / ``scheduler_state`` / ``loader_rng`` are None
    for weights-only bundles (e.g. the experiment weight cache), which
    still round-trip model state and history exactly.
    """

    epoch: int
    model_state: dict[str, np.ndarray]
    history: dict[str, Any] = dataclasses.field(default_factory=dict)
    optimizer_state: dict[str, Any] | None = None
    scheduler_state: dict[str, Any] | None = None
    loader_rng: dict[str, Any] | None = None
    numpy_rng_meta: dict[str, Any] | None = None
    numpy_rng_keys: np.ndarray | None = None
    config: dict[str, Any] | None = None
    model_spec: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        model: Module,
        optimizer: Optimizer | None = None,
        scheduler: LRScheduler | None = None,
        epoch: int = 0,
        history: Mapping[str, Any] | None = None,
        loader: DataLoader | None = None,
        config: TrainConfig | None = None,
        model_spec: Mapping[str, Any] | None = None,
    ) -> "Checkpoint":
        """Snapshot the given components (copies, not views)."""
        rng_meta, rng_keys = _encode_numpy_rng()
        return cls(
            epoch=int(epoch),
            model_state=model.state_dict(),
            history=dict(history or {}),
            optimizer_state=(
                dict(optimizer.state_dict(), type=type(optimizer).__name__)
                if optimizer is not None
                else None
            ),
            scheduler_state=(
                dict(scheduler.state_dict(), type=type(scheduler).__name__)
                if scheduler is not None
                else None
            ),
            loader_rng=loader.state_dict() if loader is not None else None,
            numpy_rng_meta=rng_meta,
            numpy_rng_keys=rng_keys,
            config=config.to_jsonable() if config is not None else None,
            model_spec=dict(model_spec) if model_spec is not None else None,
        )

    # ------------------------------------------------------------------
    def save(self, path) -> pathlib.Path:
        """Serialize to ``path`` (.npz), atomically."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays: dict[str, np.ndarray] = {
            f"model/{name}": arr for name, arr in self.model_state.items()
        }
        optim_meta = None
        if self.optimizer_state is not None:
            optim_meta = {
                k: v for k, v in self.optimizer_state.items() if k not in _BUFFER_KEYS
            }
            for key in _BUFFER_KEYS:
                buffers = self.optimizer_state.get(key)
                if buffers is None:
                    continue
                optim_meta[f"n_{key}"] = len(buffers)
                for i, arr in enumerate(buffers):
                    arrays[f"optim/{key}/{i:04d}"] = np.asarray(arr)
        if self.numpy_rng_keys is not None:
            arrays["numpy_rng/keys"] = np.asarray(self.numpy_rng_keys)
        meta = {
            "schema": CHECKPOINT_SCHEMA,
            "epoch": self.epoch,
            "history": self.history,
            "optimizer": optim_meta,
            "scheduler": self.scheduler_state,
            "loader_rng": self.loader_rng,
            "numpy_rng": self.numpy_rng_meta,
            "config": self.config,
            "model_spec": self.model_spec,
            "model_keys": sorted(self.model_state),
        }
        arrays["meta"] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
        )
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return path

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path) -> "Checkpoint":
        """Parse a checkpoint file; any malformation raises CheckpointError."""
        path = pathlib.Path(path)
        if not path.exists():
            raise CheckpointError(f"no checkpoint at {path}")
        try:
            with np.load(path, allow_pickle=False) as data:
                files = dict(data)
        except (OSError, ValueError, zipfile.BadZipFile, EOFError) as exc:
            raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
        try:
            meta = json.loads(bytes(files.pop("meta")).decode())
        except (KeyError, ValueError, UnicodeDecodeError) as exc:
            raise CheckpointError(f"checkpoint {path} has no readable meta record") from exc
        if meta.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint {path} has schema {meta.get('schema')!r}, "
                f"expected {CHECKPOINT_SCHEMA}"
            )
        model_state = {
            key[len("model/"):]: arr
            for key, arr in files.items()
            if key.startswith("model/")
        }
        missing = set(meta.get("model_keys", [])) - set(model_state)
        if missing:
            raise CheckpointError(
                f"checkpoint {path} is missing parameter arrays: {sorted(missing)}"
            )
        optimizer_state = meta.get("optimizer")
        if optimizer_state is not None:
            optimizer_state = dict(optimizer_state)
            for key in _BUFFER_KEYS:
                count = optimizer_state.pop(f"n_{key}", None)
                if count is None:
                    continue
                try:
                    optimizer_state[key] = [
                        files[f"optim/{key}/{i:04d}"] for i in range(count)
                    ]
                except KeyError as exc:
                    raise CheckpointError(
                        f"checkpoint {path} is missing optimizer buffer {exc}"
                    ) from exc
        rng_keys = files.get("numpy_rng/keys")
        return cls(
            epoch=int(meta["epoch"]),
            model_state=model_state,
            history=meta.get("history", {}),
            optimizer_state=optimizer_state,
            scheduler_state=meta.get("scheduler"),
            loader_rng=meta.get("loader_rng"),
            numpy_rng_meta=meta.get("numpy_rng"),
            numpy_rng_keys=rng_keys,
            config=meta.get("config"),
            model_spec=meta.get("model_spec"),
        )

    # ------------------------------------------------------------------
    def restore(
        self,
        model: Module | None = None,
        optimizer: Optimizer | None = None,
        scheduler: LRScheduler | None = None,
        loader: DataLoader | None = None,
        numpy_rng: bool = True,
    ) -> None:
        """Load the saved state into freshly-constructed components.

        Each component is optional; type mismatches (an Adam checkpoint
        into an SGD optimizer) raise :class:`CheckpointError` before any
        state is touched.
        """
        if optimizer is not None:
            if self.optimizer_state is None:
                raise CheckpointError("checkpoint carries no optimizer state")
            saved_type = self.optimizer_state.get("type")
            if saved_type != type(optimizer).__name__:
                raise CheckpointError(
                    f"checkpoint optimizer is {saved_type}, got {type(optimizer).__name__}"
                )
        if scheduler is not None:
            if self.scheduler_state is None:
                raise CheckpointError("checkpoint carries no scheduler state")
            saved_type = self.scheduler_state.get("type")
            if saved_type != type(scheduler).__name__:
                raise CheckpointError(
                    f"checkpoint scheduler is {saved_type}, got {type(scheduler).__name__}"
                )
        if model is not None:
            model.load_state_dict(self.model_state)
        if optimizer is not None:
            state = {k: v for k, v in self.optimizer_state.items() if k != "type"}
            optimizer.load_state_dict(state)
        if scheduler is not None:
            state = {k: v for k, v in self.scheduler_state.items() if k != "type"}
            scheduler.load_state_dict(state)
        if loader is not None and self.loader_rng is not None:
            loader.load_state_dict(self.loader_rng)
        if numpy_rng and self.numpy_rng_meta is not None and self.numpy_rng_keys is not None:
            np.random.set_state(
                (
                    self.numpy_rng_meta["name"],
                    np.asarray(self.numpy_rng_keys, dtype=np.uint32),
                    int(self.numpy_rng_meta["pos"]),
                    int(self.numpy_rng_meta["has_gauss"]),
                    float(self.numpy_rng_meta["cached"]),
                )
            )

    # ------------------------------------------------------------------
    def build_model(self) -> Module:
        """Reconstruct the architecture from the stored model spec.

        Only checkpoints saved with a ``model_spec`` (the CLI and the
        experiment weight cache write one) can rebuild; the spec names
        an ERNet family member by task/blocks/ratio plus the factory
        *kind* string of :func:`repro.models.factory.make_factory`.
        """
        if not self.model_spec:
            raise CheckpointError(
                "checkpoint has no model spec; construct the model yourself and "
                "call restore(model=...)"
            )
        spec = dict(self.model_spec)
        family = spec.pop("family", None)
        if family != "ernet":
            raise CheckpointError(f"cannot rebuild model family {family!r}")
        # Deferred: repro.train must stay importable without the model zoo.
        from ..models.ernet import ERNet, ERNetConfig
        from ..models.factory import make_factory

        kind = spec.pop("kind", "real")
        try:
            factory = None if kind == "real" else make_factory(kind)
        except KeyError as exc:
            raise CheckpointError(f"cannot rebuild layer factory {kind!r}: {exc}") from exc
        fields = {f.name for f in dataclasses.fields(ERNetConfig)}
        try:
            config = ERNetConfig(**{k: v for k, v in spec.items() if k in fields})
            model = ERNet(config, factory=factory, seed=0)
            model.load_state_dict(self.model_state)
        except (KeyError, ValueError, TypeError) as exc:
            # A spec that builds the wrong architecture surfaces here as
            # a state mismatch; keep the documented error type.
            raise CheckpointError(f"model spec does not match saved weights: {exc}") from exc
        model.eval()
        return model


def load_checkpoint(path) -> Checkpoint:
    """Module-level convenience for :meth:`Checkpoint.load`."""
    return Checkpoint.load(path)
