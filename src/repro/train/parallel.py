"""Data-parallel training with a deterministic-order gradient all-reduce.

:class:`ParallelTrainEngine` is the multi-process sibling of
:class:`~repro.train.engine.TrainEngine`: ``jobs`` spawned workers
(PR 2's spawn discipline, via :mod:`repro.experiments.spawn`) each
compute gradients for a share of every batch, and the parent combines
them, clips, and steps the one authoritative optimizer.  Everything
around the gradient — callbacks, history, scheduler, checkpoints,
resume — is inherited unchanged, so checkpoints are the ordinary
:mod:`repro.train.checkpoint` bundles and a run checkpointed under
``--jobs 2`` resumes bit-for-bit under ``--jobs 4`` (or serially).

**Grain decomposition: the determinism invariant.**  Float addition is
not associative, so "shard the batch N ways and sum the shard
gradients" would give N-dependent bytes: a GEMM over 8 samples is not
bitwise the sum of two GEMMs over 4.  The engine therefore fixes the
decomposition *independently of the worker count*: every batch is cut
into **grains** of ``grain`` consecutive samples, each grain's gradient
is computed separately (scaled by its share ``n_g / batch`` of the
batch-mean loss), and the per-grain gradients are combined by
:func:`repro.comms.tree_reduce` — a fixed pairwise summation over
ascending grain index.  Workers are assigned contiguous grain ranges,
but the reduction never sees that assignment: the bytes out are a pure
function of (weights, batch, grain), which is why ``--jobs 1`` (run
in-process, no workers) and ``--jobs N`` produce byte-identical
checkpoints for every ``N``.  The flip side: the grain size *is* part
of the numerics — change ``grain`` and you get a (deterministically)
different trajectory, just as changing ``batch_size`` would — and the
grain-sharded gradient is a *different rounding* of the same batch
gradient than :class:`TrainEngine`'s single full-batch backward, so the
serial reference for bit-identity is this engine at ``jobs=1``, not the
classic engine.

**Transport.**  Tensors never cross a pipe: one
:class:`repro.comms.shm.ShmRing` segment carries (slot 0) the flattened
weight broadcast, (slot 1) the batch inputs+targets, and (slot ``2+g``)
grain ``g``'s flattened gradient vector.  Queues carry only tiny step
descriptors and per-grain scalar losses.  Weights are re-broadcast
every step, so callbacks that mutate parameters on the parent (pruning
masks, fake-quantization) compose exactly as they do serially.

**Failure semantics.**  A worker that dies mid-epoch (crash, OOM,
``inject_worker_crash``) makes ``fit`` raise :class:`RuntimeError`
immediately — gradients from a partial step are never applied, and
there is no silent respawn: training state is stateful (unlike the
serving cluster's idempotent requests), so the only safe resume is from
the last checkpoint.
"""

from __future__ import annotations

import contextlib
import os
import queue as queue_module
from collections.abc import Callable, Sequence

import numpy as np

from ..comms.reduce import flatten_arrays, tree_reduce, unflatten_into
from ..comms.shm import RingClient, ShmRing
from ..nn.module import Module
from ..nn.optim import LRScheduler, Optimizer
from ..nn.tensor import Tensor
from ..nn.trainer import TrainConfig
from .callbacks import Callback
from .engine import TrainEngine

__all__ = ["ParallelTrainEngine", "DEFAULT_GRAIN"]

#: Samples per gradient grain — the unit of work sharded across ranks.
#: Part of the numerics (like batch_size), NOT a tuning knob that may
#: silently differ between a run and its resume.
DEFAULT_GRAIN = 2

_WEIGHTS_SLOT = 0
_BATCH_SLOT = 1
_GRAD_SLOT0 = 2
_POLL_TICK_S = 0.2


def _grain_bounds(n: int, grain: int) -> list[tuple[int, int]]:
    """Cut ``n`` samples into consecutive grains of ``grain`` samples.

    The final grain keeps the remainder, so a partial batch decomposes
    the same way regardless of who processes it.
    """
    return [(start, min(start + grain, n)) for start in range(0, n, grain)]


def _grain_assignment(count: int, jobs: int) -> list[list[int]]:
    """Contiguous, balanced grain indices per rank (ranks may be idle)."""
    base, extra = divmod(count, jobs)
    out: list[list[int]] = []
    start = 0
    for rank in range(jobs):
        size = base + (1 if rank < extra else 0)
        out.append(list(range(start, start + size)))
        start += size
    return out


def _scaled_grain_grad(
    model: Module,
    params: list,
    loss_fn: Callable,
    inputs: np.ndarray,
    targets: np.ndarray,
    scale: float,
) -> tuple[np.ndarray, float]:
    """One grain's contribution: flat gradient scaled by its batch share.

    ``zero_grad → forward → loss → backward`` on the grain alone, then
    the flattened gradient times ``scale`` (= ``n_grain / batch``, the
    chain-rule weight of this grain's mean loss inside the batch-mean
    loss).  Shared verbatim by the in-process ``jobs=1`` path and the
    spawn workers — the core of the any-worker-count bit-identity
    guarantee.
    """
    for p in params:
        p.zero_grad()
    loss = loss_fn(model(Tensor(inputs)), targets)
    loss.backward()
    flat = flatten_arrays([p.grad for p in params], like=[p.data for p in params])
    return flat * scale, float(loss.data)


def _combine_scalar_losses(
    raw_losses: Sequence[float], bounds: Sequence[tuple[int, int]], n: int
) -> float:
    """Batch-mean loss from per-grain mean losses, in fixed tree order."""
    scaled = [
        raw * ((stop - start) / n)
        for raw, (start, stop) in zip(raw_losses, bounds, strict=True)
    ]
    return float(tree_reduce(scaled))


def _worker_main(
    rank: int,
    jobs: int,
    grain: int,
    ring_name: str,
    slots: int,
    slot_bytes: int,
    factory: Callable[[], Module],
    loss_fn: Callable,
    task_queue,
    response_queue,
) -> None:
    """Entry point of one spawned gradient worker.

    Builds its architecture replica once (the startup pickle carries
    only the factory and the loss function — weights arrive through
    shared memory every step, so the replica never drifts from the
    parent), then answers step descriptors until the ``None`` sentinel.
    A ``("crash",)`` descriptor is the fault-injection hook used by the
    crash-during-epoch tests.
    """
    client = RingClient(ring_name, slots, slot_bytes)
    model = factory()
    model.train()
    params = model.parameters()
    psize = int(sum(p.data.size for p in params))
    while True:
        item = task_queue.get()
        if item is None:
            break
        if item[0] == "crash":
            os._exit(17)
        _, step_id, n, x_shape, y_shape = item
        try:
            weights = client.get_array(_WEIGHTS_SLOT, 0, (psize,))
            unflatten_into(weights, [p.data for p in params])
            bounds = _grain_bounds(n, grain)
            mine = _grain_assignment(len(bounds), jobs)[rank]
            x_tail = tuple(x_shape[1:])
            y_tail = tuple(y_shape[1:])
            x_stride = int(np.prod(x_tail, dtype=np.int64)) * 8
            y_stride = int(np.prod(y_tail, dtype=np.int64)) * 8
            y_base = int(np.prod(x_shape, dtype=np.int64)) * 8
            losses = []
            for g in mine:
                start, stop = bounds[g]
                xs = client.get_array(
                    _BATCH_SLOT, start * x_stride, (stop - start, *x_tail)
                )
                ys = client.get_array(
                    _BATCH_SLOT, y_base + start * y_stride, (stop - start, *y_tail)
                )
                vec, raw = _scaled_grain_grad(
                    model, params, loss_fn, xs, ys, (stop - start) / n
                )
                client.put_array(_GRAD_SLOT0 + g, 0, vec)
                losses.append((g, raw))
            response_queue.put(("ok", rank, step_id, losses))
        except Exception as exc:  # worker faults become data, never hangs
            response_queue.put(
                ("err", rank, step_id, f"{type(exc).__name__}: {exc}")
            )
    client.close()


class ParallelTrainEngine(TrainEngine):
    """Checkpointable trainer whose batch gradient is computed data-parallel.

    Args:
        model: The authoritative network, trained in place on the
            parent (workers hold throwaway replicas).
        config: Shared recipe (:class:`~repro.nn.trainer.TrainConfig`);
            must be picklable (the default MSE recipe is).
        optimizer / scheduler / callbacks: As for
            :class:`~repro.train.engine.TrainEngine`; all run on the
            parent only.
        jobs: Worker process count.  ``jobs=1`` runs the identical
            grain-sharded numerics in-process with no workers — the
            serial reference every ``jobs=N`` run is byte-identical to.
        grain: Samples per gradient grain (default
            :data:`DEFAULT_GRAIN`).  Part of the numerics: runs (and
            resumes) must agree on it, like they must on batch size.
        model_factory: Picklable zero-argument callable building the
            architecture in each worker (weights are broadcast every
            step, so only the architecture matters).  Required when
            ``jobs > 1``.
        step_timeout_s: Upper bound on one batch's worker round-trip
            before ``fit`` fails loudly.

    Workers and the shared-memory ring are created lazily at the first
    batch (sized from it) and live until :meth:`close`; the engine is a
    context manager.  Later batches must fit the first batch's
    transport sizing — true for any fixed-``batch_size`` loader, whose
    later batches are only ever equal or smaller.
    """

    def __init__(
        self,
        model: Module,
        config: TrainConfig,
        optimizer: Optimizer | None = None,
        scheduler: LRScheduler | None = None,
        callbacks: Sequence[Callback] = (),
        *,
        jobs: int = 1,
        grain: int = DEFAULT_GRAIN,
        model_factory: Callable[[], Module] | None = None,
        step_timeout_s: float = 120.0,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if grain < 1:
            raise ValueError("grain must be >= 1")
        if jobs > 1 and model_factory is None:
            raise ValueError(
                "jobs > 1 needs a picklable model_factory so spawn workers can "
                "rebuild the architecture (weights are broadcast via shared "
                "memory each step)"
            )
        super().__init__(
            model, config, optimizer=optimizer, scheduler=scheduler, callbacks=callbacks
        )
        self.jobs = jobs
        self.grain = grain
        self._factory = model_factory
        self._step_timeout_s = step_timeout_s
        self._psize = int(sum(p.data.size for p in self.params))
        self._ring: ShmRing | None = None
        self._workers: list = []
        self._responses = None
        self._context = None
        self._steps = 0
        self._closed = False

    # ------------------------------------------------------------------
    # transport lifecycle
    # ------------------------------------------------------------------
    def _ensure_transport(self, x: np.ndarray, y: np.ndarray) -> None:
        """Create the ring and spawn workers, sized from the first batch."""
        grains = len(_grain_bounds(len(x), self.grain))
        batch_bytes = x.nbytes + y.nbytes
        if self._ring is not None:
            if (
                batch_bytes > self._ring.slot_bytes
                or _GRAD_SLOT0 + grains > self._ring.slots
            ):
                raise ValueError(
                    f"batch of {len(x)} samples ({batch_bytes} bytes, {grains} "
                    f"grains) exceeds the transport ring sized at the first "
                    f"step; construct a fresh engine for larger batches"
                )
            return
        # Deferred import: repro.train stays importable without the
        # experiments package (same pattern as the serving cluster).
        from ..experiments.spawn import spawn_context

        slot_bytes = max(self._psize * 8, batch_bytes, 8)
        self._ring = ShmRing(slots=_GRAD_SLOT0 + grains, slot_bytes=slot_bytes)
        self._context = spawn_context()
        self._responses = self._context.Queue()
        for rank in range(self.jobs):
            task_queue = self._context.Queue()
            process = self._context.Process(
                target=_worker_main,
                args=(
                    rank,
                    self.jobs,
                    self.grain,
                    self._ring.name,
                    self._ring.slots,
                    self._ring.slot_bytes,
                    self._factory,
                    self.config.loss_fn,
                    task_queue,
                    self._responses,
                ),
                name=f"repro-train-{rank}",
                daemon=True,
            )
            process.start()
            self._workers.append((process, task_queue))

    def inject_worker_crash(self, rank: int = 0) -> None:
        """Fault injection: make worker ``rank`` die at its next dequeue.

        Queued behind any step already dispatched, so the parent
        observes exactly what a mid-epoch segfault looks like — and
        must fail the ``fit`` loudly rather than apply a partial
        gradient.
        """
        if not self._workers:
            raise RuntimeError("no workers running (fit has not started)")
        self._workers[rank][1].put(("crash",))

    def close(self) -> None:
        """Stop the workers and unlink the shared-memory segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _process, task_queue in self._workers:
            with contextlib.suppress(OSError, ValueError):  # queue torn down
                task_queue.put(None)
        for process, task_queue in self._workers:
            process.join(10.0)
            if process.is_alive():
                process.terminate()
                process.join(10.0)
            task_queue.close()
            task_queue.cancel_join_thread()
        self._workers = []
        if self._responses is not None:
            self._responses.close()
            self._responses.cancel_join_thread()
            self._responses = None
        if self._ring is not None:
            self._ring.destroy()
            self._ring = None

    def __enter__(self) -> "ParallelTrainEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the data-parallel batch gradient
    # ------------------------------------------------------------------
    def _batch_gradients(self, inputs, targets) -> float:
        """Grain-sharded batch gradient, all-reduced in fixed tree order."""
        if self._closed:
            raise RuntimeError("engine is closed")
        x = np.ascontiguousarray(np.asarray(inputs, dtype=np.float64))
        y = np.ascontiguousarray(np.asarray(targets, dtype=np.float64))
        n = len(x)
        bounds = _grain_bounds(n, self.grain)
        if self.jobs == 1:
            grads, raw_losses = [], []
            for start, stop in bounds:
                vec, raw = _scaled_grain_grad(
                    self.model,
                    self.params,
                    self.config.loss_fn,
                    x[start:stop],
                    y[start:stop],
                    (stop - start) / n,
                )
                grads.append(vec)
                raw_losses.append(raw)
        else:
            grads, raw_losses = self._dispatch_step(x, y, bounds)
        flat = tree_reduce(grads)
        for p in self.params:
            p.grad = np.empty_like(p.data)
        unflatten_into(flat, [p.grad for p in self.params])
        return _combine_scalar_losses(raw_losses, bounds, n)

    def _dispatch_step(
        self, x: np.ndarray, y: np.ndarray, bounds: list[tuple[int, int]]
    ) -> tuple[list[np.ndarray], list[float]]:
        """Broadcast weights + batch, farm grains out, collect in order."""
        self._ensure_transport(x, y)
        assert self._ring is not None
        n = len(x)
        assignment = _grain_assignment(len(bounds), self.jobs)
        working = [rank for rank in range(self.jobs) if assignment[rank]]
        self._steps += 1
        step_id = self._steps
        # Payloads before descriptors: the queue is the memory barrier.
        weights = flatten_arrays(
            [p.data for p in self.params], like=[p.data for p in self.params]
        )
        self._ring.put_array(_WEIGHTS_SLOT, 0, weights)
        self._ring.put_array(_BATCH_SLOT, 0, x)
        self._ring.put_array(_BATCH_SLOT, x.nbytes, y)
        for rank in working:
            self._workers[rank][1].put(("step", step_id, n, x.shape, y.shape))
        raw_by_grain: dict[int, float] = {}
        pending = set(working)
        waited = 0.0
        while pending:
            try:
                kind, rank, got_step, payload = self._responses.get(
                    timeout=_POLL_TICK_S
                )
            except queue_module.Empty:
                waited += _POLL_TICK_S
                self._check_workers_alive(pending)
                if waited >= self._step_timeout_s:
                    raise RuntimeError(
                        f"data-parallel step timed out after "
                        f"{self._step_timeout_s:.0f}s waiting on ranks "
                        f"{sorted(pending)}"
                    ) from None
                continue
            if got_step != step_id:
                raise RuntimeError(
                    f"worker {rank} answered step {got_step}, expected "
                    f"{step_id}: transport protocol out of sync"
                )
            if kind != "ok":
                raise RuntimeError(f"worker {rank} failed mid-step: {payload}")
            for g, raw in payload:
                raw_by_grain[g] = raw
            pending.discard(rank)
        grads = [
            self._ring.get_array(_GRAD_SLOT0 + g, 0, (self._psize,))
            for g in range(len(bounds))
        ]
        raw_losses = [raw_by_grain[g] for g in range(len(bounds))]
        return grads, raw_losses

    def _check_workers_alive(self, pending: set) -> None:
        """Fail the step loudly if a rank we are waiting on has died."""
        for rank in sorted(pending):
            process = self._workers[rank][0]
            if not process.is_alive():
                raise RuntimeError(
                    f"data-parallel worker {rank} died mid-epoch (exit code "
                    f"{process.exitcode}); partial gradients are never "
                    f"applied — resume from the last checkpoint"
                )
