"""Callback protocol and the stock callbacks of the training engine.

Hook points (all no-ops on the base class, so callbacks override only
what they need):

* ``on_train_start(engine)`` — before the first batch of a ``fit``.
* ``on_epoch_start(engine)`` — ``engine.epoch`` is the index of the
  epoch about to run.
* ``on_batch_end(engine, loss, grad_norm)`` — after ``optimizer.step``;
  ``grad_norm`` is the pre-clip global gradient norm.
* ``on_epoch_end(engine, epoch_loss)`` — after the scheduler stepped
  and ``engine.epoch`` advanced past the completed epoch.
* ``on_checkpoint(engine, path, checkpoint)`` — after a checkpoint file
  was written.
* ``on_train_end(engine, result)`` — after the final epoch of a ``fit``.

Hooks observe and may mutate model/optimizer state (that is how the
compression passes compose: :class:`repro.pruning.SparsityMaskCallback`
re-zeroes pruned weights per step, :class:`repro.quant.WeightQuantCallback`
fake-quantizes them); an engine run with no callbacks is bit-identical
to the bare loop.
"""

from __future__ import annotations

import typing
from collections.abc import Callable

import numpy as np

if typing.TYPE_CHECKING:  # circular at runtime: engine imports this module
    from .checkpoint import Checkpoint
    from .engine import TrainEngine

__all__ = ["Callback", "CheckpointCallback", "EvalCallback", "LambdaCallback"]


class Callback:
    """Base class: every hook is a no-op."""

    def on_train_start(self, engine: "TrainEngine") -> None:
        """Before the first batch of a ``fit`` call."""

    def on_epoch_start(self, engine: "TrainEngine") -> None:
        """Before each epoch (``engine.epoch`` = its index)."""

    def on_batch_end(self, engine: "TrainEngine", loss: float, grad_norm: float) -> None:
        """After each optimizer step."""

    def on_epoch_end(self, engine: "TrainEngine", epoch_loss: float) -> None:
        """After each epoch (``engine.epoch`` already advanced)."""

    def on_checkpoint(self, engine: "TrainEngine", path, checkpoint: "Checkpoint") -> None:
        """After a checkpoint file was written."""

    def on_train_end(self, engine: "TrainEngine", result) -> None:
        """After the final epoch of a ``fit`` call."""


class LambdaCallback(Callback):
    """Ad-hoc callback from keyword hooks.

    Example::

        LambdaCallback(on_epoch_end=lambda engine, loss: print(loss))
    """

    def __init__(self, **hooks: Callable) -> None:
        unknown = [name for name in hooks if not hasattr(Callback, name)]
        if unknown:
            raise ValueError(f"unknown hook(s): {', '.join(sorted(unknown))}")
        for name, fn in hooks.items():
            setattr(self, name, fn)


class CheckpointCallback(Callback):
    """Save a checkpoint every ``every`` completed epochs (and at the end).

    Args:
        path: Checkpoint file to (over)write.
        every: Save cadence in epochs; the end-of-training save happens
            regardless so the file always holds the final state.
        model_spec: Optional rebuildable model description stored inside
            the checkpoint (see :meth:`Checkpoint.build_model`).
    """

    def __init__(self, path, every: int = 1, model_spec: dict | None = None) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.path = path
        self.every = every
        self.model_spec = model_spec

    def on_epoch_end(self, engine: "TrainEngine", epoch_loss: float) -> None:
        if engine.epoch % self.every == 0:
            engine.save_checkpoint(self.path, model_spec=self.model_spec)

    def on_train_end(self, engine: "TrainEngine", result) -> None:
        if engine.epoch % self.every:  # not already saved by the cadence
            engine.save_checkpoint(self.path, model_spec=self.model_spec)


class EvalCallback(Callback):
    """Per-epoch validation hook: held-out MSE into ``history.val_losses``.

    Runs the model in eval mode under ``no_grad`` after every epoch, then
    hands it back to training mode, so the training trajectory is
    untouched (validation reads weights, never writes them).
    """

    def __init__(self, inputs: np.ndarray, targets: np.ndarray) -> None:
        self.inputs = np.asarray(inputs)
        self.targets = np.asarray(targets)

    def on_epoch_end(self, engine: "TrainEngine", epoch_loss: float) -> None:
        from ..nn.trainer import evaluate_mse

        engine.history.val_losses.append(
            evaluate_mse(engine.model, self.inputs, self.targets)
        )
        engine.model.train()
