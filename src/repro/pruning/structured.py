"""Structured (filter) pruning, LeGR-style (paper Appendix C baseline).

Whole output channels are removed by zeroing their filters; filters are
ranked by L2 norm with a learned-global-ranking stand-in (norm scaled by
a per-layer sensitivity factor).  Zeroed channels count as removed for
the compute/compression accounting of Fig. C-1.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Conv2d
from ..nn.module import Module

__all__ = ["channel_norms", "structured_masks", "apply_channel_masks", "channel_sparsity"]


def channel_norms(model: Module) -> dict[int, np.ndarray]:
    """L2 norm of every output filter, keyed by conv-module id."""
    norms: dict[int, np.ndarray] = {}
    for module in model.modules():
        if isinstance(module, Conv2d):
            w = module.weight.data
            norms[id(module)] = np.sqrt((w**2).sum(axis=(1, 2, 3)))
    return norms


def structured_masks(
    model: Module, compression: float, protect_last: bool = True
) -> dict[int, np.ndarray]:
    """Per-conv boolean channel keep-masks reaching ``compression``x.

    Ranks all filters globally by normalized norm (each layer's norms are
    scaled to unit median — the LeGR-like global ranking) and drops the
    weakest.  At least one channel per layer is always kept, and the
    final conv (image output) is protected by default.
    """
    convs = [m for m in model.modules() if isinstance(m, Conv2d)]
    if protect_last and convs:
        convs = convs[:-1]
    entries: list[tuple[float, int, int]] = []  # (score, module-id, channel)
    norms = {}
    for module in convs:
        w = module.weight.data
        norm = np.sqrt((w**2).sum(axis=(1, 2, 3)))
        scale = np.median(norm) + 1e-12
        norms[id(module)] = norm
        for ch, value in enumerate(norm / scale):
            entries.append((float(value), id(module), ch))
    total = len(entries)
    keep = int(round(total / compression))
    entries.sort()
    drop = {(mid, ch) for _, mid, ch in entries[: total - keep]}
    masks: dict[int, np.ndarray] = {}
    for module in convs:
        mid = id(module)
        mask = np.array(
            [(mid, ch) not in drop for ch in range(module.out_channels)], dtype=bool
        )
        if not mask.any():
            mask[int(np.argmax(norms[mid]))] = True
        masks[mid] = mask
    return masks


def apply_channel_masks(model: Module, masks: dict[int, np.ndarray]) -> None:
    """Zero whole filters (weight rows and biases) in place."""
    for module in model.modules():
        if isinstance(module, Conv2d) and id(module) in masks:
            mask = masks[id(module)]
            module.weight.data *= mask[:, None, None, None]
            if module.bias is not None:
                module.bias.data *= mask


def channel_sparsity(masks: dict[int, np.ndarray]) -> float:
    """Fraction of removed channels across masked convs."""
    total = sum(m.size for m in masks.values())
    removed = sum(int((~m).sum()) for m in masks.values())
    return removed / total if total else 0.0
