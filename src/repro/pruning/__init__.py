"""Pruning baselines: unstructured magnitude and structured channel pruning."""

from .magnitude import (
    SparsityMaskCallback,
    apply_masks,
    finetune_pruned,
    global_magnitude_masks,
    prunable_parameters,
    prune_model,
    sparsity_of,
)
from .structured import (
    apply_channel_masks,
    channel_norms,
    channel_sparsity,
    structured_masks,
)

__all__ = [
    "SparsityMaskCallback",
    "apply_masks",
    "finetune_pruned",
    "global_magnitude_masks",
    "prunable_parameters",
    "prune_model",
    "sparsity_of",
    "apply_channel_masks",
    "channel_norms",
    "channel_sparsity",
    "structured_masks",
]
