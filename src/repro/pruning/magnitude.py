"""Unstructured magnitude-based weight pruning (paper Figs. 1 and 11).

The paper's comparison baseline: pre-train a real-valued CNN, zero the
globally-smallest weights to reach a compression ratio, then fine-tune
with the sparsity mask enforced.
"""

from __future__ import annotations

import numpy as np

from ..nn.data import DataLoader
from ..nn.module import Module
from ..nn.trainer import TrainConfig, TrainResult
from ..train.callbacks import Callback
from ..train.engine import TrainEngine

__all__ = [
    "prunable_parameters",
    "global_magnitude_masks",
    "apply_masks",
    "prune_model",
    "SparsityMaskCallback",
    "finetune_pruned",
    "sparsity_of",
]


def prunable_parameters(model: Module) -> dict[str, "np.ndarray"]:
    """Multi-dimensional (conv / ring / linear) weights; biases are kept."""
    return {
        name: param for name, param in model.named_parameters() if param.data.ndim >= 2
    }


def global_magnitude_masks(model: Module, compression: float) -> dict[str, np.ndarray]:
    """Binary keep-masks reaching ``compression``x fewer non-zero weights.

    A single global magnitude threshold ranks all prunable weights
    together (the paper's unstructured magnitude-based pruning).
    """
    if compression < 1.0:
        raise ValueError("compression ratio must be >= 1")
    params = prunable_parameters(model)
    all_magnitudes = np.concatenate([np.abs(p.data).reshape(-1) for p in params.values()])
    keep_fraction = 1.0 / compression
    keep_count = int(round(keep_fraction * all_magnitudes.size))
    if keep_count >= all_magnitudes.size:
        return {name: np.ones_like(p.data, dtype=bool) for name, p in params.items()}
    threshold = np.partition(all_magnitudes, -keep_count)[-keep_count] if keep_count else np.inf
    return {name: np.abs(p.data) >= threshold for name, p in params.items()}


def apply_masks(model: Module, masks: dict[str, np.ndarray]) -> None:
    """Zero out pruned weights in place."""
    params = dict(model.named_parameters())
    for name, mask in masks.items():
        params[name].data *= mask


def prune_model(model: Module, compression: float) -> dict[str, np.ndarray]:
    """Prune in place to ``compression``x and return the masks."""
    masks = global_magnitude_masks(model, compression)
    apply_masks(model, masks)
    return masks


def sparsity_of(model: Module, masks: dict[str, np.ndarray] | None = None) -> float:
    """Fraction of zeroed prunable weights."""
    params = prunable_parameters(model)
    total = sum(p.data.size for p in params.values())
    zeros = (
        sum(int((~m).sum()) for m in masks.values())
        if masks is not None
        else sum(int((p.data == 0).sum()) for p in params.values())
    )
    return zeros / total if total else 0.0


class SparsityMaskCallback(Callback):
    """Engine callback enforcing a pruning mask after every optimizer step.

    The paper's fine-tune-with-mask flow (Figs. 1 and 11) as a
    composable hook: the optimizer updates freely, then pruned weights
    are re-zeroed before the next forward, so the sparsity pattern
    survives training exactly as in the bespoke pre-engine loop.
    """

    def __init__(self, masks: dict[str, np.ndarray]) -> None:
        self.masks = masks
        self._named: dict[str, np.ndarray] | None = None

    def on_train_start(self, engine: TrainEngine) -> None:
        named = dict(engine.model.named_parameters())
        unknown = set(self.masks) - set(named)
        if unknown:
            raise KeyError(f"masks name unknown parameters: {sorted(unknown)}")
        self._named = named

    def on_batch_end(self, engine: TrainEngine, loss: float, grad_norm: float) -> None:
        for name, mask in self.masks.items():
            self._named[name].data *= mask


def finetune_pruned(
    model: Module,
    masks: dict[str, np.ndarray],
    loader: DataLoader,
    config: TrainConfig,
) -> TrainResult:
    """Fine-tune with the sparsity pattern enforced after every step."""
    engine = TrainEngine(model, config, callbacks=[SparsityMaskCallback(masks)])
    return engine.fit(loader)
