"""Fixed-point Q-format arithmetic (paper Section IV-C, ref. [1]).

A Q-format (w, f) represents numbers with ``w`` total bits of which ``f``
are fractional: step 2^-f, range [-2^(w-1-f), 2^(w-1-f) - 2^-f].  The
paper uses *dynamic* quantization — per-layer Q-formats chosen from the
observed dynamic range — and, for the directional ReLU, *component-wise*
Q-formats (one per tuple component) to avoid the saturation errors a
single shared format would cause (Section IV-C).
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "QFormat",
    "choose_qformat",
    "quantize_dynamic",
    "componentwise_qformats",
]


@dataclasses.dataclass(frozen=True)
class QFormat:
    """A fixed-point format with ``word_bits`` total and ``frac_bits`` fractional."""

    frac_bits: int
    word_bits: int = 8

    @property
    def step(self) -> float:
        """Quantization step 2^-f."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        return (2.0 ** (self.word_bits - 1) - 1) * self.step

    @property
    def min_value(self) -> float:
        return -(2.0 ** (self.word_bits - 1)) * self.step

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-to-nearest with saturation."""
        q = np.round(np.asarray(x, dtype=float) / self.step) * self.step
        return np.clip(q, self.min_value, self.max_value)

    def quantization_error(self, x: np.ndarray) -> float:
        """RMS error introduced on ``x``."""
        return float(np.sqrt(np.mean((self.quantize(x) - np.asarray(x)) ** 2)))


def choose_qformat(x: np.ndarray, word_bits: int = 8) -> QFormat:
    """Dynamic Q-format: the most fractional bits that avoid saturation.

    The integer part must hold max|x|, i.e. ``w - 1 - f >= ceil(log2(max|x|))``.
    """
    peak = float(np.max(np.abs(x))) if np.asarray(x).size else 0.0
    if peak == 0.0:
        return QFormat(frac_bits=word_bits - 1, word_bits=word_bits)
    int_bits = max(0, int(np.ceil(np.log2(peak + 1e-12))))
    # Allow peak exactly at a power of two to use one fewer integer bit.
    if peak <= 2.0**int_bits - 2.0 ** (int_bits - word_bits + 1):
        pass
    frac = word_bits - 1 - int_bits
    return QFormat(frac_bits=frac, word_bits=word_bits)


def quantize_dynamic(x: np.ndarray, word_bits: int = 8) -> tuple[np.ndarray, QFormat]:
    """Quantize with a freshly chosen dynamic Q-format."""
    fmt = choose_qformat(x, word_bits)
    return fmt.quantize(x), fmt


def componentwise_qformats(
    x: np.ndarray, n: int, axis: int, word_bits: int = 8
) -> list[QFormat]:
    """One Q-format per tuple component (paper's fix for the directional ReLU).

    ``x`` is grouped into n-tuples along ``axis`` (size must divide by n);
    component i aggregates slices ``axis % n == i``.
    """
    x = np.asarray(x)
    size = x.shape[axis]
    if size % n:
        raise ValueError(f"axis size {size} not divisible by tuple size {n}")
    formats = []
    for comp in range(n):
        index = [slice(None)] * x.ndim
        index[axis] = slice(comp, None, n)
        formats.append(choose_qformat(x[tuple(index)], word_bits))
    return formats
