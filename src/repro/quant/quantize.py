"""Model quantization: weights, activations, and quantizing factories.

Feature-map quantization is realized compositionally: a
:class:`QuantizingFactory` wraps any algebra factory and inserts
:class:`Quantize` layers after every convolution and activation, giving
the 8-bit fixed-point inference pipeline of the paper (Fig. 5(c)).
Calibration runs a representative batch to freeze per-layer dynamic
Q-formats; the directional ReLU gets component-wise formats.
"""

from __future__ import annotations

import numpy as np

from ..models.factory import LayerFactory
from ..nn.layers import DirectionalReLU2d, Sequential
from ..nn.module import Module
from ..nn.tensor import Tensor, no_grad
from .qformat import QFormat, choose_qformat

__all__ = [
    "Quantize",
    "QuantizedDirectionalReLU2d",
    "QuantizingFactory",
    "quantize_weights",
    "calibrate",
    "set_quantization_enabled",
]


class Quantize(Module):
    """Feature quantization point with a dynamically calibrated Q-format.

    In calibration mode it records the running peak magnitude; once
    frozen it rounds/saturates to the chosen format.  With
    ``tuple_size`` set, it keeps one format per tuple component
    (the paper's component-wise Q-formats).
    """

    def __init__(self, word_bits: int = 8, tuple_size: int | None = None) -> None:
        super().__init__()
        self.word_bits = word_bits
        self.tuple_size = tuple_size
        self.calibrating = False
        self.enabled = True
        self._peak: np.ndarray | None = None
        self.formats: list[QFormat] | None = None

    def observe(self, x: np.ndarray) -> None:
        n = self.tuple_size or 1
        peaks = np.zeros(n)
        for comp in range(n):
            sl = x[:, comp::n] if n > 1 else x
            peaks[comp] = np.max(np.abs(sl)) if sl.size else 0.0
        self._peak = peaks if self._peak is None else np.maximum(self._peak, peaks)

    def freeze(self) -> None:
        """Fix Q-formats from the observed peaks."""
        if self._peak is None:
            raise RuntimeError("freeze() before any calibration batch")
        self.formats = [
            choose_qformat(np.array([peak]), self.word_bits) for peak in self._peak
        ]
        self.calibrating = False

    def forward(self, x: Tensor) -> Tensor:
        if self.calibrating:
            self.observe(x.data)
            return x
        if not self.enabled or self.formats is None:
            return x
        n = self.tuple_size or 1
        if n == 1:
            return Tensor(self.formats[0].quantize(x.data))
        out = x.data.copy()
        for comp in range(n):
            out[:, comp::n] = self.formats[comp].quantize(out[:, comp::n])
        return Tensor(out)


class QuantizedDirectionalReLU2d(Module):
    """Fixed-point directional ReLU with two hardware realizations.

    * ``mode="onthefly"`` — the paper's pipeline (Fig. 8): the two
      Hadamard transforms run at full internal precision; only the block
      output is quantized (with component-wise Q-formats).
    * ``mode="naive"`` — a conventional MAC-based accelerator must
      quantize features before each transform, which the paper measures
      as up to 0.2 dB of PSNR loss (Section V).
    """

    def __init__(
        self, inner: DirectionalReLU2d, word_bits: int = 8, mode: str = "onthefly"
    ) -> None:
        super().__init__()
        if mode not in ("onthefly", "naive"):
            raise ValueError("mode must be 'onthefly' or 'naive'")
        self.inner = inner
        self.mode = mode
        self.pre = Quantize(word_bits, tuple_size=inner.n)
        self.mid = Quantize(word_bits, tuple_size=inner.n)
        self.post = Quantize(word_bits, tuple_size=inner.n)

    def forward(self, x: Tensor) -> Tensor:
        n = self.inner.n
        nonlin = self.inner.nonlinearity
        batch, channels, height, width = x.shape
        tuples = channels // n
        y = x.reshape(batch, tuples, n, height, width)
        if self.mode == "naive":
            y = y.reshape(batch, channels, height, width)
            y = self.pre(y)
            y = y.reshape(batch, tuples, n, height, width)
        y = y.tuple_transform(nonlin.v_mat, axis=2)
        y = y.relu()
        if self.mode == "naive":
            y = y.reshape(batch, channels, height, width)
            y = self.mid(y)
            y = y.reshape(batch, tuples, n, height, width)
        y = y.tuple_transform(nonlin.u_mat, axis=2)
        y = y.reshape(batch, channels, height, width)
        return self.post(y)


class QuantizingFactory(LayerFactory):
    """Wrap another factory, inserting quantization after every layer."""

    def __init__(
        self, base: LayerFactory, word_bits: int = 8, directional_mode: str = "onthefly"
    ) -> None:
        self.base = base
        self.word_bits = word_bits
        self.directional_mode = directional_mode

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"{self.base.name}@q{self.word_bits}({self.directional_mode})"

    def conv(self, in_channels, out_channels, kernel_size, seed, **kwargs) -> Module:
        conv = self.base.conv(in_channels, out_channels, kernel_size, seed, **kwargs)
        return Sequential(conv, Quantize(self.word_bits))

    def act(self, channels: int) -> Module:
        act = self.base.act(channels)
        if isinstance(act, DirectionalReLU2d):
            return QuantizedDirectionalReLU2d(
                act, word_bits=self.word_bits, mode=self.directional_mode
            )
        return Sequential(act, Quantize(self.word_bits))

    def weight_compression(self) -> float:
        return self.base.weight_compression()


def quantize_weights(model: Module, word_bits: int = 8) -> dict[str, QFormat]:
    """In-place per-parameter dynamic weight quantization.

    Returns the Q-format chosen for every parameter (for reporting).
    """
    formats: dict[str, QFormat] = {}
    for name, param in model.named_parameters():
        fmt = choose_qformat(param.data, word_bits)
        param.data[...] = fmt.quantize(param.data)
        formats[name] = fmt
    return formats


def _quantize_layers(model: Module) -> list[Quantize]:
    return [m for m in model.modules() if isinstance(m, Quantize)]


def set_quantization_enabled(model: Module, enabled: bool) -> None:
    """Toggle every Quantize point (for float-vs-fixed comparisons)."""
    for q in _quantize_layers(model):
        q.enabled = enabled


def calibrate(model: Module, inputs: np.ndarray) -> None:
    """Run a calibration batch and freeze every Quantize point's format."""
    layers = _quantize_layers(model)
    for q in layers:
        q.calibrating = True
        q._peak = None
    model.eval()
    with no_grad():
        model(Tensor(inputs))
    for q in layers:
        if q._peak is None:  # point never reached (e.g. unused branch)
            q.calibrating = False
            q.formats = None
            continue
        q.freeze()
