"""Dynamic fixed-point quantization (paper Section IV-C)."""

from .qat import WeightQuantCallback, qat_finetune
from .qformat import QFormat, choose_qformat, componentwise_qformats, quantize_dynamic
from .quantize import (
    Quantize,
    QuantizedDirectionalReLU2d,
    QuantizingFactory,
    calibrate,
    quantize_weights,
    set_quantization_enabled,
)

__all__ = [
    "WeightQuantCallback",
    "qat_finetune",
    "QFormat",
    "choose_qformat",
    "componentwise_qformats",
    "quantize_dynamic",
    "Quantize",
    "QuantizedDirectionalReLU2d",
    "QuantizingFactory",
    "calibrate",
    "quantize_weights",
    "set_quantization_enabled",
]
