"""Dynamic fixed-point quantization (paper Section IV-C)."""

from .qformat import QFormat, choose_qformat, componentwise_qformats, quantize_dynamic
from .quantize import (
    Quantize,
    QuantizedDirectionalReLU2d,
    QuantizingFactory,
    calibrate,
    quantize_weights,
    set_quantization_enabled,
)

__all__ = [
    "QFormat",
    "choose_qformat",
    "componentwise_qformats",
    "quantize_dynamic",
    "Quantize",
    "QuantizedDirectionalReLU2d",
    "QuantizingFactory",
    "calibrate",
    "quantize_weights",
    "set_quantization_enabled",
]
