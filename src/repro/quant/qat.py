"""Quantization-aware fine-tuning as a training-engine callback.

The paper's Table III lists a ``finetune-8bit`` recipe: quantize a
trained model to 8-bit fixed point, then fine-tune so the weights adapt
to the grid.  :class:`WeightQuantCallback` expresses the
quantize-in-the-loop part as a hook on :class:`repro.train.TrainEngine`:
after every optimizer step the weights are re-quantized in place, so
each forward/backward sees exactly the fixed-point weights inference
will use (straight-through style — gradients flow as if the rounding
were the identity).  Feature-map quantization keeps its usual
compositional path (:class:`~repro.quant.quantize.QuantizingFactory` /
:func:`~repro.quant.quantize.calibrate`) and composes freely with this
callback.
"""

from __future__ import annotations

from ..nn.data import DataLoader
from ..nn.module import Module
from ..nn.trainer import TrainConfig, TrainResult
from ..train.callbacks import Callback
from ..train.engine import TrainEngine
from .quantize import calibrate, quantize_weights

__all__ = ["WeightQuantCallback", "qat_finetune"]


class WeightQuantCallback(Callback):
    """Re-quantize all weights to ``word_bits`` after every optimizer step.

    The Q-format is re-chosen dynamically each step (the paper's dynamic
    fixed point), so the grid tracks the shifting weight ranges during
    fine-tuning; the formats of the final step are kept on
    ``self.formats`` for reporting.
    """

    def __init__(self, word_bits: int = 8) -> None:
        self.word_bits = word_bits
        self.formats: dict | None = None

    def on_train_start(self, engine: TrainEngine) -> None:
        # Start from quantized weights so the very first forward already
        # sees the fixed-point model.
        self.formats = quantize_weights(engine.model, self.word_bits)

    def on_batch_end(self, engine: TrainEngine, loss: float, grad_norm: float) -> None:
        self.formats = quantize_weights(engine.model, self.word_bits)


def qat_finetune(
    model: Module,
    loader: DataLoader,
    config: TrainConfig,
    word_bits: int = 8,
    calibration_inputs=None,
) -> TrainResult:
    """Quantization-aware fine-tune: fixed-point weights in the loop.

    When ``calibration_inputs`` is given, the model's
    :class:`~repro.quant.quantize.Quantize` points are re-calibrated and
    frozen after training, so the returned model is ready for
    fixed-point inference end to end.
    """
    engine = TrainEngine(model, config, callbacks=[WeightQuantCallback(word_bits)])
    result = engine.fit(loader)
    if calibration_inputs is not None:
        calibrate(model, calibration_inputs)
    return result
