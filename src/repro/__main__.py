"""``python -m repro`` — experiment orchestration CLI.

See :mod:`repro.experiments.cli` for the subcommands.
"""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
