"""Throughput scheduling: mapping CNN layers onto the eRingCNN engines.

The engines process 32 real input and 32 real output channels for a
4 x 2 pixel tile per cycle; wider layers fold over multiple passes
(ceil(Ci/32) * ceil(Co/32)).  This model turns a model description into
cycles per pixel, the attainable frame rate at a clock frequency, and
the compact-configuration selection the paper performs per throughput
target (Section VI-B: deeper models at HD30, shallower at UHD30).
"""

from __future__ import annotations

import dataclasses
import math

from ..nn.layers import Conv2d, RingConv2d
from ..nn.module import Module
from .accelerator import ThroughputTarget

__all__ = [
    "LayerShape",
    "layers_of_model",
    "cycles_per_pixel",
    "achievable_fps",
    "max_blocks_for_target",
]

_TILE = 8
_CHANNELS = 32


@dataclasses.dataclass(frozen=True)
class LayerShape:
    """One convolution layer as the scheduler sees it.

    Attributes:
        in_channels / out_channels: Real-valued channel counts.
        kernel_size: 1 or 3 (the two engines).
        scale: Spatial work relative to one output pixel of the network
            (e.g. 1/16 for layers operating in the x4-SR low-res domain).
    """

    in_channels: int
    out_channels: int
    kernel_size: int
    scale: float = 1.0

    def folds(self, channels: int = _CHANNELS) -> int:
        """Engine passes needed to cover the channel extent."""
        return math.ceil(self.in_channels / channels) * math.ceil(
            self.out_channels / channels
        )


def layers_of_model(model: Module, scale: float = 1.0) -> list[LayerShape]:
    """Extract scheduler layer shapes from a built model."""
    shapes = []
    for module in model.modules():
        if isinstance(module, (Conv2d, RingConv2d)):
            shapes.append(
                LayerShape(
                    in_channels=module.in_channels,
                    out_channels=module.out_channels,
                    kernel_size=module.kernel_size,
                    scale=scale,
                )
            )
    return shapes


def cycles_per_pixel(layers: list[LayerShape], tile: int = _TILE) -> float:
    """Engine cycles needed per output pixel of the network.

    Each pass produces ``tile`` pixels of one 32x32-channel layer; a
    layer needs ``folds`` passes, discounted by its spatial ``scale``.
    """
    return sum(layer.folds() * layer.scale / tile for layer in layers)


def achievable_fps(
    layers: list[LayerShape],
    target: ThroughputTarget,
    freq_hz: float = 250e6,
) -> float:
    """Frames per second the engine sustains for a model at a resolution."""
    cpp = cycles_per_pixel(layers)
    if cpp == 0:
        return math.inf
    pixels_per_frame = target.width * target.height
    return freq_hz / (cpp * pixels_per_frame)


def max_blocks_for_target(
    target: ThroughputTarget,
    width: int = _CHANNELS,
    freq_hz: float = 250e6,
    kernel_size: int = 3,
) -> int:
    """Largest ERNet block count sustaining the target at 32-channel width.

    An ERNet body block is two 3x3 convolutions; head and tail add two
    more layers.  This is the paper's compact-configuration step: the
    same accelerator runs deeper models at HD30 than at UHD30.
    """
    best = 0
    for blocks in range(1, 65):
        layers = [
            LayerShape(width, width, kernel_size) for _ in range(2 * blocks + 2)
        ]
        if achievable_fps(layers, target, freq_hz) >= target.fps:
            best = blocks
        else:
            break
    return best
