"""Cross-accelerator comparisons (paper Tables VII and VIII, Fig. 14).

Reference accelerators are encoded from the numbers the paper itself
cites (SparTen [16], TIE [12], CirCNN [13], Diffy [34]); eRingCNN/eCNN
numbers come from this repo's analytical model.  Technology scaling uses
the paper's footnote-1 factors (65 nm -> 40 nm: 2.35x gate density,
0.5x power at the same speed).
"""

from __future__ import annotations

import dataclasses

from .accelerator import (
    ECNN,
    ERINGCNN_N2,
    ERINGCNN_N4,
    AcceleratorConfig,
    HD30,
    ThroughputTarget,
    model_accelerator,
)

__all__ = [
    "ReferenceAccelerator",
    "ComparisonRow",
    "EfficiencyGains",
    "SPARTEN",
    "TIE_CONV",
    "CIRCNN",
    "DIFFY_40NM",
    "table8_comparison",
    "diffy_comparison",
    "fig14_efficiencies",
]

# 65 nm -> 40 nm projection factors (paper footnote 1, from [45]).
_DENSITY_65_TO_40 = 2.35
_POWER_65_TO_40 = 0.5


@dataclasses.dataclass(frozen=True)
class ReferenceAccelerator:
    """Published accelerator numbers as cited by the paper.

    Attributes:
        sparsity_kind: The paper's taxonomy (natural / low-rank / full-rank /
            algebraic).
        compression: Weight-compression ratio the design point uses.
        equivalent_tops_per_watt: Throughput of the *uncompressed*
            computation divided by power — the paper's Table VIII metric.
    """

    name: str
    sparsity_kind: str
    technology_nm: int
    compression: float
    equivalent_tops_per_watt: float
    note: str = ""


SPARTEN = ReferenceAccelerator(
    name="SparTen",
    sparsity_kind="natural (unstructured)",
    technology_nm=45,
    compression=3.1,
    equivalent_tops_per_watt=2.7,
    note="irregularity overheads: only 11.7% of power / 5.6% of area on MACs",
)
TIE_CONV = ReferenceAccelerator(
    name="TIE (CONV)",
    sparsity_kind="low-rank (tensor-train)",
    technology_nm=28,
    compression=4.8,
    equivalent_tops_per_watt=6.9,
    note="efficient for highly-compressed FC layers, weaker on CONV",
)
CIRCNN = ReferenceAccelerator(
    name="CirCNN",
    sparsity_kind="full-rank (block-circulant)",
    technology_nm=45,
    compression=66.0,
    equivalent_tops_per_watt=10.0,
    note="needs very high compression ratios",
)
# Diffy at 40 nm via the paper's scaling: FFDNet-level Full-HD 20 fps.
DIFFY_40NM = ReferenceAccelerator(
    name="Diffy (40nm proj.)",
    sparsity_kind="natural (bit-level differential)",
    technology_nm=40,
    compression=1.0,
    equivalent_tops_per_watt=4.2,
    note="projected with 2.35x density / 0.5x power from 65 nm [45]",
)

# Diffy reference workload: FFDNet-level inference at Full-HD 20 fps
# requires ~35.2 equivalent TOPS (paper Section I: 4K30 FFDNet = 106 TOPS,
# scaled by pixel rate 1920*1080*20 / (3840*2160*30)).
_DIFFY_WORKLOAD_TOPS = 106.0 * (1920 * 1080 * 20) / (3840 * 2160 * 30)
_DIFFY_POWER_W_40NM = _DIFFY_WORKLOAD_TOPS / DIFFY_40NM.equivalent_tops_per_watt


@dataclasses.dataclass(frozen=True)
class ComparisonRow:
    """One comparison line: name, compression, equivalent TOPS/W, ratio."""

    name: str
    sparsity_kind: str
    compression: float
    equivalent_tops_per_watt: float
    gain_vs_reference: float | None = None


def _our_rows(synthesis: bool) -> list[ComparisonRow]:
    rows = []
    for config in (ERINGCNN_N2, ERINGCNN_N4):
        report = model_accelerator(config)
        n = 2 if config is ERINGCNN_N2 else 4
        rows.append(
            ComparisonRow(
                name=config.name,
                sparsity_kind="algebraic (ring)",
                compression=float(n),
                equivalent_tops_per_watt=report.equivalent_tops_per_watt(synthesis=synthesis),
            )
        )
    return rows


def table8_comparison() -> list[ComparisonRow]:
    """Table VIII: sparsity approaches at synthesis level."""
    rows = [
        ComparisonRow(r.name, r.sparsity_kind, r.compression, r.equivalent_tops_per_watt)
        for r in (SPARTEN, TIE_CONV, CIRCNN)
    ]
    rows.extend(_our_rows(synthesis=True))
    return rows


def diffy_comparison(
    target: ThroughputTarget = HD30, fps: int = 20, freq_hz: float = 167e6
) -> list[ComparisonRow]:
    """Table VII: energy-efficiency ratios vs Diffy at FFDNet-level HD 20 fps.

    eRingCNN runs the same workload at a reduced clock (the paper uses
    167 MHz); dynamic power scales with frequency.
    """
    rows = [
        ComparisonRow(
            name=DIFFY_40NM.name,
            sparsity_kind=DIFFY_40NM.sparsity_kind,
            compression=1.0,
            equivalent_tops_per_watt=DIFFY_40NM.equivalent_tops_per_watt,
            gain_vs_reference=1.0,
        )
    ]
    for base_config in (ERINGCNN_N2, ERINGCNN_N4):
        config = dataclasses.replace(base_config, freq_hz=freq_hz)
        report = model_accelerator(config)
        eff = report.equivalent_tops_per_watt()
        rows.append(
            ComparisonRow(
                name=config.name,
                sparsity_kind="algebraic (ring)",
                compression=float(_get_n(config)),
                equivalent_tops_per_watt=eff,
                gain_vs_reference=eff / DIFFY_40NM.equivalent_tops_per_watt,
            )
        )
    return rows


def _get_n(config: AcceleratorConfig) -> int:
    """Tuple dimension of an accelerator config."""
    return {"real": 1, "ri2": 2, "ri4": 4}[config.ring]


@dataclasses.dataclass(frozen=True)
class EfficiencyGains:
    """Fig. 14: area and energy efficiency of eRingCNN over eCNN."""

    name: str
    engine_area_gain: float
    engine_energy_gain: float
    chip_area_gain: float
    chip_energy_gain: float


def fig14_efficiencies() -> list[EfficiencyGains]:
    """Engine-level and whole-chip gains vs the real-valued eCNN."""
    ecnn = model_accelerator(ECNN)
    gains = []
    for config in (ERINGCNN_N2, ERINGCNN_N4):
        report = model_accelerator(config)
        gains.append(
            EfficiencyGains(
                name=config.name,
                engine_area_gain=ecnn.areas_mm2["conv_engines"]
                / report.areas_mm2["conv_engines"],
                engine_energy_gain=ecnn.powers_w["conv_engines"]
                / report.powers_w["conv_engines"],
                chip_area_gain=ecnn.total_area_mm2 / report.total_area_mm2,
                chip_energy_gain=ecnn.total_power_w / report.total_power_w,
            )
        )
    return gains
