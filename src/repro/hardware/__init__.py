"""Analytical 40 nm hardware model of eRingCNN (paper Section V)."""

from .accelerator import (
    ECNN,
    ERINGCNN_N2,
    ERINGCNN_N4,
    HD30,
    UHD30,
    AcceleratorConfig,
    AcceleratorReport,
    ThroughputTarget,
    dram_bandwidth_gbps,
    model_accelerator,
    supported_3x3_layers,
)
from .calibration import CALIBRATED_COST, SYNTHESIS_POWER_FACTOR, TECHNOLOGY
from .compare import (
    CIRCNN,
    DIFFY_40NM,
    SPARTEN,
    TIE_CONV,
    diffy_comparison,
    fig14_efficiencies,
    table8_comparison,
)
from .cost import CostModel, Resource
from .engine import (
    EngineConfig,
    EngineReport,
    engine_for_ring,
    model_engine,
    real_engine,
)
from .throughput import (
    LayerShape,
    achievable_fps,
    cycles_per_pixel,
    layers_of_model,
    max_blocks_for_target,
)

__all__ = [
    "ECNN",
    "ERINGCNN_N2",
    "ERINGCNN_N4",
    "HD30",
    "UHD30",
    "AcceleratorConfig",
    "AcceleratorReport",
    "ThroughputTarget",
    "dram_bandwidth_gbps",
    "model_accelerator",
    "supported_3x3_layers",
    "CALIBRATED_COST",
    "SYNTHESIS_POWER_FACTOR",
    "TECHNOLOGY",
    "CIRCNN",
    "DIFFY_40NM",
    "SPARTEN",
    "TIE_CONV",
    "diffy_comparison",
    "fig14_efficiencies",
    "table8_comparison",
    "CostModel",
    "Resource",
    "EngineConfig",
    "EngineReport",
    "engine_for_ring",
    "model_engine",
    "real_engine",
    "LayerShape",
    "achievable_fps",
    "cycles_per_pixel",
    "layers_of_model",
    "max_blocks_for_target",
]
