"""RCONV / FRCONV convolution-engine model (paper Figs. 7, 8, 12).

One engine computes a K x K convolution layer for 32 real-valued input
and output channels over a 4 x 2 spatial tile per cycle (the eCNN
organization the paper adopts).  With an n-tuple ring, the engine holds
(32/n)^2 computing units, each performing one ring convolution; the fast
algorithm's m component-wise products replace the n^2 real MACs.

The model counts, per cycle: multipliers (bitwidth-aware), data/filter
transform adders, accumulation adder trees, weight registers, and the
non-linearity block — the on-the-fly directional ReLU of Fig. 8 for
(R_I, f_H), or plain ReLU+quantization otherwise.
"""

from __future__ import annotations

import dataclasses
import math

from ..rings.catalog import RingSpec, get_ring
from ..rings.properties import product_bitwidths
from .cost import CostModel, Resource

__all__ = ["EngineConfig", "EngineReport", "model_engine", "real_engine", "engine_for_ring"]

_TILE = 8  # 4 x 2 spatial positions per cycle
_CHANNELS = 32  # real-valued input/output channels per cycle


@dataclasses.dataclass(frozen=True)
class EngineConfig:
    """Configuration of one convolution engine.

    Attributes:
        spec: Ring catalog entry (``get_ring("real")`` for the baseline).
        kernel_size: 3 or 1 (the two eCNN engines).
        directional_relu: Whether the non-linearity is the paper's f_H
            block (Fig. 8) instead of plain ReLU + quantization.
        channels / tile: Engine-level parallelism (eCNN defaults).
        feature_bits / weight_bits: Fixed-point word lengths.
    """

    spec: RingSpec
    kernel_size: int = 3
    directional_relu: bool = False
    channels: int = _CHANNELS
    tile: int = _TILE
    feature_bits: int = 8
    weight_bits: int = 8


@dataclasses.dataclass(frozen=True)
class EngineReport:
    """Resource breakdown of one engine."""

    config: EngineConfig
    multipliers: Resource
    transforms: Resource
    accumulators: Resource
    weight_regs: Resource
    nonlinearity: Resource

    @property
    def total(self) -> Resource:
        return (
            self.multipliers
            + self.transforms
            + self.accumulators
            + self.weight_regs
            + self.nonlinearity
        )

    @property
    def area_mm2(self) -> float:
        return self.total.area_mm2

    def macs_per_cycle(self) -> int:
        """Real multiplications this engine performs each cycle."""
        n = self.config.spec.n
        tuples = self.config.channels // n
        m = self.config.spec.fast.num_products
        return tuples * tuples * m * self.config.kernel_size**2 * self.config.tile

    def equivalent_ops_per_cycle(self) -> int:
        """Ops of the uncompressed real-valued layer (2 ops per MAC)."""
        c = self.config.channels
        return 2 * c * c * self.config.kernel_size**2 * self.config.tile


def model_engine(config: EngineConfig, cost: CostModel | None = None) -> EngineReport:
    """Count the resources of one engine configuration."""
    cost = cost if cost is not None else CostModel()
    spec = config.spec
    n = spec.n
    tuples = config.channels // n
    taps = config.kernel_size**2
    widths = product_bitwidths(spec, config.feature_bits, config.weight_bits)
    m = len(widths)

    # --- component-wise product multipliers -------------------------------
    mult_unit = Resource()
    for wg, wx in widths:
        mult_unit = mult_unit + cost.multiplier(wx, wg)
    multipliers = (tuples * tuples * taps * config.tile) * mult_unit

    # --- data / reconstruction transform adders (FRCONV only) -------------
    transforms = Resource()
    tx = spec.hw_fast.tx
    tz = spec.hw_fast.tz
    tx_adds = int(sum(max(0, (abs(row) > 1e-9).sum() - 1) for row in tx))
    tz_adds = int(sum(max(0, (abs(row) > 1e-9).sum() - 1) for row in tz))
    if tx_adds:
        # Tx once per input tuple element per tile position.
        transforms = transforms + (tuples * config.tile * tx_adds) * cost.adder(
            config.feature_bits + 1
        )
    if tz_adds:
        acc_width = _accumulator_width(config, widths, tuples, taps)
        transforms = transforms + (tuples * config.tile * tz_adds) * cost.adder(acc_width)

    # --- accumulation ------------------------------------------------------
    # Each output tuple sums `tuples` unit outputs; inside a unit, taps
    # products accumulate per component.  Total terms per output component:
    terms = tuples * taps
    prod_width = max(wx + wg for wg, wx in widths)
    acc_trees = (tuples * m * config.tile) * cost.adder_tree(terms, prod_width)
    accumulators = acc_trees

    # --- weight registers ---------------------------------------------------
    # One m-product transformed weight set per tuple pair per tap.
    weight_bits_total = tuples * tuples * taps * sum(wg for wg, _ in widths)
    weight_regs = cost.register(1) * weight_bits_total

    # --- non-linearity block -------------------------------------------------
    acc_width = _accumulator_width(config, widths, tuples, taps)
    if config.directional_relu and n > 1:
        nonlinearity = (tuples * config.tile) * _directional_relu_unit(n, acc_width, cost)
    else:
        # ReLU comparator + dynamic quantization shifter per output channel.
        per_channel = cost.adder(acc_width) + cost.shifter(config.feature_bits, stages=2)
        nonlinearity = (config.channels * config.tile) * per_channel
    return EngineReport(
        config=config,
        multipliers=multipliers,
        transforms=transforms,
        accumulators=accumulators,
        weight_regs=weight_regs,
        nonlinearity=nonlinearity,
    )


def _accumulator_width(config, widths, tuples: int, taps: int) -> int:
    """Bit width of the accumulated pre-activation (e.g. 24 bits for n=4)."""
    prod_width = max(wx + wg for wg, wx in widths)
    return prod_width + math.ceil(math.log2(tuples * taps))


def _directional_relu_unit(n: int, acc_width: int, cost: CostModel) -> Resource:
    """The on-the-fly f_H block of Fig. 8 for one n-tuple.

    Two Hadamard butterflies (n log2 n adds each) at full internal
    precision (up to 33 bits for n = 4), component-alignment
    left-shifters for the component-wise Q-formats, ReLU muxes, final
    quantization shifters, and the pipeline registers of the
    "well-pipelined" realization the paper lays out.
    """
    stages = max(1, int(math.log2(n)))
    butterfly_adds = n * stages
    # Internal widths grow through both transforms plus 5 alignment bits.
    width_t1 = acc_width + stages
    width_t2 = acc_width + 2 * stages + 5
    unit = Resource()
    unit = unit + butterfly_adds * cost.adder(width_t1)
    unit = unit + butterfly_adds * cost.adder(width_t2)
    # Q-format alignment left-shifters (up to 5 shift bits, Fig. 8).
    unit = unit + n * cost.shifter(width_t1, stages=3)
    # ReLU muxes.
    unit = unit + n * cost.adder(width_t1 // 2)
    # Output quantization shifters (component-wise Q-formats).
    unit = unit + n * cost.shifter(width_t2, stages=3)
    # Pipeline registers: one cut per butterfly stage on each transform
    # plus input/output cuts, each latching all n components.
    pipeline_cuts = 2 * stages + 2
    unit = unit + pipeline_cuts * n * cost.register(width_t2)
    return unit


def real_engine(kernel_size: int = 3, cost: CostModel | None = None) -> EngineReport:
    """The real-valued eCNN engine baseline."""
    return model_engine(EngineConfig(spec=get_ring("real"), kernel_size=kernel_size), cost)


def engine_for_ring(
    name: str, kernel_size: int = 3, cost: CostModel | None = None
) -> EngineReport:
    """Engine for a catalog ring; (R_I, f_H) engines enable the f_H block."""
    spec = get_ring(name)
    directional = spec.family == "identity" and spec.n > 1
    return model_engine(
        EngineConfig(spec=spec, kernel_size=kernel_size, directional_relu=directional), cost
    )
