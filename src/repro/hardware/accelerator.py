"""Whole-accelerator model of eRingCNN / eCNN (paper Section V, Tables V-VI).

The chip is the eCNN organization with ring convolution engines: one
3x3 and one 1x1 RCONV engine (32 real channels, 4x2 tile per cycle),
weight memory, image block buffers, and the inference datapath (which
carries the extra directional-ReLU blocks after skip connections).

Block-based inference with recomputation (eCNN's flow) sets the DRAM
bandwidth: only the input image (with block halos) and the output image
cross the chip boundary.
"""

from __future__ import annotations

import dataclasses
import math

from ..rings.catalog import get_ring
from .calibration import CALIBRATED_COST, SYNTHESIS_POWER_FACTOR
from .cost import CostModel
from .engine import EngineConfig, EngineReport, model_engine

__all__ = [
    "AcceleratorConfig", "AcceleratorReport", "ThroughputTarget",
    "model_accelerator", "ECNN", "ERINGCNN_N2", "ERINGCNN_N4",
    "dram_bandwidth_gbps", "HD30", "UHD30", "supported_3x3_layers",
]


@dataclasses.dataclass(frozen=True)
class ThroughputTarget:
    """A video throughput target (paper: HD30 and UHD30)."""

    name: str
    width: int
    height: int
    fps: int

    @property
    def pixels_per_second(self) -> float:
        return float(self.width * self.height * self.fps)


HD30 = ThroughputTarget("HD30", 1920, 1080, 30)
UHD30 = ThroughputTarget("UHD30", 3840, 2160, 30)


@dataclasses.dataclass(frozen=True)
class AcceleratorConfig:
    """One accelerator instance.

    Attributes:
        name: Display name.
        ring: Catalog key of the convolution algebra ("real" = eCNN).
        weight_memory_kb: On-chip weight SRAM (paper Table V: 960 for n2,
            480 for n4, 1280 for eCNN).
        block_buffer_kb: Image block buffers (BB in Fig. 6).
        freq_hz: Clock (paper: 250 MHz for the 41-TOPS operating point).
        skip_relu_units: Directional-ReLU blocks in the inference datapath
            (non-linearity after skip/residual connections, Section V).
    """

    name: str
    ring: str = "real"
    weight_memory_kb: float = 1280.0
    block_buffer_kb: float = 384.0
    freq_hz: float = 250e6
    skip_relu_units: int = 64
    feature_bits: int = 8


ECNN = AcceleratorConfig(name="eCNN", ring="real", weight_memory_kb=1280.0)
ERINGCNN_N2 = AcceleratorConfig(name="eRingCNN-n2", ring="ri2", weight_memory_kb=960.0)
ERINGCNN_N4 = AcceleratorConfig(name="eRingCNN-n4", ring="ri4", weight_memory_kb=480.0)


@dataclasses.dataclass(frozen=True)
class AcceleratorReport:
    """Area/power breakdown mirroring the paper's Table VI."""

    config: AcceleratorConfig
    conv3x3: EngineReport
    conv1x1: EngineReport
    areas_mm2: dict[str, float]
    powers_w: dict[str, float]

    @property
    def total_area_mm2(self) -> float:
        return sum(self.areas_mm2.values())

    @property
    def total_power_w(self) -> float:
        return sum(self.powers_w.values())

    @property
    def conv_area_fraction(self) -> float:
        return self.areas_mm2["conv_engines"] / self.total_area_mm2

    @property
    def conv_power_fraction(self) -> float:
        return self.powers_w["conv_engines"] / self.total_power_w

    def equivalent_tops(self) -> float:
        """TOPS of the uncompressed real-valued computation (paper metric)."""
        ops = (
            self.conv3x3.equivalent_ops_per_cycle()
            + self.conv1x1.equivalent_ops_per_cycle()
        )
        return ops * self.config.freq_hz / 1e12

    def equivalent_tops_per_watt(self, synthesis: bool = False) -> float:
        """Equivalent TOPS/W; ``synthesis=True`` approximates pre-layout
        power (paper Table VIII compares synthesis results)."""
        power = self.total_power_w * (SYNTHESIS_POWER_FACTOR if synthesis else 1.0)
        return self.equivalent_tops() / power

    def real_macs_per_cycle(self) -> int:
        return self.conv3x3.macs_per_cycle() + self.conv1x1.macs_per_cycle()


def model_accelerator(
    config: AcceleratorConfig, cost: CostModel | None = None
) -> AcceleratorReport:
    """Build the full-chip resource report."""
    cost = cost if cost is not None else CALIBRATED_COST
    spec = get_ring(config.ring)
    directional = spec.family == "identity" and spec.n > 1
    conv3 = model_engine(
        EngineConfig(spec=spec, kernel_size=3, directional_relu=directional), cost
    )
    conv1 = model_engine(
        EngineConfig(spec=spec, kernel_size=1, directional_relu=directional), cost
    )
    engines = conv3.total + conv1.total

    weight_mem = cost.sram(config.weight_memory_kb, read_fraction=0.08)
    block_buffer = cost.sram(config.block_buffer_kb, read_fraction=0.20)

    # Inference datapath: feature routing plus the directional-ReLU blocks
    # serving skip/residual connections (the n4 unit is wider: Fig. 8).
    n = spec.n
    route = config.skip_relu_units * 8 * cost.register(config.feature_bits * 32)
    if directional:
        from .engine import _directional_relu_unit

        widths = [(config.feature_bits, config.feature_bits)]
        acc_width = config.feature_bits * 2 + 6
        datapath = route + config.skip_relu_units * _directional_relu_unit(
            n, acc_width, cost
        ) * (32 // n)
    else:
        datapath = route + config.skip_relu_units * 32 * cost.adder(config.feature_bits * 2)

    misc_area = 0.06 * (engines.area_um2 + weight_mem.area_um2 + block_buffer.area_um2)
    misc_power = 0.05 * (engines + weight_mem + block_buffer).power_w(config.freq_hz)

    areas = {
        "conv_engines": engines.area_mm2,
        "weight_memory": weight_mem.area_mm2,
        "block_buffer": block_buffer.area_mm2,
        "datapath": datapath.area_mm2,
        "misc": misc_area / 1e6,
    }
    powers = {
        "conv_engines": engines.power_w(config.freq_hz),
        "weight_memory": weight_mem.power_w(config.freq_hz),
        "block_buffer": block_buffer.power_w(config.freq_hz),
        "datapath": datapath.power_w(config.freq_hz),
        "misc": misc_power,
    }
    return AcceleratorReport(
        config=config, conv3x3=conv3, conv1x1=conv1, areas_mm2=areas, powers_w=powers
    )


def dram_bandwidth_gbps(
    target: ThroughputTarget,
    bytes_per_pixel_in: float = 3.0,
    bytes_per_pixel_out: float = 3.0,
    block: int = 96,
    halo: int = 12,
) -> float:
    """DRAM bandwidth of block-based inference with recomputation.

    Each output block of ``block x block`` pixels reads an input block
    grown by ``halo`` on every side (the receptive field recomputed
    across block borders, eCNN's flow) — paper: 1.93 GB/s at UHD30.
    """
    overhead = ((block + 2 * halo) ** 2) / block**2
    bytes_per_pixel = bytes_per_pixel_in * overhead + bytes_per_pixel_out
    return target.pixels_per_second * bytes_per_pixel / 1e9


def supported_3x3_layers(
    target: ThroughputTarget, freq_hz: float = 250e6, channels: int = 32, tile: int = 8
) -> int:
    """How many 32-channel 3x3 layers fit per pixel at a throughput target.

    The engine finishes one layer for ``tile`` pixels per cycle, so depth
    budget = tile * freq / pixel_rate (ignoring fold overheads).
    """
    return max(1, math.floor(tile * freq_hz / target.pixels_per_second))
