"""Arithmetic-resource cost primitives for the 40 nm analytical model.

Substitutes for the paper's Design Compiler / IC Compiler flow (see
DESIGN.md): circuit complexity of a multiplier is approximated by the
product of its input bitwidths (the paper's own Section III-D metric),
adders and registers scale linearly with width, and SRAM scales with
capacity.  Absolute unit constants live in
:mod:`repro.hardware.calibration` and are fitted to the paper's published
component numbers; all *ratios* derive from structure, not fitting.
"""

from __future__ import annotations

import dataclasses

__all__ = ["CostModel", "Resource"]


@dataclasses.dataclass(frozen=True)
class Resource:
    """An (area, energy-per-cycle) pair; adds component-wise."""

    area_um2: float = 0.0
    energy_pj: float = 0.0

    def __add__(self, other: "Resource") -> "Resource":
        return Resource(self.area_um2 + other.area_um2, self.energy_pj + other.energy_pj)

    def __mul__(self, k: float) -> "Resource":
        return Resource(self.area_um2 * k, self.energy_pj * k)

    __rmul__ = __mul__

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1e6

    def power_w(self, freq_hz: float) -> float:
        """Dynamic power at a clock frequency (energy is per cycle)."""
        return self.energy_pj * 1e-12 * freq_hz


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Unit costs of datapath primitives at 40 nm.

    Attributes:
        mult_area / mult_energy: Per bit-squared (wx * wg) of a multiplier.
        adder_area / adder_energy: Per bit of a ripple/carry-save adder.
        reg_area / reg_energy: Per flip-flop bit.
        shifter_area / shifter_energy: Per bit of a barrel shifter stage.
        sram_area / sram_energy: Per KB of on-chip SRAM (area) and per KB
            touched per cycle (energy).
        activity: Average switching-activity derating on dynamic energy.
    """

    mult_area: float = 6.0
    mult_energy: float = 0.0125
    adder_area: float = 6.0
    adder_energy: float = 0.012
    reg_area: float = 4.0
    reg_energy: float = 0.004
    shifter_area: float = 3.0
    shifter_energy: float = 0.003
    sram_area_per_kb: float = 9000.0
    sram_energy_per_kb: float = 18.0
    activity: float = 1.0

    # ------------------------------------------------------------------
    def multiplier(self, wx: int, wg: int) -> Resource:
        """A wx x wg multiplier (area and energy scale with wx*wg)."""
        bits2 = wx * wg
        return Resource(self.mult_area * bits2, self.mult_energy * bits2 * self.activity)

    def adder(self, width: int) -> Resource:
        return Resource(self.adder_area * width, self.adder_energy * width * self.activity)

    def register(self, width: int) -> Resource:
        return Resource(self.reg_area * width, self.reg_energy * width * self.activity)

    def shifter(self, width: int, stages: int = 1) -> Resource:
        bits = width * stages
        return Resource(self.shifter_area * bits, self.shifter_energy * bits * self.activity)

    def sram(self, kilobytes: float, read_fraction: float = 1.0) -> Resource:
        """SRAM macro of a given capacity; energy models per-cycle access."""
        return Resource(
            self.sram_area_per_kb * kilobytes,
            self.sram_energy_per_kb * kilobytes * read_fraction * self.activity,
        )

    def adder_tree(self, terms: int, width: int) -> Resource:
        """Balanced adder tree summing ``terms`` values of ``width`` bits.

        The tree has terms-1 adders; widths grow one bit per level, which
        we approximate with width + log2(terms)/2 average.
        """
        import math

        if terms <= 1:
            return Resource()
        levels = math.ceil(math.log2(terms))
        avg_width = width + levels / 2.0
        return (terms - 1) * self.adder(int(round(avg_width)))
