"""Calibration constants for the 40 nm analytical hardware model.

The paper reports silicon numbers from a TSMC 40 nm layout flow we cannot
run offline; this module pins the *absolute* unit costs so that the
structural model lands on the paper's published anchors:

* eRingCNN-n2: 33.73 mm^2, 3.76 W at 250 MHz (Table V)
* eRingCNN-n4: 23.36 mm^2, 2.22 W (Table V)
* RCONV engines vs eCNN: 2.08x/2.00x (n2) and 3.77x/3.84x (n4)
  area/energy efficiency (Fig. 14)
* whole-chip eCNN: ~55 mm^2, ~7 W (implied by Fig. 14 ratios)

All *relative* results (every efficiency ratio in the experiments) come
from the structural resource counts in :mod:`repro.hardware.engine`; the
constants below only set the scale.
"""

from __future__ import annotations

from .cost import CostModel

__all__ = ["CALIBRATED_COST", "SYNTHESIS_POWER_FACTOR", "TECHNOLOGY"]

TECHNOLOGY = "TSMC 40 nm (analytical model)"

# Fitted against the Table V / Fig. 14 anchors (see calibrate_model.py in
# benchmarks for the fitting residuals).
CALIBRATED_COST = CostModel(
    mult_area=5.0,
    mult_energy=0.0125,
    adder_area=7.0,
    adder_energy=0.0060,
    reg_area=3.2,
    reg_energy=0.0012,
    shifter_area=2.6,
    shifter_energy=0.0018,
    sram_area_per_kb=8000.0,
    sram_energy_per_kb=12.0,
    activity=0.35,
)

# The paper's Table VIII compares synthesis (pre-layout) results, which
# run ~35-45% lower power than post-layout (no clock tree / wire load):
# chosen so eRingCNN lands in the paper's 19.1-28.4 equivalent-TOPS/W band.
SYNTHESIS_POWER_FACTOR = 0.60
