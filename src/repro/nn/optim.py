"""Optimizers and learning-rate schedules.

Both carry resumable state: every optimizer exposes
``state_dict()``/``load_state_dict()`` covering its update buffers (SGD
momentum velocities, Adam first/second moments and step count), and the
schedules share the :class:`LRScheduler` base whose state is the epoch
counter plus the base learning rate.  Restoring optimizer + scheduler
state into freshly-constructed instances continues training bit-for-bit
(see :mod:`repro.train.checkpoint`).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .tensor import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "StepLR",
    "CosineLR",
    "clip_grad_norm",
]


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``."""
    total = float(
        np.sqrt(sum(float((p.grad**2).sum()) for p in params if p.grad is not None))
    )
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return total


def _load_buffers(own: list[np.ndarray], saved: list[np.ndarray], what: str) -> None:
    """Copy saved buffers into existing ones, validating the layout."""
    if len(own) != len(saved):
        raise ValueError(f"{what}: expected {len(own)} buffers, got {len(saved)}")
    for i, (dst, src) in enumerate(zip(own, saved, strict=True)):
        src = np.asarray(src)
        if dst.shape != src.shape:
            raise ValueError(f"{what}[{i}]: shape {src.shape} != parameter shape {dst.shape}")
        dst[...] = src


class Optimizer:
    """Base optimizer; concrete classes implement ``step``."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        self.params = list(params)
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Copy of the resumable state (lr plus subclass buffers)."""
        return {"lr": self.lr}

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict` in place."""
        self.lr = float(state["lr"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, vel in zip(self.params, self._velocity, strict=True):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            p.data -= self.lr * grad

    def state_dict(self) -> dict[str, Any]:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: dict[str, Any]) -> None:
        super().load_state_dict(state)
        _load_buffers(self._velocity, state["velocity"], "SGD velocity")


class Adam(Optimizer):
    """Adam (the paper trains with Adam; Table III)."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v, strict=True):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad**2
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def state_dict(self) -> dict[str, Any]:
        state = super().state_dict()
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        state["t"] = self._t
        return state

    def load_state_dict(self, state: dict[str, Any]) -> None:
        super().load_state_dict(state)
        _load_buffers(self._m, state["m"], "Adam m")
        _load_buffers(self._v, state["v"], "Adam v")
        self._t = int(state["t"])


class LRScheduler:
    """Base epoch-wise schedule: subclasses define ``lr_at(epoch)``.

    The resumable state is (epoch, base_lr); the shape of the decay
    curve itself (step size, total horizon, ...) is construction-time
    configuration, so restoring state into a freshly-built scheduler of
    the same configuration resumes the identical lr trajectory.
    """

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def lr_at(self, epoch: int) -> float:
        """Learning rate after ``epoch`` completed epochs."""
        raise NotImplementedError

    def step(self) -> None:
        """Advance one epoch and write the new lr into the optimizer."""
        self.epoch += 1
        self.optimizer.lr = self.lr_at(self.epoch)

    def state_dict(self) -> dict[str, Any]:
        return {"epoch": self.epoch, "base_lr": self.base_lr}

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self.epoch = int(state["epoch"])
        self.base_lr = float(state["base_lr"])
        self.optimizer.lr = self.lr_at(self.epoch)


class StepLR(LRScheduler):
    """Multiply the optimizer lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineLR(LRScheduler):
    """Cosine annealing from the base lr to ``min_lr`` over ``total`` epochs."""

    def __init__(self, optimizer: Optimizer, total: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        self.total = max(1, total)
        self.min_lr = min_lr

    def lr_at(self, epoch: int) -> float:
        cos = 0.5 * (1 + np.cos(np.pi * min(epoch, self.total) / self.total))
        return self.min_lr + (self.base_lr - self.min_lr) * cos
