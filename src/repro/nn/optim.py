"""Optimizers and learning-rate schedules."""

from __future__ import annotations

import numpy as np

from .tensor import Parameter

__all__ = ["SGD", "Adam", "StepLR", "CosineLR", "clip_grad_norm"]


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``."""
    total = float(
        np.sqrt(sum(float((p.grad**2).sum()) for p in params if p.grad is not None))
    )
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return total


class Optimizer:
    """Base optimizer; concrete classes implement ``step``."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        self.params = list(params)
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, vel in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (the paper trains with Adam; Table III)."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad**2
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


class StepLR:
    """Multiply the optimizer lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineLR:
    """Cosine annealing from the base lr to ``min_lr`` over ``total`` epochs."""

    def __init__(self, optimizer: Optimizer, total: int, min_lr: float = 0.0) -> None:
        self.optimizer = optimizer
        self.total = max(1, total)
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch = min(self.epoch + 1, self.total)
        cos = 0.5 * (1 + np.cos(np.pi * self.epoch / self.total))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cos
