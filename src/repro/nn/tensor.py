"""A compact reverse-mode automatic-differentiation engine over numpy.

This is the training substrate substituting for the paper's PyTorch setup
(see DESIGN.md).  It provides a :class:`Tensor` carrying a numpy array, a
gradient buffer and a backward closure; operations build a DAG that
``backward()`` traverses in reverse topological order.

Only the operations needed by the model zoo are implemented, each with a
hand-written vector-Jacobian product.  Convolution lives in
:mod:`repro.nn.functional` and is registered here as a primitive.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable

import numpy as np

from . import backend as backend_module

__all__ = ["Tensor", "Parameter", "as_tensor", "concat", "no_grad", "is_grad_enabled"]


class _GradState(threading.local):
    """Per-thread grad-enabled flag.

    Thread-local (not a module global) so concurrent inference workers —
    each inside its own :class:`no_grad` — can never re-enable graph
    construction under a forward running on another thread, and a
    training loop on the main thread is unaffected by serving threads.
    New threads start with gradients enabled, like the main thread.
    """

    def __init__(self) -> None:
        self.enabled = True


_GRAD_STATE = _GradState()


class no_grad:
    """Context manager disabling graph construction (inference mode).

    The flag is per-thread: entering/exiting on one thread leaves every
    other thread's state untouched, so the context is safe under the
    concurrent per-worker forwards of :mod:`repro.serving`.
    """

    def __enter__(self) -> "no_grad":
        self._prev = _GRAD_STATE.enabled
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _GRAD_STATE.enabled = self._prev


def is_grad_enabled() -> bool:
    """Whether new operations record backward closures (on this thread)."""
    return _GRAD_STATE.enabled


class _TraceState(threading.local):
    """Per-thread active compile tracer (see :mod:`repro.nn.compile`).

    Thread-local for the same reason as :class:`_GradState`: a trace in
    one serving worker must never observe forwards running concurrently
    on other threads.
    """

    def __init__(self) -> None:
        self.tracer = None


_TRACE_STATE = _TraceState()


def _active_tracer():
    """The compile tracer active on this thread, or None."""
    return _TRACE_STATE.tracer


def _set_active_tracer(tracer) -> None:
    _TRACE_STATE.tracer = tracer


def _trace_ew(out: "Tensor", op: str, src, operand=None, extra=None) -> "Tensor":
    """Report one elementwise op to the active tracer (if any)."""
    tracer = _TRACE_STATE.tracer
    if tracer is not None:
        tracer.record_ew(op, src, operand, out.data, extra)
    return out


def _trace_op(out: "Tensor", kind: str, inputs: tuple, *params) -> "Tensor":
    """Report one structured op to the active tracer (if any)."""
    tracer = _TRACE_STATE.tracer
    if tracer is not None:
        tracer.record(kind, inputs, out.data, params)
    return out


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce a broadcasted gradient back to ``shape``."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array node in the autodiff graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _prev: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._prev = _prev
        self._backward = _backward

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A graph-free view of this tensor's data."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op output; drops the graph when grads are off."""
        tracer = _TRACE_STATE.tracer
        if tracer is not None:
            tracer.note_make(parents, data)
        needs = _GRAD_STATE.enabled and any(p.requires_grad for p in parents)
        if not needs:
            return Tensor(data)
        out = Tensor(data, requires_grad=True, _prev=parents, _backward=backward)
        return out

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Reverse-mode sweep from this node.

        Args:
            grad: Seed gradient; defaults to 1 for scalar outputs.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a seed needs a scalar output")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        out = Tensor._make(self.data + other.data, (self, other), backward)
        return _trace_ew(out, "add", self.data, other.data)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return _trace_ew(Tensor._make(-self.data, (self,), backward), "neg", self.data)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        out = Tensor._make(self.data * other.data, (self, other), backward)
        return _trace_ew(out, "mul", self.data, other.data)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        out = Tensor._make(self.data / other.data, (self, other), backward)
        return _trace_ew(out, "div", self.data, other.data)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        out = Tensor._make(self.data**exponent, (self,), backward)
        return _trace_ew(out, "pow", self.data, extra=exponent)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        # The forward product dispatches through the active kernel
        # backend (1-D operands keep plain numpy semantics); the VJPs
        # stay on np.matmul so gradients are backend-invariant by
        # construction.
        out_data = (
            backend_module.current_backend().matmul(self.data, other.data)
            if self.ndim >= 2 and other.ndim >= 2
            else self.data @ other.data
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.shape)
                )
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other.shape)
                )

        out = Tensor._make(out_data, (self, other), backward)
        return _trace_op(out, "matmul", (self.data, other.data))

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        out = Tensor._make(self.data.reshape(shape), (self,), backward)
        return _trace_op(out, "reshape", (self.data,))

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(range(self.ndim - 1, -1, -1))
        inverse = tuple(int(np.argsort(axes)[i]) for i in range(len(axes)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        out = Tensor._make(self.data.transpose(axes), (self,), backward)
        return _trace_op(out, "transpose", (self.data,), axes)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) axes symmetrically."""
        if padding == 0:
            return self
        widths = [(0, 0)] * (self.ndim - 2) + [(padding, padding)] * 2

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                sl = (Ellipsis, slice(padding, -padding), slice(padding, -padding))
                self._accumulate(grad[sl])

        out = Tensor._make(np.pad(self.data, widths), (self,), backward)
        return _trace_op(out, "pad2d", (self.data,), padding)

    def crop2d(self, margin: int) -> "Tensor":
        """Remove ``margin`` pixels from each side of the spatial axes."""
        if margin == 0:
            return self
        sl = (Ellipsis, slice(margin, -margin), slice(margin, -margin))
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros(original)
                full[sl] = grad
                self._accumulate(full)

        out = Tensor._make(self.data[sl], (self,), backward)
        return _trace_op(out, "crop2d", (self.data,), margin)

    # ------------------------------------------------------------------
    # reductions and elementwise
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, original).copy())

        out = Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)
        return _trace_op(out, "sum", (self.data,), axis, keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else np.prod(
            [self.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        out = Tensor._make(self.data * mask, (self,), backward)
        return _trace_ew(out, "relu", self.data)

    def leaky_relu(self, slope: float = 0.1) -> "Tensor":
        factor = np.where(self.data > 0, 1.0, slope)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * factor)

        out = Tensor._make(self.data * factor, (self,), backward)
        return _trace_ew(out, "leaky_relu", self.data, extra=slope)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        out = Tensor._make(np.abs(self.data), (self,), backward)
        return _trace_ew(out, "abs", self.data)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        out = Tensor._make(out_data, (self,), backward)
        return _trace_ew(out, "exp", self.data)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        out = Tensor._make(np.log(self.data), (self,), backward)
        return _trace_ew(out, "log", self.data)

    def select(self, axis: int, index: int) -> "Tensor":
        """Pick one slice along ``axis`` (the axis is dropped)."""
        sl = [slice(None)] * self.ndim
        sl[axis] = index
        sl_t = tuple(sl)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros(original)
                full[sl_t] = grad
                self._accumulate(full)

        out = Tensor._make(self.data[sl_t].copy(), (self,), backward)
        return _trace_op(out, "select", (self.data,), axis, index)

    # ------------------------------------------------------------------
    # tuple-axis transforms (ring machinery)
    # ------------------------------------------------------------------
    def tuple_transform(self, mat: np.ndarray, axis: int) -> "Tensor":
        """Apply an (m, n) matrix along one axis: out = mat . x on that axis."""
        mat = np.asarray(mat, dtype=np.float64)
        moved = np.moveaxis(self.data, axis, -1)
        # Forward through the active kernel backend (like __matmul__), so
        # deterministic substrates catch the ring transforms too; the VJP
        # stays on np.matmul, keeping gradients backend-invariant.
        out = np.moveaxis(
            backend_module.current_backend().matmul(moved, mat.T), -1, axis
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g_moved = np.moveaxis(grad, axis, -1)
                self._accumulate(np.moveaxis(g_moved @ mat, -1, axis))

        result = Tensor._make(out, (self,), backward)
        return _trace_op(result, "tuple_transform", (self.data, mat), axis)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"


class Parameter(Tensor):
    """A trainable tensor (requires_grad defaults to True)."""

    __slots__ = ()

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


def as_tensor(value) -> Tensor:
    """Coerce arrays / scalars to a (constant) Tensor."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:], strict=True):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                t._accumulate(grad[tuple(index)])

    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = Tensor._make(data, tuple(tensors), backward)
    return _trace_op(out, "concat", tuple(t.data for t in tensors), axis)
