"""Module base class: parameter registration and traversal."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from .tensor import Parameter, Tensor

__all__ = ["Module", "weight_fingerprint"]


def weight_fingerprint(arr: np.ndarray) -> tuple:
    """Content stamp of a weight array for eval-cache invalidation.

    Hashes the raw bytes (plus buffer address and shape), so any
    in-place mutation of the weights — optimizer step, quantization,
    ``load_from_rconv``, even a value-permuting shuffle — changes the
    stamp and a cache keyed on it can never serve stale weights.
    O(size), but ring weights are small by design (the paper's n-times
    DoF reduction), so this is negligible next to a convolution.
    """
    return (arr.ctypes.data, arr.shape, hash(arr.tobytes()))


class Module:
    """Base class for layers and models.

    Parameters are discovered by walking instance attributes (including
    lists/tuples of modules), mirroring the familiar torch.nn API surface
    at a much smaller scale.
    """

    def __init__(self) -> None:
        self.training = True
        # Bumped whenever module state changes through a sanctioned
        # channel (train()/eval(), load_state_dict); consumed by
        # repro.nn.compile.model_stamp to invalidate compiled plans
        # together with the eval weight caches.
        self._state_version = 0

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def children(self) -> Iterator["Module"]:
        """Immediate sub-modules."""
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def modules(self) -> Iterator["Module"]:
        """This module and all descendants, depth first."""
        yield self
        for child in self.children():
            yield from child.modules()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """(name, parameter) pairs, names reflecting attribute paths."""
        for key, value in self.__dict__.items():
            path = f"{prefix}{key}"
            if isinstance(value, Parameter):
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for idx, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{path}.{idx}.")
                    elif isinstance(item, Parameter):
                        yield f"{path}.{idx}", item

    def parameters(self) -> list[Parameter]:
        """All trainable parameters."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total count of real-valued trainable weights."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
            module._state_version = getattr(module, "_state_version", 0) + 1
            module._clear_weight_cache()
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def _clear_weight_cache(self) -> None:
        """Drop eval-mode cached weights; overridden by caching layers."""

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by its path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict) -> None:
        """Load parameters in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(f"state mismatch: missing={sorted(missing)} extra={sorted(extra)}")
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}")
            param.data[...] = state[name]
        for module in self.modules():
            module._state_version = getattr(module, "_state_version", 0) + 1
            module._clear_weight_cache()
