"""Training loop shared by every quality experiment.

The paper trains all algebra variants "using the same training strategy"
(Fig. 1) — this module is that single strategy: Adam + cosine decay on
MSE, with gradient clipping for the higher learning rates the paper uses
to get each algebra's best performance (Section VI-A).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from .data import DataLoader
from .loss import mse_loss
from .module import Module
from .optim import Adam, CosineLR, clip_grad_norm
from .tensor import Tensor, no_grad

__all__ = ["TrainConfig", "TrainResult", "train_model", "evaluate_mse"]


@dataclasses.dataclass
class TrainConfig:
    """Hyper-parameters of the shared training recipe.

    Mirrors the paper's Table III at reduced scale: Adam, cosine-decayed
    learning rate, MSE loss; epochs/batches are sized for CPU training.
    """

    epochs: int = 6
    lr: float = 2e-3
    batch_size: int = 8
    grad_clip: float = 5.0
    min_lr_ratio: float = 0.05
    seed: int = 0
    loss_fn: Callable[[Tensor, np.ndarray], Tensor] = staticmethod(mse_loss)


@dataclasses.dataclass
class TrainResult:
    """Loss trajectory of one training run."""

    train_losses: list[float]
    final_loss: float

    @property
    def epochs(self) -> int:
        return len(self.train_losses)


def train_model(model: Module, loader: DataLoader, config: TrainConfig) -> TrainResult:
    """Train ``model`` in place and return the loss trajectory."""
    params = model.parameters()
    optimizer = Adam(params, lr=config.lr)
    schedule = CosineLR(optimizer, total=config.epochs, min_lr=config.lr * config.min_lr_ratio)
    model.train()
    losses: list[float] = []
    for _ in range(config.epochs):
        epoch_loss = 0.0
        batches = 0
        for inputs, targets in loader:
            optimizer.zero_grad()
            pred = model(Tensor(inputs))
            loss = config.loss_fn(pred, targets)
            loss.backward()
            if config.grad_clip:
                clip_grad_norm(params, config.grad_clip)
            optimizer.step()
            epoch_loss += float(loss.data)
            batches += 1
        schedule.step()
        losses.append(epoch_loss / max(1, batches))
    model.eval()
    return TrainResult(train_losses=losses, final_loss=losses[-1] if losses else float("nan"))


def evaluate_mse(model: Module, inputs: np.ndarray, targets: np.ndarray) -> float:
    """Mean squared error of the model on a held-out array pair."""
    model.eval()
    with no_grad():
        pred = model(Tensor(inputs))
        return float(((pred.data - targets) ** 2).mean())
