"""Shared training recipe: configuration and result records.

The paper trains all algebra variants "using the same training strategy"
(Fig. 1) — :class:`TrainConfig` is that single strategy: Adam + cosine
decay on MSE, with gradient clipping for the higher learning rates the
paper uses to get each algebra's best performance (Section VI-A).

The loop itself lives in :class:`repro.train.TrainEngine` (callbacks,
checkpoints, resumable state); :func:`train_model` is the original
one-call front door, kept as a thin wrapper over the engine.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from .data import DataLoader
from .loss import mse_loss
from .module import Module
from .tensor import Tensor, no_grad

__all__ = ["TrainConfig", "TrainResult", "train_model", "evaluate_mse"]


@dataclasses.dataclass
class TrainConfig:
    """Hyper-parameters of the shared training recipe.

    Mirrors the paper's Table III at reduced scale: Adam, cosine-decayed
    learning rate, MSE loss; epochs/batches are sized for CPU training.
    ``epochs`` is the *total* schedule horizon — the cosine decay always
    spans it, whether the epochs run in one sitting or across several
    checkpoint/resume segments.  ``grad_clip`` is the global-L2 clip
    threshold; ``None`` disables clipping entirely, while ``0.0`` is an
    honest (if unusual) request to clip every gradient to zero.
    """

    epochs: int = 6
    lr: float = 2e-3
    batch_size: int = 8
    grad_clip: float | None = 5.0
    min_lr_ratio: float = 0.05
    seed: int = 0
    loss_fn: Callable[[Tensor, np.ndarray], Tensor] = staticmethod(mse_loss)

    def to_jsonable(self) -> dict:
        """Fingerprint-ready dict (the loss callable becomes its name)."""
        record = dataclasses.asdict(self)
        record["loss_fn"] = getattr(self.loss_fn, "__name__", str(self.loss_fn))
        return record


@dataclasses.dataclass
class TrainResult:
    """Loss trajectory (and training-dynamics traces) of one run.

    ``train_losses`` holds per-epoch means weighted by actual batch size
    (a partial final batch counts its samples, not a full batch's).
    ``lr_trace`` records the lr each epoch trained at, ``grad_norms``
    the pre-clip global gradient norm of every optimizer step, and
    ``val_losses`` whatever a validation hook recorded (empty without
    one).
    """

    train_losses: list[float]
    final_loss: float
    lr_trace: list[float] = dataclasses.field(default_factory=list)
    grad_norms: list[float] = dataclasses.field(default_factory=list)
    val_losses: list[float] = dataclasses.field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_losses)


def train_model(model: Module, loader: DataLoader, config: TrainConfig) -> TrainResult:
    """Train ``model`` in place and return the loss trajectory.

    Equivalent to ``TrainEngine(model, config).fit(loader)`` — kept as
    the one-call entry point every pre-engine caller used.
    """
    from ..train.engine import TrainEngine  # deferred: repro.train imports this module

    return TrainEngine(model, config).fit(loader)


def evaluate_mse(model: Module, inputs: np.ndarray, targets: np.ndarray) -> float:
    """Mean squared error of the model on a held-out array pair."""
    model.eval()
    with no_grad():
        pred = model(Tensor(inputs))
        return float(((pred.data - targets) ** 2).mean())
