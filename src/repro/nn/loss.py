"""Loss functions for image restoration and recognition."""

from __future__ import annotations

import numpy as np

from .functional import softmax_cross_entropy
from .tensor import Tensor, as_tensor

__all__ = ["mse_loss", "l1_loss", "charbonnier_loss", "cross_entropy_loss"]


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error (the paper's restoration training loss)."""
    diff = pred - as_tensor(target)
    return (diff * diff).mean()


def l1_loss(pred: Tensor, target) -> Tensor:
    """Mean absolute error."""
    return (pred - as_tensor(target)).abs().mean()


def charbonnier_loss(pred: Tensor, target, eps: float = 1e-3) -> Tensor:
    """Smooth L1 variant common in SR training."""
    diff = pred - as_tensor(target)
    return ((diff * diff + eps * eps) ** 0.5).mean()


def cross_entropy_loss(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Softmax cross-entropy on integer labels (Appendix C recognition)."""
    return softmax_cross_entropy(logits, labels)
