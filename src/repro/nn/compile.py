"""Trace-once / replay-fast compiled inference (``Predictor.compile()``).

Eager inference rebuilds the full Python op graph on every forward:
each layer re-wraps arrays in :class:`~repro.nn.tensor.Tensor`, redoes
weight-side work (reshapes, transposes, BatchNorm scale/shift algebra)
and allocates fresh intermediates, even though with gradients off the
op *sequence* for a given input shape never changes.  This module
removes that per-request interpreter tax: one eager forward is traced
into a flat :class:`ExecutionPlan`, and subsequent forwards *replay*
the plan — no Tensor/autodiff wrappers, weight-side constants baked in,
elementwise chains fused, intermediates served from a preallocated
per-thread buffer arena (extending the recycled-scratch idea of
:class:`~repro.nn.backend.BlockedBackend` to the whole forward).

The compiled path is **bit-identical to eager by construction and by
proof**: every replay kernel mirrors the exact numpy expression (and
Backend dispatch) of its eager counterpart, fusion only changes *where*
results are written, never the arithmetic — and :func:`build_plan`
verifies each freshly built plan by replaying it against two eager
forwards (the traced input and a perturbed probe) before it is ever
served, so a model whose forward escapes the traceable op set fails at
compile time instead of silently drifting.

ExecutionPlan format
====================

**Values.**  Every array the traced forward touches is a *value* with an
integer id.  Values come in four kinds:

* ``input`` — the single plan argument, bound per run;
* ``const`` — an array that does not depend on the input (weights, the
  layers' cached eval banks, BatchNorm scale/shift, transform matrices).
  Constants are captured *by reference* at trace time, which is what
  bakes per-call weight-side work out of the hot path;
* ``op`` — the output of an :class:`OpRecord`;
* ``view`` — an op output that numpy returned as a view of its input
  (reshape/transpose/crop); it aliases the producing value's storage
  and costs nothing to rebuild per run.

**Op records.**  The plan body is a flat tuple of :class:`OpRecord`,
executed in order.  Each record holds:

* ``kind`` — the kernel name (``conv2d``, ``conv2d_grouped``,
  ``matmul``, ``tuple_transform``, ``sum``, ``avg_pool``,
  ``pixel_shuffle``, ``pixel_unshuffle``, ``reshape``, ``transpose``,
  ``pad2d``, ``crop2d``, ``select``, ``call`` or ``ew``);
* ``inputs`` — value ids of the kernel operands, in kernel order (for
  ``conv2d`` this is ``(x, w_mat[, bias])`` with the weight matrix and
  broadcast-shaped bias captured as constants);
* ``output`` — the value id the kernel defines;
* ``params`` — static attributes (stride/padding, axes, factors, the
  callable for ``call``);
* ``steps`` — the fused elementwise epilogue: a tuple of
  ``(op, operand_value_id | None, extra | None)`` applied *in place* to
  the kernel output (bias adds, activations, residual adds, BatchNorm
  scale/shift).  A standalone ``ew`` record is the same chain applied
  out of place from ``inputs[0]``.  The dReLU mask never becomes a
  value — it lives in recycled per-thread bool scratch;
* ``slot`` — the arena buffer index the output is written into, or
  ``-1`` when the kernel allocates (or views) its result.

**Buffer-slot lifetimes.**  Each non-const, non-view op output owns a
*storage*; views share their base value's storage.  A storage is live
from the record defining it to the last record reading any value
aliasing it.  Slots are assigned by a linear scan: a storage may reuse
a slot only when the previous owner's live range ended *strictly
before* the defining record (so no kernel ever reads and writes
overlapping memory), and only slots with identical (shape, dtype) are
reused.  The plan output and anything sharing its storage are excluded
from the arena — callers keep each ``run()`` result, so it must be
freshly allocated.  Buffers are materialized lazily **per thread**
(plans are shared by cloned serving predictors), so concurrent replays
never share scratch.

**Invalidation rules.**  A plan is valid for exactly one input shape
and one weight state.  :class:`~repro.nn.inference.CompiledPredictor`
keys its lazy cache on the full input shape and stamps every entry with
:func:`model_stamp` — the per-parameter
:func:`~repro.nn.module.weight_fingerprint` (content hash: catches any
in-place mutation, the same mechanism invalidating the layers' eval
weight caches) plus the module tree's ``_state_version`` counters
(bumped by ``train()`` / ``load_state_dict()``: catches mode flips and
non-parameter state such as BatchNorm running statistics).  A stale
stamp rebuilds the plan on the next forward.  Mutating non-parameter
buffers directly (e.g. assigning ``bn.running_mean``) bypasses both
signals — call ``model.train(False)`` (or any state-dict load) after
such surgery to bump the version.
"""

from __future__ import annotations

import contextlib
import threading

import numpy as np

from . import backend as backend_module
from .module import Module, weight_fingerprint
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "CompileError",
    "ExecutionPlan",
    "OpRecord",
    "TraceError",
    "Tracer",
    "build_plan",
    "model_stamp",
    "traced_call",
]


class TraceError(RuntimeError):
    """The traced forward used an operation the tracer cannot record."""


class CompileError(RuntimeError):
    """A built plan failed its bit-identity verification against eager."""


# Value kinds -----------------------------------------------------------
_INPUT, _CONST, _OP, _VIEW = "input", "const", "op", "view"

#: Op kinds whose eager result may be a numpy view of the first operand.
_VIEW_KINDS = frozenset({"reshape", "transpose", "crop2d"})

#: Op kinds whose replay kernel can write into a preallocated buffer.
_SLOT_KINDS = frozenset(
    {"conv2d", "conv2d_grouped", "ew", "pixel_shuffle", "pixel_unshuffle", "reshape"}
)

#: Elementwise step ops that commute bitwise (IEEE add/mul are
#: commutative), so the tracked operand may take the running position.
_COMMUTATIVE = frozenset({"add", "mul"})


class OpRecord:
    """One step of an :class:`ExecutionPlan` (see the module docstring).

    Attributes:
        kind: Kernel name.
        inputs: Value ids of the kernel operands, in kernel order.
        output: Value id defined by this record.
        params: Static kernel attributes (strides, axes, factors, ...).
        steps: Fused elementwise epilogue applied in place to the
            output; ``(op, operand_value_id | None, extra | None)``.
        slot: Arena buffer index for the output, or -1 (fresh/view).
    """

    __slots__ = ("kind", "inputs", "output", "params", "steps", "slot", "_fn")

    def __init__(
        self,
        kind: str,
        inputs: tuple[int, ...],
        output: int,
        params: tuple = (),
        steps: tuple = (),
    ) -> None:
        self.kind = kind
        self.inputs = inputs
        self.output = output
        self.params = params
        self.steps = steps
        self.slot = -1
        self._fn = None

    def uses(self):
        """Every value id this record reads (operands + step operands)."""
        yield from self.inputs
        for _, operand, _ in self.steps:
            if operand is not None:
                yield operand

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = f" steps={[s[0] for s in self.steps]}" if self.steps else ""
        return f"OpRecord({self.kind} {self.inputs}->{self.output}{extra})"


# ----------------------------------------------------------------------
# Replay kernels
#
# Every kernel mirrors the *exact* numpy expression of its eager
# counterpart in tensor.py / functional.py — same ufuncs, same Backend
# dispatch, same reduction structure — so replay is bit-identical to
# eager on every backend.  Writing through ``out=`` only changes where
# a result lands, never its arithmetic.
# ----------------------------------------------------------------------
def _ew_add(a, b, dst, extra, scratch):
    return np.add(a, b, out=dst)


def _ew_mul(a, b, dst, extra, scratch):
    return np.multiply(a, b, out=dst)


def _ew_div(a, b, dst, extra, scratch):
    return np.divide(a, b, out=dst)


def _ew_rdiv(a, b, dst, extra, scratch):
    return np.divide(b, a, out=dst)


def _ew_neg(a, b, dst, extra, scratch):
    return np.negative(a, out=dst)


def _ew_pow(a, b, dst, extra, scratch):
    return np.power(a, extra, out=dst)


def _ew_relu(a, b, dst, extra, scratch):
    # Eager relu is ``x * (x > 0)`` — NOT np.maximum, whose -0.0/NaN
    # behavior differs bitwise.  The bool mask is recycled scratch, the
    # one allocation eager makes per relu that replay folds out.
    mask = scratch(a.shape, np.bool_)
    np.greater(a, 0, out=mask)
    return np.multiply(a, mask, out=dst)


def _ew_leaky_relu(a, b, dst, extra, scratch):
    factor = np.where(a > 0, 1.0, extra)
    return np.multiply(a, factor, out=dst)


def _ew_abs(a, b, dst, extra, scratch):
    return np.abs(a, out=dst)


def _ew_exp(a, b, dst, extra, scratch):
    return np.exp(a, out=dst)


def _ew_log(a, b, dst, extra, scratch):
    return np.log(a, out=dst)


_EW_OPS = {
    "add": _ew_add,
    "mul": _ew_mul,
    "div": _ew_div,
    "rdiv": _ew_rdiv,
    "neg": _ew_neg,
    "pow": _ew_pow,
    "relu": _ew_relu,
    "leaky_relu": _ew_leaky_relu,
    "abs": _ew_abs,
    "exp": _ew_exp,
    "log": _ew_log,
}


def _apply_steps(steps, out, env, scratch):
    """Run a fused epilogue in place on ``out`` (elementwise ops only)."""
    for op, operand, extra in steps:
        out = _EW_OPS[op](out, None if operand is None else env[operand], out, extra, scratch)
    return out


def _run_ew(rec, env, dst, backend, scratch):
    run = env[rec.inputs[0]]
    for op, operand, extra in rec.steps:
        run = _EW_OPS[op](run, None if operand is None else env[operand], dst, extra, scratch)
    return run


def _run_conv2d(rec, env, dst, backend, scratch):
    kh, kw, stride, padding = rec.params
    out = backend.conv2d_infer(
        env[rec.inputs[0]], env[rec.inputs[1]], kh, kw, stride, padding, out=dst
    )
    if len(rec.inputs) == 3:  # bias, captured pre-broadcast as (1, Co, 1, 1)
        out = np.add(out, env[rec.inputs[2]], out=out)
    return out


def _run_conv2d_grouped(rec, env, dst, backend, scratch):
    kh, kw, stride, padding = rec.params
    out = backend.conv2d_grouped_infer(
        env[rec.inputs[0]], env[rec.inputs[1]], kh, kw, stride, padding, out=dst
    )
    if len(rec.inputs) == 3:
        out = np.add(out, env[rec.inputs[2]], out=out)
    return out


def _run_matmul(rec, env, dst, backend, scratch):
    a, b = env[rec.inputs[0]], env[rec.inputs[1]]
    if a.ndim >= 2 and b.ndim >= 2:
        return backend.matmul(a, b)
    return a @ b


def _run_tuple_transform(rec, env, dst, backend, scratch):
    moved = np.moveaxis(env[rec.inputs[0]], rec.params[0], -1)
    return np.moveaxis(backend.matmul(moved, env[rec.inputs[1]].T), -1, rec.params[0])


def _run_sum(rec, env, dst, backend, scratch):
    axis, keepdims = rec.params
    return env[rec.inputs[0]].sum(axis=axis, keepdims=keepdims)


def _run_avg_pool(rec, env, dst, backend, scratch):
    return backend.avg_pool2d(env[rec.inputs[0]], rec.params[0])


def _run_pixel_shuffle(rec, env, dst, backend, scratch):
    src = env[rec.inputs[0]]
    n, c, h, w = src.shape
    r = rec.params[0]
    co = c // (r * r)
    moved = src.reshape(n, co, r, r, h, w).transpose(0, 1, 4, 2, 5, 3)
    np.copyto(dst.reshape(moved.shape), moved)
    return dst


def _run_pixel_unshuffle(rec, env, dst, backend, scratch):
    src = env[rec.inputs[0]]
    n, c, h, w = src.shape
    r = rec.params[0]
    ho, wo = h // r, w // r
    moved = src.reshape(n, c, ho, r, wo, r).transpose(0, 1, 3, 5, 2, 4)
    np.copyto(dst.reshape(moved.shape), moved)
    return dst


def _run_reshape_view(rec, env, dst, backend, scratch):
    return env[rec.inputs[0]].reshape(rec.params[0])


def _run_reshape_copy(rec, env, dst, backend, scratch):
    # Eager reshape-of-a-strided-array copies in C order; copying the
    # source into a C-contiguous buffer viewed at the source shape is
    # the same element traversal.
    src = env[rec.inputs[0]]
    np.copyto(dst.reshape(src.shape), src)
    return dst


def _run_transpose(rec, env, dst, backend, scratch):
    return env[rec.inputs[0]].transpose(rec.params[0])


def _run_pad2d(rec, env, dst, backend, scratch):
    src = env[rec.inputs[0]]
    widths = [(0, 0)] * (src.ndim - 2) + [(rec.params[0], rec.params[0])] * 2
    return np.pad(src, widths)


def _run_crop2d(rec, env, dst, backend, scratch):
    m = rec.params[0]
    return env[rec.inputs[0]][(Ellipsis, slice(m, -m), slice(m, -m))]


def _run_select(rec, env, dst, backend, scratch):
    axis, index = rec.params
    src = env[rec.inputs[0]]
    sl = [slice(None)] * src.ndim
    sl[axis] = index
    return src[tuple(sl)].copy()


def _run_concat(rec, env, dst, backend, scratch):
    return np.concatenate([env[v] for v in rec.inputs], axis=rec.params[0])


def _run_call(rec, env, dst, backend, scratch):
    fn, args = rec.params
    return np.asarray(fn(env[rec.inputs[0]], *args), dtype=np.float64)


_KERNELS = {
    "ew": _run_ew,
    "reshape": _run_reshape_copy,  # view records rebound in Tracer._lower
    "conv2d": _run_conv2d,
    "conv2d_grouped": _run_conv2d_grouped,
    "matmul": _run_matmul,
    "tuple_transform": _run_tuple_transform,
    "sum": _run_sum,
    "avg_pool": _run_avg_pool,
    "pixel_shuffle": _run_pixel_shuffle,
    "pixel_unshuffle": _run_pixel_unshuffle,
    "transpose": _run_transpose,
    "pad2d": _run_pad2d,
    "crop2d": _run_crop2d,
    "select": _run_select,
    "concat": _run_concat,
    "call": _run_call,
}


class ExecutionPlan:
    """A replayable flat op sequence for one (model, input-shape) pair.

    Built by :class:`Tracer` / :func:`build_plan`; see the module
    docstring for the record format, buffer-slot lifetimes and
    invalidation rules.  Plans are immutable after construction and safe
    to share across threads: the only mutable state, the buffer arena,
    is thread-local.
    """

    def __init__(
        self,
        records: list[OpRecord],
        n_values: int,
        input_vid: int,
        output_vid: int,
        consts: dict[int, np.ndarray],
        slots: list[tuple[tuple[int, ...], np.dtype]],
        input_shape: tuple[int, ...],
        shapes: dict[int, tuple[int, ...]],
        output_needs_copy: bool,
    ) -> None:
        self.records = tuple(records)
        self.n_values = n_values
        self.input_vid = input_vid
        self.output_vid = output_vid
        self.consts = consts
        self.slots = tuple(slots)
        self.input_shape = input_shape
        self.shapes = shapes
        self.output_needs_copy = output_needs_copy
        env: list = [None] * n_values
        for vid, arr in consts.items():
            env[vid] = arr
        self._env_base = env
        self._local = threading.local()
        for rec in self.records:
            rec._fn = _KERNELS[rec.kind]

    # ------------------------------------------------------------------
    def _buffers(self) -> list[np.ndarray]:
        bufs = getattr(self._local, "bufs", None)
        if bufs is None:
            bufs = self._local.bufs = [np.empty(shape, dtype) for shape, dtype in self.slots]
        return bufs

    def _scratch(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Recycled per-thread scratch (relu masks), one per (shape, dtype)."""
        pool = getattr(self._local, "scratch", None)
        if pool is None:
            pool = self._local.scratch = {}
        key = (shape, np.dtype(dtype).str)
        buf = pool.get(key)
        if buf is None:
            buf = pool[key] = np.empty(shape, dtype=dtype)
        return buf

    # ------------------------------------------------------------------
    def run(self, x: np.ndarray, backend: backend_module.Backend) -> np.ndarray:
        """Replay the plan on ``x`` (must match the traced shape)."""
        if x.shape != self.input_shape:
            raise ValueError(
                f"plan was traced for input shape {self.input_shape}, got {x.shape}"
            )
        bufs = self._buffers()
        scratch = self._scratch
        env = self._env_base.copy()
        env[self.input_vid] = x
        for rec in self.records:
            slot = rec.slot
            if slot >= 0:
                dst = bufs[slot]
            elif rec.kind in _SLOT_KINDS:
                # Slot-capable kernel excluded from the arena: its
                # storage reaches the plan output, which the caller
                # keeps, so it gets a fresh buffer every run.
                dst = np.empty(self.shapes[rec.output])
            else:
                dst = None
            out = rec._fn(rec, env, dst, backend, scratch)
            if rec.steps and rec.kind != "ew":
                out = _apply_steps(rec.steps, out, env, scratch)
            env[rec.output] = out
        out = env[self.output_vid]
        return out.copy() if self.output_needs_copy else np.asarray(out)


class Tracer:
    """Records one eager forward into an :class:`ExecutionPlan`.

    Usage (what :func:`build_plan` does)::

        tracer = Tracer()
        with no_grad(), tracer:
            x = Tensor(arr)
            tracer.track_input(x.data)
            out = model(x)
        plan = tracer.finish(out.data)

    While active (thread-locally), the op hooks in
    :mod:`repro.nn.tensor` and :mod:`repro.nn.functional` report every
    operation touching *tracked* arrays — arrays derived from the
    input.  Anything else an op consumes is interned as a plan
    constant.  ``Tensor._make`` additionally reports every graph node
    built from tracked data, so an op with no hook (one this module has
    no replay kernel for) raises :class:`TraceError` instead of being
    silently baked into the plan as a constant.
    """

    def __init__(self) -> None:
        self.records: list[OpRecord] = []
        self.arrays: list[np.ndarray] = []  # strong refs: keeps ids stable
        self.kinds: list[str] = []
        self.alias_of: list[int | None] = []
        self._tracked: dict[int, int] = {}
        self._consts: dict[int, int] = {}
        self._pending: tuple[int, str] | None = None
        self.input_vid: int | None = None

    # -- context management --------------------------------------------
    def __enter__(self) -> "Tracer":
        from . import tensor as tensor_module

        if tensor_module._active_tracer() is not None:
            raise TraceError("tracers do not nest")
        if is_grad_enabled():
            raise TraceError("tracing requires no_grad() (plans are inference-only)")
        tensor_module._set_active_tracer(self)
        return self

    def __exit__(self, *exc) -> None:
        from . import tensor as tensor_module

        tensor_module._set_active_tracer(None)

    # -- value bookkeeping ---------------------------------------------
    def _new_value(self, arr: np.ndarray, kind: str, alias: int | None = None) -> int:
        vid = len(self.arrays)
        self.arrays.append(arr)
        self.kinds.append(kind)
        self.alias_of.append(alias)
        return vid

    def track_input(self, arr: np.ndarray) -> int:
        """Mark ``arr`` as the plan input; everything derived from it is traced."""
        if self.input_vid is not None:
            raise TraceError("a plan has exactly one input")
        self.input_vid = self._new_value(arr, _INPUT)
        self._tracked[id(arr)] = self.input_vid
        return self.input_vid

    def _is_tracked(self, arr) -> bool:
        return id(arr) in self._tracked

    def _ref(self, arr) -> int:
        """The value id for an operand: tracked value or interned constant."""
        vid = self._tracked.get(id(arr))
        if vid is not None:
            return vid
        vid = self._consts.get(id(arr))
        if vid is None:
            arr = np.asarray(arr)
            vid = self._consts[id(arr)] = self._new_value(arr, _CONST)
        return vid

    # -- hooks (called from tensor.py / functional.py) ------------------
    def note_make(self, parents, data: np.ndarray) -> None:
        """Called by ``Tensor._make`` for every graph node built while
        tracing.  Sets a pending expectation the matching op hook must
        clear; a node over tracked data with no hook is an unsupported
        op and fails the trace."""
        if not any(id(p.data) in self._tracked for p in parents):
            return
        if self._pending is not None:
            raise TraceError(self._pending[1])
        shapes = tuple(p.shape for p in parents)
        self._pending = (
            id(data),
            f"an operation (inputs {shapes} -> output {data.shape}) consumed traced "
            "data without a trace hook; it is not supported by Predictor.compile()",
        )

    def _settle_pending(self, out: np.ndarray) -> None:
        if self._pending is not None:
            if self._pending[0] != id(out):
                raise TraceError(self._pending[1])
            self._pending = None

    def record(self, kind: str, inputs, out: np.ndarray, params: tuple = ()) -> None:
        """Record one non-elementwise op (no-op when nothing is tracked)."""
        self._settle_pending(out)
        if not any(self._is_tracked(a) for a in inputs):
            return
        in_vids = tuple(self._ref(a) for a in inputs)
        alias = None
        if kind in _VIEW_KINDS and np.shares_memory(out, inputs[0]):
            alias = in_vids[0]
        vid = self._new_value(out, _VIEW if alias is not None else _OP, alias)
        self._tracked[id(out)] = vid
        self.records.append(OpRecord(kind, in_vids, vid, tuple(params)))

    def record_ew(self, op: str, src, operand, out: np.ndarray, extra=None) -> None:
        """Record one elementwise op as a single-step ``ew`` chain.

        The running (first) position must hold a tracked array; for
        commutative ops the operands are swapped to arrange that (IEEE
        add/mul are bitwise commutative), and a tracked denominator
        turns ``div`` into ``rdiv``.
        """
        self._settle_pending(out)
        src_tracked = self._is_tracked(src)
        if not src_tracked and (operand is None or not self._is_tracked(operand)):
            return
        if not src_tracked:
            if op in _COMMUTATIVE:
                src, operand = operand, src
            elif op == "div":
                op, src, operand = "rdiv", operand, src
            else:  # pragma: no cover - unary ops have no second operand
                raise TraceError(f"elementwise op {op!r} with untracked running operand")
        in_vids = (self._ref(src),)
        step_operand = None
        if operand is not None:
            step_operand = self._ref(operand)
            in_vids += (step_operand,)
        vid = self._new_value(out, _OP)
        self._tracked[id(out)] = vid
        self.records.append(
            OpRecord("ew", in_vids, vid, steps=((op, step_operand, extra),))
        )

    # -- plan construction ---------------------------------------------
    def finish(self, out_arr: np.ndarray) -> ExecutionPlan:
        """Close the trace and lower it into an :class:`ExecutionPlan`."""
        if self._pending is not None:
            raise TraceError(self._pending[1])
        if self.input_vid is None:
            raise TraceError("no input was tracked")
        out_vid = self._tracked.get(id(out_arr))
        if out_vid is None:
            raise TraceError(
                "the model output does not depend on the traced input through "
                "recorded ops (did the forward route data around the Tensor layer?)"
            )
        records = self._eliminate_dead(self.records, out_vid)
        records = self._fuse(records, out_vid)
        return self._lower(records, out_vid)

    def _eliminate_dead(self, records: list[OpRecord], out_vid: int) -> list[OpRecord]:
        needed = {out_vid}
        live: list[OpRecord] = []
        for rec in reversed(records):
            if rec.output in needed:
                needed.update(rec.uses())
                live.append(rec)
        live.reverse()
        return live

    def _fuse(self, records: list[OpRecord], out_vid: int) -> list[OpRecord]:
        """Merge elementwise records into their producer's epilogue.

        An ``ew`` record folds into the immediately preceding record
        when that record produced its running operand (or, for bitwise-
        commutative add/mul, its second operand), that value has no
        other consumer, shapes match (in-place needs no broadcast grow)
        and the producer's output is not a view (in-place through a
        view would clobber the base storage).
        """
        uses: dict[int, int] = {out_vid: 1}
        for rec in records:
            for v in rec.uses():
                uses[v] = uses.get(v, 0) + 1
        fused: list[OpRecord] = []
        for rec in records:
            prev = fused[-1] if fused else None
            if (
                prev is not None
                and rec.kind == "ew"
                and len(rec.steps) == 1
                and self.alias_of[prev.output] is None
                and uses.get(prev.output, 0) == 1
                and self.arrays[rec.output].shape == self.arrays[prev.output].shape
            ):
                op, operand, extra = rec.steps[0]
                if rec.inputs[0] == prev.output:
                    prev.steps += ((op, operand, extra),)
                    prev.output = rec.output
                    continue
                if op in _COMMUTATIVE and operand == prev.output:
                    # Swap the running position onto the chain (bitwise
                    # safe for IEEE add/mul).
                    prev.steps += ((op, rec.inputs[0], extra),)
                    prev.output = rec.output
                    continue
            fused.append(rec)
        return fused

    def _lower(self, records: list[OpRecord], out_vid: int) -> ExecutionPlan:
        n_values = len(self.arrays)
        storage = list(range(n_values))
        for vid in range(n_values):
            base = self.alias_of[vid]
            if base is not None:
                storage[vid] = storage[base]

        end = len(records)  # sentinel: live past the last record
        last_use: dict[int, int] = {storage[out_vid]: end}
        for i, rec in enumerate(records):
            for v in rec.uses():
                s = storage[v]
                last_use[s] = max(last_use.get(s, i), i) if s != storage[out_vid] else end

        out_storage = storage[out_vid]
        in_storage = storage[self.input_vid]
        slots: list[tuple[tuple[int, ...], np.dtype]] = []
        free: dict[tuple, list[int]] = {}
        releases: list[tuple[int, tuple, int]] = []  # (last_use, key, slot)
        for i, rec in enumerate(records):
            if rec.kind not in _SLOT_KINDS or self.alias_of[rec.output] is not None:
                continue
            s = storage[rec.output]
            if s == out_storage:
                continue  # caller keeps the result: fresh buffer per run
            for item in [r for r in releases if r[0] < i]:
                releases.remove(item)
                free.setdefault(item[1], []).append(item[2])
            arr = self.arrays[rec.output]
            key = (arr.shape, np.dtype(arr.dtype).str)
            pool = free.get(key)
            slot = pool.pop() if pool else None
            if slot is None:
                slot = len(slots)
                slots.append((arr.shape, arr.dtype))
            rec.slot = slot
            releases.append((last_use.get(s, i), key, slot))

        consts = {
            vid: self.arrays[vid] for vid in range(n_values) if self.kinds[vid] == _CONST
        }
        shapes = {rec.output: self.arrays[rec.output].shape for rec in records}
        # A reshape record whose trace output was a view replays as a
        # view; rebind its kernel via params so run() stays branch-free.
        for rec in records:
            if rec.kind == "reshape":
                rec.params = (self.arrays[rec.output].shape,)
        plan = ExecutionPlan(
            records=records,
            n_values=n_values,
            input_vid=self.input_vid,
            output_vid=out_vid,
            consts=consts,
            slots=slots,
            input_shape=self.arrays[self.input_vid].shape,
            shapes=shapes,
            output_needs_copy=out_storage == in_storage,
        )
        for rec in plan.records:
            if rec.kind == "reshape" and self.alias_of[rec.output] is not None:
                rec._fn = _run_reshape_view
            elif rec.kind == "reshape":
                rec._fn = _run_reshape_copy
        return plan


def traced_call(fn, x: Tensor, *args) -> Tensor:
    """Run a raw-numpy function as one opaque, replayable op.

    For forward paths that must leave the Tensor layer (ERNet's bicubic
    global skip): ``fn(x.data, *args)`` runs eagerly and returns a
    constant Tensor exactly as before, but while a trace is active it is
    additionally recorded as a ``call`` record holding ``fn`` by
    reference — so the plan replays it instead of constant-folding the
    result of one particular input.  ``fn`` must be deterministic and
    depend only on its arguments.
    """
    from . import tensor as tensor_module

    out = Tensor(fn(x.data, *args))
    tracer = tensor_module._active_tracer()
    if tracer is not None:
        tracer.record("call", (x.data,), out.data, (fn, tuple(args)))
    return out


def _model_walk(model: Module) -> tuple[tuple, tuple]:
    """The (modules, parameters) traversal :func:`model_stamp` hashes.

    Split out so per-predict callers (:class:`CompiledPredictor`) can
    compute it once and amortize the tree walk; the module *tree* is
    fixed after construction in this codebase (only weights and
    ``_state_version`` counters mutate), which is the same structural
    assumption the layers' eval weight caches already make.
    """
    return (
        tuple(model.modules()),
        tuple(p for _, p in model.named_parameters()),
    )


def model_stamp(model: Module, _walk: tuple[tuple, tuple] | None = None) -> tuple:
    """The plan-invalidation stamp for a model (see the module docstring).

    Combines every parameter's content
    :func:`~repro.nn.module.weight_fingerprint` — the same signal that
    invalidates the layers' eval weight caches, so compiled plans and
    cached weight banks go stale together — with the module tree's
    ``_state_version`` counters (``train()`` / ``load_state_dict()``),
    which cover non-parameter state like BatchNorm running statistics.
    """
    modules, params = _walk if _walk is not None else _model_walk(model)
    version = sum(getattr(m, "_state_version", 0) for m in modules)
    return (version, tuple(weight_fingerprint(p.data) for p in params))


def build_plan(
    model: Module,
    arr: np.ndarray,
    backend: backend_module.Backend | None = None,
    verify: bool = True,
) -> ExecutionPlan:
    """Trace ``model`` on ``arr`` and return a verified :class:`ExecutionPlan`.

    The model must be in eval mode.  When ``verify`` is on (always, in
    :class:`~repro.nn.inference.CompiledPredictor`), the fresh plan is
    replayed on the traced input *and* on a deterministically perturbed
    probe, and both must match the eager forward bit for bit — this
    catches forwards that smuggle input-dependent data around the traced
    op set (which would otherwise be constant-folded), so an unsupported
    model fails at compile time, never at serving time.
    """
    if model.training:
        raise TraceError("build_plan needs an eval-mode model (call model.eval())")
    arr = np.asarray(arr, dtype=np.float64)
    activate = (
        backend_module.use_backend(backend) if backend is not None else contextlib.nullcontext()
    )
    tracer = Tracer()
    with activate, no_grad():
        run_backend = backend_module.current_backend() if backend is None else backend
        with tracer:
            x = Tensor(arr)
            tracer.track_input(x.data)
            expected = model(x).data
        plan = tracer.finish(expected)
        if verify:
            _verify_plan(plan, model, arr, expected, run_backend)
    return plan


def _verify_plan(plan, model, arr, expected, backend) -> None:
    replayed = plan.run(arr, backend)
    if replayed.shape != expected.shape or replayed.tobytes() != expected.tobytes():
        raise CompileError(
            "compiled replay does not reproduce the traced eager forward bit for bit"
        )
    # Dyadic perturbation (exact in float64, flips signs/zeros) catches
    # input-dependent data that escaped tracing and was baked in as a
    # constant — it matches on the traced input by construction, so only
    # a second input can expose it.
    probe = arr * 1.0625 + 0.03125
    with no_grad():
        eager = model(Tensor(probe)).data
    replayed = plan.run(probe, backend)
    if replayed.shape != eager.shape or replayed.tobytes() != eager.tobytes():
        raise CompileError(
            "compiled replay diverges from eager on a perturbed probe input; the "
            "model's forward depends on the input through ops the tracer cannot "
            "see (e.g. raw .data access), so it cannot be compiled"
        )
