"""Batched, tiled inference pipeline over trained restoration models.

:class:`Predictor` turns a model into a service-shaped callable: inputs
are chunked into fixed-size mini-batches, and images larger than the
configured tile are cut into overlapping crops with a *halo* of real
context, so peak memory is bounded by ``batch_size * (tile + 2*halo)^2``
regardless of image size.

Tiling is exact, not approximate.  Each crop window is clamped inside
the image (never zero-filled), so wherever a crop edge is not the true
image border, every retained output pixel sits at least ``halo`` pixels
away from it; with ``halo`` covering the model's receptive-field radius
every retained output pixel sees exactly the operands whole-image
inference would give it.  At true image borders the crop ends exactly
where the image does, so the model's own padding behavior (zero padding
in convs, border replication in the bicubic skip) applies unchanged.

Two distinct reproducibility guarantees follow, and the tests pin both:

* **Batching is bit-exact on every backend.**  Splitting work along the
  batch axis (chunking by ``batch_size``, coalescing requests in
  :mod:`repro.serving`, grouping tile crops) runs the very same
  per-slice GEMMs, so results never depend on what else shared a batch.
* **Tiling is bit-exact on shape-invariant kernels.**  Under
  :class:`~repro.nn.backend.EinsumBackend` the tiled result equals
  whole-image inference bit for bit.  BLAS backends compute the same
  reduction operands but may reassociate them differently when the GEMM
  extent changes with the crop, so there tiled-vs-whole agreement is
  "exact up to floating-point reassociation" (observed ≤ a few ulp).
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading

import numpy as np

from .backend import Backend, current_backend, get_backend, use_backend
from .compile import ExecutionPlan, _model_walk, build_plan, model_stamp
from .module import Module
from .tensor import Tensor, no_grad

__all__ = ["DEFAULT_TILE", "TilingPlan", "Predictor", "CompiledPredictor", "plan_for_model"]

#: Default tile edge (input pixels) for derived tiling plans.  Shared by
#: :func:`plan_for_model` and :class:`Predictor` so the two cannot
#: drift; the autotuner treats it as the baseline geometry.
DEFAULT_TILE = 48

#: Sentinel distinguishing "tuned lookup not attempted yet" from "looked
#: up and missed" in the per-shape runtime cache.
_TUNED_UNRESOLVED = object()


@dataclasses.dataclass(frozen=True)
class TilingPlan:
    """Geometry of tiled inference.

    Attributes:
        tile: Edge of one output tile, in input pixels.
        halo: Context margin read around each tile, in input pixels.
            Must cover the model's receptive-field radius for the tiled
            output to equal whole-image inference.
        scale: Output/input spatial ratio (4 for x4 super-resolution).
        divisor: Input sizes the model accepts must be multiples of this
            (e.g. 2 for a pixel-unshuffle head); tile, halo and crop
            offsets are kept on this grid so tuple phases never shift.
    """

    tile: int
    halo: int
    scale: int = 1
    divisor: int = 1

    def __post_init__(self) -> None:
        if self.tile <= 0 or self.halo < 0:
            raise ValueError("tile must be positive and halo non-negative")
        if self.tile % self.divisor or self.halo % self.divisor:
            raise ValueError("tile and halo must be multiples of the divisor")

    @property
    def crop(self) -> int:
        """Edge of the input crop fed to the model per tile."""
        return self.tile + 2 * self.halo


def _round_up(value: int, multiple: int) -> int:
    return -(-value // multiple) * multiple


def plan_for_model(model: Module, tile: int = DEFAULT_TILE) -> TilingPlan:
    """Derive a sound :class:`TilingPlan` for a model.

    ERNet models (recognized by their ``config.task``) get exact plans:
    the receptive-field radius of a stack of same-padded convolutions is
    the sum of their paddings, scaled by the resolution the stack runs
    at (the denoising net convolves behind a pixel-unshuffle by 2), and
    the x4-SR net adds the Keys bicubic kernel's support of 2 low-res
    pixels for its global skip.  Other models fall back to a stride-1
    conv-stack estimate (sum of conv paddings).
    """
    if tile < 1:
        raise ValueError(f"tile must be a positive pixel count, got {tile}")
    paddings = sum(
        int(getattr(module, "padding", 0))
        for module in model.modules()
        if hasattr(module, "kernel_size")
    )
    task = getattr(getattr(model, "config", None), "task", None)
    if task == "denoise":
        divisor = 2
        halo = _round_up(2 * paddings, divisor)
        scale = 1
    elif task == "sr4":
        divisor = 1
        halo = paddings + 2
        scale = 4
    else:
        divisor = 1
        halo = paddings
        scale = 1
    return TilingPlan(
        tile=max(_round_up(tile, divisor), divisor), halo=halo, scale=scale, divisor=divisor
    )


class Predictor:
    """Memory-bounded batched/tiled inference front-end.

    Args:
        model: Trained model mapping (N, C, H, W) to (N, C', s*H, s*W).
        batch_size: Images (or tile crops) per forward pass.
        plan: Tiling geometry; derived via :func:`plan_for_model` when
            omitted.
        tile: Convenience override for the derived plan's tile size.
        backend: Kernel backend (instance or ``name[:arg]`` spec string)
            activated around every forward pass.  When omitted, forwards
            run on whatever backend is ambient at call time (the
            ``use_backend`` context / ``REPRO_BACKEND`` precedence of
            :mod:`repro.nn.backend`).
        tuned: Consult the :mod:`repro.tune` cache per input shape and
            serve through the cached winning schedule (backend spec,
            tile, micro-batch) when an applicable entry exists; fall
            back to this predictor's own configuration on a miss.  When
            omitted, follows the ``REPRO_TUNED`` environment flag.
            Tuned results are bit-identical to untuned — cached winners
            pass a byte-equality parity guard before they are stored.
    """

    def __init__(
        self,
        model: Module,
        batch_size: int = 8,
        plan: TilingPlan | None = None,
        tile: int | None = None,
        backend: Backend | str | None = None,
        tuned: bool | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.model = model
        self.batch_size = batch_size
        self.plan = plan if plan is not None else plan_for_model(
            model, tile=tile if tile is not None else DEFAULT_TILE
        )
        # get_backend: spec strings resolve to one shared instance, so
        # per-request Predictors reuse thread pools instead of spawning
        # new ones.
        self.backend = get_backend(backend) if backend is not None else None
        if tuned is None:
            from ..tune.cache import tuned_enabled  # circular at module scope

            tuned = tuned_enabled()
        self.tuned = tuned
        # Per-shape resolved tuned delegates, shared across clones (like
        # the compiled plan cache) so a worker fleet resolves and warms
        # each shape once.  Values: a delegate Predictor, or None for a
        # cache miss (serve self's own configuration).
        self._tuned_runtimes: dict[tuple[int, ...], "Predictor | None"] = {}
        self._tuned_lock = threading.Lock()
        self._tuned_signature: dict | None = None

    @classmethod
    def from_checkpoint(
        cls,
        path,
        batch_size: int = 8,
        plan: TilingPlan | None = None,
        tile: int | None = None,
        backend: "Backend | str | None" = None,
    ) -> "Predictor":
        """Serve a trained checkpoint without re-running an experiment.

        The checkpoint must carry a model spec (``python -m repro train``
        and the experiment weight cache write one); the architecture is
        rebuilt, the saved weights loaded, and the model set to eval.
        Raises :class:`repro.train.CheckpointError` for missing/corrupt
        files or specs that cannot be rebuilt.
        """
        # Deferred import: repro.train depends on repro.nn, not vice versa.
        from ..train.checkpoint import Checkpoint

        model = Checkpoint.load(path).build_model()
        return cls(model, batch_size=batch_size, plan=plan, tile=tile, backend=backend)

    def clone(self, batch_size: int | None = None) -> "Predictor":
        """A new Predictor sharing this one's model, plan and backend.

        The clone is cheap — model weights (and their eval-mode caches)
        are shared, not copied — which is what a serving worker pool
        needs: one Predictor per worker thread, one model in memory.
        Sharing is safe because eval forwards only read the weights and
        the layers' weight-cache fills are lock-protected.
        """
        twin = Predictor(
            self.model,
            batch_size=batch_size if batch_size is not None else self.batch_size,
            plan=self.plan,
            backend=self.backend,
            tuned=self.tuned,
        )
        twin._adopt_tuned_state(self)
        return twin

    def compile(self) -> "CompiledPredictor":
        """A predictor serving this model via trace-once plan replay.

        The returned :class:`CompiledPredictor` shares this predictor's
        model, tiling plan, batch size and backend; its forwards replay
        lazily built, bit-identical :class:`~repro.nn.compile.ExecutionPlan`
        objects instead of re-running the eager Tensor graph.  See
        :mod:`repro.nn.compile` for the plan format and invalidation
        rules.
        """
        return CompiledPredictor(
            self.model,
            batch_size=self.batch_size,
            plan=self.plan,
            backend=self.backend,
            tuned=self.tuned,
        )

    # ------------------------------------------------------------------
    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.predict(inputs)

    def predict(self, inputs) -> np.ndarray:
        """Run inference over a stack of images (N, C, H, W)."""
        inputs = np.asarray(getattr(inputs, "data", inputs), dtype=np.float64)
        if inputs.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) inputs, got shape {inputs.shape}")
        n, _, h, w = inputs.shape
        d = self.plan.divisor
        if h % d or w % d:
            raise ValueError(f"spatial size {h}x{w} not divisible by {d}")
        if self.model.training:
            # Switch once; eval() clears the layers' weight caches, so
            # calling it on every predict would defeat them.
            self.model.eval()
        if self.tuned:
            delegate = self._tuned_predictor(inputs.shape[1:])
            if delegate is not None:
                return (
                    delegate._predict_batched(inputs)
                    if h <= delegate.plan.tile and w <= delegate.plan.tile
                    else delegate._predict_tiled(inputs)
                )
        if h <= self.plan.tile and w <= self.plan.tile:
            return self._predict_batched(inputs)
        return self._predict_tiled(inputs)

    def predict_image(self, image: np.ndarray) -> np.ndarray:
        """Convenience wrapper for a single (C, H, W) image."""
        return self.predict(np.asarray(image)[None])[0]

    # ------------------------------------------------------------------
    # autotuning
    # ------------------------------------------------------------------
    def tune(self, shape: tuple[int, ...], **options) -> "object":
        """Search and cache the best schedule for one request shape.

        Runs :func:`repro.tune.tune_model` for this predictor's model at
        its configured batch ceiling, persists the winning entry, and
        drops any already-resolved tuned delegates so the fresh entry
        takes effect immediately.  ``options`` forward to ``tune_model``
        (``seed``, ``trials``, ``warmup``, ``top_k``, ``cache``).
        Returns the stored :class:`~repro.tune.cache.TuningEntry`.
        """
        from ..tune import tune_model

        entry = tune_model(self.model, tuple(shape), self.batch_size, **options)
        with self._tuned_lock:
            self._tuned_runtimes.clear()
        return entry

    def _adopt_tuned_state(self, other: "Predictor") -> None:
        """Share ``other``'s resolved-delegate cache (for clones)."""
        self._tuned_lock = other._tuned_lock
        with self._tuned_lock:
            self._tuned_runtimes = other._tuned_runtimes
            self._tuned_signature = other._tuned_signature

    def _tuned_predictor(self, shape: tuple[int, ...]) -> "Predictor | None":
        """The resolved tuned delegate for a (C, H, W) shape, or None.

        None means "no applicable cache entry" (miss, host/backends
        changed, or the winner *is* the default): serve this predictor's
        own configuration.  Resolution happens once per shape; lookups
        key on the batch *bucket* of this predictor's configured
        ``batch_size`` — the same key the serving flush threshold uses —
        never on the size of one particular input stack.
        """
        key = tuple(int(x) for x in shape)
        delegate = self._tuned_runtimes.get(key, _TUNED_UNRESOLVED)
        if delegate is not _TUNED_UNRESOLVED:
            return delegate
        with self._tuned_lock:
            delegate = self._tuned_runtimes.get(key, _TUNED_UNRESOLVED)
            if delegate is _TUNED_UNRESOLVED:
                from ..tune import lookup, model_signature

                if self._tuned_signature is None:
                    self._tuned_signature = model_signature(self.model)
                entry = lookup(
                    self.model, key, self.batch_size, signature=self._tuned_signature
                )
                if entry is None or entry.winner == entry.default:
                    delegate = None
                else:
                    delegate = type(self)(
                        self.model,
                        batch_size=entry.winner.batch_size,
                        tile=entry.winner.tile,
                        backend=entry.winner.backend,
                        tuned=False,  # delegates never re-consult the cache
                    )
                self._tuned_runtimes[key] = delegate
        return delegate

    # ------------------------------------------------------------------
    def _forward(self, arr: np.ndarray) -> np.ndarray:
        activate = (
            use_backend(self.backend) if self.backend is not None else contextlib.nullcontext()
        )
        with activate, no_grad():
            return self.model(Tensor(arr)).data

    def _predict_batched(self, inputs: np.ndarray) -> np.ndarray:
        chunks = [
            self._forward(inputs[i : i + self.batch_size])
            for i in range(0, inputs.shape[0], self.batch_size)
        ]
        return np.concatenate(chunks, axis=0)

    def _predict_tiled(self, inputs: np.ndarray) -> np.ndarray:
        plan = self.plan
        s = plan.scale
        n, _, h, w = inputs.shape
        # Clamp the geometry to the image (all quantities stay on the
        # divisor grid because h, w, tile and halo are on it).
        th, tw = min(plan.tile, h), min(plan.tile, w)
        crop_h, crop_w = min(h, th + 2 * plan.halo), min(w, tw + 2 * plan.halo)
        # One job per (image, tile) pair; crops share a shape, so jobs
        # batch across tile positions as well as images — a single large
        # image still fills batch_size-crop forwards.
        jobs = [
            (i, y0, x0, min(max(y0 - plan.halo, 0), h - crop_h), min(max(x0 - plan.halo, 0), w - crop_w))
            for i in range(n)
            for y0 in range(0, h, th)
            for x0 in range(0, w, tw)
        ]
        out: np.ndarray | None = None
        for start in range(0, len(jobs), self.batch_size):
            chunk = jobs[start : start + self.batch_size]
            crops = np.stack(
                [inputs[i, :, cy : cy + crop_h, cx : cx + crop_w] for i, _, _, cy, cx in chunk]
            )
            preds = self._forward(crops)
            if out is None:
                out = np.empty((n, preds.shape[1], h * s, w * s), dtype=preds.dtype)
            for pred, (i, y0, x0, cy, cx) in zip(preds, chunk, strict=True):
                ty, tx = min(th, h - y0), min(tw, w - x0)
                oy, ox = y0 - cy, x0 - cx
                out[i, :, s * y0 : s * (y0 + ty), s * x0 : s * (x0 + tx)] = pred[
                    :, s * oy : s * (oy + ty), s * ox : s * (ox + tx)
                ]
        assert out is not None
        return out


class CompiledPredictor(Predictor):
    """A :class:`Predictor` whose forwards replay compiled execution plans.

    Built by :meth:`Predictor.compile`.  The first forward per input
    shape traces the model into an
    :class:`~repro.nn.compile.ExecutionPlan` (and verifies it bit-exact
    against eager, see :func:`~repro.nn.compile.build_plan`); later
    forwards replay the cached plan with zero Tensor/graph allocation.
    Plans are keyed on the full input shape — batched prediction and
    tiled large-image prediction each warm their own bucket (full
    chunks, the remainder chunk, tile-crop stacks) and then replay.

    Every cached plan is stamped with
    :func:`~repro.nn.compile.model_stamp`; weight mutations,
    ``load_state_dict`` and ``train()``/``eval()`` transitions change
    the stamp and transparently rebuild the plan on the next forward —
    the same invalidation discipline as the layers' eval weight caches.

    Clones (one per serving worker) share the plan cache and its build
    lock, so a fleet of workers compiles each shape once; replay itself
    is lock-free and thread-safe (arena buffers are per-thread).
    """

    def __init__(
        self,
        model: Module,
        batch_size: int = 8,
        plan: TilingPlan | None = None,
        tile: int | None = None,
        backend: Backend | str | None = None,
        tuned: bool | None = None,
    ) -> None:
        super().__init__(
            model, batch_size=batch_size, plan=plan, tile=tile, backend=backend, tuned=tuned
        )
        self._plans: dict[tuple[int, ...], tuple[tuple, ExecutionPlan]] = {}
        self._compile_lock = threading.Lock()
        self._walk: tuple[tuple, tuple] | None = None  # lazy _model_walk cache

    def compile(self) -> "CompiledPredictor":
        """Already compiled; returns self (idempotent)."""
        return self

    def clone(self, batch_size: int | None = None) -> "CompiledPredictor":
        """A compiled clone sharing model, tiling plan, backend *and*
        the compiled-plan cache (plans are thread-safe to share)."""
        twin = CompiledPredictor(
            self.model,
            batch_size=batch_size if batch_size is not None else self.batch_size,
            plan=self.plan,
            backend=self.backend,
            tuned=self.tuned,
        )
        twin._plans = self._plans
        twin._compile_lock = self._compile_lock
        # Tuned delegates (each a CompiledPredictor with its own plan
        # cache) are shared too, so a worker fleet traces each tuned
        # shape once.
        twin._adopt_tuned_state(self)
        return twin

    def _plan_for(self, arr: np.ndarray) -> ExecutionPlan:
        """The cached plan for this input shape, (re)built when the
        shape is new or the model stamp went stale."""
        if self.model.training:
            self.model.eval()
        walk = self._walk
        if walk is None:
            walk = self._walk = _model_walk(self.model)
        stamp = model_stamp(self.model, _walk=walk)
        entry = self._plans.get(arr.shape)
        if entry is None or entry[0] != stamp:
            with self._compile_lock:
                entry = self._plans.get(arr.shape)
                if entry is None or entry[0] != stamp:
                    built = build_plan(self.model, arr, backend=self.backend)
                    entry = (model_stamp(self.model, _walk=walk), built)
                    self._plans[arr.shape] = entry
        return entry[1]

    def _forward(self, arr: np.ndarray) -> np.ndarray:
        backend = self.backend if self.backend is not None else current_backend()
        return self._plan_for(arr).run(arr, backend)
