"""Pluggable kernel backends for the nn hot path.

The paper's central performance claim (Section IV-C) is that FRCONV's
grouped component-wise products map onto different execution substrates
with very different cost profiles.  This module is the software seam for
that claim: a :class:`Backend` owns the hot array primitives — ``conv2d``
and ``conv2d_grouped`` (forward, inference and VJP pieces), ``matmul``,
``im2col``/``col2im`` and pooling — and everything above it
(:mod:`repro.nn.functional`, :mod:`repro.nn.fastconv`, the layers and
:class:`repro.nn.inference.Predictor`) dispatches through the *active*
backend instead of calling kernels directly.

Three implementations ship:

* :class:`NumpyBackend` — the reference single-call im2col + GEMM path
  (the seed implementation, moved behind the protocol).
* :class:`ThreadedBackend` — tiles the batch/group axis across a thread
  pool.  numpy releases the GIL inside BLAS and large copies, so this
  gives real multi-core speedup while staying **bit-identical**: work is
  split only along axes that are embarrassingly parallel (each output
  element is still produced by one GEMM over the full reduction axis),
  and cross-batch reductions (the weight gradient) deliberately stay on
  the single-call reference path.
* :class:`BlockedBackend` — blocked inference GEMMs: the im2col matrix
  is materialized a batch-block at a time into a preallocated scratch
  buffer that is recycled across blocks and calls, so peak im2col
  memory is ``O(block)`` samples instead of ``O(N)`` and steady-state
  serving performs no large allocations.  Batch-blocking runs the very
  same per-slice BLAS GEMMs, so results are bit-identical too.

A fourth, :class:`EinsumBackend`, is importable but deliberately **not**
registered: it trades BLAS speed for shape-invariant determinism (each
output element's reduction is a fixed sequential chain, independent of
how many other elements share the GEMM call), which registered backends
cannot promise — their contract is bit-parity with :class:`NumpyBackend`
so experiment artifacts stay backend-invariant.

Selection precedence (first match wins):

1. the innermost active :func:`use_backend` context on this thread;
2. the ``REPRO_BACKEND`` environment variable (e.g. ``threaded:4``);
3. the process default (:class:`NumpyBackend`).

Backends are addressed by a spec string ``name[:arg]`` — ``numpy``,
``threaded``, ``threaded:8`` (worker count), ``blocked``, ``blocked:4``
(samples per GEMM block).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Callable, Sequence

import numpy as np

__all__ = [
    "BACKEND_ENV_VAR",
    "Backend",
    "NumpyBackend",
    "ThreadedBackend",
    "BlockedBackend",
    "EinsumBackend",
    "available_backends",
    "conv_geometry",
    "current_backend",
    "default_backend",
    "get_backend",
    "make_backend",
    "register_backend",
    "usable_cpu_count",
    "use_backend",
]

BACKEND_ENV_VAR = "REPRO_BACKEND"


def usable_cpu_count() -> int:
    """CPUs this process may run on (affinity-aware, always >= 1)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def conv_geometry(
    h: int, w: int, kh: int, kw: int, stride: int, padding: int
) -> tuple[int, int, int, int]:
    """Padded and output spatial extents of a 2-D convolution."""
    hp, wp = h + 2 * padding, w + 2 * padding
    ho = (hp - kh) // stride + 1
    wo = (wp - kw) // stride + 1
    return hp, wp, ho, wo


class Backend:
    """Reference implementation and protocol of the kernel primitives.

    All methods take and return plain numpy arrays — backends know
    nothing about the autodiff :class:`~repro.nn.tensor.Tensor`; the
    graph wiring stays in :mod:`repro.nn.functional`.  Subclasses
    override whichever primitives they can accelerate; anything not
    overridden falls back to this single-call numpy path, which is the
    parity baseline every backend must reproduce bit-for-bit.

    The ``*_infer`` variants are the no-grad fast path: they need not
    retain (or even fully materialize) the im2col matrix, which is what
    lets backends trade memory and parallelism freely during inference.
    """

    name = "numpy"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

    # ------------------------------------------------------------------
    # im2col / col2im
    # ------------------------------------------------------------------
    def im2col(
        self, x: np.ndarray, kh: int, kw: int, stride: int, padding: int
    ) -> tuple[np.ndarray, tuple[int, int, int, int]]:
        """Unfold sliding windows into columns.

        Returns:
            cols of shape (N, C*kh*kw, Ho*Wo) and (Hp, Wp, Ho, Wo).
        """
        if padding:
            x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        n, c, hp, wp = x.shape
        ho = (hp - kh) // stride + 1
        wo = (wp - kw) // stride + 1
        s0, s1, s2, s3 = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, kh, kw, ho, wo),
            strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
            writeable=False,
        )
        cols = np.ascontiguousarray(windows).reshape(n, c * kh * kw, ho * wo)
        return cols, (hp, wp, ho, wo)

    def col2im(
        self,
        dcols: np.ndarray,
        x_shape: tuple[int, int, int, int],
        kh: int,
        kw: int,
        stride: int,
        padding: int,
        ho: int,
        wo: int,
    ) -> np.ndarray:
        """Adjoint of im2col: scatter-add column gradients back to the input."""
        n, c, h, w = x_shape
        hp, wp = h + 2 * padding, w + 2 * padding
        dxp = np.zeros((n, c, hp, wp))
        dcols = dcols.reshape(n, c, kh, kw, ho, wo)
        for i in range(kh):
            for j in range(kw):
                dxp[:, :, i : i + stride * ho : stride, j : j + stride * wo : stride] += dcols[
                    :, :, i, j
                ]
        if padding:
            return dxp[:, :, padding:-padding, padding:-padding]
        return dxp

    # ------------------------------------------------------------------
    # matmul
    # ------------------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product with numpy broadcasting semantics."""
        return np.matmul(a, b)

    # ------------------------------------------------------------------
    # conv2d
    # ------------------------------------------------------------------
    def conv2d(
        self, x: np.ndarray, w_mat: np.ndarray, kh: int, kw: int, stride: int, padding: int
    ) -> tuple[np.ndarray, np.ndarray, tuple[int, int, int, int]]:
        """Training-path forward: returns (out, cols, dims).

        ``cols`` is retained by the caller for the weight VJP, so every
        backend must hand back the full im2col matrix here; memory
        tricks belong in :meth:`conv2d_infer`.
        """
        n = x.shape[0]
        co = w_mat.shape[0]
        cols, dims = self.im2col(x, kh, kw, stride, padding)
        ho, wo = dims[2], dims[3]
        out = (w_mat @ cols).reshape(n, co, ho, wo)
        return out, cols, dims

    def conv2d_infer(
        self,
        x: np.ndarray,
        w_mat: np.ndarray,
        kh: int,
        kw: int,
        stride: int,
        padding: int,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Inference forward: same values as :meth:`conv2d`, cols discarded.

        ``out``, when given, receives the result (the compiled replay
        path's arena buffers); writing into it must not change any bit
        of the result.  This base implementation computes through the
        subclass's :meth:`conv2d` and copies, which preserves the
        subclass's reduction semantics (e.g. :class:`EinsumBackend`);
        BLAS-backed subclasses override with direct-write paths.
        """
        res, _, _ = self.conv2d(x, w_mat, kh, kw, stride, padding)
        if out is None:
            return res
        np.copyto(out, res)
        return out

    def _infer_scratch(self, key: tuple, shape: tuple[int, ...], dtype) -> tuple[np.ndarray, bool]:
        """Recycled per-thread buffer for the direct-write inference
        paths; one live array per key per thread, pool bounded like
        :class:`BlockedBackend`'s scratch.  Returns (buffer, fresh) so
        callers can run one-time initialisation (pad borders) only when
        the buffer was actually (re)allocated.
        """
        local = getattr(self, "_infer_local", None)
        if local is None:
            # Benign race: concurrent first calls may each build a
            # threading.local and one wins — scratch carries no state
            # across calls, so the losers only cost an extra allocation.
            local = self._infer_local = threading.local()
        pool: dict | None = getattr(local, "buffers", None)
        if pool is None:
            pool = local.buffers = {}
        buf = pool.get(key)
        if buf is None:
            if len(pool) >= 16:
                pool.clear()
            buf = pool[key] = np.empty(shape, dtype=dtype)
            return buf, True
        return buf, False

    def _padded_scratch(self, x: np.ndarray, padding: int) -> np.ndarray:
        """``x`` zero-padded on its last two axes into recycled scratch.

        Same values as ``np.pad`` with zero mode; no allocation in
        steady state.  Accepts any leading-dim layout (4-D batched or
        5-D grouped) and strided views — the centre assignment handles
        non-contiguous sources without an extra compaction pass.  The
        border strips are zeroed only when the buffer is freshly
        allocated: the scratch key includes ``padding``, so every later
        hit writes the identical centre region and the borders stay
        zero between calls.
        """
        if not padding:
            return x
        h, w = x.shape[-2], x.shape[-1]
        shape = (*x.shape[:-2], h + 2 * padding, w + 2 * padding)
        xp, fresh = self._infer_scratch(("pad", shape, x.dtype.str, padding), shape, x.dtype)
        if fresh:
            xp[..., :padding, :] = 0.0
            xp[..., -padding:, :] = 0.0
            xp[..., padding:-padding, :padding] = 0.0
            xp[..., padding:-padding, -padding:] = 0.0
        xp[..., padding:-padding, padding:-padding] = x
        return xp

    def _cols_scratch(
        self, xp: np.ndarray, kh: int, kw: int, stride: int, ho: int, wo: int
    ) -> np.ndarray:
        """im2col of a pre-padded input into recycled scratch.

        Element-for-element the same copy :meth:`im2col` makes via
        ``ascontiguousarray`` — only the destination is recycled.  Leading
        dims pass through, so grouped (N, G, Ci, Hp, Wp) inputs produce
        (N, G, Ci, kh, kw, Ho, Wo) directly.
        """
        lead = xp.shape[:-2]
        strides = xp.strides
        sh, sw = strides[-2], strides[-1]
        windows = np.lib.stride_tricks.as_strided(
            xp,
            shape=(*lead, kh, kw, ho, wo),
            strides=(*strides[:-2], sh, sw, sh * stride, sw * stride),
            writeable=False,
        )
        shape = (*lead, kh, kw, ho, wo)
        buf, _ = self._infer_scratch(("cols", shape, xp.dtype.str), shape, xp.dtype)
        np.copyto(buf, windows)
        return buf

    def _conv2d_infer_into(
        self, x: np.ndarray, w_mat: np.ndarray, kh: int, kw: int, stride: int, padding: int, out: np.ndarray
    ) -> np.ndarray:
        """Reference inference conv writing straight into ``out``.

        The GEMM call is dimension-identical to the allocating path in
        :meth:`conv2d` (only the source/destination buffers differ, via
        recycled scratch), so the bits are too.  Only BLAS-parity
        backends may use this; einsum semantics go through the
        compute-then-copy base path.
        """
        n, c, h, w = x.shape
        co = w_mat.shape[0]
        _, _, ho, wo = conv_geometry(h, w, kh, kw, stride, padding)
        cols = self._cols_scratch(self._padded_scratch(x, padding), kh, kw, stride, ho, wo)
        np.matmul(
            w_mat, cols.reshape(n, c * kh * kw, ho * wo), out=out.reshape(n, co, ho * wo)
        )
        return out

    def conv2d_grad_weight(self, grad_flat: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """dL/dW_mat from grad (N, Co, P) and cols (N, K, P) -> (Co, K).

        Reduces over batch *and* pixels; kept as one einsum call in every
        backend so the floating-point reduction order (and therefore the
        result) is identical across them.
        """
        return np.einsum("nop,nkp->ok", grad_flat, cols)

    def conv2d_grad_input(
        self,
        w_mat: np.ndarray,
        grad_flat: np.ndarray,
        x_shape: tuple[int, int, int, int],
        kh: int,
        kw: int,
        stride: int,
        padding: int,
        ho: int,
        wo: int,
    ) -> np.ndarray:
        """dL/dx: backproject grad (N, Co, P) through the filter and col2im."""
        dcols = np.einsum("ok,nop->nkp", w_mat, grad_flat)
        return self.col2im(dcols, x_shape, kh, kw, stride, padding, ho, wo)

    # ------------------------------------------------------------------
    # conv2d_grouped (the FRCONV engine's hot path)
    # ------------------------------------------------------------------
    def conv2d_grouped(
        self,
        x: np.ndarray,
        w_flat: np.ndarray,
        kh: int,
        kw: int,
        stride: int,
        padding: int,
    ) -> tuple[np.ndarray, np.ndarray, tuple[int, int, int, int]]:
        """Grouped training-path forward.

        x is (N, G, Ci, H, W), w_flat is (G, Co, Ci*kh*kw); returns
        (out (N, G, Co, Ho, Wo), cols (N, G, K, P), dims).
        """
        n, groups, ci, h, w = x.shape
        co = w_flat.shape[1]
        cols, dims = self.im2col(x.reshape(n * groups, ci, h, w), kh, kw, stride, padding)
        ho, wo = dims[2], dims[3]
        cols = cols.reshape(n, groups, ci * kh * kw, ho * wo)
        out = (w_flat[None] @ cols).reshape(n, groups, co, ho, wo)
        return out, cols, dims

    def conv2d_grouped_infer(
        self,
        x: np.ndarray,
        w_flat: np.ndarray,
        kh: int,
        kw: int,
        stride: int,
        padding: int,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Grouped inference forward; ``out`` as in :meth:`conv2d_infer`."""
        res, _, _ = self.conv2d_grouped(x, w_flat, kh, kw, stride, padding)
        if out is None:
            return res
        np.copyto(out, res)
        return out

    def _conv2d_grouped_infer_into(
        self,
        x: np.ndarray,
        w_flat: np.ndarray,
        kh: int,
        kw: int,
        stride: int,
        padding: int,
        out: np.ndarray,
    ) -> np.ndarray:
        """Grouped analogue of :meth:`_conv2d_infer_into` (same caveats)."""
        n, groups, ci, h, w = x.shape
        co = w_flat.shape[1]
        _, _, ho, wo = conv_geometry(h, w, kh, kw, stride, padding)
        cols = self._cols_scratch(self._padded_scratch(x, padding), kh, kw, stride, ho, wo)
        p = ho * wo
        np.matmul(
            w_flat[None],
            cols.reshape(n, groups, ci * kh * kw, p),
            out=out.reshape(n, groups, co, p),
        )
        return out

    def conv2d_grouped_grad_weight(
        self, grad_flat: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """dL/dW from grad (N, G, Co, P) and cols (N, G, K, P) -> (G, Co, K)."""
        return np.einsum("ngop,ngkp->gok", grad_flat, cols)

    def conv2d_grouped_grad_input(
        self,
        w_flat: np.ndarray,
        grad_flat: np.ndarray,
        x_shape: tuple[int, int, int, int, int],
        kh: int,
        kw: int,
        stride: int,
        padding: int,
        ho: int,
        wo: int,
    ) -> np.ndarray:
        n, groups, ci, h, w = x_shape
        dcols = (np.swapaxes(w_flat, -1, -2)[None] @ grad_flat).reshape(
            n * groups, ci * kh * kw, ho * wo
        )
        dx = self.col2im(dcols, (n * groups, ci, h, w), kh, kw, stride, padding, ho, wo)
        return dx.reshape(x_shape)

    # ------------------------------------------------------------------
    # pooling
    # ------------------------------------------------------------------
    def avg_pool2d(self, x: np.ndarray, kernel: int) -> np.ndarray:
        """Non-overlapping average pooling with stride = kernel."""
        n, c, h, w = x.shape
        k = kernel
        return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def avg_pool2d_grad(self, grad: np.ndarray, kernel: int) -> np.ndarray:
        """VJP of :meth:`avg_pool2d`: spread each cell over its window."""
        k = kernel
        return np.repeat(np.repeat(grad, k, axis=2), k, axis=3) / (k * k)


class NumpyBackend(Backend):
    """The reference single-call numpy/BLAS backend (seed behavior)."""

    name = "numpy"

    def conv2d_infer(self, x, w_mat, kh, kw, stride, padding, out=None):
        if out is None:
            return Backend.conv2d_infer(self, x, w_mat, kh, kw, stride, padding)
        return self._conv2d_infer_into(x, w_mat, kh, kw, stride, padding, out)

    def conv2d_grouped_infer(self, x, w_flat, kh, kw, stride, padding, out=None):
        if out is None:
            return Backend.conv2d_grouped_infer(self, x, w_flat, kh, kw, stride, padding)
        return self._conv2d_grouped_infer_into(x, w_flat, kh, kw, stride, padding, out)


class ThreadedBackend(Backend):
    """Tiles the batch/group axis of the hot primitives across threads.

    Each worker computes a contiguous batch span with the *reference*
    kernels into a disjoint slice of a preallocated output, so the split
    never changes any element's floating-point reduction order — outputs
    and input gradients are bit-identical to :class:`NumpyBackend`.  The
    weight gradient reduces across the batch and is therefore left on
    the single-call reference path (see
    :meth:`Backend.conv2d_grad_weight`).

    Args:
        jobs: Worker threads; defaults to the usable CPU count.
    """

    name = "threaded"

    # Below this many output elements a primitive runs serially — thread
    # handoff costs more than the GEMM it would hide.
    MIN_PARALLEL_ELEMENTS = 1 << 14

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is None:
            jobs = usable_cpu_count()
        if jobs < 1:
            raise ValueError(f"jobs must be a positive integer, got {jobs}")
        self.jobs = int(jobs)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        # Set inside pool workers: primitives re-entered from a worker
        # (the reference implementations dispatch virtually, e.g.
        # conv2d_grouped -> self.im2col) must run serially, or they
        # would submit sub-tasks to the very pool whose workers are
        # blocked waiting on them — a starvation deadlock.
        self._in_worker = threading.local()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadedBackend(jobs={self.jobs})"

    # -- worker plumbing ------------------------------------------------
    def _spans(self, n: int, work: int) -> list[tuple[int, int]]:
        """Split range(n) into near-equal contiguous spans, or one span
        when the job is too small for threading to pay off."""
        if (
            self.jobs == 1
            or n <= 1
            or work < self.MIN_PARALLEL_ELEMENTS
            or getattr(self._in_worker, "active", False)
        ):
            return [(0, n)]
        parts = min(self.jobs, n)
        bounds = np.linspace(0, n, parts + 1, dtype=int)
        return [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:], strict=True) if a < b]

    def _run(self, fn: Callable[[tuple[int, int]], None], spans: Sequence[tuple[int, int]]) -> None:
        if len(spans) == 1:
            fn(spans[0])
            return
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.jobs, thread_name_prefix="repro-backend"
                    )

        def in_worker(span: tuple[int, int]) -> None:
            self._in_worker.active = True
            try:
                fn(span)
            finally:
                self._in_worker.active = False

        # list() propagates the first worker exception, if any.
        list(self._pool.map(in_worker, spans))

    # -- primitives -----------------------------------------------------
    def im2col(self, x, kh, kw, stride, padding):
        n, c, h, w = x.shape
        dims = conv_geometry(h, w, kh, kw, stride, padding)
        ho, wo = dims[2], dims[3]
        spans = self._spans(n, n * c * kh * kw * ho * wo)
        if len(spans) == 1:
            return Backend.im2col(self, x, kh, kw, stride, padding)
        cols = np.empty((n, c * kh * kw, ho * wo), dtype=x.dtype)

        def fill(span: tuple[int, int]) -> None:
            i0, i1 = span
            cols[i0:i1] = Backend.im2col(self, x[i0:i1], kh, kw, stride, padding)[0]

        self._run(fill, spans)
        return cols, dims

    def col2im(self, dcols, x_shape, kh, kw, stride, padding, ho, wo):
        n = x_shape[0]
        spans = self._spans(n, int(np.prod(x_shape)))
        if len(spans) == 1:
            return Backend.col2im(self, dcols, x_shape, kh, kw, stride, padding, ho, wo)
        dx = np.empty(x_shape)

        def fill(span: tuple[int, int]) -> None:
            i0, i1 = span
            dx[i0:i1] = Backend.col2im(
                self, dcols[i0:i1], (i1 - i0, *x_shape[1:]), kh, kw, stride, padding, ho, wo
            )

        self._run(fill, spans)
        return dx

    def matmul(self, a, b):
        if a.ndim == 2 and b.ndim == 2:
            # Never split a single 2-D GEMM: BLAS picks its kernel (and
            # accumulation/FMA structure) from the *full* M extent, so a
            # row span can round differently than the same rows inside
            # the whole product — e.g. an M=1 span of a transposed-B
            # product goes down a gemv-like path.  Found by the
            # randomized property sweep; batch-axis splits below are safe
            # because every per-slice GEMM keeps identical dimensions.
            return np.matmul(a, b)
        if a.ndim >= 3 and (b.ndim < 3 or b.shape[:-2] in ((1,), a.shape[:-2])):
            # b is either unbatched/broadcast (shared by every span) or
            # batched exactly like a (sliced alongside it).
            sliced_b = b.ndim == a.ndim and b.shape[:-2] == a.shape[:-2]
            lead = int(np.prod(a.shape[:-2]))
            spans = self._spans(a.shape[0], lead * a.shape[-2] * b.shape[-1])
            if len(spans) > 1:
                out = np.empty((*a.shape[:-1], b.shape[-1]), dtype=np.result_type(a, b))

                def fill(span: tuple[int, int]) -> None:
                    i0, i1 = span
                    np.matmul(a[i0:i1], b[i0:i1] if sliced_b else b, out=out[i0:i1])

                self._run(fill, spans)
                return out
        return np.matmul(a, b)

    def conv2d(self, x, w_mat, kh, kw, stride, padding):
        n, c, h, w = x.shape
        co = w_mat.shape[0]
        dims = conv_geometry(h, w, kh, kw, stride, padding)
        ho, wo = dims[2], dims[3]
        spans = self._spans(n, n * co * ho * wo)
        if len(spans) == 1:
            return Backend.conv2d(self, x, w_mat, kh, kw, stride, padding)
        cols = np.empty((n, c * kh * kw, ho * wo), dtype=x.dtype)
        out = np.empty((n, co, ho, wo), dtype=np.result_type(x, w_mat))

        def work(span: tuple[int, int]) -> None:
            i0, i1 = span
            part, _ = Backend.im2col(self, x[i0:i1], kh, kw, stride, padding)
            cols[i0:i1] = part
            out[i0:i1] = (w_mat @ part).reshape(i1 - i0, co, ho, wo)

        self._run(work, spans)
        return out, cols, dims

    def conv2d_infer(self, x, w_mat, kh, kw, stride, padding, out=None):
        n, c, h, w = x.shape
        co = w_mat.shape[0]
        dims = conv_geometry(h, w, kh, kw, stride, padding)
        ho, wo = dims[2], dims[3]
        spans = self._spans(n, n * co * ho * wo)
        if len(spans) == 1:
            if out is not None:
                return self._conv2d_infer_into(x, w_mat, kh, kw, stride, padding, out)
            return Backend.conv2d_infer(self, x, w_mat, kh, kw, stride, padding)
        if out is None:
            out = np.empty((n, co, ho, wo), dtype=np.result_type(x, w_mat))

        def work(span: tuple[int, int]) -> None:
            i0, i1 = span
            out[i0:i1] = Backend.conv2d_infer(self, x[i0:i1], w_mat, kh, kw, stride, padding)

        self._run(work, spans)
        return out

    def conv2d_grad_input(self, w_mat, grad_flat, x_shape, kh, kw, stride, padding, ho, wo):
        n = x_shape[0]
        spans = self._spans(n, int(np.prod(x_shape)))
        if len(spans) == 1:
            return Backend.conv2d_grad_input(
                self, w_mat, grad_flat, x_shape, kh, kw, stride, padding, ho, wo
            )
        dx = np.empty(x_shape)

        def work(span: tuple[int, int]) -> None:
            i0, i1 = span
            dx[i0:i1] = Backend.conv2d_grad_input(
                self,
                w_mat,
                grad_flat[i0:i1],
                (i1 - i0, *x_shape[1:]),
                kh,
                kw,
                stride,
                padding,
                ho,
                wo,
            )

        self._run(work, spans)
        return dx

    def _grouped_spans(
        self, n: int, groups: int, work: int
    ) -> tuple[int, list[tuple[int, int]]]:
        """(axis, spans) for grouped primitives: prefer the batch axis,
        fall back to the group axis when the batch is too short to split
        (so batch-1 FRCONV inference still parallelizes its m products)."""
        if n > 1 or groups <= 1:
            return 0, self._spans(n, work)
        return 1, self._spans(groups, work)

    def conv2d_grouped(self, x, w_flat, kh, kw, stride, padding):
        n, groups, ci, h, w = x.shape
        co = w_flat.shape[1]
        dims = conv_geometry(h, w, kh, kw, stride, padding)
        ho, wo = dims[2], dims[3]
        axis, spans = self._grouped_spans(n, groups, n * groups * co * ho * wo)
        if len(spans) == 1:
            return Backend.conv2d_grouped(self, x, w_flat, kh, kw, stride, padding)
        cols = np.empty((n, groups, ci * kh * kw, ho * wo), dtype=x.dtype)
        out = np.empty((n, groups, co, ho, wo), dtype=np.result_type(x, w_flat))

        def work(span: tuple[int, int]) -> None:
            i0, i1 = span
            xs = x[i0:i1] if axis == 0 else x[:, i0:i1]
            ws = w_flat if axis == 0 else w_flat[i0:i1]
            part_out, part_cols, _ = Backend.conv2d_grouped(
                self, xs, ws, kh, kw, stride, padding
            )
            if axis == 0:
                cols[i0:i1], out[i0:i1] = part_cols, part_out
            else:
                cols[:, i0:i1], out[:, i0:i1] = part_cols, part_out

        self._run(work, spans)
        return out, cols, dims

    def conv2d_grouped_infer(self, x, w_flat, kh, kw, stride, padding, out=None):
        n, groups, ci, h, w = x.shape
        co = w_flat.shape[1]
        dims = conv_geometry(h, w, kh, kw, stride, padding)
        ho, wo = dims[2], dims[3]
        axis, spans = self._grouped_spans(n, groups, n * groups * co * ho * wo)
        if len(spans) == 1:
            if out is not None:
                return self._conv2d_grouped_infer_into(
                    x, w_flat, kh, kw, stride, padding, out
                )
            return Backend.conv2d_grouped_infer(self, x, w_flat, kh, kw, stride, padding)
        if out is None:
            out = np.empty((n, groups, co, ho, wo), dtype=np.result_type(x, w_flat))

        def work(span: tuple[int, int]) -> None:
            i0, i1 = span
            xs = x[i0:i1] if axis == 0 else x[:, i0:i1]
            ws = w_flat if axis == 0 else w_flat[i0:i1]
            part = Backend.conv2d_grouped_infer(self, xs, ws, kh, kw, stride, padding)
            if axis == 0:
                out[i0:i1] = part
            else:
                out[:, i0:i1] = part

        self._run(work, spans)
        return out

    def conv2d_grouped_grad_input(
        self, w_flat, grad_flat, x_shape, kh, kw, stride, padding, ho, wo
    ):
        n, groups = x_shape[0], x_shape[1]
        axis, spans = self._grouped_spans(n, groups, int(np.prod(x_shape)))
        if len(spans) == 1:
            return Backend.conv2d_grouped_grad_input(
                self, w_flat, grad_flat, x_shape, kh, kw, stride, padding, ho, wo
            )
        dx = np.empty(x_shape)

        def work(span: tuple[int, int]) -> None:
            i0, i1 = span
            if axis == 0:
                dx[i0:i1] = Backend.conv2d_grouped_grad_input(
                    self, w_flat, grad_flat[i0:i1], (i1 - i0, *x_shape[1:]),
                    kh, kw, stride, padding, ho, wo,
                )
            else:
                dx[:, i0:i1] = Backend.conv2d_grouped_grad_input(
                    self, w_flat[i0:i1], grad_flat[:, i0:i1],
                    (n, i1 - i0, *x_shape[2:]), kh, kw, stride, padding, ho, wo,
                )

        self._run(work, spans)
        return dx


class BlockedBackend(Backend):
    """Batch-blocked inference GEMMs with preallocated im2col scratch.

    The no-grad convolutions never materialize the full im2col matrix:
    the batch (times groups, for grouped conv) is processed ``block``
    samples at a time, each block's windows are copied into a reused
    scratch buffer, and one GEMM writes that block of the output.  Peak
    im2col memory drops from ``N*K*Ho*Wo`` to ``block*K*Ho*Wo`` doubles,
    and the scratch is allocated once and recycled across blocks *and*
    calls, so steady-state serving does no large allocations at all.

    Numpy's batched matmul runs one BLAS GEMM per 2-D batch slice, so
    slicing the batch axis leaves every GEMM call — and therefore every
    output bit — identical to :class:`NumpyBackend`.  (Column-blocking
    was rejected here: tiny GEMMs can take a different BLAS micro-kernel
    with a different accumulation order.)

    Training-path calls need the full column matrix alive for the weight
    VJP and therefore fall back to the reference path unchanged.

    Args:
        block: Samples per GEMM block (default 1 — minimum memory).
    """

    name = "blocked"

    def __init__(self, block: int = 1) -> None:
        if block < 1:
            raise ValueError(f"block must be a positive integer, got {block}")
        self.block = int(block)
        # Scratch is per thread: one shared instance (e.g. selected via
        # REPRO_BACKEND) may serve concurrent Predictors, and a shared
        # buffer would let one thread overwrite windows another thread's
        # GEMM is still reading.
        self._local = threading.local()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockedBackend(block={self.block})"

    def _scratch(self, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """A reusable uninitialized buffer; one live per (shape, dtype)
        per thread."""
        buffers: dict = getattr(self._local, "buffers", None)
        if buffers is None:
            buffers = self._local.buffers = {}
        key = (shape, np.dtype(dtype).str)
        buf = buffers.get(key)
        if buf is None:
            if len(buffers) >= 16:  # bound the pool across model shapes
                buffers.clear()
            buf = np.empty(shape, dtype=dtype)
            buffers[key] = buf
        return buf

    def _block_cols(
        self, xp: np.ndarray, kh: int, kw: int, stride: int, ho: int, wo: int
    ) -> np.ndarray:
        """im2col of a padded input block into the scratch pool."""
        n, c = xp.shape[0], xp.shape[1]
        s0, s1, s2, s3 = xp.strides
        windows = np.lib.stride_tricks.as_strided(
            xp,
            shape=(n, c, kh, kw, ho, wo),
            strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
            writeable=False,
        )
        buf = self._scratch((n, c, kh, kw, ho, wo), xp.dtype)
        np.copyto(buf, windows)
        return buf.reshape(n, c * kh * kw, ho * wo)

    def conv2d_infer(self, x, w_mat, kh, kw, stride, padding, out=None):
        n, c, h, w = x.shape
        if n <= self.block:
            if out is not None:
                return self._conv2d_infer_into(x, w_mat, kh, kw, stride, padding, out)
            return Backend.conv2d_infer(self, x, w_mat, kh, kw, stride, padding)
        co = w_mat.shape[0]
        _, _, ho, wo = conv_geometry(h, w, kh, kw, stride, padding)
        pad = ((0, 0), (0, 0), (padding, padding), (padding, padding))
        if out is None:
            out = np.empty((n, co, ho, wo), dtype=np.result_type(x, w_mat))
        for i0 in range(0, n, self.block):
            i1 = min(n, i0 + self.block)
            xb = np.pad(x[i0:i1], pad) if padding else x[i0:i1]
            cols = self._block_cols(xb, kh, kw, stride, ho, wo)
            out[i0:i1] = (w_mat @ cols).reshape(i1 - i0, co, ho, wo)
        return out

    def conv2d_grouped_infer(self, x, w_flat, kh, kw, stride, padding, out=None):
        n, groups, ci, h, w = x.shape
        if n <= self.block:
            if out is not None:
                return self._conv2d_grouped_infer_into(
                    x, w_flat, kh, kw, stride, padding, out
                )
            return Backend.conv2d_grouped_infer(self, x, w_flat, kh, kw, stride, padding)
        co = w_flat.shape[1]
        _, _, ho, wo = conv_geometry(h, w, kh, kw, stride, padding)
        pad = ((0, 0), (0, 0), (padding, padding), (padding, padding))
        k = ci * kh * kw
        if out is None:
            out = np.empty((n, groups, co, ho, wo), dtype=np.result_type(x, w_flat))
        for i0 in range(0, n, self.block):
            i1 = min(n, i0 + self.block)
            xb = x[i0:i1].reshape((i1 - i0) * groups, ci, h, w)
            xb = np.pad(xb, pad) if padding else xb
            cols = self._block_cols(xb, kh, kw, stride, ho, wo)
            cols = cols.reshape(i1 - i0, groups, k, ho * wo)
            out[i0:i1] = (w_flat[None] @ cols).reshape(i1 - i0, groups, co, ho, wo)
        return out


class EinsumBackend(Backend):
    """Deterministic shape-invariant kernels (np.einsum, no BLAS GEMM).

    BLAS dgemm picks its micro-kernel and accumulation structure from the
    full problem dimensions, so the *bits* of one output element can
    change with the number of columns computed alongside it — which is
    exactly what varies between a tile crop and the whole image, or
    between the bicubic skip on a crop and on the full frame.
    ``np.einsum`` (with the default ``optimize=False``) reduces each
    output element with one fixed sequential chain over its own operands,
    independent of batch size, pixel count, or crop extent.  Under this
    backend, tiled inference is therefore **bit-identical** to
    whole-image inference for any geometry — the reference substrate the
    adversarial tiling-parity tests pin the exactness claim against.

    Deliberately **not** in the spec-string registry: registered backends
    promise bit-parity with :class:`NumpyBackend` (artifact fingerprints
    are backend-invariant), and einsum's rounding differs from BLAS by
    design.  Construct it directly and pass the instance to
    :func:`use_backend` or :class:`~repro.nn.inference.Predictor`.  Much
    slower than the BLAS paths; a verification substrate, not a serving
    one.
    """

    name = "einsum"

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.ndim == 1 or b.ndim == 1:
            return np.matmul(a, b)  # vector cases keep numpy semantics
        return np.einsum("...ik,...kj->...ij", a, b)

    def conv2d(self, x, w_mat, kh, kw, stride, padding):
        n = x.shape[0]
        co = w_mat.shape[0]
        cols, dims = self.im2col(x, kh, kw, stride, padding)
        out = np.einsum("ok,nkp->nop", w_mat, cols).reshape(n, co, dims[2], dims[3])
        return out, cols, dims

    def conv2d_grouped(self, x, w_flat, kh, kw, stride, padding):
        n, groups, ci, h, w = x.shape
        co = w_flat.shape[1]
        cols, dims = self.im2col(x.reshape(n * groups, ci, h, w), kh, kw, stride, padding)
        cols = cols.reshape(n, groups, ci * kh * kw, dims[2] * dims[3])
        out = np.einsum("gok,ngkp->ngop", w_flat, cols).reshape(
            n, groups, co, dims[2], dims[3]
        )
        return out, cols, dims


# ----------------------------------------------------------------------
# Registry and selection
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Callable[[str | None], Backend]] = {}


def register_backend(name: str, factory: Callable[[str | None], Backend]) -> None:
    """Register a backend factory under ``name``.

    ``factory(arg)`` receives the text after ``:`` in a spec string
    (``None`` when absent) and returns a :class:`Backend` instance.
    """
    _REGISTRY[name.lower()] = factory


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def make_backend(spec: "Backend | str") -> Backend:
    """Build a backend from a ``name[:arg]`` spec (pass-through for instances)."""
    if isinstance(spec, Backend):
        return spec
    name, sep, arg = str(spec).partition(":")
    name = name.strip().lower()
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        )
    try:
        return factory(arg.strip() if sep else None)
    except ValueError as exc:
        raise ValueError(f"bad backend spec {spec!r}: {exc}") from None


register_backend("numpy", lambda arg: NumpyBackend())
register_backend(
    "threaded", lambda arg: ThreadedBackend(jobs=int(arg)) if arg else ThreadedBackend()
)
register_backend(
    "blocked", lambda arg: BlockedBackend(block=int(arg)) if arg else BlockedBackend()
)


_DEFAULT = NumpyBackend()
_SPEC_INSTANCES: dict[str, Backend] = {}
_SPEC_LOCK = threading.Lock()


def get_backend(spec: "Backend | str") -> Backend:
    """Like :func:`make_backend`, but returns one shared instance per
    spec string — so repeated lookups (the env-var path, Predictors
    constructed per request) reuse the same thread pool / scratch state
    instead of rebuilding them.  Backends are thread-safe, so sharing
    is sound; call :func:`make_backend` when isolation is wanted.
    """
    if isinstance(spec, Backend):
        return spec
    with _SPEC_LOCK:
        backend = _SPEC_INSTANCES.get(spec)
        if backend is None:
            backend = make_backend(spec)
            _SPEC_INSTANCES[spec] = backend
    return backend


class _ActiveStack(threading.local):
    def __init__(self) -> None:
        self.stack: list[Backend] = []


_ACTIVE = _ActiveStack()


def default_backend() -> Backend:
    """The process-wide fallback backend (:class:`NumpyBackend`)."""
    return _DEFAULT


def current_backend() -> Backend:
    """The active backend on this thread.

    Precedence: innermost :func:`use_backend` context > the
    ``REPRO_BACKEND`` environment variable > :func:`default_backend`.
    """
    if _ACTIVE.stack:
        return _ACTIVE.stack[-1]
    spec = os.environ.get(BACKEND_ENV_VAR)
    if spec:
        try:
            return get_backend(spec)
        except ValueError as exc:
            raise ValueError(f"invalid {BACKEND_ENV_VAR}: {exc}") from None
    return _DEFAULT


class use_backend:
    """Thread-locally activate a backend for a ``with`` block.

    Accepts an instance or a spec string::

        with use_backend(ThreadedBackend(jobs=4)):
            predictor(images)
        with use_backend("blocked:2048"):
            model(x)

    Nested contexts shadow outer ones; the context object is reusable
    but not reentrant-safe across threads (each thread keeps its own
    stack, so contexts opened on one thread never leak into another).
    """

    def __init__(self, backend: "Backend | str") -> None:
        self.backend = get_backend(backend)

    def __enter__(self) -> Backend:
        _ACTIVE.stack.append(self.backend)
        return self.backend

    def __exit__(self, *exc) -> None:
        _ACTIVE.stack.pop()
