"""Convolution and pixel-(un)shuffle primitives with hand-written VJPs.

The 2-D convolution uses im2col with numpy stride tricks; its backward
pass is a col2im scatter-add.  These are the workhorses of the training
substrate — everything else composes from :class:`~repro.nn.tensor.Tensor`
primitives.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "conv2d_grouped",
    "ring_expand",
    "pixel_shuffle",
    "pixel_unshuffle",
    "avg_pool2d",
    "softmax_cross_entropy",
]


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> tuple[np.ndarray, tuple[int, int, int, int]]:
    """Unfold sliding windows into columns.

    Returns:
        cols of shape (N, C*kh*kw, Ho*Wo) and (Hp, Wp, Ho, Wo).
    """
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    n, c, hp, wp = x.shape
    ho = (hp - kh) // stride + 1
    wo = (wp - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, ho, wo),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    cols = np.ascontiguousarray(windows).reshape(n, c * kh * kw, ho * wo)
    return cols, (hp, wp, ho, wo)


def col2im(
    dcols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    ho: int,
    wo: int,
) -> np.ndarray:
    """Adjoint of im2col: scatter-add column gradients back to the input."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    dxp = np.zeros((n, c, hp, wp))
    dcols = dcols.reshape(n, c, kh, kw, ho, wo)
    for i in range(kh):
        for j in range(kw):
            dxp[:, :, i : i + stride * ho : stride, j : j + stride * wo : stride] += dcols[
                :, :, i, j
            ]
    if padding:
        return dxp[:, :, padding:-padding, padding:-padding]
    return dxp


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation: x (N,C,H,W) * weight (Co,Ci,kh,kw) -> (N,Co,Ho,Wo)."""
    x = as_tensor(x)
    weight = as_tensor(weight)
    n, c, h, w = x.shape
    co, ci, kh, kw = weight.shape
    if ci != c:
        raise ValueError(f"channel mismatch: input {c}, weight expects {ci}")
    cols, (hp, wp, ho, wo) = im2col(x.data, kh, kw, stride, padding)
    out = (weight.data.reshape(co, -1) @ cols).reshape(n, co, ho, wo)
    if bias is not None:
        out = out + bias.data.reshape(1, co, 1, 1)
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(n, co, ho * wo)
        if weight.requires_grad:
            dw = np.einsum("nop,nkp->ok", grad_flat, cols).reshape(weight.shape)
            weight._accumulate(dw)
        if x.requires_grad:
            dcols = np.einsum("ok,nop->nkp", weight.data.reshape(co, -1), grad_flat)
            x._accumulate(col2im(dcols, x.shape, kh, kw, stride, padding, ho, wo))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))

    return Tensor._make(out, parents, backward)


def conv2d_grouped(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """Independent per-group 2-D convolutions fused into one GEMM.

    Convolves x (N, G, Ci, H, W) with weight (G, Co, Ci, kh, kw) to
    produce (N, G, Co, Ho, Wo); group ``p`` of the output depends only on
    group ``p`` of the input and weights.  The group axis is folded into
    the im2col batch, so all G convolutions share a single window
    extraction and a single batched matmul — this is the FRCONV engine's
    hot path (the m component-wise products of paper eq. 12).
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    n, groups, ci, h, w = x.shape
    gw, co, ciw, kh, kw = weight.shape
    if gw != groups:
        raise ValueError(f"group mismatch: input {groups}, weight {gw}")
    if ciw != ci:
        raise ValueError(f"channel mismatch: input {ci}, weight expects {ciw}")
    cols, (hp, wp, ho, wo) = im2col(
        x.data.reshape(n * groups, ci, h, w), kh, kw, stride, padding
    )
    cols = cols.reshape(n, groups, ci * kh * kw, ho * wo)
    w_flat = weight.data.reshape(groups, co, ci * kh * kw)
    out = (w_flat[None] @ cols).reshape(n, groups, co, ho, wo)
    if bias is not None:
        out = out + bias.data.reshape(1, groups, co, 1, 1)
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(n, groups, co, ho * wo)
        if weight.requires_grad:
            dw = np.einsum("ngop,ngkp->gok", grad_flat, cols).reshape(weight.shape)
            weight._accumulate(dw)
        if x.requires_grad:
            dcols = (np.swapaxes(w_flat, -1, -2)[None] @ grad_flat).reshape(
                n * groups, ci * kh * kw, ho * wo
            )
            dx = col2im(dcols, (n * groups, ci, h, w), kh, kw, stride, padding, ho, wo)
            x._accumulate(dx.reshape(x.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 3, 4)))

    return Tensor._make(out, parents, backward)


def ring_expand(g: Tensor, m_tensor: np.ndarray) -> Tensor:
    """Expand ring weights into the isomorphic real-valued filter bank.

    Args:
        g: Ring weights of shape (Co_t, Ci_t, n, kh, kw) — n real weights
            per tuple pair (the paper's DoF reduction, eq. 9).
        m_tensor: The ring's (n, n, n) indexing tensor ``M[i, k, j]``.

    Returns:
        Real weights of shape (Co_t*n, Ci_t*n, kh, kw) with
        ``W[ot*n+i, ct*n+j] = sum_k M[i,k,j] g[ot,ct,k]``.

    The expansion is linear, so training through it is the paper's
    "treat the RingCNN as a conventional real-valued CNN" (Section IV-B).
    """
    g = as_tensor(g)
    cot, cit, k_comp, kh, kw = g.shape
    if m_tensor.ndim != 3 or m_tensor.shape[1] != k_comp:
        raise ValueError("indexing tensor does not match the weight components")
    n = m_tensor.shape[0]
    if m_tensor.shape[2] != n:
        raise ValueError("indexing tensor must be (n, k, n)")
    expand = m_tensor.transpose(0, 2, 1)  # E[i, j, k]
    w = np.einsum("ijk,ockst->oicjst", expand, g.data).reshape(cot * n, cit * n, kh, kw)

    def backward(grad: np.ndarray) -> None:
        if g.requires_grad:
            grad6 = grad.reshape(cot, n, cit, n, kh, kw)
            dg = np.einsum("ijk,oicjst->ockst", expand, grad6)
            g._accumulate(dg)

    return Tensor._make(w, (g,), backward)


def pixel_shuffle(x: Tensor, factor: int) -> Tensor:
    """Rearrange (N, C*r^2, H, W) -> (N, C, H*r, W*r) (depth-to-space)."""
    x = as_tensor(x)
    n, c, h, w = x.shape
    r = factor
    if c % (r * r):
        raise ValueError("channels must be divisible by factor^2")
    co = c // (r * r)
    out = (
        x.data.reshape(n, co, r, r, h, w)
        .transpose(0, 1, 4, 2, 5, 3)
        .reshape(n, co, h * r, w * r)
    )

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = (
                grad.reshape(n, co, h, r, w, r)
                .transpose(0, 1, 3, 5, 2, 4)
                .reshape(n, c, h, w)
            )
            x._accumulate(g)

    return Tensor._make(out, (x,), backward)


def pixel_unshuffle(x: Tensor, factor: int) -> Tensor:
    """Rearrange (N, C, H*r, W*r) -> (N, C*r^2, H, W) (space-to-depth)."""
    x = as_tensor(x)
    n, c, h, w = x.shape
    r = factor
    if h % r or w % r:
        raise ValueError("spatial dims must be divisible by factor")
    ho, wo = h // r, w // r
    out = (
        x.data.reshape(n, c, ho, r, wo, r)
        .transpose(0, 1, 3, 5, 2, 4)
        .reshape(n, c * r * r, ho, wo)
    )

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = (
                grad.reshape(n, c, r, r, ho, wo)
                .transpose(0, 1, 4, 2, 5, 3)
                .reshape(n, c, h, w)
            )
            x._accumulate(g)

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling with stride = kernel."""
    x = as_tensor(x)
    n, c, h, w = x.shape
    k = kernel
    if h % k or w % k:
        raise ValueError("spatial dims must be divisible by the kernel")
    ho, wo = h // k, w // k
    out = x.data.reshape(n, c, ho, k, wo, k).mean(axis=(3, 5))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = np.repeat(np.repeat(grad, k, axis=2), k, axis=3) / (k * k)
            x._accumulate(g)

    return Tensor._make(out, (x,), backward)


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy; labels are integer class indices."""
    logits = as_tensor(logits)
    labels = np.asarray(labels, dtype=int)
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    batch = logits.shape[0]
    loss = -np.mean(np.log(probs[np.arange(batch), labels] + 1e-12))

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            d = probs.copy()
            d[np.arange(batch), labels] -= 1.0
            logits._accumulate(grad * d / batch)

    return Tensor._make(np.array(loss), (logits,), backward)
