"""Convolution and pixel-(un)shuffle primitives with hand-written VJPs.

The heavy array kernels (im2col/col2im, the convolution GEMMs, pooling)
live behind the pluggable :mod:`repro.nn.backend` protocol; this module
owns the autodiff wiring.  Every call dispatches to the backend that is
active *at forward time* (see :func:`repro.nn.backend.current_backend`),
and the backward closure captures that same backend so a graph built
under ``use_backend(...)`` backpropagates consistently even after the
context has exited.
"""

from __future__ import annotations

import numpy as np

from .backend import current_backend
from .tensor import Tensor, _trace_op, as_tensor, is_grad_enabled

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "conv2d_grouped",
    "ring_expand",
    "pixel_shuffle",
    "pixel_unshuffle",
    "avg_pool2d",
    "softmax_cross_entropy",
]


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> tuple[np.ndarray, tuple[int, int, int, int]]:
    """Unfold sliding windows into columns (active-backend dispatch).

    Returns:
        cols of shape (N, C*kh*kw, Ho*Wo) and (Hp, Wp, Ho, Wo).
    """
    return current_backend().im2col(x, kh, kw, stride, padding)


def col2im(
    dcols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    ho: int,
    wo: int,
) -> np.ndarray:
    """Adjoint of im2col: scatter-add column gradients back to the input."""
    return current_backend().col2im(dcols, x_shape, kh, kw, stride, padding, ho, wo)


def _check_conv_geometry(
    name: str, h: int, w: int, kh: int, kw: int, stride: int, padding: int
) -> None:
    """Reject bad stride/padding/kernel-vs-input combinations by name."""
    if not isinstance(stride, (int, np.integer)) or stride < 1:
        raise ValueError(f"{name}: stride must be a positive integer, got {stride!r}")
    if not isinstance(padding, (int, np.integer)) or padding < 0:
        raise ValueError(f"{name}: padding must be a non-negative integer, got {padding!r}")
    if kh > h + 2 * padding:
        raise ValueError(
            f"{name}: kernel height {kh} exceeds padded input height "
            f"{h + 2 * padding} (H={h} + 2*padding={padding})"
        )
    if kw > w + 2 * padding:
        raise ValueError(
            f"{name}: kernel width {kw} exceeds padded input width "
            f"{w + 2 * padding} (W={w} + 2*padding={padding})"
        )


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation: x (N,C,H,W) * weight (Co,Ci,kh,kw) -> (N,Co,Ho,Wo)."""
    x = as_tensor(x)
    weight = as_tensor(weight)
    if x.ndim != 4:
        raise ValueError(
            f"conv2d: input must be 4-D (N, C, H, W), got {x.ndim}-D shape {x.shape}"
        )
    if weight.ndim != 4:
        raise ValueError(
            f"conv2d: weight must be 4-D (Co, Ci, kh, kw), got {weight.ndim}-D "
            f"shape {weight.shape}"
        )
    n, c, h, w = x.shape
    co, ci, kh, kw = weight.shape
    if ci != c:
        raise ValueError(
            f"conv2d: input has {c} channels but weight expects Ci={ci} "
            f"(input {x.shape}, weight {weight.shape})"
        )
    _check_conv_geometry("conv2d", h, w, kh, kw, stride, padding)
    if bias is not None and bias.size != co:
        raise ValueError(
            f"conv2d: bias has {bias.size} entries but the convolution produces "
            f"Co={co} output channels"
        )
    backend = current_backend()
    w_mat = weight.data.reshape(co, -1)
    parents = (x, weight) if bias is None else (x, weight, bias)
    if not (is_grad_enabled() and any(p.requires_grad for p in parents)):
        out = backend.conv2d_infer(x.data, w_mat, kh, kw, stride, padding)
        inputs = (x.data, w_mat)
        if bias is not None:
            bias4 = bias.data.reshape(1, co, 1, 1)
            inputs = (x.data, w_mat, bias4)
            out = out + bias4
        return _trace_op(Tensor(out), "conv2d", inputs, kh, kw, stride, padding)

    out, cols, (hp, wp, ho, wo) = backend.conv2d(x.data, w_mat, kh, kw, stride, padding)
    if bias is not None:
        out = out + bias.data.reshape(1, co, 1, 1)

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(n, co, ho * wo)
        if weight.requires_grad:
            dw = backend.conv2d_grad_weight(grad_flat, cols).reshape(weight.shape)
            weight._accumulate(dw)
        if x.requires_grad:
            x._accumulate(
                backend.conv2d_grad_input(
                    w_mat, grad_flat, x.shape, kh, kw, stride, padding, ho, wo
                )
            )
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))

    return Tensor._make(out, parents, backward)


def conv2d_grouped(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """Independent per-group 2-D convolutions fused into one GEMM.

    Convolves x (N, G, Ci, H, W) with weight (G, Co, Ci, kh, kw) to
    produce (N, G, Co, Ho, Wo); group ``p`` of the output depends only on
    group ``p`` of the input and weights.  The group axis is folded into
    the im2col batch, so all G convolutions share a single window
    extraction and a single batched matmul — this is the FRCONV engine's
    hot path (the m component-wise products of paper eq. 12), and the
    primitive every :class:`~repro.nn.backend.Backend` accelerates.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    if x.ndim != 5:
        raise ValueError(
            f"conv2d_grouped: input must be 5-D (N, G, Ci, H, W), got {x.ndim}-D "
            f"shape {x.shape}"
        )
    if weight.ndim != 5:
        raise ValueError(
            f"conv2d_grouped: weight must be 5-D (G, Co, Ci, kh, kw), got "
            f"{weight.ndim}-D shape {weight.shape}"
        )
    n, groups, ci, h, w = x.shape
    gw, co, ciw, kh, kw = weight.shape
    if gw != groups:
        raise ValueError(
            f"conv2d_grouped: input has {groups} groups but weight has G={gw}"
        )
    if ciw != ci:
        raise ValueError(
            f"conv2d_grouped: input has {ci} channels per group but weight "
            f"expects Ci={ciw}"
        )
    _check_conv_geometry("conv2d_grouped", h, w, kh, kw, stride, padding)
    if bias is not None and bias.size != groups * co:
        raise ValueError(
            f"conv2d_grouped: bias has {bias.size} entries but the convolution "
            f"produces G*Co={groups * co} output channels"
        )
    backend = current_backend()
    w_flat = weight.data.reshape(groups, co, ci * kh * kw)
    parents = (x, weight) if bias is None else (x, weight, bias)
    if not (is_grad_enabled() and any(p.requires_grad for p in parents)):
        out = backend.conv2d_grouped_infer(x.data, w_flat, kh, kw, stride, padding)
        inputs = (x.data, w_flat)
        if bias is not None:
            bias5 = bias.data.reshape(1, groups, co, 1, 1)
            inputs = (x.data, w_flat, bias5)
            out = out + bias5
        return _trace_op(
            Tensor(out), "conv2d_grouped", inputs, kh, kw, stride, padding
        )

    out, cols, (hp, wp, ho, wo) = backend.conv2d_grouped(
        x.data, w_flat, kh, kw, stride, padding
    )
    if bias is not None:
        out = out + bias.data.reshape(1, groups, co, 1, 1)

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(n, groups, co, ho * wo)
        if weight.requires_grad:
            dw = backend.conv2d_grouped_grad_weight(grad_flat, cols).reshape(weight.shape)
            weight._accumulate(dw)
        if x.requires_grad:
            x._accumulate(
                backend.conv2d_grouped_grad_input(
                    w_flat, grad_flat, x.shape, kh, kw, stride, padding, ho, wo
                )
            )
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 3, 4)))

    return Tensor._make(out, parents, backward)


def ring_expand(g: Tensor, m_tensor: np.ndarray) -> Tensor:
    """Expand ring weights into the isomorphic real-valued filter bank.

    Args:
        g: Ring weights of shape (Co_t, Ci_t, n, kh, kw) — n real weights
            per tuple pair (the paper's DoF reduction, eq. 9).
        m_tensor: The ring's (n, n, n) indexing tensor ``M[i, k, j]``.

    Returns:
        Real weights of shape (Co_t*n, Ci_t*n, kh, kw) with
        ``W[ot*n+i, ct*n+j] = sum_k M[i,k,j] g[ot,ct,k]``.

    The expansion is linear, so training through it is the paper's
    "treat the RingCNN as a conventional real-valued CNN" (Section IV-B).
    """
    g = as_tensor(g)
    cot, cit, k_comp, kh, kw = g.shape
    if m_tensor.ndim != 3 or m_tensor.shape[1] != k_comp:
        raise ValueError("indexing tensor does not match the weight components")
    n = m_tensor.shape[0]
    if m_tensor.shape[2] != n:
        raise ValueError("indexing tensor must be (n, k, n)")
    expand = m_tensor.transpose(0, 2, 1)  # E[i, j, k]
    # Ring expansion is a *weight-space* transform, not a data-path
    # kernel: it must produce the same bits under every backend so that
    # expanded filter banks (and their fingerprinted eval caches) stay
    # backend-invariant.  It therefore stays pinned to np.einsum's fixed
    # reduction order instead of dispatching through the Backend.
    w = np.einsum(  # reprolint: disable=backend-dispatch
        "ijk,ockst->oicjst", expand, g.data
    ).reshape(cot * n, cit * n, kh, kw)

    def backward(grad: np.ndarray) -> None:
        if g.requires_grad:
            grad6 = grad.reshape(cot, n, cit, n, kh, kw)
            # Same invariance argument as the forward expansion above.
            dg = np.einsum(  # reprolint: disable=backend-dispatch
                "ijk,oicjst->ockst", expand, grad6
            )
            g._accumulate(dg)

    return Tensor._make(w, (g,), backward)


def pixel_shuffle(x: Tensor, factor: int) -> Tensor:
    """Rearrange (N, C*r^2, H, W) -> (N, C, H*r, W*r) (depth-to-space)."""
    x = as_tensor(x)
    n, c, h, w = x.shape
    r = factor
    if c % (r * r):
        raise ValueError("channels must be divisible by factor^2")
    co = c // (r * r)
    out = (
        x.data.reshape(n, co, r, r, h, w)
        .transpose(0, 1, 4, 2, 5, 3)
        .reshape(n, co, h * r, w * r)
    )

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = (
                grad.reshape(n, co, h, r, w, r)
                .transpose(0, 1, 3, 5, 2, 4)
                .reshape(n, c, h, w)
            )
            x._accumulate(g)

    return _trace_op(Tensor._make(out, (x,), backward), "pixel_shuffle", (x.data,), r)


def pixel_unshuffle(x: Tensor, factor: int) -> Tensor:
    """Rearrange (N, C, H*r, W*r) -> (N, C*r^2, H, W) (space-to-depth)."""
    x = as_tensor(x)
    n, c, h, w = x.shape
    r = factor
    if h % r or w % r:
        raise ValueError("spatial dims must be divisible by factor")
    ho, wo = h // r, w // r
    out = (
        x.data.reshape(n, c, ho, r, wo, r)
        .transpose(0, 1, 3, 5, 2, 4)
        .reshape(n, c * r * r, ho, wo)
    )

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = (
                grad.reshape(n, c, r, r, ho, wo)
                .transpose(0, 1, 4, 2, 5, 3)
                .reshape(n, c, h, w)
            )
            x._accumulate(g)

    return _trace_op(Tensor._make(out, (x,), backward), "pixel_unshuffle", (x.data,), r)


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling with stride = kernel."""
    x = as_tensor(x)
    n, c, h, w = x.shape
    k = kernel
    if h % k or w % k:
        raise ValueError("spatial dims must be divisible by the kernel")
    backend = current_backend()
    out = backend.avg_pool2d(x.data, k)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(backend.avg_pool2d_grad(grad, k))

    return _trace_op(Tensor._make(out, (x,), backward), "avg_pool", (x.data,), k)


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy; labels are integer class indices."""
    logits = as_tensor(logits)
    labels = np.asarray(labels, dtype=int)
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    batch = logits.shape[0]
    loss = -np.mean(np.log(probs[np.arange(batch), labels] + 1e-12))

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            d = probs.copy()
            d[np.arange(batch), labels] -= 1.0
            logits._accumulate(grad * d / batch)

    return Tensor._make(np.array(loss), (logits,), backward)
