"""From-scratch numpy autodiff and neural-network substrate.

Substitutes for the paper's PyTorch training setup (see DESIGN.md): a
tape-based :class:`Tensor`, conv/ring-conv layers, optimizers, losses and
a shared training loop.
"""

from . import backend
from .backend import (
    Backend,
    BlockedBackend,
    EinsumBackend,
    NumpyBackend,
    ThreadedBackend,
    available_backends,
    current_backend,
    get_backend,
    use_backend,
)
from .compile import (
    CompileError,
    ExecutionPlan,
    TraceError,
    Tracer,
    build_plan,
    model_stamp,
    traced_call,
)
from .data import ArrayDataset, DataLoader
from .fastconv import FastRingConv2d, frconv2d
from .functional import (
    avg_pool2d,
    conv2d,
    conv2d_grouped,
    pixel_shuffle,
    pixel_unshuffle,
    ring_expand,
)
from .gradcheck import check_gradients, numeric_gradient
from .inference import CompiledPredictor, Predictor, TilingPlan, plan_for_model
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DirectionalReLU2d,
    Flatten,
    GlobalAvgPool,
    Identity,
    LeakyReLU,
    Linear,
    PixelShuffle,
    PixelUnshuffle,
    ReLU,
    RingConv2d,
    Sequential,
    make_activation,
)
from .loss import charbonnier_loss, cross_entropy_loss, l1_loss, mse_loss
from .module import Module
from .optim import SGD, Adam, CosineLR, LRScheduler, Optimizer, StepLR, clip_grad_norm
from .tensor import Parameter, Tensor, as_tensor, concat, no_grad
from .trainer import TrainConfig, TrainResult, evaluate_mse, train_model

__all__ = [
    "backend",
    "Backend",
    "BlockedBackend",
    "EinsumBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "available_backends",
    "current_backend",
    "get_backend",
    "use_backend",
    "CompileError",
    "ExecutionPlan",
    "TraceError",
    "Tracer",
    "build_plan",
    "model_stamp",
    "traced_call",
    "ArrayDataset",
    "DataLoader",
    "FastRingConv2d",
    "frconv2d",
    "avg_pool2d",
    "conv2d",
    "conv2d_grouped",
    "pixel_shuffle",
    "pixel_unshuffle",
    "ring_expand",
    "check_gradients",
    "numeric_gradient",
    "CompiledPredictor",
    "Predictor",
    "TilingPlan",
    "plan_for_model",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "DirectionalReLU2d",
    "Flatten",
    "GlobalAvgPool",
    "Identity",
    "LeakyReLU",
    "Linear",
    "PixelShuffle",
    "PixelUnshuffle",
    "ReLU",
    "RingConv2d",
    "Sequential",
    "make_activation",
    "charbonnier_loss",
    "cross_entropy_loss",
    "l1_loss",
    "mse_loss",
    "Module",
    "SGD",
    "Adam",
    "Optimizer",
    "LRScheduler",
    "CosineLR",
    "StepLR",
    "clip_grad_norm",
    "Parameter",
    "Tensor",
    "as_tensor",
    "concat",
    "no_grad",
    "TrainConfig",
    "TrainResult",
    "evaluate_mse",
    "train_model",
]
