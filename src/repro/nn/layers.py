"""Neural-network layers, including ring convolution (paper Section IV).

``RingConv2d`` stores n real weights per tuple pair (the paper's DoF
reduction) and expands them to the isomorphic real filter bank on the
forward pass, so Backprop needs no special treatment (Section IV-B).
``DirectionalReLU2d`` applies the paper's f_dir = U f_cw(V .) along the
channel-tuple axis (Section III-E).

All convolution/pooling layers (and ``Linear``'s matmul) execute through
:mod:`repro.nn.functional`, which dispatches to the active
:mod:`repro.nn.backend` — no layer calls a kernel directly, so swapping
``use_backend(...)`` swaps the execution substrate for a whole model.
"""

from __future__ import annotations

import threading

import numpy as np

from ..rings.base import Ring
from ..rings.nonlinearity import DirectionalReLU, RingNonlinearity
from .functional import avg_pool2d, conv2d, pixel_shuffle, pixel_unshuffle, ring_expand
from .init import kaiming_normal, ring_kaiming_normal
from .module import Module, weight_fingerprint
from .tensor import Parameter, Tensor, as_tensor, is_grad_enabled

__all__ = [
    "Conv2d",
    "RingConv2d",
    "ReLU",
    "LeakyReLU",
    "DirectionalReLU2d",
    "Sequential",
    "Linear",
    "BatchNorm2d",
    "PixelShuffle",
    "PixelUnshuffle",
    "AvgPool2d",
    "GlobalAvgPool",
    "Flatten",
    "Identity",
    "make_activation",
]


class Conv2d(Module):
    """Real-valued 2-D convolution layer."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | None = None,
        bias: bool = True,
        seed: int | None = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.weight = Parameter(
            kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), seed=seed)
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def macs_per_pixel(self) -> int:
        """Multiply-accumulates per output pixel (hardware model input)."""
        return self.out_channels * self.in_channels * self.kernel_size**2


class RingConv2d(Module):
    """Ring convolution RCONV (paper eq. 11).

    Channels are grouped into consecutive n-tuples; each tuple pair
    (ci_t, co_t) holds one ring weight of n real values.  The forward
    pass expands ``g`` through the ring's indexing tensor into the
    isomorphic real filter bank and convolves normally.

    Weight count: ``(Co/n) * (Ci/n) * n * K^2`` — exactly n-times fewer
    than the real-valued layer it replaces.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        ring: Ring,
        stride: int = 1,
        padding: int | None = None,
        bias: bool = True,
        seed: int | None = None,
    ) -> None:
        super().__init__()
        n = ring.n
        if in_channels % n or out_channels % n:
            raise ValueError(
                f"channels ({in_channels}, {out_channels}) must be multiples of n={n}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.ring = ring
        self.g = Parameter(
            ring_kaiming_normal(
                (out_channels // n, in_channels // n, n, kernel_size, kernel_size),
                fan_in=in_channels * kernel_size**2,
                seed=seed,
            )
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self._weight_cache: tuple[tuple, np.ndarray] | None = None
        self._cache_lock = threading.Lock()

    def _clear_weight_cache(self) -> None:
        with self._cache_lock:
            self._weight_cache = None

    def _expanded_eval_weight(self) -> np.ndarray:
        """The cached real filter bank, rebuilt when ``g`` changed.

        Safe under concurrent eval forwards sharing this layer (a
        Predictor pool): the cache is read once into a local — so a
        concurrent ``train()``/``load_state_dict()`` clearing it between
        the check and the use can't null-deref — and the fill runs under
        a lock, so first-touch from many threads expands the bank once
        instead of racing partial writes.
        """
        stamp = weight_fingerprint(self.g.data)
        cached = self._weight_cache
        if cached is not None and cached[0] == stamp:
            return cached[1]
        with self._cache_lock:
            cached = self._weight_cache
            if cached is None or cached[0] != stamp:
                cached = (stamp, self.expanded_weight())
                self._weight_cache = cached
        return cached[1]

    def forward(self, x: Tensor) -> Tensor:
        # Eval mode: reuse the expanded real bank across forwards
        # instead of re-running ring_expand per call.
        weight = (
            Tensor(self._expanded_eval_weight())
            if not self.training and not is_grad_enabled()
            else ring_expand(self.g, self.ring.m_tensor)
        )
        return conv2d(x, weight, self.bias, stride=self.stride, padding=self.padding)

    def expanded_weight(self) -> np.ndarray:
        """The isomorphic real filter bank (inference-time view)."""
        return ring_expand(self.g.detach(), self.ring.m_tensor).data

    def macs_per_pixel(self, num_products: int | None = None) -> int:
        """Real multiplications per output pixel with an m-product algorithm."""
        n = self.ring.n
        m = num_products if num_products is not None else n
        tuples = (self.out_channels // n) * (self.in_channels // n)
        return tuples * m * self.kernel_size**2


class ReLU(Module):
    """Component-wise ReLU (the paper's f_cw when applied to tuples)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    """Elementwise ``max(x, slope * x)`` activation."""
    def __init__(self, slope: float = 0.1) -> None:
        super().__init__()
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.slope)


class DirectionalReLU2d(Module):
    """The paper's directional ReLU applied on channel n-tuples.

    For feature maps (N, C, H, W) with C = C_t * n, consecutive channel
    groups of size n form the tuples; the non-linearity rotates each tuple
    by V, applies ReLU, and rotates back by U (Fig. 4).
    """

    def __init__(self, nonlinearity: DirectionalReLU) -> None:
        super().__init__()
        self.nonlinearity = nonlinearity
        self.n = nonlinearity.n

    def forward(self, x: Tensor) -> Tensor:
        n = self.n
        batch, channels, height, width = x.shape
        if channels % n:
            raise ValueError(f"channels {channels} not divisible by tuple size {n}")
        tuples = channels // n
        y = x.reshape(batch, tuples, n, height, width)
        y = y.tuple_transform(self.nonlinearity.v_mat, axis=2)
        y = y.relu()
        y = y.tuple_transform(self.nonlinearity.u_mat, axis=2)
        return y.reshape(batch, channels, height, width)


def make_activation(nonlinearity: RingNonlinearity) -> Module:
    """Build the layer realizing a catalog non-linearity."""
    if isinstance(nonlinearity, DirectionalReLU):
        return DirectionalReLU2d(nonlinearity)
    return ReLU()


class Sequential(Module):
    """Chain of modules."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]


class Linear(Module):
    """Fully-connected layer."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed=None) -> None:
        super().__init__()
        self.weight = Parameter(kaiming_normal((out_features, in_features), seed=seed))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose(1, 0)
        if self.bias is not None:
            out = out + self.bias
        return out


class BatchNorm2d(Module):
    """Batch normalization (kept real-valued for recognition, Appendix C)."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.gamma = Parameter(np.ones(channels))
        self.beta = Parameter(np.zeros(channels))
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.momentum = momentum
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        channels = x.shape[1]
        if self.training:
            mean = x.data.mean(axis=(0, 2, 3))
            var = x.data.var(axis=(0, 2, 3))
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean, var = self.running_mean, self.running_var
        shape = (1, channels, 1, 1)
        scale = self.gamma.reshape(shape) * as_tensor(
            (1.0 / np.sqrt(var + self.eps)).reshape(shape)
        )
        shift = self.beta.reshape(shape) - scale * as_tensor(mean.reshape(shape))
        return x * scale + shift


class PixelShuffle(Module):
    """Rearrange ``(N, C*r^2, H, W)`` to ``(N, C, H*r, W*r)`` (depth-to-space)."""
    def __init__(self, factor: int) -> None:
        super().__init__()
        self.factor = factor

    def forward(self, x: Tensor) -> Tensor:
        return pixel_shuffle(x, self.factor)


class PixelUnshuffle(Module):
    """Rearrange ``(N, C, H*r, W*r)`` to ``(N, C*r^2, H, W)`` (space-to-depth)."""
    def __init__(self, factor: int) -> None:
        super().__init__()
        self.factor = factor

    def forward(self, x: Tensor) -> Tensor:
        return pixel_unshuffle(x, self.factor)


class AvgPool2d(Module):
    """Non-overlapping average pooling over ``kernel``-sized windows."""
    def __init__(self, kernel: int) -> None:
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel)


class GlobalAvgPool(Module):
    """Average each channel over all spatial positions to ``(N, C)``."""
    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))


class Flatten(Module):
    """Flatten all non-batch axes to ``(N, -1)``."""
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Identity(Module):
    """Pass the input through unchanged (placeholder in layer factories)."""
    def forward(self, x: Tensor) -> Tensor:
        return x
