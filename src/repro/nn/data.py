"""Batching utilities over in-memory arrays."""

from __future__ import annotations

import copy
from collections.abc import Iterator
from typing import Any

import numpy as np

__all__ = ["ArrayDataset", "DataLoader"]


class ArrayDataset:
    """Paired (input, target) arrays indexed along axis 0."""

    def __init__(self, inputs: np.ndarray, targets: np.ndarray) -> None:
        if len(inputs) != len(targets):
            raise ValueError("inputs and targets must have equal length")
        self.inputs = np.asarray(inputs)
        self.targets = np.asarray(targets)

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, idx) -> tuple[np.ndarray, np.ndarray]:
        return self.inputs[idx], self.targets[idx]


class DataLoader:
    """Mini-batch iterator with optional shuffling (seeded)."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def state_dict(self) -> dict[str, Any]:
        """Copy of the shuffle RNG state.

        The loader's generator advances one permutation per epoch, so
        resuming mid-training requires restoring it: a checkpoint saved
        after epoch N must replay exactly the batch orders epochs
        N+1, N+2, ... would have seen in an uninterrupted run (the
        bit-identical-resume guarantee of :mod:`repro.train`).
        """
        return {"bit_generator": copy.deepcopy(self._rng.bit_generator.state)}

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore the shuffle RNG captured by :meth:`state_dict`."""
        self._rng.bit_generator.state = copy.deepcopy(state["bit_generator"])

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        stop = (
            len(order) - len(order) % self.batch_size if self.drop_last else len(order)
        )
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset[idx]
