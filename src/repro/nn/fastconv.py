"""FRCONV — fast ring convolution through the three-step pipeline.

Implements the paper's eq. (12): transforms are applied once per weight,
input and output ring element; the convolution itself runs as m
component-wise (grouped) convolutions in the transformed domain.  All m
products execute as one :func:`~repro.nn.functional.conv2d_grouped` call
— a single im2col plus one batched GEMM — rather than a Python loop of
per-product convolutions.  That call dispatches through the active
:mod:`repro.nn.backend`, so the same FRCONV graph runs on the serial
numpy path, the thread-tiled path or the cache-blocked path unchanged
(the paper's point that eq. 12 maps onto different execution
substrates).

``FastRingConv2d`` is numerically identical to :class:`RingConv2d` with
the same ring weights (Section IV-C: "each RCONV layer can be efficiently
implemented by applying FRCONV to its fixed-point model") and is the
software model of the hardware engines in :mod:`repro.hardware.engine`.
In eval mode the layer caches the transformed filter bank ``g~ = Tg g``
(the paper's offline weight transform); the cache is dropped on
``train()`` and on any mutation of the ring weights.
"""

from __future__ import annotations

import threading

import numpy as np

from ..rings.catalog import RingSpec
from .functional import conv2d_grouped
from .init import ring_kaiming_normal
from .module import Module, weight_fingerprint
from .tensor import Parameter, Tensor, is_grad_enabled

__all__ = ["FastRingConv2d", "frconv2d"]


def frconv2d(
    x: Tensor,
    g: Tensor,
    spec: RingSpec,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
    g_transformed: Tensor | None = None,
) -> Tensor:
    """Fast ring convolution (paper eq. 12).

    Args:
        x: Features (N, Ci, H, W) with Ci a multiple of the ring's n.
        g: Ring weights (Co_t, Ci_t, n, kh, kw).
        spec: Catalog entry supplying the fast algorithm (Tg, Tx, Tz).
        g_transformed: Optional precomputed ``Tg g`` of shape
            (Co_t, Ci_t, m, kh, kw) — the eval-mode weight cache.  When
            given, the filter transform is skipped (and gradients do not
            flow to ``g``).

    Returns:
        (N, Co, Ho, Wo) — identical to the direct RCONV result.
    """
    algo = spec.fast
    n = spec.n
    batch, ci, height, width = x.shape
    g = g if isinstance(g, Tensor) else Tensor(g)
    cot, cit, _, kh, kw = g.shape
    if ci != cit * n:
        raise ValueError(f"input channels {ci} do not match weights ({cit} {n}-tuples)")

    # Filter transform, applied once per weight element (offline in HW);
    # kept inside the graph so FRCONV is trainable end to end.
    if g_transformed is None:
        g_transformed = g.tuple_transform(algo.tg, axis=2)  # (Co_t, Ci_t, m, kh, kw)
    w_g = g_transformed.transpose(2, 0, 1, 3, 4)  # (m, Co_t, Ci_t, kh, kw)

    # Data transform, once per input ring element.
    x_tuples = x.reshape(batch, cit, n, height, width)
    x_t = x_tuples.tuple_transform(algo.tx, axis=2)  # (N, Ci_t, m, H, W)
    x_g = x_t.transpose(0, 2, 1, 3, 4)  # (N, m, Ci_t, H, W)

    # Component-wise products: all m grouped convolutions in one fused
    # im2col + batched GEMM (no per-product Python loop).
    z_g = conv2d_grouped(x_g, w_g, stride=stride, padding=padding)
    z_t = z_g.transpose(0, 2, 1, 3, 4)  # (N, Co_t, m, Ho, Wo)

    # Reconstruction transform, once per output ring element.
    z = z_t.tuple_transform(algo.tz, axis=2)  # (N, Co_t, n, Ho, Wo)
    out = z.reshape(batch, cot * n, z.shape[3], z.shape[4])
    if bias is not None:
        out = out + bias.reshape(1, cot * n, 1, 1)
    return out


class FastRingConv2d(Module):
    """Drop-in FRCONV layer, parameter-compatible with RingConv2d.

    The parameter is the *untransformed* ring weight ``g`` (so trained
    RCONV weights load directly); all three transforms stay inside the
    autodiff graph, making FRCONV trainable end to end as well.  In eval
    mode (with gradients disabled) the transformed bank ``g~`` is cached
    across forwards instead of being recomputed per call.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        spec: RingSpec,
        stride: int = 1,
        padding: int | None = None,
        bias: bool = True,
        seed: int | None = None,
    ) -> None:
        super().__init__()
        n = spec.n
        if in_channels % n or out_channels % n:
            raise ValueError("channels must be multiples of the tuple size")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.spec = spec
        self.g = Parameter(
            ring_kaiming_normal(
                (out_channels // n, in_channels // n, n, kernel_size, kernel_size),
                fan_in=in_channels * kernel_size**2,
                seed=seed,
            )
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self._weight_cache: tuple[tuple, np.ndarray] | None = None
        self._cache_lock = threading.Lock()

    def _clear_weight_cache(self) -> None:
        with self._cache_lock:
            self._weight_cache = None

    def _transformed_eval_weight(self) -> np.ndarray:
        """The cached ``g~ = Tg g``, rebuilt when the weights changed.

        Snapshot-read plus locked fill, mirroring
        :meth:`RingConv2d._expanded_eval_weight`: concurrent eval
        forwards sharing this layer transform the bank once, and a
        concurrent cache clear can't tear the check-then-use.
        """
        stamp = weight_fingerprint(self.g.data)
        cached = self._weight_cache
        if cached is not None and cached[0] == stamp:
            return cached[1]
        with self._cache_lock:
            cached = self._weight_cache
            if cached is None or cached[0] != stamp:
                g_t = self.g.detach().tuple_transform(self.spec.fast.tg, axis=2)
                cached = (stamp, g_t.data)
                self._weight_cache = cached
        return cached[1]

    def forward(self, x: Tensor) -> Tensor:
        g_transformed = None
        if not self.training and not is_grad_enabled():
            g_transformed = Tensor(self._transformed_eval_weight())
        return frconv2d(
            x,
            self.g,
            self.spec,
            bias=self.bias,
            stride=self.stride,
            padding=self.padding,
            g_transformed=g_transformed,
        )

    def load_from_rconv(self, layer) -> None:
        """Copy ring weights from a trained RingConv2d."""
        if layer.g.shape != self.g.shape:
            raise ValueError("shape mismatch between RCONV and FRCONV weights")
        self.g.data[...] = layer.g.data
        if self.bias is not None and layer.bias is not None:
            self.bias.data[...] = layer.bias.data
        self._clear_weight_cache()
