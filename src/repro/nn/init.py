"""Weight initialization helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_normal", "ring_kaiming_normal"]


def kaiming_normal(shape: tuple[int, ...], seed: int | None = None) -> np.ndarray:
    """He-normal initialization: std = sqrt(2 / fan_in).

    For conv weights (Co, Ci, kh, kw), fan_in = Ci*kh*kw; for linear
    (out, in), fan_in = in.
    """
    rng = np.random.default_rng(seed)
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    return rng.standard_normal(shape) * np.sqrt(2.0 / fan_in)


def ring_kaiming_normal(
    shape: tuple[int, ...], fan_in: int, seed: int | None = None
) -> np.ndarray:
    """He-normal for ring weights g of shape (Co_t, Ci_t, n, kh, kw).

    The expanded real filter bank has ``fan_in`` input connections per
    output channel, and each expanded weight is (+-) one ring component,
    so the ring components themselves take std = sqrt(2 / fan_in).
    """
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape) * np.sqrt(2.0 / fan_in)
