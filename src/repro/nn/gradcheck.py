"""Numerical gradient checking for the autodiff engine."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .tensor import Tensor

__all__ = ["numeric_gradient", "check_gradients"]


def numeric_gradient(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for idx in range(flat.size):
        orig = flat[idx]
        flat[idx] = orig + eps
        up = fn(x)
        flat[idx] = orig - eps
        down = fn(x)
        flat[idx] = orig
        gflat[idx] = (up - down) / (2 * eps)
    return grad


def check_gradients(
    build: Callable[[Tensor], Tensor],
    x: np.ndarray,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    eps: float = 1e-5,
) -> tuple[np.ndarray, np.ndarray]:
    """Compare autodiff and numeric gradients of ``build``'s scalar output.

    Args:
        build: Maps an input Tensor to a scalar Tensor.
        x: Input array (perturbed in place during numeric differencing).

    Returns:
        (analytic, numeric) gradient arrays; raises AssertionError on
        mismatch beyond tolerances.
    """
    t = Tensor(x.copy(), requires_grad=True)
    out = build(t)
    out.backward()
    analytic = t.grad.copy()

    def scalar(arr: np.ndarray) -> float:
        return float(build(Tensor(arr)).data)

    numeric = numeric_gradient(scalar, x.copy(), eps=eps)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
    return analytic, numeric
