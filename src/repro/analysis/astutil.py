"""Shared AST helpers for reprolint rules."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["ImportMap", "attribute_chain", "collect_imports", "is_self_attr"]


def attribute_chain(node: ast.expr) -> list[str] | None:
    """``np.random.seed`` -> ["np", "random", "seed"]; None when the
    expression roots at anything but a plain name (e.g. a call result)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def is_self_attr(node: ast.expr) -> str | None:
    """The attribute name of a plain ``self.<name>`` expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass
class ImportMap:
    """Where each binding in a module points, for call-site resolution.

    ``modules`` maps a local alias to the dotted module it names
    (``np`` -> ``numpy``, ``sig`` -> ``scipy.signal``); ``names`` maps a
    local alias to a fully-qualified attribute imported with ``from``
    (``einsum`` -> ``numpy.einsum``).
    """

    modules: dict[str, str] = field(default_factory=dict)
    names: dict[str, str] = field(default_factory=dict)

    def qualify(self, chain: list[str]) -> str | None:
        """Resolve an attribute chain to its dotted origin, or None.

        ``["np", "random", "seed"]`` -> ``numpy.random.seed`` given
        ``import numpy as np``; ``["einsum"]`` -> ``numpy.einsum`` given
        ``from numpy import einsum``.
        """
        head, rest = chain[0], chain[1:]
        if head in self.modules:
            return ".".join([self.modules[head], *rest])
        if head in self.names:
            return ".".join([self.names[head], *rest])
        return None


def collect_imports(tree: ast.Module) -> ImportMap:
    """Alias map over every import statement in the module (any depth)."""
    imports = ImportMap()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports.modules[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports.names[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports
