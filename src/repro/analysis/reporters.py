"""Text and JSON renderers for reprolint reports."""

from __future__ import annotations

import json
from typing import Any

from .engine import Report

__all__ = ["render_json", "render_text", "report_jsonable"]

JSON_VERSION = 2


def render_text(report: Report) -> str:
    """Human-oriented listing: one line per finding plus a summary."""
    lines = [finding.render() for finding in report.findings]
    n = len(report.findings)
    warn = n - len(report.errors)
    summary = (
        f"reprolint: {n} finding{'s' if n != 1 else ''}"
        f"{f' ({warn} warn-level)' if warn else ''}, "
        f"{len(report.suppressed)} suppressed, {report.files} files scanned"
    )
    if report.findings:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def report_jsonable(report: Report) -> dict[str, Any]:
    """The machine-readable report shape (uploaded as a CI artifact)."""
    return {
        "version": JSON_VERSION,
        "tool": "reprolint",
        "files_scanned": report.files,
        "rules": report.rules,
        "counts": {
            "findings": len(report.findings),
            "errors": len(report.errors),
            "warnings": len(report.findings) - len(report.errors),
            "suppressed": len(report.suppressed),
        },
        "findings": [f.to_jsonable() for f in report.findings],
        "suppressed": [f.to_jsonable() for f in report.suppressed],
    }


def render_json(report: Report) -> str:
    """Serialize the report to the machine-readable JSON artifact."""
    return json.dumps(report_jsonable(report), indent=2, sort_keys=False)
