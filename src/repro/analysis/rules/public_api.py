"""public-api: ``__all__`` must be real, and public defs must be exported.

In an ``__all__``-bearing module the export list is the API contract:
an entry naming nothing is a typo that breaks ``from m import *`` and
documentation tooling, and a public (non-underscore) top-level def or
class missing from ``__all__`` is an API leak — callers import it, it
was never promised, and the next refactor silently breaks them.  PR 1
already shipped one such bug (``concat`` missing from the tensor
module's ``__all__``); this rule keeps the contract honest mechanically.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["PublicApiRule"]


def _dunder_all(tree: ast.Module) -> tuple[ast.stmt, list[str]] | None:
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            continue
        value = stmt.value if isinstance(stmt, ast.Assign) else stmt.value
        if isinstance(value, (ast.List, ast.Tuple)):
            names = [
                el.value
                for el in value.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            ]
            return stmt, names
    return None


def _top_level_bindings(body: list[ast.stmt], out: set[str]) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            out.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for el in ast.walk(target):
                    if isinstance(el, ast.Name):
                        out.add(el.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                out.add(stmt.target.id)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                out.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name != "*":
                    out.add(alias.asname or alias.name)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # Conditional imports (TYPE_CHECKING, optional deps) still
            # bind at module scope.
            _top_level_bindings(getattr(stmt, "body", []), out)
            _top_level_bindings(getattr(stmt, "orelse", []), out)
            for handler in getattr(stmt, "handlers", []):
                _top_level_bindings(handler.body, out)
            _top_level_bindings(getattr(stmt, "finalbody", []), out)


@register_rule
class PublicApiRule(Rule):
    """Flag ghost ``__all__`` entries and unexported public defs."""
    name = "public-api"
    description = (
        "in __all__-bearing modules, every __all__ entry must exist and every "
        "public top-level def/class must be exported or renamed _private"
    )

    def check(self, tree: ast.Module, path: str) -> list[Finding]:
        found = _dunder_all(tree)
        if found is None:
            return []
        all_stmt, exported = found
        bindings: set[str] = set()
        _top_level_bindings(tree.body, bindings)

        findings: list[Finding] = []
        # A module-level __getattr__ (PEP 562) can satisfy any export
        # lazily — repro/__init__.py resolves `serving` this way — so
        # the existence check is only decidable without one.
        lazy = "__getattr__" in bindings
        for name in exported:
            if name not in bindings and not lazy:
                findings.append(
                    self.finding(
                        path,
                        all_stmt,
                        f"__all__ exports {name!r} but the module defines no such "
                        "name (broken `import *` / docs contract)",
                    )
                )
        exported_set = set(exported)
        for stmt in tree.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
                and not stmt.name.startswith("_")
                and stmt.name not in exported_set
            ):
                findings.append(
                    self.finding(
                        path,
                        stmt,
                        f"public {'class' if isinstance(stmt, ast.ClassDef) else 'def'} "
                        f"{stmt.name!r} is not in __all__; export it or make it "
                        "_private",
                    )
                )
        return findings
