"""backend-dispatch: nn/serving code must route kernels through Backend.

The repo's cross-backend bit-parity guarantee (PR 3) holds only while
every hot array primitive under :mod:`repro.nn` and :mod:`repro.serving`
dispatches through the active :class:`repro.nn.backend.Backend` — a
direct ``np.matmul`` / ``np.dot`` / ``np.einsum`` / scipy kernel call
silently pins that operation to one substrate and is exactly the bug
class behind ThreadedBackend's 2-D matmul row-split parity break that
PR 4 had to fix at runtime.  :mod:`repro.nn.backend` itself is the
sanctioned home of raw kernel calls and is exempt.
"""

from __future__ import annotations

import ast

from ..astutil import attribute_chain, collect_imports
from ..findings import Finding
from ..registry import Rule, package_path, register_rule

__all__ = ["BackendDispatchRule", "NUMPY_KERNELS"]

#: numpy entry points that run a GEMM/contraction kernel directly.
NUMPY_KERNELS = frozenset({"matmul", "dot", "einsum", "inner", "tensordot", "vdot"})

#: Package subtrees whose kernel calls must go through the Backend.
_SCOPED = ("repro/nn/", "repro/serving/", "repro/tune/")

#: The one module allowed to touch kernels directly.
_EXEMPT = "repro/nn/backend.py"


@register_rule
class BackendDispatchRule(Rule):
    """Flag direct numpy/scipy kernel calls inside repro.nn / repro.serving / repro.tune."""
    name = "backend-dispatch"
    description = (
        "repro.nn / repro.serving / repro.tune code must not call numpy/scipy "
        "GEMM kernels (np.matmul, np.dot, np.einsum, scipy.*) directly; route "
        "through the Backend protocol so cross-backend bit-parity holds"
    )

    def applies_to(self, path: str) -> bool:
        pkg = package_path(path)
        return (
            pkg is not None
            and pkg != _EXEMPT
            and any(pkg.startswith(prefix) for prefix in _SCOPED)
        )

    def check(self, tree: ast.Module, path: str) -> list[Finding]:
        imports = collect_imports(tree)
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None:
                continue
            qualified = imports.qualify(chain)
            if qualified is None:
                continue
            parts = qualified.split(".")
            if parts[0] == "numpy" and len(parts) == 2 and parts[1] in NUMPY_KERNELS:
                findings.append(
                    self.finding(
                        path,
                        node,
                        f"direct kernel call numpy.{parts[1]} bypasses the Backend "
                        "protocol; use current_backend() so the op stays "
                        "backend-dispatched (bit-parity)",
                    )
                )
            elif parts[0] == "scipy":
                findings.append(
                    self.finding(
                        path,
                        node,
                        f"scipy kernel call {qualified} bypasses the Backend "
                        "protocol; route through current_backend()",
                    )
                )
        return findings
