"""state-dict-completeness: optimizer/scheduler buffers must checkpoint.

PR 5's resume guarantee — train N epochs, checkpoint, resume M more,
bit-identical to N+M straight — only holds if *every* mutable buffer an
optimizer or scheduler carries round-trips through ``state_dict()`` /
``load_state_dict()``.  The failure mode is quiet: a new optimizer (the
ROADMAP's K-FAC family) adds a curvature accumulator, forgets to
serialize it, and resumed runs diverge numerically with no error.

For each class whose base names an Optimizer/LRScheduler family, the
rule infers the mutable-buffer set:

* any plain ``self.<attr>`` assigned or augmented inside ``step()``;
* any ``self.<attr>`` assigned in ``__init__`` to a value derived from
  *no* constructor argument — zero literals, empty containers,
  comprehensions, ``np.zeros_like(...)`` and friends.  Values built
  from constructor arguments (``self.lr = float(lr)``) are
  configuration, which a fresh instance re-derives, not state.

Every inferred buffer must then be mentioned (as ``self.<attr>`` or as
a ``"<attr>"``/``"_<attr>"``-style string key) in both ``state_dict``
and ``load_state_dict`` — defined on the class itself, since a parent
cannot serialize buffers it does not know about.
"""

from __future__ import annotations

import ast

from ..astutil import attribute_chain, is_self_attr
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["StateDictCompletenessRule"]

_BASE_SUFFIXES = ("Optimizer", "LRScheduler", "Scheduler")
_BASE_NAMES = frozenset({"Optimizer", "SGD", "Adam", "LRScheduler", "StepLR", "CosineLR"})

#: constructors whose result is a fresh mutable buffer.
_BUFFER_FACTORIES = frozenset(
    {
        "zeros",
        "zeros_like",
        "empty",
        "empty_like",
        "ones",
        "ones_like",
        "full",
        "full_like",
        "array",
        "asarray",
        "copy",
        "deque",
        "defaultdict",
        "OrderedDict",
        "dict",
        "list",
    }
)


def _base_matches(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        chain = attribute_chain(base)
        if not chain:
            continue
        name = chain[-1]
        if name in _BASE_NAMES or name.endswith(_BASE_SUFFIXES):
            return True
    return False


def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _init_params(init: ast.FunctionDef) -> frozenset[str]:
    args = init.args
    names = [
        a.arg
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if a.arg != "self"
    ]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return frozenset(names)


def _references_any(node: ast.expr, names: frozenset[str]) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id in names for sub in ast.walk(node)
    )


def _is_buffer_value(value: ast.expr) -> bool:
    """True when ``value`` builds fresh mutable/counter state."""
    if isinstance(value, ast.Constant):
        # 0 / 0.0 counters are state; None, bools and strings are config.
        return isinstance(value.value, (int, float)) and not isinstance(value.value, bool)
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        chain = attribute_chain(value.func)
        return bool(chain) and chain[-1] in _BUFFER_FACTORIES
    return False


def _self_writes(fn: ast.FunctionDef) -> list[tuple[str, ast.expr | None, ast.stmt]]:
    out: list[tuple[str, ast.expr | None, ast.stmt]] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = is_self_attr(target)
                if attr:
                    out.append((attr, node.value, node))
        elif isinstance(node, ast.AugAssign):
            attr = is_self_attr(node.target)
            if attr:
                out.append((attr, node.value, node))
        elif isinstance(node, ast.AnnAssign):
            attr = is_self_attr(node.target)
            if attr:
                out.append((attr, node.value, node))
    return out


def _mentions(fn: ast.FunctionDef, attr: str) -> bool:
    """Does ``fn`` touch self.<attr> or name it as a string key?"""
    keys = {attr, attr.lstrip("_")}
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and is_self_attr(node) in keys:
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str) and node.value in keys:
            return True
    return False


@register_rule
class StateDictCompletenessRule(Rule):
    """Flag optimizer/scheduler buffers missing from state_dict round-trips."""
    name = "state-dict-completeness"
    description = (
        "every mutable buffer an Optimizer/LRScheduler subclass assigns in "
        "__init__/step must round-trip through its own state_dict() and "
        "load_state_dict() — resume bit-identity depends on it"
    )

    def check(self, tree: ast.Module, path: str) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and _base_matches(node):
                findings.extend(self._check_class(node, path))
        return findings

    def _check_class(self, cls: ast.ClassDef, path: str) -> list[Finding]:
        init = _method(cls, "__init__")
        step = _method(cls, "step")
        buffers: dict[str, ast.stmt] = {}
        if step is not None:
            for attr, _value, stmt in _self_writes(step):
                buffers.setdefault(attr, stmt)
        if init is not None:
            params = _init_params(init)
            param_derived = {
                attr
                for attr, value, _stmt in _self_writes(init)
                if value is not None and _references_any(value, params)
            }
            for attr, value, stmt in _self_writes(init):
                if (
                    attr not in param_derived
                    and value is not None
                    and _is_buffer_value(value)
                ):
                    buffers.setdefault(attr, stmt)
        if not buffers:
            return []

        findings: list[Finding] = []
        for method_name in ("state_dict", "load_state_dict"):
            fn = _method(cls, method_name)
            for attr, stmt in sorted(buffers.items()):
                if fn is None:
                    findings.append(
                        self.finding(
                            path,
                            stmt,
                            f"{cls.name} mutates buffer self.{attr} but defines no "
                            f"{method_name}(); the inherited one cannot serialize "
                            "it, breaking checkpoint/resume bit-identity",
                        )
                    )
                elif not _mentions(fn, attr):
                    findings.append(
                        self.finding(
                            path,
                            fn,
                            f"{cls.name}.{method_name} omits mutable buffer "
                            f"self.{attr}; resumed training would diverge from an "
                            "uninterrupted run",
                        )
                    )
        return findings
