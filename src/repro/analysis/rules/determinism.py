"""determinism: no global-RNG calls or unseeded generators in library code.

Every reproducibility guarantee in the repo — artifact fingerprints,
serial-vs-parallel experiment bit-identity (PR 2), train-N+resume-M
bit-identity (PR 5) — assumes randomness flows through explicitly seeded
``np.random.Generator`` objects passed as arguments.  A call into the
legacy global RNG (``np.random.seed`` / ``rand`` / ``shuffle`` / ...)
couples a library function to hidden process-wide state, and an
unseeded ``default_rng()`` draws OS entropy, so the same call can never
be replayed.

The one sanctioned exception: :mod:`repro.train.checkpoint` explicitly
captures and restores the *global* numpy RNG state with
``np.random.get_state`` / ``set_state``, because a checkpoint must be
able to freeze whatever legacy-seeded experiment code is running above
it.  Those two calls are exempt in that module only.
"""

from __future__ import annotations

import ast

from ..astutil import attribute_chain, collect_imports
from ..findings import Finding
from ..registry import Rule, package_path, register_rule

__all__ = ["DeterminismRule"]

#: np.random attributes that do NOT touch global state (constructors and
#: generator machinery); calling anything else on np.random is flagged.
_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: module allowed to snapshot/restore the global RNG, and with what.
_CHECKPOINT_MODULE = "repro/train/checkpoint.py"
_CHECKPOINT_ALLOWED = frozenset({"get_state", "set_state"})


@register_rule
class DeterminismRule(Rule):
    """Flag global-RNG use and unseeded generators in library code."""
    name = "determinism"
    description = (
        "library code must not call the global numpy RNG (np.random.seed/rand/"
        "shuffle/...) or construct an unseeded default_rng(); randomness flows "
        "in as a seeded Generator argument"
    )

    def applies_to(self, path: str) -> bool:
        # Library code only: tests and benchmarks drive the library and
        # may seed however they like.
        return package_path(path) is not None

    def check(self, tree: ast.Module, path: str) -> list[Finding]:
        imports = collect_imports(tree)
        pkg = package_path(path)
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None:
                continue
            qualified = imports.qualify(chain)
            if qualified is None or not qualified.startswith("numpy.random."):
                continue
            attr = qualified.split(".", 2)[2]
            if "." in attr:  # e.g. Generator method on an imported name
                continue
            if attr == "default_rng":
                if not node.args and not node.keywords:
                    findings.append(
                        self.finding(
                            path,
                            node,
                            "unseeded np.random.default_rng() draws OS entropy and "
                            "is unreplayable; pass an explicit seed or accept a "
                            "Generator argument",
                        )
                    )
                continue
            if attr in _ALLOWED:
                continue
            if pkg == _CHECKPOINT_MODULE and attr in _CHECKPOINT_ALLOWED:
                # Sanctioned: checkpoints snapshot/restore the global RNG
                # so legacy-seeded experiment state survives a resume.
                continue
            findings.append(
                self.finding(
                    path,
                    node,
                    f"np.random.{attr} mutates/reads hidden global RNG state; "
                    "thread a seeded np.random.Generator through instead",
                )
            )
        return findings
