"""public-docstring: exported defs and classes carry docstrings.

``__all__`` is the promise of what a module supports; a docstring is
the promise of *how*.  An exported function or class with no docstring
forces the next caller to reverse-engineer the contract from the body —
exactly the failure mode README's API sections exist to prevent.  The
rule is **warn-level**: findings are reported and counted but never
fail the scan, so docstring debt is visible without turning a missing
sentence into a red CI.

Scope mirrors :mod:`.public_api`: only ``__all__``-bearing modules are
checked, and only top-level ``def``/``class`` statements whose name
appears in ``__all__``.  Exported constants and re-exports are exempt —
assignments cannot carry a docstring, and a re-exported name is
documented at its definition site.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..registry import Rule, register_rule
from .public_api import _dunder_all

__all__ = ["PublicDocstringRule"]


@register_rule
class PublicDocstringRule(Rule):
    """Warn when a def/class exported via ``__all__`` lacks a docstring."""
    name = "public-docstring"
    description = (
        "every def/class exported via __all__ has a docstring "
        "(warn-level: reported, never fails the scan)"
    )
    severity = "warn"

    def check(self, tree: ast.Module, path: str) -> list[Finding]:
        found = _dunder_all(tree)
        if found is None:
            return []
        _, exported = found
        exported_set = set(exported)

        findings: list[Finding] = []
        for stmt in tree.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
                and stmt.name in exported_set
                and ast.get_docstring(stmt) is None
            ):
                kind = "class" if isinstance(stmt, ast.ClassDef) else "def"
                findings.append(
                    self.finding(
                        path,
                        stmt,
                        f"exported {kind} {stmt.name!r} has no docstring — "
                        "callers only have __all__'s word that it exists",
                    )
                )
        return findings
