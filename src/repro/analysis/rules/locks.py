"""lock-discipline: writes to lock-guarded fields must hold the lock.

PR 4 made the nn stack thread-safe by putting the eval weight caches and
server queues behind ``threading.Lock``s; the residual hazard is a
*partially* disciplined class — some writes to a shared field take the
lock, one forgotten site does not, and the race only shows up under
serving load.  This rule infers the guarded-field set per class (any
``self.<field>`` written somewhere inside a ``with self.<lock>`` block)
and flags writes to those fields made outside any lock block.

Conventions the rule understands:

* ``threading.Lock`` / ``RLock`` / ``Condition`` attributes are locks;
  a ``Condition(self._lock)`` is an alias of the lock it wraps, so
  ``with self._cond:`` counts as holding ``self._lock``.
* ``__init__`` (and ``__new__``/``__del__``) are exempt: construction
  and teardown happen before/after the object is shared.
* Methods whose name ends in ``_locked`` are exempt — the repo's naming
  convention for helpers documented as "caller holds the lock".
"""

from __future__ import annotations

import ast

from ..astutil import attribute_chain, is_self_attr
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["LockDisciplineRule"]

_LOCK_TYPES = frozenset({"Lock", "RLock", "Condition"})
_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__del__"})


def _lock_call_type(value: ast.expr) -> str | None:
    """'Lock'/'RLock'/'Condition' when ``value`` constructs one, else None."""
    if not isinstance(value, ast.Call):
        return None
    chain = attribute_chain(value.func)
    if chain and chain[-1] in _LOCK_TYPES:
        return chain[-1]
    return None


def _assigned_attrs(node: ast.stmt) -> list[tuple[str, ast.expr | None]]:
    """(attr, value) pairs for plain ``self.x = / += ...`` statements."""
    out: list[tuple[str, ast.expr | None]] = []
    if isinstance(node, ast.Assign):
        for target in node.targets:
            for el in ast.walk(target) if isinstance(target, (ast.Tuple, ast.List)) else [target]:
                attr = is_self_attr(el)
                if attr:
                    out.append((attr, node.value))
    elif isinstance(node, ast.AugAssign):
        attr = is_self_attr(node.target)
        if attr:
            out.append((attr, node.value))
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        attr = is_self_attr(node.target)
        if attr:
            out.append((attr, node.value))
    return out


class _MethodScan(ast.NodeVisitor):
    """Collect self-attribute writes in one method, split by lock context."""

    def __init__(self, lock_names: frozenset[str]) -> None:
        self.lock_names = lock_names
        self.depth = 0
        self.guarded: list[tuple[str, ast.stmt]] = []
        self.unguarded: list[tuple[str, ast.stmt]] = []

    def _record(self, node: ast.stmt) -> None:
        for attr, _ in _assigned_attrs(node):
            (self.guarded if self.depth else self.unguarded).append((attr, node))

    visit_Assign = visit_AugAssign = visit_AnnAssign = _record  # type: ignore[assignment]

    def visit_With(self, node: ast.With) -> None:
        holds = any(
            (attr := is_self_attr(item.context_expr)) and attr in self.lock_names
            for item in node.items
        )
        for item in node.items:
            self.visit(item.context_expr)
        if holds:
            self.depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if holds:
            self.depth -= 1


class _ClassScan:
    """Two-pass scan of one class: find locks, then police field writes."""

    def __init__(self, cls: ast.ClassDef) -> None:
        self.cls = cls
        self.methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        self.lock_names = self._find_locks()

    def _find_locks(self) -> frozenset[str]:
        locks: set[str] = set()
        for method in self.methods:
            for node in ast.walk(method):
                if isinstance(node, ast.stmt):
                    for attr, value in _assigned_attrs(node):
                        if value is not None and _lock_call_type(value):
                            locks.add(attr)
        return frozenset(locks)

    def scan(self) -> dict[str, list[tuple[str, ast.stmt]]]:
        """Per-method unguarded writes, plus the class guarded-field set."""
        self.guarded_fields: set[str] = set()
        per_method: dict[str, list[tuple[str, ast.stmt]]] = {}
        for method in self.methods:
            scan = _MethodScan(self.lock_names)
            for stmt in method.body:
                scan.visit(stmt)
            self.guarded_fields.update(attr for attr, _ in scan.guarded)
            per_method[method.name] = scan.unguarded
        self.guarded_fields -= self.lock_names
        return per_method


@register_rule
class LockDisciplineRule(Rule):
    """Flag writes to lock-guarded fields made outside ``with self._lock``."""
    name = "lock-discipline"
    description = (
        "in classes holding a Lock/RLock, any field written under `with "
        "self._lock` somewhere must be written under it everywhere (outside "
        "__init__); suffix a helper `_locked` when its caller holds the lock"
    )

    def check(self, tree: ast.Module, path: str) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            scan = _ClassScan(node)
            if not scan.lock_names:
                continue
            per_method = scan.scan()
            for method_name, writes in per_method.items():
                if method_name in _EXEMPT_METHODS or method_name.endswith("_locked"):
                    continue
                for attr, stmt in writes:
                    if attr in scan.guarded_fields:
                        findings.append(
                            self.finding(
                                path,
                                stmt,
                                f"{node.name}.{method_name} writes lock-guarded "
                                f"field self.{attr} outside `with self."
                                f"{'/'.join(sorted(scan.lock_names))}`",
                            )
                        )
        return findings
