"""Built-in reprolint rules; importing this package registers them all."""

from __future__ import annotations

from .determinism import DeterminismRule
from .dispatch import BackendDispatchRule
from .docstrings import PublicDocstringRule
from .locks import LockDisciplineRule
from .public_api import PublicApiRule
from .state_dict import StateDictCompletenessRule

__all__ = [
    "BackendDispatchRule",
    "DeterminismRule",
    "LockDisciplineRule",
    "PublicApiRule",
    "PublicDocstringRule",
    "StateDictCompletenessRule",
]
