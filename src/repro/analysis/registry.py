"""Rule protocol and registry for reprolint.

A rule is a named AST visitor over one module: it receives the parsed
tree plus the (posix, repo-relative) path and returns
:class:`~repro.analysis.findings.Finding` records.  Rules self-register
at import time via :func:`register_rule`, mirroring the experiment and
backend registries elsewhere in the repo, so adding a rule is one module
under :mod:`repro.analysis.rules` with a decorated class — the engine,
CLI and reporters pick it up automatically.
"""

from __future__ import annotations

import ast
import posixpath

from .findings import Finding

__all__ = [
    "Rule",
    "all_rules",
    "get_rule",
    "package_path",
    "register_rule",
    "resolve_rules",
]


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``name`` (the id used in ``--select`` / ``--ignore``
    and suppression comments) and ``description``, and implement
    :meth:`check`.  :meth:`applies_to` scopes a rule to part of the tree
    (e.g. backend dispatch only polices ``repro/nn`` and
    ``repro/serving``); the engine consults it before parsing so
    out-of-scope files cost nothing.  ``severity`` defaults to
    ``"error"`` (findings gate the scan); a ``"warn"`` rule's findings
    are reported but never flip the exit code.
    """

    name: str = ""
    description: str = ""
    severity: str = "error"

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, tree: ast.Module, path: str) -> list[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        """Build a Finding anchored at ``node``."""
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            message=message,
            end_line=getattr(node, "end_lineno", None) or getattr(node, "lineno", 1),
            severity=self.severity,
        )


_RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule under its name."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    _RULES[rule.name] = rule
    return cls


def all_rules() -> dict[str, Rule]:
    """All registered rules, keyed by name (import side effect included)."""
    from . import rules as _rules_pkg  # noqa: F401  (registers on import)

    return dict(sorted(_RULES.items()))


def get_rule(name: str) -> Rule:
    """Look up one registered rule by name; KeyError lists the known set."""
    rules = all_rules()
    try:
        return rules[name]
    except KeyError:
        known = ", ".join(rules)
        raise KeyError(f"unknown rule {name!r} (known: {known})") from None


def resolve_rules(
    select: list[str] | None = None, ignore: list[str] | None = None
) -> list[Rule]:
    """The active rule set after ``--select`` / ``--ignore`` filtering.

    Unknown names raise so a typo in CI config fails loudly instead of
    silently disabling a gate.
    """
    rules = all_rules()
    for name in (select or []) + (ignore or []):
        if name not in rules:
            known = ", ".join(rules)
            raise KeyError(f"unknown rule {name!r} (known: {known})")
    active = list(select) if select else list(rules)
    if ignore:
        active = [name for name in active if name not in ignore]
    return [rules[name] for name in active]


def package_path(path: str) -> str | None:
    """The ``repro/...``-relative form of ``path``, or None outside it.

    ``src/repro/nn/layers.py`` -> ``repro/nn/layers.py``; test modules,
    benchmarks and examples (which do not live under a ``repro``
    directory) map to None, which is how rules scoped to library code
    skip them.
    """
    parts = posixpath.normpath(path.replace("\\", "/")).split("/")
    if "repro" in parts:
        return "/".join(parts[parts.index("repro") :])
    return None
