"""Finding record emitted by reprolint rules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    ``line``/``col`` are 1-based/0-based respectively (ast conventions);
    ``end_line`` is the last physical line of the offending node, so the
    suppression scanner can honor a ``# reprolint: disable=...`` comment
    placed on any line of a multi-line statement.  ``severity`` is
    ``"error"`` (gates the scan) or ``"warn"`` (reported, counted, but
    never fails the run).
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    end_line: int = 0
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            object.__setattr__(self, "end_line", self.line)

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        tag = self.rule if self.severity == "error" else f"{self.rule} {self.severity}"
        return f"{self.path}:{self.line}:{self.col + 1}: [{tag}] {self.message}"
