"""The reprolint driver: file discovery, parsing, rule dispatch.

The entry points mirror how the tool is consumed:

* :func:`analyze_source` — one in-memory module under a caller-chosen
  path (rules scope by path, so tests hand fixture code a synthetic
  ``src/repro/...`` location to opt it into path-scoped rules);
* :func:`analyze_paths` — files and directory trees, as the CLI runs it.

Findings silenced by inline suppressions are kept separately in the
:class:`Report` so reporters can surface the suppression count — a
suppressed finding is an auditable decision, not a deleted one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding
from .registry import Rule, resolve_rules
from .suppressions import scan_suppressions

__all__ = ["Report", "analyze_paths", "analyze_source", "iter_python_files"]

#: Directory names never descended into during discovery.
SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache", "results"}


@dataclass
class Report:
    """Aggregate result of one analyzer run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0
    rules: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def clean(self) -> bool:
        """True when no *error*-severity findings are live.

        Warn-level findings (e.g. ``public-docstring``) are reported
        and counted but never gate the scan.
        """
        return not self.errors


def analyze_source(
    source: str,
    path: str,
    rules: list[Rule] | None = None,
    *,
    report: Report | None = None,
) -> list[Finding]:
    """Run rules over one module's source; returns live findings.

    Suppressed findings are dropped from the return value (and recorded
    on ``report`` when given).  A syntax error becomes a single
    ``syntax-error`` finding rather than an exception, so one broken
    file cannot hide the rest of a CI run.
    """
    if rules is None:
        rules = resolve_rules()
    path = str(path).replace("\\", "/")
    if report is not None:
        report.files += 1
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule="syntax-error",
            message=f"could not parse: {exc.msg}",
        )
        if report is not None:
            report.findings.append(finding)
        return [finding]

    raw: list[Finding] = []
    for rule in rules:
        if rule.applies_to(path):
            raw.extend(rule.check(tree, path))
    raw.sort()

    suppressions = scan_suppressions(source)
    live = [f for f in raw if not suppressions.covers(f)]
    if report is not None:
        report.findings.extend(live)
        report.suppressed.extend(f for f in raw if suppressions.covers(f))
    return live


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    out: dict[Path, None] = {}
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if not any(part in SKIP_DIRS or part.startswith(".") for part in f.parts):
                    out[f] = None
        elif p.suffix == ".py":
            out[p] = None
        elif not p.exists():
            raise FileNotFoundError(f"no such file or directory: {p}")
    return list(out)


def analyze_paths(
    paths: list[str | Path],
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> Report:
    """Analyze every ``.py`` file under ``paths`` with the active rules."""
    rules = resolve_rules(select, ignore)
    report = Report(rules=[r.name for r in rules])
    for file in iter_python_files(paths):
        analyze_source(
            file.read_text(encoding="utf-8"),
            file.as_posix(),
            rules,
            report=report,
        )
    report.findings.sort()
    report.suppressed.sort()
    return report
