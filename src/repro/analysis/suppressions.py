"""Inline suppression comments for reprolint.

Syntax, modeled on pylint's::

    self._cache = None  # reprolint: disable=lock-discipline
    x = np.einsum(...)  # reprolint: disable=backend-dispatch,determinism
    anything_goes()     # reprolint: disable=all

A directive silences the named rules for every finding whose source span
covers that physical line, so multi-line statements can carry the
comment on any of their lines.  Suppressions are counted and surfaced in
reports — they lower the exit code, not the visibility.
"""

from __future__ import annotations

import re

from .findings import Finding

__all__ = ["Suppressions", "scan_suppressions"]

_DIRECTIVE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s\-]+)")


class Suppressions:
    """Per-line map of suppressed rule names for one source file."""

    def __init__(self, by_line: dict[int, frozenset[str]]) -> None:
        self._by_line = by_line

    def __bool__(self) -> bool:
        return bool(self._by_line)

    def covers(self, finding: Finding) -> bool:
        """True when ``finding`` is silenced by a directive on any line
        of its source span."""
        for line in range(finding.line, finding.end_line + 1):
            rules = self._by_line.get(line)
            if rules and (finding.rule in rules or "all" in rules):
                return True
        return False


def scan_suppressions(source: str) -> Suppressions:
    """Collect ``# reprolint: disable=...`` directives per physical line."""
    by_line: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "reprolint" not in text:
            continue
        match = _DIRECTIVE.search(text)
        if match:
            names = frozenset(
                name.strip() for name in match.group(1).split(",") if name.strip()
            )
            if names:
                by_line[lineno] = names
    return Suppressions(by_line)
