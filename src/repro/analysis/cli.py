"""``python -m repro.analysis`` — run reprolint from the command line.

Exit codes: 0 clean, 1 findings, 2 usage errors (unknown rule, missing
path).  ``--format json`` emits the machine-readable report (the CI
artifact shape); ``--output`` tees it to a file while keeping the
summary on stderr so logs stay readable.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .engine import analyze_paths
from .registry import all_rules
from .reporters import render_json, render_text

__all__ = ["build_parser", "main"]

DEFAULT_PATHS = ["src", "benchmarks", "tests"]


def _rule_list(spec: str) -> list[str]:
    return [name.strip() for name in spec.split(",") if name.strip()]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro.analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: invariant-enforcing static analysis for this repo",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_PATHS,
        help=f"files or directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select",
        type=_rule_list,
        default=None,
        metavar="RULE[,RULE...]",
        help="run only these rules",
    )
    parser.add_argument(
        "--ignore",
        type=_rule_list,
        default=None,
        metavar="RULE[,RULE...]",
        help="skip these rules",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the report to FILE (summary still prints)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run the analyzer CLI; returns the process exit code (0/1/2)."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for name, rule in all_rules().items():
            print(f"{name}: {rule.description}")
        return 0

    try:
        report = analyze_paths(list(args.paths), select=args.select, ignore=args.ignore)
    except (KeyError, FileNotFoundError) as exc:
        print(f"reprolint: error: {exc.args[0]}", file=sys.stderr)
        return 2

    rendered = render_json(report) if args.format == "json" else render_text(report)
    print(rendered)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
        print(f"reprolint: report written to {args.output}", file=sys.stderr)
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
