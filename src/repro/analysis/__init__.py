"""reprolint — invariant-enforcing static analysis for this repo.

The repo's headline guarantees are invariants, not features: kernel
calls under :mod:`repro.nn`/:mod:`repro.serving` dispatch through the
:class:`~repro.nn.backend.Backend` protocol (cross-backend bit-parity),
library randomness flows through seeded generators (replayability),
lock-guarded state is written under its lock (serving thread-safety),
and optimizer/scheduler buffers round-trip through ``state_dict``
(resume bit-identity).  This package enforces them at lint time with an
AST rule framework: a registry of named rules
(:mod:`repro.analysis.rules`), inline ``# reprolint: disable=<rule>``
suppressions, text/JSON reporters, and a CLI::

    python -m repro.analysis src benchmarks tests
    python -m repro.analysis --select determinism,lock-discipline src
    python -m repro.analysis --format json --output reprolint.json

The process exits nonzero on findings, so CI can gate on it.
"""

from __future__ import annotations

from .engine import Report, analyze_paths, analyze_source, iter_python_files
from .findings import Finding
from .registry import Rule, all_rules, get_rule, package_path, register_rule, resolve_rules
from .reporters import render_json, render_text, report_jsonable
from .suppressions import Suppressions, scan_suppressions

__all__ = [
    "Finding",
    "Report",
    "Rule",
    "Suppressions",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "iter_python_files",
    "package_path",
    "register_rule",
    "render_json",
    "render_text",
    "report_jsonable",
    "resolve_rules",
    "scan_suppressions",
]
