"""In-process concurrent inference service with dynamic micro-batching.

:class:`InferenceServer` sits between many client threads and a pool of
:class:`~repro.nn.inference.Predictor` workers.  Clients submit single
images and get a future back; a bounded queue applies backpressure
(block, or reject when configured); workers coalesce queued requests
into dense micro-batches — flushing when ``max_batch`` requests of one
shape are ready or when the oldest has waited ``max_wait_ms`` — and run
them through a per-worker Predictor sharing one model.

Heterogeneous request sizes are handled by *shape bucketing*: a worker
batches only requests whose (C, H, W) match, so every micro-batch stays
one dense array; mixed-shape traffic simply forms per-shape batches.

Because batching work along the batch axis runs the very same per-slice
GEMMs (see :mod:`repro.nn.inference`), a served result is bit-identical
to calling the Predictor serially on that request alone — micro-batching
changes throughput, never bits.  The tests pin this under 100+
concurrent clients.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np

from ..nn.backend import Backend
from ..nn.inference import Predictor, TilingPlan
from ..nn.module import Module

__all__ = [
    "InferenceServer",
    "ServerClosed",
    "ServerOverloaded",
    "ServerStats",
]


class ServerClosed(RuntimeError):
    """Raised by submissions to (and pending work cancelled by) a closed server."""


class ServerOverloaded(RuntimeError):
    """Raised when the bounded queue is full and the server rejects."""


class _Request:
    __slots__ = ("image", "shape", "future", "enqueued_at")

    def __init__(self, image: np.ndarray) -> None:
        self.image = image
        self.shape = image.shape
        self.future: Future = Future()
        self.enqueued_at = time.perf_counter()


@dataclasses.dataclass(frozen=True)
class ServerStats:
    """Aggregate snapshot of a server's request/batch accounting.

    The latency schema (p50/p95/p99 + ``slo_attainment`` against
    ``slo_ms``) is shared with the process-sharded server's
    :class:`~repro.serving.cluster.ClusterStats`, so thread- and
    process-based serving report comparably.
    """

    requests: int
    batches: int
    rejected: int
    failed: int
    mean_batch_size: float
    max_batch_size: int
    latency_ms_mean: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    latency_ms_max: float
    slo_ms: float
    slo_attainment: float
    batch_ms_mean: float
    wall_s: float
    throughput_rps: float

    def format(self) -> str:
        return (
            f"{self.requests} requests in {self.batches} batches "
            f"(mean {self.mean_batch_size:.2f}, max {self.max_batch_size}); "
            f"{self.throughput_rps:.1f} req/s; latency ms "
            f"mean {self.latency_ms_mean:.2f} p50 {self.latency_ms_p50:.2f} "
            f"p95 {self.latency_ms_p95:.2f} p99 {self.latency_ms_p99:.2f} "
            f"max {self.latency_ms_max:.2f}; "
            f"SLO {self.slo_ms:.0f}ms attainment {self.slo_attainment:.3f}"
        )


class _StatsAccumulator:
    """Thread-safe request/batch counters behind :meth:`InferenceServer.stats`.

    Batch accounting is kept as running aggregates (count/sum/max), so a
    long-lived server's memory stays flat; only the latency buffer —
    needed for percentiles — holds samples: a sliding window of the most
    recent MAX_SAMPLES, so percentiles keep tracking current behavior
    instead of freezing on the first samples ever taken.
    """

    MAX_SAMPLES = 100_000

    def __init__(self, slo_ms: float = 100.0) -> None:
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self.slo_ms = slo_ms
        self._latencies: deque[float] = deque(maxlen=self.MAX_SAMPLES)
        self._batches = 0
        self._batch_size_max = 0
        self._batch_seconds_sum = 0.0
        self.requests = 0
        self.rejected = 0
        self.failed = 0

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_batch(
        self, size: int, seconds: float, latencies: list[float], failed: bool
    ) -> None:
        with self._lock:
            self.requests += size
            if failed:
                self.failed += size
            self._batches += 1
            self._batch_size_max = max(self._batch_size_max, size)
            self._batch_seconds_sum += seconds
            self._latencies.extend(latencies)  # maxlen evicts the oldest

    def snapshot(self) -> ServerStats:
        with self._lock:
            lat_ms = np.sort(np.asarray(self._latencies)) * 1e3
            batches = self._batches
            batch_size_max = self._batch_size_max
            batch_seconds_sum = self._batch_seconds_sum
            requests, rejected, failed = self.requests, self.rejected, self.failed
            wall = time.perf_counter() - self._started
        have_lat = len(lat_ms) > 0
        return ServerStats(
            requests=requests,
            batches=batches,
            rejected=rejected,
            failed=failed,
            mean_batch_size=requests / batches if batches else float("nan"),
            max_batch_size=batch_size_max,
            latency_ms_mean=float(lat_ms.mean()) if have_lat else float("nan"),
            latency_ms_p50=float(np.percentile(lat_ms, 50)) if have_lat else float("nan"),
            latency_ms_p95=float(np.percentile(lat_ms, 95)) if have_lat else float("nan"),
            latency_ms_p99=float(np.percentile(lat_ms, 99)) if have_lat else float("nan"),
            latency_ms_max=float(lat_ms[-1]) if have_lat else float("nan"),
            slo_ms=self.slo_ms,
            slo_attainment=float((lat_ms <= self.slo_ms).mean()) if have_lat else float("nan"),
            batch_ms_mean=batch_seconds_sum / batches * 1e3 if batches else float("nan"),
            wall_s=wall,
            throughput_rps=requests / wall if wall > 0 else float("nan"),
        )


class InferenceServer:
    """Concurrent single-image inference with dynamic micro-batching.

    Args:
        model: Trained model; switched to eval mode once, up front, so
            worker threads share read-only weights (and lock-protected
            eval weight caches).
        workers: Worker threads, each with its own cheap Predictor clone.
        max_batch: Micro-batch flush threshold (and the per-worker
            Predictor's forward batch size).
        max_wait_ms: How long a worker holds an under-full batch open for
            same-shape stragglers before flushing.  0 flushes immediately
            (pure per-request dispatch).
        queue_depth: Bound on queued (not yet batched) requests — the
            backpressure knob.
        reject_when_full: When True, a submit against a full queue raises
            :class:`ServerOverloaded` instead of blocking.
        backend: Kernel backend (instance or spec string) pinned to every
            worker's forwards, via the Predictor.
        plan / tile / batch_size: Forwarded to the prototype
            :class:`~repro.nn.inference.Predictor`.
        slo_ms: Latency objective used for the ``slo_attainment``
            statistic (reporting only; never changes scheduling).
        compiled: Serve through :meth:`Predictor.compile` — workers share
            one execution-plan cache (plans build once per request shape
            under the compile lock, then replay lock-free).  Replay is
            bit-identical to eager, so this changes latency, never bytes.
        tuned: Consult the :mod:`repro.tune` cache per shape bucket —
            worker Predictors serve through the cached winning schedule,
            and the micro-batch *flush threshold* follows the winner's
            tuned batch size per shape (so batches flush exactly at the
            size the tuned forward wants).  Cache misses fall back to
            ``max_batch`` and the untuned configuration; served bytes
            are identical either way.  When omitted, follows the
            ``REPRO_TUNED`` environment flag.

    The server starts serving on construction and is a context manager;
    leaving the ``with`` block drains the queue and joins the workers.
    """

    def __init__(
        self,
        model: Module,
        *,
        workers: int = 2,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
        queue_depth: int = 64,
        reject_when_full: bool = False,
        backend: Backend | str | None = None,
        plan: TilingPlan | None = None,
        tile: int | None = None,
        compiled: bool = False,
        slo_ms: float = 100.0,
        tuned: bool | None = None,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        model.eval()  # once, before any worker runs: no eval/forward race
        if tuned is None:
            from ..tune.cache import tuned_enabled

            tuned = tuned_enabled()
        prototype = Predictor(
            model, batch_size=max_batch, plan=plan, tile=tile, backend=backend, tuned=tuned
        )
        if compiled:
            # Clones of a CompiledPredictor share its plan cache, so the
            # trace cost is paid once per shape across all workers.
            prototype = prototype.compile()
        self.compiled = compiled
        self.tuned = tuned
        self._model = model
        # Per-shape tuned flush thresholds (resolved lazily, under the
        # server lock, once per shape).  Keyed like the Predictor's
        # delegate cache: the shape bucket plus the configured max_batch.
        self._flush_thresholds: dict[tuple[int, ...], int] = {}
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1e3
        self.queue_depth = queue_depth
        self.reject_when_full = reject_when_full
        self._stats = _StatsAccumulator(slo_ms=slo_ms)
        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._has_space = threading.Condition(self._lock)
        self._pending: deque[_Request] = deque()
        self._closing = False
        self._drain = True
        self._waiting_idle = 0  # workers blocked waiting for any request
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(prototype.clone() if i else prototype,),
                name=f"repro-serving-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(cls, path, **kwargs) -> "InferenceServer":
        """Serve a trained checkpoint directly (see
        :meth:`Predictor.from_checkpoint` for the spec requirements);
        ``kwargs`` are the regular constructor options."""
        from ..train.checkpoint import Checkpoint

        return cls(Checkpoint.load(path).build_model(), **kwargs)

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def submit(self, image: np.ndarray, timeout: float | None = None) -> Future:
        """Enqueue one (C, H, W) image; returns a future for its output.

        Blocks while the queue is full (backpressure) unless the server
        was built with ``reject_when_full`` — then it raises
        :class:`ServerOverloaded` immediately; a blocking submit raises
        it only if ``timeout`` elapses without space.
        """
        image = np.asarray(getattr(image, "data", image), dtype=np.float64)
        if image.ndim != 3:
            raise ValueError(f"expected one (C, H, W) image, got shape {image.shape}")
        request = _Request(image)
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._lock:
            while len(self._pending) >= self.queue_depth:
                if self._closing:
                    raise ServerClosed("server is shutting down")
                if self.reject_when_full:
                    self._stats.record_rejected()
                    raise ServerOverloaded(
                        f"queue full ({self.queue_depth} pending requests)"
                    )
                remaining = None if deadline is None else deadline - time.perf_counter()
                if remaining is not None and remaining <= 0:
                    self._stats.record_rejected()
                    raise ServerOverloaded(
                        f"no queue space within {timeout:.3f}s "
                        f"({self.queue_depth} pending requests)"
                    )
                self._has_space.wait(remaining)
            if self._closing:
                raise ServerClosed("server is shutting down")
            request.enqueued_at = time.perf_counter()
            self._pending.append(request)
            # notify_all, not notify: a worker holding an under-full
            # batch open for stragglers also waits on this condition, and
            # a single notify could land on it for a request of another
            # shape — leaving an idle worker asleep until some deadline.
            self._has_work.notify_all()
        return request.future

    def predict(self, image: np.ndarray, timeout: float | None = None) -> np.ndarray:
        """Blocking convenience: submit one image and wait for its output.

        ``timeout`` bounds the whole call — queueing (backpressure wait)
        *and* serving — not just the result wait.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        future = self.submit(image, timeout=timeout)
        remaining = None if deadline is None else max(0.0, deadline - time.perf_counter())
        try:
            return future.result(remaining)
        except FutureTimeoutError:
            # Shed the abandoned work if it is still queued (the caller
            # drops its only reference on timeout; without this, retry
            # loops under overload would pile up zombie requests that
            # workers still compute).
            future.cancel()
            raise

    def pending(self) -> int:
        """Requests queued but not yet claimed by a worker."""
        with self._lock:
            return len(self._pending)

    def stats(self) -> ServerStats:
        """Aggregate latency/throughput snapshot since construction."""
        return self._stats.snapshot()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work and join the workers.

        Args:
            drain: Serve the queued requests first (default); when False,
                fail them with :class:`ServerClosed` instead.
            timeout: Per-worker join timeout.
        """
        with self._lock:
            self._closing = True
            self._drain = drain
            if not drain:
                while self._pending:
                    request = self._pending.popleft()
                    # False when the client already cancelled the future;
                    # setting an exception on it would raise.
                    if request.future.set_running_or_notify_cancel():
                        request.future.set_exception(ServerClosed("server closed"))
            self._has_work.notify_all()
            self._has_space.notify_all()
        for thread in self._workers:
            thread.join(timeout)

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close(drain=True)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _flush_threshold(self, shape: tuple[int, ...]) -> int:
        """The micro-batch flush size for one shape bucket.

        ``max_batch`` untuned; with ``tuned=True`` the cached winner's
        batch size for this shape (clamped to ``max_batch`` — the queue
        contract is that no batch ever exceeds it).  Resolved once per
        shape; called with the server lock held, so the one-time cache
        read happens at most once per shape per server.
        """
        if not self.tuned:
            return self.max_batch
        threshold = self._flush_thresholds.get(shape)
        if threshold is None:
            from ..tune import lookup

            entry = lookup(self._model, shape, self.max_batch)
            threshold = (
                min(entry.winner.batch_size, self.max_batch)
                if entry is not None
                else self.max_batch
            )
            self._flush_thresholds[shape] = threshold
        return threshold

    def _take_batch(self) -> list[_Request] | None:
        """Claim the next shape-bucketed micro-batch (None: shut down).

        Called without the lock held.  Takes the oldest request, gathers
        queued requests of the same shape, and — if still under-full —
        waits out the oldest request's ``max_wait_ms`` budget for
        same-shape stragglers.  Other shapes stay queued for idle
        workers; when no worker is idle, the under-full batch flushes
        immediately instead, so one straggling bucket never blocks
        other-shape traffic for the wait budget.
        """
        with self._lock:
            while not self._pending:
                if self._closing:
                    return None
                self._waiting_idle += 1
                try:
                    self._has_work.wait()
                finally:
                    self._waiting_idle -= 1
            batch = [self._pending.popleft()]
            shape = batch[0].shape
            flush_at = self._flush_threshold(shape)
            deadline = batch[0].enqueued_at + self.max_wait_s
            while True:
                index = 0
                while len(batch) < flush_at and index < len(self._pending):
                    if self._pending[index].shape == shape:
                        batch.append(self._pending[index])
                        del self._pending[index]
                    else:
                        index += 1
                self._has_space.notify_all()
                if len(batch) >= flush_at or self._closing:
                    break
                if self._pending and self._waiting_idle == 0:
                    # Whatever is still queued is another shape (all
                    # same-shape requests were just scooped) and every
                    # other worker is busy — holding this batch open for
                    # stragglers would leave those requests unservable
                    # for up to max_wait_ms.  Flush under-full instead.
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                # Wakes on new arrivals; re-scan for same-shape requests.
                self._has_work.wait(remaining)
            return batch

    def _worker_loop(self, predictor: Predictor) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            # Transition every claimed future to RUNNING; a client may
            # have cancelled while its request was queued, in which case
            # this returns False and the request is dropped here — a
            # later set_result on it would raise InvalidStateError and
            # kill the worker, hanging the rest of the batch.
            batch = [
                request
                for request in batch
                if request.future.set_running_or_notify_cancel()
            ]
            if not batch:
                continue
            started = time.perf_counter()
            error: BaseException | None = None
            try:
                outputs = predictor.predict(
                    np.stack([request.image for request in batch])
                )
            except BaseException as exc:  # propagate to the waiting clients
                error = exc
            finished = time.perf_counter()
            for position, request in enumerate(batch):
                if error is not None:
                    request.future.set_exception(error)
                else:
                    # Copy: outputs[position] is a view into the stacked
                    # batch result, and handing it out would let one
                    # retained response pin all its batchmates' memory.
                    request.future.set_result(outputs[position].copy())
            self._stats.record_batch(
                size=len(batch),
                seconds=finished - started,
                latencies=[finished - request.enqueued_at for request in batch],
                failed=error is not None,
            )
