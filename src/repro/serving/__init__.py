"""Concurrent inference serving (the ROADMAP's "heavy traffic" layer).

:class:`InferenceServer` coalesces single-image requests from many
client threads into dynamic, shape-bucketed micro-batches over a pool of
:class:`~repro.nn.inference.Predictor` workers — with bounded-queue
backpressure, graceful shutdown and latency/throughput stats — while
keeping every served output bit-identical to a serial Predictor call.
:mod:`~repro.serving.loadgen` drives it with deterministic closed-loop
load; :mod:`~repro.serving.bench` is the harness behind
``python -m repro serve-bench``.
"""

from .bench import ServeBenchConfig, ServeBenchReport, make_bench_model, run_serve_bench
from .loadgen import (
    LoadResult,
    Workload,
    make_workload,
    run_closed_loop,
    serial_reference,
)
from .server import InferenceServer, ServerClosed, ServerOverloaded, ServerStats

__all__ = [
    "InferenceServer",
    "ServerClosed",
    "ServerOverloaded",
    "ServerStats",
    "LoadResult",
    "Workload",
    "make_workload",
    "run_closed_loop",
    "serial_reference",
    "ServeBenchConfig",
    "ServeBenchReport",
    "make_bench_model",
    "run_serve_bench",
]
