"""Concurrent inference serving (the ROADMAP's "heavy traffic" layer).

Two servers, one bit-identity contract:

* :class:`InferenceServer` — in-process thread pool that coalesces
  single-image requests into dynamic, shape-bucketed micro-batches over
  :class:`~repro.nn.inference.Predictor` workers, with bounded-queue
  backpressure, graceful shutdown and latency/throughput stats.
* :class:`ShardedInferenceServer` — a spawn-backed worker *process*
  pool (one Predictor replica per process, shared-memory tensor
  transport via :mod:`~repro.serving.shm`, shape-affine routing,
  admission control and crash recovery) for workloads where the GIL is
  the bottleneck.

Every served output — threaded, sharded, compiled or degraded-tile for
in-tile requests — is bit-identical to a serial Predictor call on the
same bytes.  :mod:`~repro.serving.loadgen` drives either server with
deterministic closed-loop or open-loop Poisson load;
:mod:`~repro.serving.bench` is the harness behind
``python -m repro serve-bench``.
"""

from .bench import (
    ServeBenchConfig,
    ServeBenchReport,
    ShardedBenchConfig,
    ShardedBenchReport,
    make_bench_model,
    run_serve_bench,
    run_sharded_bench,
)
from .cluster import OVERLOAD_POLICIES, ClusterStats, ShardedInferenceServer, WorkerCrashed
from .loadgen import (
    ArrivalTrace,
    LoadResult,
    OpenLoopResult,
    Workload,
    make_poisson_trace,
    make_workload,
    run_closed_loop,
    run_open_loop,
    serial_reference,
)
from .server import InferenceServer, ServerClosed, ServerOverloaded, ServerStats
from .shm import RingClient, ShmRing, active_segments

__all__ = [
    "InferenceServer",
    "ServerClosed",
    "ServerOverloaded",
    "ServerStats",
    "ShardedInferenceServer",
    "ClusterStats",
    "WorkerCrashed",
    "OVERLOAD_POLICIES",
    "ShmRing",
    "RingClient",
    "active_segments",
    "LoadResult",
    "Workload",
    "ArrivalTrace",
    "OpenLoopResult",
    "make_workload",
    "make_poisson_trace",
    "run_closed_loop",
    "run_open_loop",
    "serial_reference",
    "ServeBenchConfig",
    "ServeBenchReport",
    "ShardedBenchConfig",
    "ShardedBenchReport",
    "make_bench_model",
    "run_serve_bench",
    "run_sharded_bench",
]
