"""Deterministic closed- and open-loop load generation against a server.

A *closed loop* keeps a fixed number of concurrent clients, each with at
most one request in flight: a client submits, waits for its result, then
submits its next image.  Offered load therefore adapts to service rate —
the standard way to measure "throughput at N concurrent users" without
open-loop queue blowup.

An *open loop* instead replays a pre-drawn Poisson arrival trace
(:func:`make_poisson_trace` + :func:`run_open_loop`): requests arrive at
their scheduled times whether or not earlier ones finished, so offered
load does **not** adapt — this is the regime that exposes overload
behavior (rejections, degraded service, tail latency), and latency is
measured from the scheduled arrival, so queueing delay counts against
the SLO.

Everything is seeded: a workload or trace is a pure function of its
``(seed, ...)`` arguments, so two runs — or a served run and a serial
reference — see byte-identical inputs, which is what lets the benches
assert byte-identical outputs.  Both loops work against anything with
the ``submit``/``predict`` future protocol — the in-process
:class:`~repro.serving.server.InferenceServer` and the process-sharded
:class:`~repro.serving.cluster.ShardedInferenceServer` alike.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import numpy as np

from ..nn.inference import Predictor
from .server import InferenceServer, ServerOverloaded

__all__ = [
    "Workload",
    "LoadResult",
    "ArrivalTrace",
    "OpenLoopResult",
    "make_workload",
    "make_poisson_trace",
    "run_closed_loop",
    "run_open_loop",
    "serial_reference",
]


@dataclasses.dataclass(frozen=True)
class Workload:
    """Per-client image sequences; ``images[c][k]`` is client c's k-th request."""

    images: tuple[tuple[np.ndarray, ...], ...]

    @property
    def clients(self) -> int:
        return len(self.images)

    @property
    def total_requests(self) -> int:
        return sum(len(sequence) for sequence in self.images)


def make_workload(
    clients: int,
    requests_per_client: int,
    shapes: tuple[int, int, int] | list[tuple[int, int, int]],
    seed: int = 0,
) -> Workload:
    """Seeded workload; with several shapes, clients cycle through them
    (client c uses shape ``shapes[c % len(shapes)]``) so shape buckets
    interleave in the queue."""
    if isinstance(shapes, tuple) and len(shapes) == 3 and isinstance(shapes[0], int):
        shapes = [shapes]
    rng = np.random.default_rng(seed)
    images = tuple(
        tuple(
            rng.standard_normal(shapes[client % len(shapes)])
            for _ in range(requests_per_client)
        )
        for client in range(clients)
    )
    return Workload(images=images)


@dataclasses.dataclass(frozen=True)
class LoadResult:
    """Outcome of one closed-loop run.

    Carries the same latency schema (p50/p95/p99 + SLO attainment) as
    :class:`~repro.serving.server.ServerStats` and the cluster's
    :class:`~repro.serving.cluster.ClusterStats`, so thread- and
    process-served runs report comparably.
    """

    outputs: tuple[tuple[np.ndarray, ...], ...]  # outputs[c][k]
    duration_s: float
    requests: int
    throughput_rps: float
    latency_ms_mean: float
    latency_ms_p95: float
    latency_ms_p50: float = float("nan")
    latency_ms_p99: float = float("nan")
    slo_ms: float = 100.0
    slo_attainment: float = float("nan")

    def bit_identical_to(self, reference: "LoadResult | tuple") -> bool:
        """True when every output array matches ``reference`` bit for bit."""
        other = reference.outputs if isinstance(reference, LoadResult) else reference
        if len(self.outputs) != len(other):
            return False
        return all(
            len(my_seq) == len(their_seq)
            and all(
                np.array_equal(mine, theirs)
                for mine, theirs in zip(my_seq, their_seq, strict=True)
            )
            for my_seq, their_seq in zip(self.outputs, other, strict=True)
        )


def _collect(
    latencies: list[float],
    duration: float,
    outputs,
    requests: int,
    slo_ms: float = 100.0,
) -> LoadResult:
    lat_ms = np.sort(np.asarray(latencies)) * 1e3
    have = len(lat_ms) > 0
    return LoadResult(
        outputs=outputs,
        duration_s=duration,
        requests=requests,
        throughput_rps=requests / duration if duration > 0 else float("nan"),
        latency_ms_mean=float(lat_ms.mean()) if have else float("nan"),
        latency_ms_p95=float(np.percentile(lat_ms, 95)) if have else float("nan"),
        latency_ms_p50=float(np.percentile(lat_ms, 50)) if have else float("nan"),
        latency_ms_p99=float(np.percentile(lat_ms, 99)) if have else float("nan"),
        slo_ms=slo_ms,
        slo_attainment=float((lat_ms <= slo_ms).mean()) if have else float("nan"),
    )


def run_closed_loop(server: InferenceServer, workload: Workload) -> LoadResult:
    """Drive ``server`` with one thread per client, closed-loop."""
    clients = workload.clients
    outputs: list[list[np.ndarray | None]] = [
        [None] * len(sequence) for sequence in workload.images
    ]
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[BaseException | None] = [None] * clients
    barrier = threading.Barrier(clients + 1)

    def client_loop(client: int) -> None:
        try:
            barrier.wait()
            for k, image in enumerate(workload.images[client]):
                started = time.perf_counter()
                outputs[client][k] = server.predict(image)
                latencies[client].append(time.perf_counter() - started)
        except BaseException as exc:  # surfaced to the caller below
            errors[client] = exc

    threads = [
        threading.Thread(target=client_loop, args=(c,), name=f"loadgen-{c}")
        for c in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started
    for error in errors:
        if error is not None:
            raise error
    return _collect(
        [latency for per_client in latencies for latency in per_client],
        duration,
        tuple(tuple(per_client) for per_client in outputs),  # type: ignore[arg-type]
        workload.total_requests,
    )


def serial_reference(predictor: Predictor, workload: Workload) -> LoadResult:
    """The bit-identity baseline: every request alone, one after another.

    Same per-request work a server performs, minus concurrency and
    micro-batching — both the correctness reference (served outputs must
    match these arrays exactly) and the throughput baseline the serving
    speedup is measured against.
    """
    latencies: list[float] = []
    outputs = []
    started = time.perf_counter()
    for sequence in workload.images:
        per_client = []
        for image in sequence:
            t0 = time.perf_counter()
            per_client.append(predictor.predict(image[None])[0])
            latencies.append(time.perf_counter() - t0)
        outputs.append(tuple(per_client))
    duration = time.perf_counter() - started
    return _collect(latencies, duration, tuple(outputs), workload.total_requests)


# ----------------------------------------------------------------------
# open loop
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ArrivalTrace:
    """A pre-drawn open-loop request schedule.

    ``arrivals_s[i]`` is when ``images[i]`` is offered, in seconds from
    trace start; the trace is fully materialized before any request is
    sent, so replaying it is deterministic and two servers can be
    compared on byte-identical offered load.
    """

    images: tuple[np.ndarray, ...]
    arrivals_s: tuple[float, ...]
    rate_rps: float

    @property
    def requests(self) -> int:
        """Offered request count."""
        return len(self.images)


def make_poisson_trace(
    rate_rps: float,
    requests: int,
    shapes: tuple[int, int, int] | list[tuple[int, int, int]],
    seed: int = 0,
) -> ArrivalTrace:
    """Seeded Poisson arrivals: exponential inter-arrival gaps at
    ``rate_rps``, request ``i`` shaped ``shapes[i % len(shapes)]`` so
    shape buckets interleave in arrival order."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if requests <= 0:
        raise ValueError("requests must be positive")
    if isinstance(shapes, tuple) and len(shapes) == 3 and isinstance(shapes[0], int):
        shapes = [shapes]
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=requests)
    arrivals = np.cumsum(gaps)
    images = tuple(
        rng.standard_normal(shapes[i % len(shapes)]) for i in range(requests)
    )
    return ArrivalTrace(
        images=images,
        arrivals_s=tuple(float(t) for t in arrivals),
        rate_rps=rate_rps,
    )


@dataclasses.dataclass(frozen=True)
class OpenLoopResult:
    """Outcome of replaying one :class:`ArrivalTrace` against a server.

    ``outputs[i]`` is request i's result array, or ``None`` when it was
    rejected at admission or failed in service.  Latency is measured
    from the request's *scheduled arrival* (not the submit call), so a
    dispatcher running behind schedule shows up as latency, exactly as
    a queue would.
    """

    outputs: tuple[np.ndarray | None, ...]
    offered: int
    completed: int
    rejected: int
    failed: int
    duration_s: float
    offered_rps: float
    throughput_rps: float
    latency_ms_mean: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    slo_ms: float
    slo_attainment: float

    def format(self) -> str:
        """One-line human rendering of the replay."""
        return (
            f"open-loop {self.offered} offered @ {self.offered_rps:.1f} req/s: "
            f"{self.completed} completed, {self.rejected} rejected, "
            f"{self.failed} failed; {self.throughput_rps:.1f} req/s served; "
            f"latency ms p50 {self.latency_ms_p50:.2f} "
            f"p95 {self.latency_ms_p95:.2f} p99 {self.latency_ms_p99:.2f}; "
            f"SLO {self.slo_ms:.0f}ms attainment {self.slo_attainment:.3f}"
        )


def run_open_loop(server, trace: ArrivalTrace, slo_ms: float = 100.0) -> OpenLoopResult:
    """Replay ``trace`` against ``server`` (thread- or process-sharded).

    One dispatcher thread submits each request at its scheduled arrival
    time with a non-blocking admission (``timeout=0``): a full server
    raises :class:`~repro.serving.server.ServerOverloaded` and the
    request counts as rejected — open loop never retries, the next
    arrival is already due.  Completion times are captured by future
    callbacks, so slow requests never stall the arrival process.
    """
    offered = trace.requests
    outputs: list[np.ndarray | None] = [None] * offered
    finished_at: list[float | None] = [None] * offered
    failures = [0]
    rejected = [0]
    done = threading.Event()
    remaining = [0]
    lock = threading.Lock()

    start = time.perf_counter()

    def _on_done(index: int, future) -> None:
        error = future.exception()
        if error is None:
            outputs[index] = future.result()
            finished_at[index] = time.perf_counter()
        with lock:
            if error is not None:
                failures[0] += 1
            remaining[0] -= 1
        done.set()  # waiter re-checks `remaining` under the lock

    for index, (image, arrival) in enumerate(
        zip(trace.images, trace.arrivals_s, strict=True)
    ):
        delay = (start + arrival) - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        try:
            future = server.submit(image, timeout=0)
        except ServerOverloaded:
            rejected[0] += 1
            continue
        with lock:
            remaining[0] += 1
        future.add_done_callback(
            lambda fut, index=index: _on_done(index, fut)
        )

    while True:
        with lock:
            if remaining[0] == 0:
                break
        done.wait(0.05)
        done.clear()
    duration = time.perf_counter() - start

    latencies = [
        finish - (start + trace.arrivals_s[index])
        for index, finish in enumerate(finished_at)
        if finish is not None
    ]
    lat_ms = np.sort(np.asarray(latencies)) * 1e3
    have = len(lat_ms) > 0
    completed = len(latencies)
    return OpenLoopResult(
        outputs=tuple(outputs),
        offered=offered,
        completed=completed,
        rejected=rejected[0],
        failed=failures[0],
        duration_s=duration,
        offered_rps=trace.rate_rps,
        throughput_rps=completed / duration if duration > 0 else float("nan"),
        latency_ms_mean=float(lat_ms.mean()) if have else float("nan"),
        latency_ms_p50=float(np.percentile(lat_ms, 50)) if have else float("nan"),
        latency_ms_p95=float(np.percentile(lat_ms, 95)) if have else float("nan"),
        latency_ms_p99=float(np.percentile(lat_ms, 99)) if have else float("nan"),
        slo_ms=slo_ms,
        slo_attainment=float((lat_ms <= slo_ms).mean()) if have else float("nan"),
    )
