"""Deterministic closed-loop load generation against an InferenceServer.

A *closed loop* keeps a fixed number of concurrent clients, each with at
most one request in flight: a client submits, waits for its result, then
submits its next image.  Offered load therefore adapts to service rate —
the standard way to measure "throughput at N concurrent users" without
open-loop queue blowup.

Everything is seeded: the workload (every client's image sequence) is a
pure function of ``(seed, clients, requests, shape)``, so two runs — or
a served run and a serial reference — see byte-identical inputs, which
is what lets the bench assert byte-identical outputs.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import numpy as np

from ..nn.inference import Predictor
from .server import InferenceServer

__all__ = ["Workload", "LoadResult", "make_workload", "run_closed_loop", "serial_reference"]


@dataclasses.dataclass(frozen=True)
class Workload:
    """Per-client image sequences; ``images[c][k]`` is client c's k-th request."""

    images: tuple[tuple[np.ndarray, ...], ...]

    @property
    def clients(self) -> int:
        return len(self.images)

    @property
    def total_requests(self) -> int:
        return sum(len(sequence) for sequence in self.images)


def make_workload(
    clients: int,
    requests_per_client: int,
    shapes: tuple[int, int, int] | list[tuple[int, int, int]],
    seed: int = 0,
) -> Workload:
    """Seeded workload; with several shapes, clients cycle through them
    (client c uses shape ``shapes[c % len(shapes)]``) so shape buckets
    interleave in the queue."""
    if isinstance(shapes, tuple) and len(shapes) == 3 and isinstance(shapes[0], int):
        shapes = [shapes]
    rng = np.random.default_rng(seed)
    images = tuple(
        tuple(
            rng.standard_normal(shapes[client % len(shapes)])
            for _ in range(requests_per_client)
        )
        for client in range(clients)
    )
    return Workload(images=images)


@dataclasses.dataclass(frozen=True)
class LoadResult:
    """Outcome of one closed-loop run."""

    outputs: tuple[tuple[np.ndarray, ...], ...]  # outputs[c][k]
    duration_s: float
    requests: int
    throughput_rps: float
    latency_ms_mean: float
    latency_ms_p95: float

    def bit_identical_to(self, reference: "LoadResult | tuple") -> bool:
        """True when every output array matches ``reference`` bit for bit."""
        other = reference.outputs if isinstance(reference, LoadResult) else reference
        if len(self.outputs) != len(other):
            return False
        return all(
            len(my_seq) == len(their_seq)
            and all(
                np.array_equal(mine, theirs)
                for mine, theirs in zip(my_seq, their_seq, strict=True)
            )
            for my_seq, their_seq in zip(self.outputs, other, strict=True)
        )


def _collect(latencies: list[float], duration: float, outputs, requests: int) -> LoadResult:
    lat_ms = np.sort(np.asarray(latencies)) * 1e3
    p95 = float(np.percentile(lat_ms, 95)) if len(lat_ms) else float("nan")
    return LoadResult(
        outputs=outputs,
        duration_s=duration,
        requests=requests,
        throughput_rps=requests / duration if duration > 0 else float("nan"),
        latency_ms_mean=float(lat_ms.mean()) if len(lat_ms) else float("nan"),
        latency_ms_p95=p95,
    )


def run_closed_loop(server: InferenceServer, workload: Workload) -> LoadResult:
    """Drive ``server`` with one thread per client, closed-loop."""
    clients = workload.clients
    outputs: list[list[np.ndarray | None]] = [
        [None] * len(sequence) for sequence in workload.images
    ]
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[BaseException | None] = [None] * clients
    barrier = threading.Barrier(clients + 1)

    def client_loop(client: int) -> None:
        try:
            barrier.wait()
            for k, image in enumerate(workload.images[client]):
                started = time.perf_counter()
                outputs[client][k] = server.predict(image)
                latencies[client].append(time.perf_counter() - started)
        except BaseException as exc:  # surfaced to the caller below
            errors[client] = exc

    threads = [
        threading.Thread(target=client_loop, args=(c,), name=f"loadgen-{c}")
        for c in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started
    for error in errors:
        if error is not None:
            raise error
    return _collect(
        [latency for per_client in latencies for latency in per_client],
        duration,
        tuple(tuple(per_client) for per_client in outputs),  # type: ignore[arg-type]
        workload.total_requests,
    )


def serial_reference(predictor: Predictor, workload: Workload) -> LoadResult:
    """The bit-identity baseline: every request alone, one after another.

    Same per-request work a server performs, minus concurrency and
    micro-batching — both the correctness reference (served outputs must
    match these arrays exactly) and the throughput baseline the serving
    speedup is measured against.
    """
    latencies: list[float] = []
    outputs = []
    started = time.perf_counter()
    for sequence in workload.images:
        per_client = []
        for image in sequence:
            t0 = time.perf_counter()
            per_client.append(predictor.predict(image[None])[0])
            latencies.append(time.perf_counter() - t0)
        outputs.append(tuple(per_client))
    duration = time.perf_counter() - started
    return _collect(latencies, duration, tuple(outputs), workload.total_requests)
