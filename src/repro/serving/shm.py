"""Compatibility shim: the slot-ring transport now lives in :mod:`repro.comms`.

The shared-memory slot rings started here as serving-only plumbing
(PR 8).  When data-parallel training became the second consumer they
were hoisted into :mod:`repro.comms.shm` — the process-communication
layer both the serving cluster and the training engine build on — and
this module re-exports the same objects so existing imports
(``repro.serving.shm.ShmRing`` and friends) keep working.  The
module-level segment registry behind :func:`active_segments` is shared:
there is exactly one hygiene ledger per process, wherever it is
imported from.
"""

from __future__ import annotations

from ..comms.shm import RingClient, ShmRing, active_segments

__all__ = ["ShmRing", "RingClient", "active_segments"]
