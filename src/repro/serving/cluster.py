"""Process-sharded inference serving with shared-memory tensor transport.

:class:`ShardedInferenceServer` is the multi-core sibling of the
thread-based :class:`~repro.serving.server.InferenceServer`: a pool of
**spawned worker processes** (PR 2's spawn discipline, via
:mod:`repro.experiments.spawn`), each hosting its own
:class:`~repro.nn.inference.Predictor` — or
:class:`~repro.nn.inference.CompiledPredictor` — replica of one model,
so GEMM-bound requests run on separate interpreters instead of
contending for one GIL.

**Transport.**  Request and response arrays never cross a pipe: the
router writes each request into a :class:`~repro.serving.shm.ShmRing`
slot and sends only a tiny descriptor ``(request id, slot, shape,
degraded)`` over the worker's task queue; the worker copies the array
out of shared memory, predicts, writes the response into the same
slot *after* the request payload, and answers with another descriptor.
Slots are sized and counted so "a request was admitted" and "a slot is
free" are the same event.

**Shape-affine routing.**  The first request of a given (C, H, W)
shape pins that shape to a replica group of ``replicas_per_shape``
workers (chosen least-loaded); later requests of the same shape stay
inside the group, each to its least-outstanding member.  Compiled
execution plans are per-shape, so affinity keeps a shape's traffic on
workers that have already paid that shape's trace cost instead of
re-tracing it on all ``procs`` workers.

**Admission control.**  ``overload`` picks what happens when
``queue_depth`` requests are already in flight: ``"block"`` applies
backpressure like the thread server, ``"reject"`` raises
:class:`~repro.serving.server.ServerOverloaded` immediately, and
``"degrade"`` first serves new requests through a cheaper fallback
predictor (eager, coarser tiling — no plan builds, less halo overlap)
once ``degrade_at`` requests are in flight, then rejects at the full
``queue_depth``.  Under open-loop overload the server therefore sheds
or cheapens load with a bounded p99 instead of letting the queue
collapse.  Degraded service keeps bit-identity for any request that
fits one tile (the batched path does not depend on tile size); only
larger-than-tile requests may differ from the serial reference by
float reassociation on BLAS backends.

**Crash recovery.**  A collector thread watches worker liveness.  When
a worker dies, its task queue is abandoned (never drained by the
replacement, so stale descriptors cannot be served twice), a fresh
worker is spawned at the same rank — inheriting the rank's shape
affinity — and every accepted-but-unresolved request assigned to the
dead worker is re-dispatched under a **fresh request id**.  Responses
carrying a retired id are ignored, and a slot is released exactly once
by the response matching the id currently in flight; because the
request payload in the slot outlives the crash (responses are written
after it), the retry computes on byte-identical input and no accepted
request is ever dropped.

Every served output is produced by the same ``Predictor.predict`` call
a serial reference would make, on the exact request bytes the client
submitted (float64 all the way through shared memory), so sharded
serving is bit-identical to serial inference — the tests pin this for
mixed-shape 100-request concurrent runs, including across an injected
worker crash.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import queue as queue_module
import threading
import time
from collections.abc import Callable, Mapping
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any

import numpy as np

from ..nn.inference import DEFAULT_TILE, Predictor
from ..nn.module import Module
from .server import ServerClosed, ServerOverloaded
from .shm import RingClient, ShmRing

__all__ = [
    "ShardedInferenceServer",
    "ClusterStats",
    "WorkerCrashed",
    "OVERLOAD_POLICIES",
]

#: Admission policies for a full cluster (see the module docstring).
OVERLOAD_POLICIES = ("block", "reject", "degrade")

_JOIN_TIMEOUT_S = 10.0
_COLLECT_TICK_S = 0.05


class WorkerCrashed(RuntimeError):
    """Raised to a client whose request ran out of crash-retry budget."""


@dataclasses.dataclass(frozen=True)
class ClusterStats:
    """Aggregate snapshot of a sharded server's request accounting.

    Latency fields mirror :class:`~repro.serving.server.ServerStats`
    (same p50/p95/p99 + SLO-attainment schema) so thread- and
    process-based serving report comparably.
    """

    requests: int
    rejected: int
    degraded: int
    failed: int
    retried: int
    respawns: int
    latency_ms_mean: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    latency_ms_max: float
    slo_ms: float
    slo_attainment: float
    wall_s: float
    throughput_rps: float

    def format(self) -> str:
        """One-line human rendering of the snapshot."""
        return (
            f"{self.requests} requests ({self.rejected} rejected, "
            f"{self.degraded} degraded, {self.retried} retried, "
            f"{self.respawns} respawns); {self.throughput_rps:.1f} req/s; "
            f"latency ms p50 {self.latency_ms_p50:.2f} "
            f"p95 {self.latency_ms_p95:.2f} p99 {self.latency_ms_p99:.2f}; "
            f"SLO {self.slo_ms:.0f}ms attainment {self.slo_attainment:.3f}"
        )


class _ClusterAccounting:
    """Thread-safe counters/latency window behind :meth:`stats`."""

    MAX_SAMPLES = 100_000

    def __init__(self, slo_ms: float) -> None:
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self.slo_ms = slo_ms
        self._latencies: list[float] = []
        self.requests = 0
        self.rejected = 0
        self.degraded = 0
        self.failed = 0
        self.retried = 0
        self.respawns = 0

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_degraded(self) -> None:
        with self._lock:
            self.degraded += 1

    def record_retry(self) -> None:
        with self._lock:
            self.retried += 1

    def record_respawn(self) -> None:
        with self._lock:
            self.respawns += 1

    def record_done(self, latency_s: float, failed: bool) -> None:
        with self._lock:
            self.requests += 1
            if failed:
                self.failed += 1
            else:
                self._latencies.append(latency_s)
                if len(self._latencies) > self.MAX_SAMPLES:
                    del self._latencies[: -self.MAX_SAMPLES]

    def snapshot(self) -> ClusterStats:
        with self._lock:
            lat_ms = np.sort(np.asarray(self._latencies)) * 1e3
            requests, rejected = self.requests, self.rejected
            degraded, failed = self.degraded, self.failed
            retried, respawns = self.retried, self.respawns
            wall = time.perf_counter() - self._started
        have = len(lat_ms) > 0
        return ClusterStats(
            requests=requests,
            rejected=rejected,
            degraded=degraded,
            failed=failed,
            retried=retried,
            respawns=respawns,
            latency_ms_mean=float(lat_ms.mean()) if have else float("nan"),
            latency_ms_p50=float(np.percentile(lat_ms, 50)) if have else float("nan"),
            latency_ms_p95=float(np.percentile(lat_ms, 95)) if have else float("nan"),
            latency_ms_p99=float(np.percentile(lat_ms, 99)) if have else float("nan"),
            latency_ms_max=float(lat_ms[-1]) if have else float("nan"),
            slo_ms=self.slo_ms,
            slo_attainment=float((lat_ms <= self.slo_ms).mean()) if have else float("nan"),
            wall_s=wall,
            throughput_rps=requests / wall if wall > 0 else float("nan"),
        )


class _Pending:
    __slots__ = ("request_id", "slot", "shape", "future", "enqueued_at",
                 "rank", "degraded", "retries_left")

    def __init__(self, request_id: int, slot: int, shape: tuple[int, ...],
                 degraded: bool, retries_left: int) -> None:
        self.request_id = request_id
        self.slot = slot
        self.shape = shape
        self.future: Future = Future()
        self.enqueued_at = time.perf_counter()
        self.rank = -1
        self.degraded = degraded
        self.retries_left = retries_left


class _Worker:
    __slots__ = ("rank", "process", "task_queue")

    def __init__(self, rank, process, task_queue) -> None:
        self.rank = rank
        self.process = process
        self.task_queue = task_queue


def _worker_main(
    rank: int,
    ring_name: str,
    slots: int,
    slot_bytes: int,
    factory: Callable[[], Module],
    state: Mapping[str, np.ndarray] | None,
    options: dict[str, Any],
    task_queue,
    response_queue,
) -> None:
    """Entry point of one spawned shard worker.

    Builds its own model replica (factory + optional broadcast
    state_dict — the one startup pickle; request tensors themselves
    only ever travel through shared memory), then serves descriptors
    until the ``None`` sentinel.  A ``("crash",)`` descriptor is the
    fault-injection hook: the worker dies via ``os._exit`` at a point
    where it holds no queue locks, which is what a segfault mid-GEMM
    looks like to the router.
    """
    client = RingClient(ring_name, slots, slot_bytes)
    model = factory()
    if state is not None:
        model.load_state_dict(dict(state))
    model.eval()
    base = Predictor(
        model,
        batch_size=options["batch_size"],
        tile=options["tile"],
        backend=options["backend"],
        tuned=options.get("tuned", False),
    )
    predictor = base.compile() if options["compiled"] else base
    # The degraded fallback stays untuned by design: it exists to shed
    # load cheaply and predictably, not to consult caches.
    degraded = Predictor(
        model,
        batch_size=options["batch_size"],
        tile=options["degraded_tile"],
        backend=options["backend"],
        tuned=False,
    )
    while True:
        item = task_queue.get()
        if item is None:
            break
        if item[0] == "crash":
            os._exit(17)
        _, request_id, slot, shape, serve_degraded = item
        try:
            request = client.get_array(slot, 0, shape)
            served_by = degraded if serve_degraded else predictor
            output = served_by.predict(request[None])[0]
            offset = client.response_offset(shape)
            if offset + output.nbytes > slot_bytes:
                raise ValueError(
                    f"response of {output.nbytes} bytes does not fit slot "
                    f"({slot_bytes} bytes, request {offset} bytes); raise slot_bytes"
                )
            client.put_array(slot, offset, output)
            response_queue.put(("ok", rank, request_id, slot, output.shape, None))
        except Exception as exc:  # worker faults become data, never hangs
            response_queue.put(
                ("err", rank, request_id, slot, None, f"{type(exc).__name__}: {exc}")
            )
    client.close()


class ShardedInferenceServer:
    """Multi-process sharded inference with shared-memory transport.

    Args:
        model_factory: Picklable zero-argument callable building the
            model in each worker (e.g. ``functools.partial(
            make_bench_model, seed)``).  Every worker must build the
            *same* weights for replicas to be interchangeable; pass
            ``state_dict`` to broadcast trained weights when the
            factory alone does not pin them.
        state_dict: Optional weights loaded into each worker's model
            after construction (pickled once at startup).
        procs: Worker process count (the shard count).
        replicas_per_shape: Size of the replica group a request shape
            is pinned to; larger groups trade plan-cache locality for
            load spreading.
        queue_depth: Maximum in-flight (admitted, unresolved) requests
            — also the shared-memory slot count.
        slot_bytes: Capacity of one transport slot; must hold one
            request plus its response (float64).
        overload: ``"block"`` / ``"reject"`` / ``"degrade"`` — see the
            module docstring.
        degrade_at: In-flight level where ``"degrade"`` starts serving
            through the fallback predictor (default ``queue_depth//2``).
        max_retries: Crash re-dispatch budget per request.
        batch_size / tile / backend / compiled: Forwarded to each
            worker's :class:`~repro.nn.inference.Predictor`.  ``backend``
            must be a spec string (backends carry thread pools and
            locks, which do not pickle).
        degraded_tile: Tile size of the degraded-mode predictor
            (default: twice the normal tile — coarser tiling, less halo
            recompute, and always eager).
        slo_ms: Latency objective used for the attainment statistic.
        tuned: Worker Predictors consult the :mod:`repro.tune` cache per
            request shape (spawned workers inherit ``REPRO_TUNING_DIR``
            through the environment); the degraded fallback stays
            untuned.  Cache misses serve the configured defaults; bytes
            are identical either way.  When omitted, follows the
            ``REPRO_TUNED`` environment flag in each worker process.

    The server starts serving on construction and is a context
    manager; leaving the ``with`` block drains in-flight requests,
    stops the workers and unlinks the shared-memory segment.
    """

    def __init__(
        self,
        model_factory: Callable[[], Module],
        *,
        state_dict: Mapping[str, np.ndarray] | None = None,
        procs: int = 2,
        replicas_per_shape: int = 1,
        queue_depth: int = 32,
        slot_bytes: int = 1 << 20,
        overload: str = "block",
        degrade_at: int | None = None,
        max_retries: int = 2,
        batch_size: int = 8,
        tile: int | None = None,
        backend: str | None = None,
        compiled: bool = False,
        degraded_tile: int | None = None,
        slo_ms: float = 100.0,
        tuned: bool | None = None,
    ) -> None:
        if procs <= 0:
            raise ValueError("procs must be positive")
        if queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        if replicas_per_shape <= 0:
            raise ValueError("replicas_per_shape must be positive")
        if overload not in OVERLOAD_POLICIES:
            raise ValueError(f"overload must be one of {OVERLOAD_POLICIES}, got {overload!r}")
        if backend is not None and not isinstance(backend, str):
            raise ValueError(
                "cluster workers take a backend spec string (e.g. 'threaded:2'); "
                "Backend instances hold thread pools and do not cross processes"
            )
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        # Deferred import: repro.experiments is heavier than the serving
        # stack; only cluster construction pays for it.
        from ..experiments.spawn import spawn_context

        self.procs = procs
        self.replicas_per_shape = min(replicas_per_shape, procs)
        self.queue_depth = queue_depth
        self.overload = overload
        self.degrade_at = degrade_at if degrade_at is not None else max(1, queue_depth // 2)
        self.max_retries = max_retries
        if tuned is None:
            from ..tune.cache import tuned_enabled

            tuned = tuned_enabled()
        self.tuned = tuned
        self._worker_options = {
            "batch_size": batch_size,
            "tile": tile,
            "backend": backend,
            "compiled": compiled,
            "tuned": tuned,
            "degraded_tile": (
                degraded_tile
                if degraded_tile is not None
                else 2 * (tile if tile is not None else DEFAULT_TILE)
            ),
        }
        self._factory = model_factory
        self._state = dict(state_dict) if state_dict is not None else None
        self._stats = _ClusterAccounting(slo_ms=slo_ms)
        self._ring = ShmRing(slots=queue_depth, slot_bytes=slot_bytes)
        self._context = spawn_context()
        self._responses = self._context.Queue()
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._drained = threading.Condition(self._lock)
        self._ids = itertools.count()
        self._inflight: dict[int, _Pending] = {}
        self._outstanding = [0] * procs
        self._shapes_pinned = [0] * procs
        self._affinity: dict[tuple[int, ...], list[int]] = {}
        self._closing = False
        self._stopping = False
        self._closed = False
        self._workers = [self._spawn_worker(rank) for rank in range(procs)]
        self._collector = threading.Thread(
            target=self._collector_loop, name="repro-cluster-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def submit(self, image: np.ndarray, timeout: float | None = None) -> Future:
        """Enqueue one (C, H, W) image; returns a future for its output.

        Admission follows the ``overload`` policy; a ``"block"`` submit
        raises :class:`ServerOverloaded` only if ``timeout`` elapses
        with the cluster still full.
        """
        image = np.asarray(getattr(image, "data", image), dtype=np.float64)
        if image.ndim != 3:
            raise ValueError(f"expected one (C, H, W) image, got shape {image.shape}")
        if 2 * image.nbytes > self._ring.slot_bytes:
            raise ValueError(
                f"request of {image.nbytes} bytes cannot share a "
                f"{self._ring.slot_bytes}-byte slot with its response; raise slot_bytes"
            )
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._lock:
            degraded = self._admit_locked(deadline, timeout)
            slot = self._ring.acquire(timeout=0.0)
            # Admission == slot availability by construction (slots ==
            # queue_depth == max in-flight), so this cannot be None.
            assert slot is not None
            pending = _Pending(
                request_id=next(self._ids),
                slot=slot,
                shape=image.shape,
                degraded=degraded,
                retries_left=self.max_retries,
            )
            self._inflight[pending.request_id] = pending
            # Payload before descriptor, descriptor under the lock:
            # dispatch must be atomic with routing so the crash handler
            # (also under the lock) sees every descriptor it may need
            # to re-dispatch, and stale queues are never fed.
            self._ring.put_array(slot, 0, image)
            self._dispatch_locked(pending)
        if degraded:
            self._stats.record_degraded()
        return pending.future

    def predict(self, image: np.ndarray, timeout: float | None = None) -> np.ndarray:
        """Blocking convenience: submit one image and wait for its output."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        future = self.submit(image, timeout=timeout)
        remaining = None if deadline is None else max(0.0, deadline - time.perf_counter())
        try:
            return future.result(remaining)
        except FutureTimeoutError:
            future.cancel()  # a no-op once running; sheds never-claimed work
            raise

    def pending(self) -> int:
        """Admitted requests not yet resolved."""
        with self._lock:
            return len(self._inflight)

    def stats(self) -> ClusterStats:
        """Aggregate latency/throughput/overload snapshot."""
        return self._stats.snapshot()

    def workers_alive(self) -> int:
        """Live worker processes (respawns keep this at ``procs``)."""
        with self._lock:
            return sum(1 for worker in self._workers if worker.process.is_alive())

    def inject_worker_crash(self, rank: int = 0) -> None:
        """Fault injection: make worker ``rank`` die at its next dequeue.

        The crash descriptor queues behind any work already dispatched
        to that worker, which is exactly the hard case recovery must
        handle: accepted requests queued behind (or running on) the
        dying worker get re-dispatched, never dropped.
        """
        with self._lock:
            if self._stopping:
                raise ServerClosed("server is shutting down")
            self._workers[rank].task_queue.put(("crash",))

    # ------------------------------------------------------------------
    # admission + routing (callers hold self._lock)
    # ------------------------------------------------------------------
    def _admit_locked(self, deadline: float | None, timeout: float | None) -> bool:
        """Apply the overload policy; returns whether to serve degraded."""
        if self._closing:
            raise ServerClosed("server is shutting down")
        if self.overload == "block":
            while len(self._inflight) >= self.queue_depth:
                remaining = None if deadline is None else deadline - time.perf_counter()
                if remaining is not None and remaining <= 0:
                    self._stats.record_rejected()
                    raise ServerOverloaded(
                        f"no admission within {timeout:.3f}s "
                        f"({self.queue_depth} requests in flight)"
                    )
                self._space.wait(remaining)
                if self._closing:
                    raise ServerClosed("server is shutting down")
            return False
        if len(self._inflight) >= self.queue_depth:
            self._stats.record_rejected()
            raise ServerOverloaded(f"{self.queue_depth} requests in flight")
        return self.overload == "degrade" and len(self._inflight) >= self.degrade_at

    def _route_locked(self, shape: tuple[int, ...]) -> int:
        """Shape-affine routing: pin a shape to a replica group once,
        then pick the group's least-outstanding live member."""
        group = self._affinity.get(shape)
        if group is None:
            by_load = sorted(
                range(self.procs),
                key=lambda rank: (self._shapes_pinned[rank], self._outstanding[rank], rank),
            )
            group = by_load[: self.replicas_per_shape]
            self._affinity[shape] = group
            for rank in group:
                self._shapes_pinned[rank] += 1
        live = [rank for rank in group if self._workers[rank].process.is_alive()]
        candidates = live or group  # a dead rank respawns at the same rank
        return min(candidates, key=lambda rank: (self._outstanding[rank], rank))

    def _dispatch_locked(self, pending: _Pending) -> None:
        rank = self._route_locked(pending.shape)
        pending.rank = rank
        self._outstanding[rank] += 1
        self._workers[rank].task_queue.put(
            ("req", pending.request_id, pending.slot, pending.shape, pending.degraded)
        )

    def _spawn_worker(self, rank: int) -> _Worker:
        task_queue = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(
                rank,
                self._ring.name,
                self._ring.slots,
                self._ring.slot_bytes,
                self._factory,
                self._state,
                self._worker_options,
                task_queue,
                self._responses,
            ),
            name=f"repro-shard-{rank}",
            daemon=True,
        )
        process.start()
        return _Worker(rank, process, task_queue)

    # ------------------------------------------------------------------
    # collector side
    # ------------------------------------------------------------------
    def _collector_loop(self) -> None:
        while True:
            try:
                item = self._responses.get(timeout=_COLLECT_TICK_S)
            except queue_module.Empty:
                item = None
            except (OSError, ValueError):  # queue torn down during close
                return
            if item is not None:
                self._handle_response(item)
                continue  # drain responses before liveness checks
            if self._stopping:
                return
            self._recover_dead_workers()

    def _handle_response(self, item: tuple) -> None:
        kind, rank, request_id, slot, out_shape, error = item
        with self._lock:
            pending = self._inflight.get(request_id)
            if pending is None:
                # Retired id: a crash-retry superseded this dispatch, or
                # the request was failed at abort.  The live retry's
                # response (same request bytes, same output bytes) is
                # the one that resolves and frees the slot.
                return
            if kind == "ok":
                offset = self._ring.response_offset(pending.shape)
                output = self._ring.get_array(slot, offset, out_shape)
            del self._inflight[request_id]
            self._outstanding[rank] = max(0, self._outstanding[rank] - 1)
            self._ring.release(slot)
            self._space.notify_all()
            if not self._inflight:
                self._drained.notify_all()
        latency = time.perf_counter() - pending.enqueued_at
        if pending.future.set_running_or_notify_cancel():
            if kind == "ok":
                pending.future.set_result(output)
            else:
                pending.future.set_exception(RuntimeError(f"shard worker {rank}: {error}"))
        self._stats.record_done(latency, failed=kind != "ok")

    def _recover_dead_workers(self) -> None:
        crashed: list[_Pending] = []
        with self._lock:
            if self._stopping or self._closed:
                return
            for rank in range(self.procs):
                worker = self._workers[rank]
                if worker.process.is_alive() or worker.process.exitcode is None:
                    continue
                # Dead.  Abandon its queue (stale descriptors must never
                # be served twice), respawn at the same rank so shape
                # affinity keeps pointing somewhere live, re-dispatch
                # its accepted work under fresh ids.
                worker.task_queue.close()
                worker.task_queue.cancel_join_thread()
                self._stats.record_respawn()
                self._workers[rank] = self._spawn_worker(rank)
                self._outstanding[rank] = 0
                victims = [p for p in self._inflight.values() if p.rank == rank]
                for pending in victims:
                    del self._inflight[pending.request_id]
                    if pending.retries_left <= 0:
                        self._ring.release(pending.slot)
                        self._space.notify_all()
                        crashed.append(pending)
                        continue
                    pending.retries_left -= 1
                    pending.request_id = next(self._ids)
                    self._inflight[pending.request_id] = pending
                    self._stats.record_retry()
                    self._dispatch_locked(pending)
                if not self._inflight:
                    self._drained.notify_all()
        for pending in crashed:
            if pending.future.set_running_or_notify_cancel():
                pending.future.set_exception(
                    WorkerCrashed(
                        f"worker crashed {self.max_retries + 1} times serving this request"
                    )
                )
            self._stats.record_done(
                time.perf_counter() - pending.enqueued_at, failed=True
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work, stop the workers, unlink shared memory.

        Args:
            drain: Resolve in-flight requests first (default); when
                False, fail them with :class:`ServerClosed`.
            timeout: Bound on the drain wait (then per-worker joins are
                separately bounded); ``None`` waits for the drain.
        """
        aborted: list[_Pending] = []
        with self._lock:
            if self._closed:
                return
            self._closing = True
            self._space.notify_all()
            if drain:
                self._drained.wait_for(lambda: not self._inflight, timeout=timeout)
            else:
                aborted = list(self._inflight.values())
                self._inflight.clear()
                for pending in aborted:
                    self._ring.release(pending.slot)
                self._drained.notify_all()
            self._stopping = True
            workers = list(self._workers)
        for pending in aborted:
            if pending.future.set_running_or_notify_cancel():
                pending.future.set_exception(ServerClosed("server closed"))
        for worker in workers:
            try:
                worker.task_queue.put(None)
            except (OSError, ValueError):  # already torn down with its worker
                pass
        for worker in workers:
            worker.process.join(_JOIN_TIMEOUT_S)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(_JOIN_TIMEOUT_S)
        self._collector.join(_JOIN_TIMEOUT_S + 1.0)
        for worker in workers:
            worker.task_queue.close()
            worker.task_queue.cancel_join_thread()
        self._responses.close()
        self._responses.cancel_join_thread()
        self._ring.destroy()
        with self._lock:
            self._closed = True

    def __enter__(self) -> "ShardedInferenceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close(drain=True)
