"""The serve-bench harness: per-request vs micro-batched serving.

Shared by the ``python -m repro serve-bench`` CLI subcommand and
``benchmarks/bench_serving.py``: build a small trained-shaped model, run
the same seeded closed-loop workload three ways per backend —

* ``serial``   — one Predictor, requests one at a time (no concurrency);
* ``per-request`` — the server with ``max_batch=1`` (concurrent dispatch,
  no coalescing);
* ``micro-batched`` — the server with the requested ``max_batch`` and
  ``max_wait_ms``;

— assert every way produced bit-identical outputs, and report
throughput/latency rows.  Determinism comes from the seeded workload and
the batching-is-bit-exact guarantee of :mod:`repro.nn.inference`.
"""

from __future__ import annotations

import dataclasses
import functools
from collections.abc import Sequence

import numpy as np

from ..models.ernet import dn_ernet_pu
from ..nn.inference import Predictor
from ..nn.module import Module
from .loadgen import (
    LoadResult,
    make_poisson_trace,
    make_workload,
    run_closed_loop,
    run_open_loop,
    serial_reference,
)
from .server import InferenceServer

__all__ = [
    "ServeBenchConfig",
    "ServeBenchReport",
    "ShardedBenchConfig",
    "ShardedBenchReport",
    "make_bench_model",
    "run_serve_bench",
    "run_sharded_bench",
]


@dataclasses.dataclass(frozen=True)
class ServeBenchConfig:
    """Knobs for one :func:`run_serve_bench` run.

    ``compiled`` serves every server mode through the trace-once
    compiled path (:meth:`repro.nn.inference.Predictor.compile`); the
    serial reference stays eager, so the run doubles as a
    compiled-vs-eager bit-identity check under concurrency.

    ``tuned`` makes the server modes consult the :mod:`repro.tune`
    cache; the serial reference stays untuned, so the run's bit-identity
    verdict then also certifies tuned == untuned on the served bytes.
    """

    clients: int = 8
    requests_per_client: int = 16
    image_size: int = 24
    workers: int = 2
    max_batch: int = 8
    max_wait_ms: float = 10.0
    queue_depth: int = 64
    backends: Sequence[str] = ("numpy",)
    seed: int = 0
    compiled: bool = False
    tuned: bool = False


@dataclasses.dataclass(frozen=True)
class ServeBenchReport:
    """Per-mode results of one serve-bench run plus the bit-identity verdict."""
    config: ServeBenchConfig
    rows: list[dict]
    bit_identical: bool

    def speedup(self, backend: str) -> float:
        """Micro-batched over per-request throughput for one backend."""
        by_mode = {
            row["mode"]: row for row in self.rows if row["backend"] == backend
        }
        return by_mode["micro-batched"]["throughput_rps"] / by_mode["per-request"][
            "throughput_rps"
        ]

    def format(self) -> str:
        cfg = self.config
        lines = [
            f"serve-bench: {cfg.clients} clients x {cfg.requests_per_client} requests, "
            f"{cfg.image_size}x{cfg.image_size} images, {cfg.workers} workers, "
            f"max_batch={cfg.max_batch}, max_wait={cfg.max_wait_ms}ms"
            + (", compiled" if cfg.compiled else "")
            + (", tuned" if cfg.tuned else ""),
            f"  {'backend':<12} {'mode':<14} {'req/s':>8} {'lat ms':>8} "
            f"{'p95 ms':>8} {'mean batch':>10}",
        ]
        for row in self.rows:
            lines.append(
                f"  {row['backend']:<12} {row['mode']:<14} "
                f"{row['throughput_rps']:8.1f} {row['latency_ms_mean']:8.2f} "
                f"{row['latency_ms_p95']:8.2f} {row.get('mean_batch_size', 1.0):10.2f}"
            )
        for backend in cfg.backends:
            lines.append(
                f"  {backend}: micro-batched vs per-request speedup "
                f"{self.speedup(backend):.2f}x"
            )
        lines.append(
            "  outputs bit-identical across serial/per-request/micro-batched: "
            f"{self.bit_identical}"
        )
        return "\n".join(lines)


def make_bench_model(seed: int = 0) -> Module:
    """The small trained-shaped denoiser every serve-bench run uses."""
    model = dn_ernet_pu(blocks=1, ratio=1, seed=seed)
    rng = np.random.default_rng(seed)
    for param in model.parameters():
        param.data[...] += 0.05 * rng.standard_normal(param.shape)
    model.eval()
    return model


def _row(backend: str, mode: str, result: LoadResult, extra: dict | None = None) -> dict:
    row = {
        "backend": backend,
        "mode": mode,
        "requests": result.requests,
        "duration_s": result.duration_s,
        "throughput_rps": result.throughput_rps,
        "latency_ms_mean": result.latency_ms_mean,
        "latency_ms_p95": result.latency_ms_p95,
    }
    if extra:
        row.update(extra)
    return row


# ----------------------------------------------------------------------
# process-sharded serving bench
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ShardedBenchConfig:
    """Knobs for one :func:`run_sharded_bench` run.

    The closed-loop phase compares proc counts in ``procs`` (each run
    serves the same seeded mixed-shape workload, checked bit-identical
    against a serial Predictor); the open-loop phase replays a Poisson
    trace at ``overload_rate_rps`` against a deliberately small cluster
    to exercise the ``overload_policy`` (rejections/degrades, tail
    latency).
    """

    clients: int = 8
    requests_per_client: int = 6
    image_size: int = 24
    procs: Sequence[int] = (1, 2)
    queue_depth: int = 32
    max_batch: int = 8
    backend: str | None = None
    seed: int = 0
    compiled: bool = False
    tuned: bool = False
    overload_rate_rps: float = 40.0
    overload_requests: int = 48
    overload_policy: str = "degrade"
    overload_queue_depth: int = 4
    slo_ms: float = 250.0


@dataclasses.dataclass(frozen=True)
class ShardedBenchReport:
    """Per-proc-count closed-loop rows, the open-loop overload row, and
    the bit-identity verdict of one sharded bench run."""

    config: ShardedBenchConfig
    rows: list[dict]
    overload: dict
    bit_identical: bool

    def speedup(self, procs: int) -> float:
        """Closed-loop throughput at ``procs`` workers over 1 worker."""
        by_procs = {row["procs"]: row for row in self.rows}
        return by_procs[procs]["throughput_rps"] / by_procs[1]["throughput_rps"]

    def format(self) -> str:
        """Human-readable report (same shape as :class:`ServeBenchReport`)."""
        cfg = self.config
        lines = [
            f"sharded-bench: {cfg.clients} clients x {cfg.requests_per_client} requests, "
            f"{cfg.image_size}px mixed shapes, queue_depth={cfg.queue_depth}"
            + (", compiled" if cfg.compiled else "")
            + (", tuned" if cfg.tuned else ""),
            f"  {'procs':>5} {'req/s':>8} {'lat ms':>8} {'p50 ms':>8} "
            f"{'p95 ms':>8} {'p99 ms':>8} {'SLO att':>8}",
        ]
        for row in self.rows:
            lines.append(
                f"  {row['procs']:>5} {row['throughput_rps']:8.1f} "
                f"{row['latency_ms_mean']:8.2f} {row['latency_ms_p50']:8.2f} "
                f"{row['latency_ms_p95']:8.2f} {row['latency_ms_p99']:8.2f} "
                f"{row['slo_attainment']:8.3f}"
            )
        for procs in self.config.procs:
            if procs != 1:
                lines.append(f"  {procs} procs vs 1: {self.speedup(procs):.2f}x throughput")
        over = self.overload
        lines.append(
            f"  overload ({cfg.overload_policy} @ {cfg.overload_rate_rps:.0f} req/s): "
            f"{over['completed']} completed, {over['rejected']} rejected, "
            f"{over['degraded']} degraded; p99 {over['latency_ms_p99']:.1f} ms, "
            f"SLO {cfg.slo_ms:.0f}ms attainment {over['slo_attainment']:.3f}"
        )
        lines.append(
            f"  outputs bit-identical to serial Predictor: {self.bit_identical}"
        )
        return "\n".join(lines)


def run_sharded_bench(config: ShardedBenchConfig) -> ShardedBenchReport:
    """Run the process-sharded closed-loop comparison plus an overload replay.

    The serial reference and every sharded run share one seeded
    mixed-shape workload (two request sizes interleaved across clients),
    so the bit-identity verdict covers shape-affine routing and
    cross-process transport, not just a single shape.
    """
    # Imported here so `repro.serving` stays importable without the
    # experiments package (the cluster pulls in spawn helpers lazily too).
    from .cluster import ShardedInferenceServer

    if 1 not in config.procs:
        raise ValueError("procs must include 1 (the sharding speedup baseline)")
    size = config.image_size
    shapes = [(1, size, size), (1, size + 8, size + 8)]
    workload = make_workload(
        config.clients, config.requests_per_client, shapes, seed=config.seed
    )
    factory = functools.partial(make_bench_model, config.seed)
    model = factory()
    serial = Predictor(
        model,
        batch_size=config.max_batch,
        tile=max(48, size),
        backend=config.backend,
        tuned=False,  # untuned reference: bit-identity covers tuned runs
    )
    reference = serial_reference(serial, workload)
    rows: list[dict] = []
    bit_identical = True
    for procs in config.procs:
        with ShardedInferenceServer(
            factory,
            procs=procs,
            queue_depth=config.queue_depth,
            batch_size=config.max_batch,
            tile=max(48, size),
            backend=config.backend,
            compiled=config.compiled,
            tuned=config.tuned,
            slo_ms=config.slo_ms,
        ) as server:
            result = run_closed_loop(server, workload)
            stats = server.stats()
        bit_identical = bit_identical and result.bit_identical_to(reference)
        rows.append(
            {
                "procs": procs,
                "requests": result.requests,
                "duration_s": result.duration_s,
                "throughput_rps": result.throughput_rps,
                "latency_ms_mean": result.latency_ms_mean,
                "latency_ms_p50": result.latency_ms_p50,
                "latency_ms_p95": result.latency_ms_p95,
                "latency_ms_p99": result.latency_ms_p99,
                "slo_attainment": result.slo_attainment,
                "respawns": stats.respawns,
            }
        )
    trace = make_poisson_trace(
        config.overload_rate_rps,
        config.overload_requests,
        shapes,
        seed=config.seed + 1,
    )
    with ShardedInferenceServer(
        factory,
        procs=min(config.procs),
        queue_depth=config.overload_queue_depth,
        overload=config.overload_policy,
        batch_size=config.max_batch,
        tile=max(48, size),
        backend=config.backend,
        compiled=config.compiled,
        tuned=config.tuned,
        slo_ms=config.slo_ms,
    ) as server:
        open_result = run_open_loop(server, trace, slo_ms=config.slo_ms)
        open_stats = server.stats()
    overload = {
        "policy": config.overload_policy,
        "offered": open_result.offered,
        "offered_rps": open_result.offered_rps,
        "completed": open_result.completed,
        "rejected": open_result.rejected,
        "degraded": open_stats.degraded,
        "failed": open_result.failed,
        "throughput_rps": open_result.throughput_rps,
        "latency_ms_p50": open_result.latency_ms_p50,
        "latency_ms_p95": open_result.latency_ms_p95,
        "latency_ms_p99": open_result.latency_ms_p99,
        "slo_attainment": open_result.slo_attainment,
    }
    return ShardedBenchReport(
        config=config, rows=rows, overload=overload, bit_identical=bit_identical
    )


def run_serve_bench(config: ServeBenchConfig) -> ServeBenchReport:
    """Run the closed-loop serial / per-request / micro-batched comparison."""
    if config.clients < 1 or config.requests_per_client < 1:
        raise ValueError(
            "serve-bench needs at least 1 client and 1 request per client, got "
            f"clients={config.clients}, requests_per_client={config.requests_per_client}"
        )
    if not config.backends:
        raise ValueError("serve-bench needs at least one backend")
    model = make_bench_model(config.seed)
    size = config.image_size
    workload = make_workload(
        config.clients, config.requests_per_client, (1, size, size), seed=config.seed
    )
    rows: list[dict] = []
    bit_identical = True
    for backend in config.backends:
        predictor = Predictor(
            model,
            batch_size=config.max_batch,
            tile=max(48, size),
            backend=backend,
            tuned=False,  # untuned reference: bit-identity covers tuned runs
        )
        predictor.predict(workload.images[0][0][None])  # warm weight caches
        reference = serial_reference(predictor, workload)
        rows.append(_row(backend, "serial", reference))
        for mode, max_batch, max_wait_ms in [
            ("per-request", 1, 0.0),
            ("micro-batched", config.max_batch, config.max_wait_ms),
        ]:
            with InferenceServer(
                model,
                workers=config.workers,
                max_batch=max_batch,
                max_wait_ms=max_wait_ms,
                queue_depth=config.queue_depth,
                backend=backend,
                tile=max(48, size),
                compiled=config.compiled,
                tuned=config.tuned,
            ) as server:
                result = run_closed_loop(server, workload)
                stats = server.stats()
            bit_identical = bit_identical and result.bit_identical_to(reference)
            rows.append(
                _row(
                    backend,
                    mode,
                    result,
                    {
                        "mean_batch_size": stats.mean_batch_size,
                        "max_batch_size": stats.max_batch_size,
                        "batches": stats.batches,
                    },
                )
            )
    return ServeBenchReport(config=config, rows=rows, bit_identical=bit_identical)
