"""The serve-bench harness: per-request vs micro-batched serving.

Shared by the ``python -m repro serve-bench`` CLI subcommand and
``benchmarks/bench_serving.py``: build a small trained-shaped model, run
the same seeded closed-loop workload three ways per backend —

* ``serial``   — one Predictor, requests one at a time (no concurrency);
* ``per-request`` — the server with ``max_batch=1`` (concurrent dispatch,
  no coalescing);
* ``micro-batched`` — the server with the requested ``max_batch`` and
  ``max_wait_ms``;

— assert every way produced bit-identical outputs, and report
throughput/latency rows.  Determinism comes from the seeded workload and
the batching-is-bit-exact guarantee of :mod:`repro.nn.inference`.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from ..models.ernet import dn_ernet_pu
from ..nn.inference import Predictor
from ..nn.module import Module
from .loadgen import LoadResult, make_workload, run_closed_loop, serial_reference
from .server import InferenceServer

__all__ = ["ServeBenchConfig", "ServeBenchReport", "make_bench_model", "run_serve_bench"]


@dataclasses.dataclass(frozen=True)
class ServeBenchConfig:
    """Knobs for one :func:`run_serve_bench` run.

    ``compiled`` serves every server mode through the trace-once
    compiled path (:meth:`repro.nn.inference.Predictor.compile`); the
    serial reference stays eager, so the run doubles as a
    compiled-vs-eager bit-identity check under concurrency.
    """

    clients: int = 8
    requests_per_client: int = 16
    image_size: int = 24
    workers: int = 2
    max_batch: int = 8
    max_wait_ms: float = 10.0
    queue_depth: int = 64
    backends: Sequence[str] = ("numpy",)
    seed: int = 0
    compiled: bool = False


@dataclasses.dataclass(frozen=True)
class ServeBenchReport:
    """Per-mode results of one serve-bench run plus the bit-identity verdict."""
    config: ServeBenchConfig
    rows: list[dict]
    bit_identical: bool

    def speedup(self, backend: str) -> float:
        """Micro-batched over per-request throughput for one backend."""
        by_mode = {
            row["mode"]: row for row in self.rows if row["backend"] == backend
        }
        return by_mode["micro-batched"]["throughput_rps"] / by_mode["per-request"][
            "throughput_rps"
        ]

    def format(self) -> str:
        cfg = self.config
        lines = [
            f"serve-bench: {cfg.clients} clients x {cfg.requests_per_client} requests, "
            f"{cfg.image_size}x{cfg.image_size} images, {cfg.workers} workers, "
            f"max_batch={cfg.max_batch}, max_wait={cfg.max_wait_ms}ms"
            + (", compiled" if cfg.compiled else ""),
            f"  {'backend':<12} {'mode':<14} {'req/s':>8} {'lat ms':>8} "
            f"{'p95 ms':>8} {'mean batch':>10}",
        ]
        for row in self.rows:
            lines.append(
                f"  {row['backend']:<12} {row['mode']:<14} "
                f"{row['throughput_rps']:8.1f} {row['latency_ms_mean']:8.2f} "
                f"{row['latency_ms_p95']:8.2f} {row.get('mean_batch_size', 1.0):10.2f}"
            )
        for backend in cfg.backends:
            lines.append(
                f"  {backend}: micro-batched vs per-request speedup "
                f"{self.speedup(backend):.2f}x"
            )
        lines.append(
            "  outputs bit-identical across serial/per-request/micro-batched: "
            f"{self.bit_identical}"
        )
        return "\n".join(lines)


def make_bench_model(seed: int = 0) -> Module:
    """The small trained-shaped denoiser every serve-bench run uses."""
    model = dn_ernet_pu(blocks=1, ratio=1, seed=seed)
    rng = np.random.default_rng(seed)
    for param in model.parameters():
        param.data[...] += 0.05 * rng.standard_normal(param.shape)
    model.eval()
    return model


def _row(backend: str, mode: str, result: LoadResult, extra: dict | None = None) -> dict:
    row = {
        "backend": backend,
        "mode": mode,
        "requests": result.requests,
        "duration_s": result.duration_s,
        "throughput_rps": result.throughput_rps,
        "latency_ms_mean": result.latency_ms_mean,
        "latency_ms_p95": result.latency_ms_p95,
    }
    if extra:
        row.update(extra)
    return row


def run_serve_bench(config: ServeBenchConfig) -> ServeBenchReport:
    """Run the closed-loop serial / per-request / micro-batched comparison."""
    if config.clients < 1 or config.requests_per_client < 1:
        raise ValueError(
            "serve-bench needs at least 1 client and 1 request per client, got "
            f"clients={config.clients}, requests_per_client={config.requests_per_client}"
        )
    if not config.backends:
        raise ValueError("serve-bench needs at least one backend")
    model = make_bench_model(config.seed)
    size = config.image_size
    workload = make_workload(
        config.clients, config.requests_per_client, (1, size, size), seed=config.seed
    )
    rows: list[dict] = []
    bit_identical = True
    for backend in config.backends:
        predictor = Predictor(
            model, batch_size=config.max_batch, tile=max(48, size), backend=backend
        )
        predictor.predict(workload.images[0][0][None])  # warm weight caches
        reference = serial_reference(predictor, workload)
        rows.append(_row(backend, "serial", reference))
        for mode, max_batch, max_wait_ms in [
            ("per-request", 1, 0.0),
            ("micro-batched", config.max_batch, config.max_wait_ms),
        ]:
            with InferenceServer(
                model,
                workers=config.workers,
                max_batch=max_batch,
                max_wait_ms=max_wait_ms,
                queue_depth=config.queue_depth,
                backend=backend,
                tile=max(48, size),
                compiled=config.compiled,
            ) as server:
                result = run_closed_loop(server, workload)
                stats = server.stats()
            bit_identical = bit_identical and result.bit_identical_to(reference)
            rows.append(
                _row(
                    backend,
                    mode,
                    result,
                    {
                        "mean_batch_size": stats.mean_batch_size,
                        "max_batch_size": stats.max_batch_size,
                        "batches": stats.batches,
                    },
                )
            )
    return ServeBenchReport(config=config, rows=rows, bit_identical=bit_identical)
