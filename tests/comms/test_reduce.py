"""Tests for the deterministic reduction helpers (repro.comms.reduce)."""

import numpy as np
import pytest

import repro.comms.shm
import repro.serving.shm
from repro.comms import flatten_arrays, tree_reduce, unflatten_into


class TestTreeReduce:
    def test_empty_operands_raise(self):
        with pytest.raises(ValueError, match="at least one"):
            tree_reduce([])

    def test_single_operand_passes_through(self):
        arr = np.arange(3.0)
        assert tree_reduce([arr]) is arr

    def test_matches_exact_sum_on_integers(self):
        # Integer-valued floats add exactly, so the tree must equal the
        # plain sum whenever no rounding is involved.
        for count in range(1, 12):
            items = [np.float64(i + 1) for i in range(count)]
            assert tree_reduce(items) == sum(items)

    @pytest.mark.smoke
    def test_tree_order_is_pinned_not_left_fold(self):
        # [1, 1e16, -1e16, 1]: a left fold absorbs the 1.0s into the
        # big magnitudes and returns 1.0; the pinned tree pairs
        # (1 + 1e16) + (-1e16 + 1) = 0.0.  Asserting the exact tree
        # value pins the reduction shape, not just "some deterministic
        # order".
        items = [np.float64(v) for v in (1.0, 1e16, -1e16, 1.0)]
        fold = items[0]
        for item in items[1:]:
            fold = fold + item
        assert fold == 1.0
        assert tree_reduce(items) == 0.0

    def test_odd_operand_carried_up_unchanged(self):
        # 5 operands: ((a+b)+(c+d)) + e — e joins at the last level.
        a, b, c, d, e = (np.float64(v) for v in (1.0, 2.0, 3.0, 4.0, 5.0))
        assert tree_reduce([a, b, c, d, e]) == ((a + b) + (c + d)) + e

    def test_works_elementwise_on_arrays(self):
        rng = np.random.default_rng(0)
        items = [rng.standard_normal((3, 2)) for _ in range(7)]
        out = tree_reduce(items)
        assert out.shape == (3, 2)
        np.testing.assert_allclose(out, sum(items), rtol=1e-12)

    def test_same_operands_same_bytes(self):
        rng = np.random.default_rng(1)
        items = [rng.standard_normal(64) for _ in range(6)]
        first = tree_reduce(list(items))
        again = tree_reduce([item.copy() for item in items])
        assert first.tobytes() == again.tobytes()


class TestFlatten:
    def test_round_trip_is_exact(self):
        rng = np.random.default_rng(2)
        arrays = [rng.standard_normal(s) for s in [(2, 3), (4,), (1, 2, 2)]]
        flat = flatten_arrays(arrays, like=arrays)
        assert flat.dtype == np.float64 and flat.shape == (14,)
        targets = [np.zeros_like(a) for a in arrays]
        unflatten_into(flat, targets)
        for src, dst in zip(arrays, targets, strict=True):
            assert src.tobytes() == dst.tobytes()

    def test_none_entries_become_zeros_of_template_shape(self):
        like = [np.ones((2, 2)), np.ones(3)]
        flat = flatten_arrays([None, np.arange(3.0)], like=like)
        np.testing.assert_array_equal(flat, [0, 0, 0, 0, 0, 1, 2])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            flatten_arrays([None], like=[np.ones(2), np.ones(2)])

    def test_unflatten_size_mismatch_raises(self):
        with pytest.raises(ValueError, match="elements"):
            unflatten_into(np.zeros(5), [np.zeros((2, 2))])

    def test_empty_lists_flatten_to_empty_vector(self):
        assert flatten_arrays([], like=[]).shape == (0,)


class TestServingShim:
    def test_serving_shm_reexports_the_comms_classes(self):
        # The hoist kept repro.serving.shm as a pure alias: one class,
        # one hygiene ledger, two import paths.
        assert repro.serving.shm.ShmRing is repro.comms.shm.ShmRing
        assert repro.serving.shm.RingClient is repro.comms.shm.RingClient
        assert repro.serving.shm.active_segments is repro.comms.shm.active_segments
