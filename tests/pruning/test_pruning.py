"""Tests for magnitude and structured pruning."""

import numpy as np
import pytest

from repro.models.ernet import dn_ernet_pu
from repro.models.resnet import resnet_small
from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.layers import Conv2d, Sequential
from repro.nn.trainer import TrainConfig
from repro.pruning.magnitude import (
    apply_masks,
    finetune_pruned,
    global_magnitude_masks,
    prunable_parameters,
    prune_model,
    sparsity_of,
)
from repro.pruning.structured import (
    apply_channel_masks,
    channel_norms,
    channel_sparsity,
    structured_masks,
)


class TestMagnitudePruning:
    @pytest.mark.smoke
    def test_prunable_excludes_biases(self):
        model = dn_ernet_pu(blocks=1, ratio=1, seed=0)
        params = prunable_parameters(model)
        assert all(p.data.ndim >= 2 for p in params.values())
        assert not any(name.endswith("bias") for name in params)

    @pytest.mark.parametrize("compression", [2.0, 4.0, 8.0])
    def test_target_sparsity_reached(self, compression):
        model = dn_ernet_pu(blocks=2, ratio=2, seed=0)
        masks = global_magnitude_masks(model, compression)
        target = 1.0 - 1.0 / compression
        assert sparsity_of(model, masks) == pytest.approx(target, abs=0.01)

    def test_prune_zeroes_smallest(self):
        model = Sequential(Conv2d(4, 4, 3, bias=False, seed=0))
        weights = model[0].weight.data
        smallest = np.abs(weights).min()
        prune_model(model, 2.0)
        # The globally smallest weight must be gone.
        assert not np.any(np.abs(weights[weights != 0]) == smallest)

    def test_compression_one_keeps_everything(self):
        model = Sequential(Conv2d(2, 2, 3, seed=0))
        masks = global_magnitude_masks(model, 1.0)
        assert all(m.all() for m in masks.values())

    def test_invalid_compression(self):
        with pytest.raises(ValueError):
            global_magnitude_masks(Sequential(Conv2d(2, 2, 3, seed=0)), 0.5)

    def test_apply_masks_idempotent(self):
        model = Sequential(Conv2d(4, 4, 3, bias=False, seed=0))
        masks = prune_model(model, 4.0)
        snapshot = model[0].weight.data.copy()
        apply_masks(model, masks)
        np.testing.assert_array_equal(model[0].weight.data, snapshot)

    def test_finetune_preserves_sparsity_and_improves_loss(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 1, 8, 8))
        y = x * 0.7
        model = Sequential(Conv2d(1, 4, 3, seed=0), Conv2d(4, 1, 3, seed=1))
        masks = prune_model(model, 2.0)
        loader = DataLoader(ArrayDataset(x, y), batch_size=4, seed=0)
        result = finetune_pruned(model, masks, loader, TrainConfig(epochs=8, lr=5e-3))
        assert result.final_loss < result.train_losses[0]
        assert sparsity_of(model) >= 0.49

    def test_mask_callback_enforces_after_every_step(self):
        from repro.pruning import SparsityMaskCallback
        from repro.train import LambdaCallback, TrainEngine

        rng = np.random.default_rng(1)
        x = rng.standard_normal((8, 1, 8, 8))
        y = x * 0.7
        model = Sequential(Conv2d(1, 4, 3, seed=0), Conv2d(4, 1, 3, seed=1))
        masks = prune_model(model, 2.0)
        loader = DataLoader(ArrayDataset(x, y), batch_size=4, seed=0)

        violations = []

        def check(engine, loss, grad_norm):
            named = dict(engine.model.named_parameters())
            for name, mask in masks.items():
                if np.any(named[name].data[~mask] != 0):
                    violations.append(name)

        engine = TrainEngine(
            model,
            TrainConfig(epochs=2, lr=5e-3),
            # Mask callback first, probe second: the probe must observe
            # the post-mask state after every single step.
            callbacks=[SparsityMaskCallback(masks), LambdaCallback(on_batch_end=check)],
        )
        engine.fit(loader)
        assert not violations

    def test_mask_callback_rejects_unknown_parameter(self):
        from repro.pruning import SparsityMaskCallback
        from repro.train import TrainEngine

        model = Sequential(Conv2d(1, 1, 3, seed=0))
        loader = DataLoader(
            ArrayDataset(np.zeros((4, 1, 8, 8)), np.zeros((4, 1, 8, 8))),
            batch_size=4,
            seed=0,
        )
        engine = TrainEngine(
            model,
            TrainConfig(epochs=1, lr=1e-3),
            callbacks=[SparsityMaskCallback({"nope.weight": np.ones(1, dtype=bool)})],
        )
        with pytest.raises(KeyError, match="unknown parameters"):
            engine.fit(loader)


class TestStructuredPruning:
    def test_channel_norms_shapes(self):
        model = resnet_small(blocks_per_stage=1, base_width=4, seed=0)
        norms = channel_norms(model)
        assert all(v.ndim == 1 for v in norms.values())

    def test_masks_reach_compression(self):
        model = resnet_small(blocks_per_stage=1, base_width=8, seed=0)
        masks = structured_masks(model, compression=2.0)
        assert channel_sparsity(masks) == pytest.approx(0.5, abs=0.05)

    def test_apply_channel_masks_zeroes_filters(self):
        model = Sequential(Conv2d(2, 8, 3, seed=0), Conv2d(8, 2, 3, seed=1))
        masks = structured_masks(model, compression=2.0)
        apply_channel_masks(model, masks)
        conv = model[0]
        mask = masks[id(conv)]
        for ch in range(8):
            if not mask[ch]:
                assert np.all(conv.weight.data[ch] == 0)
                assert conv.bias.data[ch] == 0

    def test_every_layer_keeps_a_channel(self):
        model = Sequential(Conv2d(2, 4, 3, seed=0), Conv2d(4, 2, 3, seed=1))
        masks = structured_masks(model, compression=16.0)
        assert all(m.any() for m in masks.values())

    def test_last_conv_protected(self):
        model = Sequential(Conv2d(2, 4, 3, seed=0), Conv2d(4, 2, 3, seed=1))
        masks = structured_masks(model, compression=2.0, protect_last=True)
        assert id(model[1]) not in masks
