"""Self-check guard: a broken rule module fails the fast smoke gate.

The CI reprolint job only exercises the analyzer against the real tree;
if a rule module stopped importing (or stopped firing at all), that job
could go green-by-vacuity.  This smoke test — part of the `-m smoke`
gate every CI leg runs first — imports every rule module and drives the
full engine over the in-repo fixture tree, asserting each rule both
fires on its bad fixture and stays quiet on its good twin.
"""

import importlib
import pkgutil

import pytest

import reprolint_fixtures as fx
from repro.analysis import all_rules, analyze_paths
from repro.analysis import rules as rules_pkg


@pytest.mark.smoke
def test_reprolint_self_check(tmp_path):
    # Every rule module imports and registers at least one rule.
    modules = [name for _, name, _ in pkgutil.iter_modules(rules_pkg.__path__)]
    assert modules, "no rule modules found"
    for name in modules:
        importlib.import_module(f"repro.analysis.rules.{name}")
    rules = all_rules()
    assert len(rules) >= 6

    # The analyzer run over the fixture tree reproduces the expected
    # finding count per file — bad fixtures fire, good twins stay quiet.
    for name, source, _expected in fx.FIXTURE_TREE:
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    report = analyze_paths([tmp_path])
    assert report.files == len(fx.FIXTURE_TREE)

    by_file = {}
    for finding in report.findings:
        by_file[finding.path] = by_file.get(finding.path, 0) + 1
    for name, _source, expected in fx.FIXTURE_TREE:
        got = by_file.get((tmp_path / name).as_posix(), 0)
        assert got == expected, f"{name}: expected {expected} findings, got {got}"

    # Each of the repo rules fired somewhere in the bad fixtures.
    fired = {f.rule for f in report.findings}
    assert fired >= {
        "backend-dispatch",
        "determinism",
        "lock-discipline",
        "state-dict-completeness",
        "public-api",
        "public-docstring",
    }
