"""Per-rule good/bad fixture tests for reprolint (repro.analysis)."""

import pathlib

import pytest

import reprolint_fixtures as fx
from repro.analysis import all_rules, analyze_source, resolve_rules

OPTIM_PY = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro" / "nn" / "optim.py"


def names(findings):
    return [f.rule for f in findings]


def run(source, path, only=None):
    rules = resolve_rules(select=[only]) if only else None
    return analyze_source(source, path, rules)


class TestBackendDispatch:
    def test_fires_on_direct_kernels(self):
        findings = run(fx.BAD_DISPATCH, fx.NN_PATH, only="backend-dispatch")
        assert len(findings) == 4
        messages = " ".join(f.message for f in findings)
        assert "numpy.matmul" in messages
        assert "numpy.einsum" in messages
        assert "numpy.dot" in messages
        assert "scipy" in messages

    def test_silent_on_backend_routed_code(self):
        assert run(fx.GOOD_DISPATCH, fx.NN_PATH, only="backend-dispatch") == []

    def test_resolves_import_aliases(self):
        findings = run(fx.BAD_DISPATCH_ALIASED, fx.SERVING_PATH, only="backend-dispatch")
        assert len(findings) == 2  # numpy.dot + scipy.linalg.solve

    def test_scoped_to_nn_and_serving(self):
        # The same kernel calls are legal outside the dispatch boundary...
        assert run(fx.BAD_DISPATCH, "src/repro/hardware/cost.py", only="backend-dispatch") == []
        assert run(fx.BAD_DISPATCH, fx.TEST_PATH, only="backend-dispatch") == []
        # ...and inside the one sanctioned module.
        assert run(fx.BAD_DISPATCH, fx.BACKEND_PATH, only="backend-dispatch") == []

    def test_fires_under_serving(self):
        assert len(run(fx.BAD_DISPATCH, fx.SERVING_PATH, only="backend-dispatch")) == 4


class TestDeterminism:
    def test_fires_on_global_rng_and_unseeded_default_rng(self):
        findings = run(fx.BAD_DETERMINISM, fx.LIB_PATH, only="determinism")
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert "np.random.seed" in messages
        assert "np.random.rand" in messages
        assert "unseeded" in messages

    def test_silent_on_seeded_generator_flow(self):
        assert run(fx.GOOD_DETERMINISM, fx.LIB_PATH, only="determinism") == []

    def test_checkpoint_module_exception(self):
        # get_state/set_state are sanctioned in repro/train/checkpoint.py...
        assert run(fx.CHECKPOINT_EXCEPTION, fx.CHECKPOINT_PATH, only="determinism") == []
        # ...and only there.
        findings = run(fx.CHECKPOINT_EXCEPTION, fx.LIB_PATH, only="determinism")
        assert len(findings) == 2

    def test_checkpoint_exception_is_not_blanket(self):
        findings = run(fx.BAD_DETERMINISM, fx.CHECKPOINT_PATH, only="determinism")
        assert len(findings) == 3  # seed/rand/unseeded still fire there

    def test_tests_and_benchmarks_out_of_scope(self):
        assert run(fx.BAD_DETERMINISM, fx.TEST_PATH, only="determinism") == []
        assert run(fx.BAD_DETERMINISM, "benchmarks/bench_example.py", only="determinism") == []


class TestLockDiscipline:
    def test_fires_on_unlocked_write(self):
        findings = run(fx.BAD_LOCKS, fx.SERVING_PATH, only="lock-discipline")
        assert len(findings) == 1
        assert "Cache.clear" in findings[0].message
        assert "_cache" in findings[0].message

    def test_silent_when_disciplined(self):
        assert run(fx.GOOD_LOCKS, fx.SERVING_PATH, only="lock-discipline") == []

    def test_condition_aliases_count_as_the_lock(self):
        assert run(fx.GOOD_LOCKS_CONDITION, fx.SERVING_PATH, only="lock-discipline") == []

    def test_catches_seeded_cache_clear_regression(self):
        # The PR 4 regression class: RingConv2d._clear_weight_cache with
        # the locked clear moved back outside the lock.
        bad = fx.GOOD_LOCKS.replace(
            "    def clear(self):\n        with self._lock:\n            self._cache = None",
            "    def clear(self):\n        self._cache = None",
        )
        assert bad != fx.GOOD_LOCKS
        findings = run(bad, fx.NN_PATH, only="lock-discipline")
        assert names(findings) == ["lock-discipline"]


class TestStateDictCompleteness:
    def test_fires_on_missing_buffer_in_both_methods(self):
        findings = run(fx.BAD_STATE_DICT_ADAM, fx.LIB_PATH, only="state-dict-completeness")
        assert len(findings) == 2  # _t missing from state_dict AND load_state_dict
        assert all("_t" in f.message for f in findings)

    def test_silent_on_complete_round_trip(self):
        assert run(fx.GOOD_STATE_DICT_ADAM, fx.LIB_PATH, only="state-dict-completeness") == []

    def test_fires_when_subclass_adds_buffer_without_state_dict(self):
        findings = run(fx.BAD_STATE_DICT_SCHED, fx.LIB_PATH, only="state-dict-completeness")
        assert len(findings) == 2
        assert all("seen" in f.message for f in findings)

    def test_config_only_subclass_is_clean(self):
        assert run(fx.GOOD_STATE_DICT_SCHED, fx.LIB_PATH, only="state-dict-completeness") == []

    def test_catches_seeded_adam_regression(self):
        # Mutate the repo's real Adam: drop `t` from both ends of the
        # round-trip and the rule must fire on each.
        real = OPTIM_PY.read_text()
        mutated = real.replace('state["t"] = self._t\n        ', "").replace(
            'self._t = int(state["t"])\n', "pass\n"
        )
        assert mutated != real
        findings = run(mutated, "src/repro/nn/optim.py", only="state-dict-completeness")
        assert len(findings) == 2
        assert all("Adam" in f.message and "_t" in f.message for f in findings)

    def test_repo_optimizers_are_currently_complete(self):
        real = OPTIM_PY.read_text()
        assert run(real, "src/repro/nn/optim.py", only="state-dict-completeness") == []


class TestPublicApi:
    def test_fires_on_ghost_export_and_api_leak(self):
        findings = run(fx.BAD_PUBLIC_API, fx.LIB_PATH, only="public-api")
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "ghost" in messages
        assert "leaked" in messages

    def test_silent_with_lazy_getattr_and_private_helpers(self):
        assert run(fx.GOOD_PUBLIC_API, fx.LIB_PATH, only="public-api") == []

    def test_modules_without_all_are_skipped(self):
        assert run("def anything():\n    pass\n", fx.LIB_PATH, only="public-api") == []


class TestPublicDocstring:
    def test_fires_on_bare_export_at_warn_severity(self):
        findings = run(fx.BAD_PUBLIC_DOCSTRING, fx.LIB_PATH, only="public-docstring")
        assert len(findings) == 1
        assert "bare" in findings[0].message
        assert findings[0].severity == "warn"

    def test_silent_on_documented_exports_and_constants(self):
        findings = run(fx.GOOD_PUBLIC_DOCSTRING, fx.LIB_PATH, only="public-docstring")
        assert findings == []

    def test_modules_without_all_are_skipped(self):
        source = "def anything():\n    pass\n"
        assert run(source, fx.LIB_PATH, only="public-docstring") == []

    def test_warn_findings_do_not_gate_the_report(self):
        from repro.analysis.engine import Report

        report = Report()
        analyze_source(
            fx.BAD_PUBLIC_DOCSTRING,
            fx.LIB_PATH,
            resolve_rules(select=["public-docstring"]),
            report=report,
        )
        assert len(report.findings) == 1
        assert report.errors == []
        assert report.clean

    def test_suppression_directive_silences_it(self):
        source = fx.BAD_PUBLIC_DOCSTRING.replace(
            "def bare():", "def bare():  # reprolint: disable=public-docstring"
        )
        assert run(source, fx.LIB_PATH, only="public-docstring") == []


class TestSuppressions:
    def test_matching_rule_suppressed(self):
        assert run(fx.SUPPRESSED_DISPATCH, fx.NN_PATH) == []

    def test_wrong_rule_does_not_suppress(self):
        findings = run(fx.SUPPRESSED_WRONG_RULE, fx.NN_PATH)
        assert names(findings) == ["backend-dispatch"]

    def test_disable_all(self):
        assert run(fx.SUPPRESSED_ALL, fx.NN_PATH) == []

    def test_directive_anywhere_in_multiline_span(self):
        assert run(fx.SUPPRESSED_MULTILINE, fx.NN_PATH) == []


class TestFramework:
    def test_repo_rules_registered(self):
        rules = all_rules()
        assert set(rules) >= {
            "backend-dispatch",
            "determinism",
            "lock-discipline",
            "state-dict-completeness",
            "public-api",
            "public-docstring",
        }
        assert all(r.description for r in rules.values())
        assert all(r.severity in ("error", "warn") for r in rules.values())

    def test_unknown_rule_name_raises(self):
        with pytest.raises(KeyError, match="unknown rule"):
            resolve_rules(select=["no-such-rule"])

    def test_syntax_error_becomes_finding(self):
        findings = analyze_source("def broken(:\n", fx.LIB_PATH)
        assert names(findings) == ["syntax-error"]

    def test_findings_sorted_and_renderable(self):
        findings = run(fx.BAD_DISPATCH, fx.NN_PATH)
        assert findings == sorted(findings)
        line = findings[0].render()
        assert fx.NN_PATH in line and "[backend-dispatch]" in line
