"""CLI tests for ``python -m repro.analysis``: exit codes + JSON shape."""

import json
import subprocess
import sys

import reprolint_fixtures as fx
from repro.analysis.cli import main
from repro.analysis.reporters import JSON_VERSION


def write_tree(root, entries):
    for name, source, _expected in entries:
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


class TestExitCodes:
    def test_zero_on_clean_tree(self, tmp_path, capsys):
        write_tree(tmp_path, [e for e in fx.FIXTURE_TREE if e[2] == 0])
        assert main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_one_on_findings(self, tmp_path, capsys):
        write_tree(tmp_path, fx.FIXTURE_TREE)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        expected = sum(e[2] for e in fx.FIXTURE_TREE)
        assert f"{expected} findings" in out

    def test_zero_on_warnings_only(self, tmp_path, capsys):
        write_tree(
            tmp_path, [("src/repro/hardware/bad_docstring.py", fx.BAD_PUBLIC_DOCSTRING, 1)]
        )
        assert main([str(tmp_path)]) == 0  # warn-level findings never gate
        out = capsys.readouterr().out
        assert "1 finding (1 warn-level)" in out
        assert "[public-docstring warn]" in out

    def test_two_on_unknown_rule(self, tmp_path, capsys):
        assert main([str(tmp_path), "--select", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_two_on_missing_path(self, capsys):
        assert main(["definitely/not/a/path"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_select_narrows_rules(self, tmp_path, capsys):
        write_tree(tmp_path, fx.FIXTURE_TREE)
        assert main([str(tmp_path), "--select", "public-api"]) == 1
        out = capsys.readouterr().out
        assert "2 findings" in out  # only the bad_api fixture fires

    def test_ignore_drops_rules(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            [e for e in fx.FIXTURE_TREE if "bad_api" in e[0] or e[2] == 0],
        )
        assert main([str(tmp_path), "--ignore", "public-api"]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "backend-dispatch",
            "determinism",
            "lock-discipline",
            "state-dict-completeness",
            "public-api",
            "public-docstring",
        ):
            assert rule in out


class TestJsonReport:
    def test_shape(self, tmp_path, capsys):
        write_tree(tmp_path, fx.FIXTURE_TREE)
        assert main([str(tmp_path), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == JSON_VERSION
        assert report["tool"] == "reprolint"
        assert report["files_scanned"] == len(fx.FIXTURE_TREE)
        assert set(report["rules"]) >= {"backend-dispatch", "determinism"}
        assert report["counts"]["findings"] == sum(e[2] for e in fx.FIXTURE_TREE)
        assert report["counts"]["suppressed"] == 0
        for finding in report["findings"]:
            assert set(finding) == {"rule", "severity", "path", "line", "col", "message"}
            assert finding["severity"] in ("error", "warn")
            assert isinstance(finding["line"], int) and finding["line"] >= 1

    def test_suppressed_counted_not_listed_as_findings(self, tmp_path, capsys):
        path = tmp_path / "src" / "repro" / "nn" / "suppressed.py"
        path.parent.mkdir(parents=True)
        path.write_text(fx.SUPPRESSED_DISPATCH)
        assert main([str(tmp_path), "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counts"] == {
            "findings": 0,
            "errors": 0,
            "warnings": 0,
            "suppressed": 1,
        }
        assert report["suppressed"][0]["rule"] == "backend-dispatch"

    def test_output_file(self, tmp_path, capsys):
        write_tree(tmp_path, fx.FIXTURE_TREE)
        out_file = tmp_path / "report.json"
        assert main([str(tmp_path), "--format", "json", "--output", str(out_file)]) == 1
        capsys.readouterr()
        report = json.loads(out_file.read_text())
        assert report["counts"]["findings"] == sum(e[2] for e in fx.FIXTURE_TREE)


class TestModuleEntryPoint:
    def test_python_dash_m_runs_and_gates(self, tmp_path):
        write_tree(tmp_path, fx.FIXTURE_TREE)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(tmp_path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "reprolint:" in proc.stdout
