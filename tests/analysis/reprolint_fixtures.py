"""Paired good/bad source fixtures for the reprolint rule tests.

Each rule gets (at least) one BAD_* snippet it must fire on and one
GOOD_* twin it must stay silent on.  The snippets live as string
constants — not .py files — so scanning ``tests/`` with the analyzer
itself (the CI gate) never trips over them; the smoke test writes them
out to a tmp tree when it wants a real filesystem run.

Path constants name where each snippet pretends to live, since several
rules scope by location (backend-dispatch polices ``repro/nn`` and
``repro/serving``; determinism polices library code only).
"""

NN_PATH = "src/repro/nn/example.py"
SERVING_PATH = "src/repro/serving/example.py"
BACKEND_PATH = "src/repro/nn/backend.py"
LIB_PATH = "src/repro/train/example.py"
CHECKPOINT_PATH = "src/repro/train/checkpoint.py"
TEST_PATH = "tests/nn/test_example.py"

# ----------------------------------------------------------------------
# backend-dispatch
# ----------------------------------------------------------------------
BAD_DISPATCH = """\
import numpy as np
from scipy.signal import convolve2d

def forward(x, w):
    y = np.matmul(w, x)
    y = np.einsum("ij,jk->ik", y, x)
    y = np.dot(y, w)
    return convolve2d(y, w)
"""

GOOD_DISPATCH = """\
import numpy as np
from repro.nn.backend import current_backend

def forward(x, w):
    backend = current_backend()
    y = backend.matmul(w, x)
    return y + np.maximum(x, 0.0)  # elementwise numpy is fine
"""

BAD_DISPATCH_ALIASED = """\
import numpy
import scipy.linalg as sla

def forward(x, w):
    return sla.solve(numpy.dot(w, x), x)
"""

# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
BAD_DETERMINISM = """\
import numpy as np

def augment(x):
    np.random.seed(0)
    noise = np.random.rand(*x.shape)
    rng = np.random.default_rng()
    return x + noise + rng.standard_normal(x.shape)
"""

GOOD_DETERMINISM = """\
import numpy as np

def augment(x, rng: np.random.Generator):
    return x + rng.standard_normal(x.shape)

def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)
"""

# get_state/set_state: sanctioned in repro/train/checkpoint.py only.
CHECKPOINT_EXCEPTION = """\
import numpy as np

def capture():
    return np.random.get_state()

def restore(state):
    np.random.set_state(state)
"""

# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------
BAD_LOCKS = """\
import threading

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._cache = None

    def fill(self, value):
        with self._lock:
            self._cache = value

    def clear(self):
        self._cache = None  # race: write outside the lock
"""

GOOD_LOCKS = """\
import threading

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._cache = None

    def fill(self, value):
        with self._lock:
            self._cache = value

    def clear(self):
        with self._lock:
            self._cache = None

    def _evict_locked(self):
        self._cache = None  # caller holds the lock, per naming convention
"""

GOOD_LOCKS_CONDITION = """\
import threading

class Queue:
    def __init__(self):
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._items = []

    def put(self, item):
        with self._ready:
            self._items = self._items + [item]

    def drain(self):
        with self._lock:
            self._items = []
"""

# ----------------------------------------------------------------------
# state-dict-completeness
# ----------------------------------------------------------------------
# A mutated copy of Adam whose state_dict/load_state_dict forgot the
# step counter `t` — the exact regression class PR 5's resume
# bit-identity guarantee must be protected from.
BAD_STATE_DICT_ADAM = """\
import numpy as np
from repro.nn.optim import Optimizer

class ForgetfulAdam(Optimizer):
    def __init__(self, params, lr=1e-3):
        super().__init__(params, lr)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self):
        self._t += 1
        for p, m in zip(self.params, self._m):
            m += p.grad

    def state_dict(self):
        state = super().state_dict()
        state["m"] = [m.copy() for m in self._m]
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        for dst, src in zip(self._m, state["m"]):
            dst[...] = src
"""

GOOD_STATE_DICT_ADAM = """\
import numpy as np
from repro.nn.optim import Optimizer

class CarefulAdam(Optimizer):
    def __init__(self, params, lr=1e-3):
        super().__init__(params, lr)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self):
        self._t += 1
        for p, m in zip(self.params, self._m):
            m += p.grad

    def state_dict(self):
        state = super().state_dict()
        state["m"] = [m.copy() for m in self._m]
        state["t"] = self._t
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        for dst, src in zip(self._m, state["m"]):
            dst[...] = src
        self._t = int(state["t"])
"""

# A scheduler subclass that adds a buffer but inherits state_dict.
BAD_STATE_DICT_SCHED = """\
from repro.nn.optim import LRScheduler

class WarmupLR(LRScheduler):
    def __init__(self, optimizer, warmup):
        super().__init__(optimizer)
        self.warmup = warmup

    def step(self):
        self.seen = getattr(self, "seen", 0) + 1
        super().step()
"""

GOOD_STATE_DICT_SCHED = """\
from repro.nn.optim import LRScheduler

class PlainStepLR(LRScheduler):
    def __init__(self, optimizer, step_size, gamma=0.5):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch):
        return self.base_lr * self.gamma ** (epoch // self.step_size)
"""

# ----------------------------------------------------------------------
# public-api
# ----------------------------------------------------------------------
BAD_PUBLIC_API = """\
__all__ = ["exists", "ghost"]

def exists():
    \"\"\"Documented so only public-api fires here.\"\"\"
    return 1

def leaked():
    return 2
"""

GOOD_PUBLIC_API = """\
__all__ = ["exists", "lazy"]

def exists():
    \"\"\"Documented export.\"\"\"
    return 1

def _helper():
    return 2

def __getattr__(name):
    if name == "lazy":
        return object()
    raise AttributeError(name)
"""

# ----------------------------------------------------------------------
# public-docstring (warn-level)
# ----------------------------------------------------------------------
BAD_PUBLIC_DOCSTRING = """\
__all__ = ["LIMIT", "bare", "documented"]

LIMIT = 8

def documented():
    \"\"\"Has the contract written down.\"\"\"
    return 1

def bare():
    return 2
"""

GOOD_PUBLIC_DOCSTRING = """\
__all__ = ["LIMIT", "Widget", "documented"]

LIMIT = 8  # constants are exempt: assignments cannot carry docstrings

class Widget:
    \"\"\"A documented export.\"\"\"

def documented():
    \"\"\"Also documented.\"\"\"
    return 1

def _private_can_stay_bare():
    return 2
"""

# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
SUPPRESSED_DISPATCH = """\
import numpy as np

def forward(x, w):
    return np.matmul(w, x)  # reprolint: disable=backend-dispatch
"""

SUPPRESSED_WRONG_RULE = """\
import numpy as np

def forward(x, w):
    return np.matmul(w, x)  # reprolint: disable=determinism
"""

SUPPRESSED_ALL = """\
import numpy as np

def forward(x, w):
    return np.matmul(w, x)  # reprolint: disable=all
"""

SUPPRESSED_MULTILINE = """\
import numpy as np

def forward(x, w):
    return np.matmul(  # reprolint: disable=backend-dispatch
        w,
        x,
    )
"""

#: (filename-in-tree, source, expected live finding count) triples the
#: smoke test materializes into a real directory and analyzes end-to-end.
FIXTURE_TREE = [
    ("src/repro/nn/bad_dispatch.py", BAD_DISPATCH, 4),
    ("src/repro/nn/good_dispatch.py", GOOD_DISPATCH, 0),
    ("src/repro/train/bad_rng.py", BAD_DETERMINISM, 3),
    ("src/repro/train/good_rng.py", GOOD_DETERMINISM, 0),
    ("src/repro/serving/bad_locks.py", BAD_LOCKS, 1),
    ("src/repro/serving/good_locks.py", GOOD_LOCKS, 0),
    ("src/repro/train/bad_optim.py", BAD_STATE_DICT_ADAM, 2),
    ("src/repro/train/good_optim.py", GOOD_STATE_DICT_ADAM, 0),
    ("src/repro/hardware/bad_api.py", BAD_PUBLIC_API, 2),
    ("src/repro/hardware/good_api.py", GOOD_PUBLIC_API, 0),
    ("src/repro/hardware/bad_docstring.py", BAD_PUBLIC_DOCSTRING, 1),
    ("src/repro/hardware/good_docstring.py", GOOD_PUBLIC_DOCSTRING, 0),
]
