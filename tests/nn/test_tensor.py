"""Tests for the autodiff Tensor: forward values and gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.gradcheck import check_gradients
from repro.nn.tensor import Tensor, as_tensor, concat, no_grad


class TestForward:
    @pytest.mark.smoke
    def test_arithmetic_values(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        np.testing.assert_array_equal((a + b).data, [4, 6])
        np.testing.assert_array_equal((a - b).data, [-2, -2])
        np.testing.assert_array_equal((a * b).data, [3, 8])
        np.testing.assert_array_equal((a / b).data, [1 / 3, 0.5])
        np.testing.assert_array_equal((a**2).data, [1, 4])

    def test_scalar_coercion(self):
        a = Tensor([1.0, 2.0])
        np.testing.assert_array_equal((a + 1).data, [2, 3])
        np.testing.assert_array_equal((2 * a).data, [2, 4])
        np.testing.assert_array_equal((3 - a).data, [2, 1])

    def test_matmul(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=float).reshape(3, 4))
        np.testing.assert_array_equal((a @ b).data, a.data @ b.data)

    def test_reshape_transpose(self):
        a = Tensor(np.arange(24, dtype=float).reshape(2, 3, 4))
        assert a.reshape(6, 4).shape == (6, 4)
        assert a.transpose(2, 0, 1).shape == (4, 2, 3)

    def test_transpose_no_args_reverses_axes(self):
        # Regression: transpose() used to raise "axes don't match array".
        a = Tensor(np.arange(24, dtype=float).reshape(2, 3, 4), requires_grad=True)
        out = a.transpose()
        assert out.shape == (4, 3, 2)
        np.testing.assert_array_equal(out.data, a.data.transpose())
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 3, 4)))

    def test_reductions(self):
        a = Tensor(np.ones((3, 4)))
        assert float(a.sum().data) == 12
        assert float(a.mean().data) == 1
        assert a.sum(axis=1).shape == (3,)
        assert a.mean(axis=0, keepdims=True).shape == (1, 4)

    def test_relu_and_leaky(self):
        a = Tensor([-2.0, 3.0])
        np.testing.assert_array_equal(a.relu().data, [0, 3])
        np.testing.assert_array_equal(a.leaky_relu(0.1).data, [-0.2, 3])

    def test_pad_crop(self):
        a = Tensor(np.ones((1, 1, 2, 2)))
        padded = a.pad2d(1)
        assert padded.shape == (1, 1, 4, 4)
        assert float(padded.data.sum()) == 4
        np.testing.assert_array_equal(padded.crop2d(1).data, a.data)

    def test_concat(self):
        a, b = Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 2)))
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)


class TestBackward:
    def test_requires_scalar_seed(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward()

    def test_simple_chain(self):
        a = Tensor(2.0, requires_grad=True)
        b = Tensor(3.0, requires_grad=True)
        out = (a * b + a) ** 2  # (ab + a)^2 = (2*3+2)^2 = 64
        out.backward()
        assert float(out.data) == 64
        # d/da = 2(ab+a)(b+1) = 2*8*4 = 64 ; d/db = 2(ab+a)*a = 32
        assert float(a.grad) == 64
        assert float(b.grad) == 32

    def test_gradient_accumulation_on_reuse(self):
        a = Tensor(3.0, requires_grad=True)
        out = a * a + a  # da = 2a + 1 = 7
        out.backward()
        assert float(a.grad) == 7

    def test_broadcast_add_gradient(self):
        a = Tensor(np.zeros((2, 3)), requires_grad=True)
        b = Tensor(np.zeros((1, 3)), requires_grad=True)
        ((a + b) * 1.0).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (1, 3)
        np.testing.assert_array_equal(b.grad, [[2, 2, 2]])

    def test_no_grad_blocks_graph(self):
        a = Tensor(1.0, requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    @pytest.mark.parametrize(
        "builder",
        [
            lambda t: (t * t).sum(),
            lambda t: (t + 2).mean(),
            lambda t: (t / 3.0).sum(),
            lambda t: (t**3).sum(),
            lambda t: t.relu().sum(),
            lambda t: t.leaky_relu(0.2).sum(),
            lambda t: t.abs().sum(),
            lambda t: t.exp().sum(),
            lambda t: t.reshape(6).sum(),
            lambda t: t.transpose(1, 0).sum(),
            lambda t: (t.transpose(1, 0) @ t).sum(),
            lambda t: t.mean(axis=1).sum(),
            lambda t: t.sum(axis=0, keepdims=True).mean(),
        ],
    )
    def test_gradcheck_elementwise(self, builder):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3)) + 0.1  # avoid relu/abs kinks at 0
        check_gradients(builder, x, rtol=1e-4, atol=1e-6)

    def test_gradcheck_log(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0.5, 2.0, (2, 3))
        check_gradients(lambda t: t.log().sum(), x)

    def test_gradcheck_matmul(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((3, 4))
        w = rng.standard_normal((4, 2))
        check_gradients(lambda t: (t @ w).sum(), x)

    def test_gradcheck_div_by_tensor(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(1.0, 2.0, (2, 2))

        def build(t):
            return (Tensor(np.ones((2, 2))) / t).sum()

        check_gradients(build, x)

    def test_gradcheck_pad_crop(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((1, 2, 4, 4))
        check_gradients(lambda t: (t.pad2d(1) ** 2).sum(), x)
        check_gradients(lambda t: (t.crop2d(1) ** 2).sum(), x)

    def test_gradcheck_tuple_transform(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((2, 3, 4))
        mat = rng.standard_normal((4, 4))
        check_gradients(lambda t: (t.tuple_transform(mat, axis=2) ** 2).sum(), x)

    def test_gradcheck_concat(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((2, 3))

        def build(t):
            other = Tensor(np.ones((2, 2)))
            return (concat([t, other], axis=1) ** 2).sum()

        check_gradients(build, x)

    @settings(max_examples=20, deadline=None)
    @given(
        data=st.lists(
            # Keep t*t + t away from the ReLU kink (zeros at t = 0 and -1).
            st.floats(-3, 3, allow_nan=False).filter(
                lambda v: abs(v * v + v) > 5e-2
            ),
            min_size=4,
            max_size=4,
        )
    )
    def test_hypothesis_composite_gradcheck(self, data):
        x = np.array(data).reshape(2, 2)
        check_gradients(lambda t: ((t * t + t).relu() * 2).sum(), x, atol=1e-5)


class TestUtility:
    def test_detach_breaks_graph(self):
        a = Tensor(np.ones(2), requires_grad=True)
        assert not a.detach().requires_grad

    def test_as_tensor_idempotent(self):
        a = Tensor(1.0)
        assert as_tensor(a) is a
        assert isinstance(as_tensor(2.0), Tensor)

    def test_numpy_view(self):
        a = Tensor(np.ones(3))
        assert a.numpy() is a.data


class TestGradStateThreadLocality:
    """no_grad must scope per thread, or concurrent inference workers
    would re-enable graph construction under each other (the serving
    layer runs one no_grad per worker, overlapping arbitrarily)."""

    def test_no_grad_in_worker_does_not_leak_to_main(self):
        import threading

        from repro.nn.tensor import is_grad_enabled

        entered = threading.Event()
        release = threading.Event()
        observed = {}

        def worker() -> None:
            with no_grad():
                entered.set()
                release.wait(timeout=10)
                observed["worker_inside"] = is_grad_enabled()
            observed["worker_after"] = is_grad_enabled()

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=10)
        # Main thread still records graphs while the worker is inside.
        assert is_grad_enabled()
        a = Tensor(np.ones(2), requires_grad=True)
        out = (a * 3).sum()
        release.set()
        thread.join()
        out.backward()
        np.testing.assert_allclose(a.grad, [3.0, 3.0])
        assert observed == {"worker_inside": False, "worker_after": True}

    def test_new_threads_start_with_grads_enabled(self):
        import threading

        from repro.nn.tensor import is_grad_enabled

        # Even when spawned from inside a no_grad block: the flag is
        # per-thread state, not inherited ambient state.
        observed = {}
        with no_grad():
            thread = threading.Thread(
                target=lambda: observed.setdefault("enabled", is_grad_enabled())
            )
            thread.start()
            thread.join()
        assert observed == {"enabled": True}
