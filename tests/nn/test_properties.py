"""Property-based randomized sweep: gradcheck + cross-backend parity.

Every case index seeds its own rng, draws one op/layer configuration
(shapes, strides, paddings, ring n, gradcheck target) from a family, and
pins two properties at once, in the spirit of the reference autograd
repo's randomized checks:

* **analytic == numeric gradients** via ``gradcheck.check_gradients``;
* **bit-exact cross-backend parity** — forward output and input gradient
  under the forced-parallel ThreadedBackend and the BlockedBackend equal
  the NumpyBackend reference bit for bit.

Cases are fully deterministic (fixed seeds), so the sweep never flakes:
a failing index reproduces with ``-k case127``.  The first
``SMOKE_COUNT`` indices — one per family and a second lap with different
draws — are the ``smoke``-marked fast subset CI runs in every matrix
job.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.backend import BlockedBackend, NumpyBackend, ThreadedBackend, use_backend
from repro.nn.fastconv import frconv2d
from repro.nn.functional import (
    avg_pool2d,
    conv2d,
    conv2d_grouped,
    pixel_shuffle,
    pixel_unshuffle,
    ring_expand,
)
from repro.nn.gradcheck import check_gradients
from repro.nn.layers import DirectionalReLU2d
from repro.nn.tensor import Tensor
from repro.rings.catalog import get_ring, proposed_pair

CASE_COUNT = 200
SMOKE_COUNT = 20

# Rings covering tuple sizes n = 2 and n = 4, cheap and expensive m.
RING_KEYS = ("c", "ri4", "h")


def _threaded_forced() -> ThreadedBackend:
    backend = ThreadedBackend(jobs=3)
    backend.MIN_PARALLEL_ELEMENTS = 0  # parallelize even tiny test shapes
    return backend


def _check(build, x: np.ndarray) -> None:
    """Gradcheck ``build`` at ``x``, then cross-backend bit parity."""
    check_gradients(build, x.copy())
    reference: tuple[np.ndarray, np.ndarray] | None = None
    for backend in (NumpyBackend(), _threaded_forced(), BlockedBackend(block=1)):
        with use_backend(backend):
            t = Tensor(x.copy(), requires_grad=True)
            out = build(t)
            out.backward()
            if reference is None:
                reference = (out.data.copy(), t.grad.copy())
            else:
                assert np.array_equal(out.data, reference[0]), f"{backend} output differs"
                assert np.array_equal(t.grad, reference[1]), f"{backend} gradient differs"


def _projection(rng: np.random.Generator, probe) -> np.ndarray:
    """A fixed random output projection, so the scalar loss exercises
    every output element with a distinct weight (a plain .sum() would let
    permutation/symmetry bugs cancel)."""
    return rng.standard_normal(np.asarray(probe).shape)


def _conv_geometry(rng: np.random.Generator) -> tuple[int, int, int, int, int]:
    kernel = int(rng.integers(1, 4))
    stride = int(rng.integers(1, 4))
    padding = int(rng.integers(0, 3))
    h = kernel + stride * int(rng.integers(0, 3)) + int(rng.integers(0, 2))
    w = kernel + stride * int(rng.integers(0, 3)) + int(rng.integers(0, 2))
    return kernel, stride, padding, h, w


def _family_conv2d(rng: np.random.Generator) -> None:
    kernel, stride, padding, h, w = _conv_geometry(rng)
    n, ci, co = int(rng.integers(1, 3)), int(rng.integers(1, 4)), int(rng.integers(1, 4))
    x = rng.standard_normal((n, ci, h, w))
    weight = rng.standard_normal((co, ci, kernel, kernel))
    bias = Tensor(rng.standard_normal(co)) if rng.integers(0, 2) else None
    with use_backend(NumpyBackend()):
        probe = conv2d(Tensor(x), Tensor(weight), bias, stride=stride, padding=padding)
    proj = _projection(rng, probe.data)
    if rng.integers(0, 2):  # gradcheck wrt the input
        _check(
            lambda t: (
                conv2d(t, Tensor(weight), bias, stride=stride, padding=padding)
                * proj
            ).sum(),
            x,
        )
    else:  # gradcheck wrt the weights
        _check(
            lambda t: (
                conv2d(Tensor(x), t, bias, stride=stride, padding=padding) * proj
            ).sum(),
            weight,
        )


def _family_conv2d_grouped(rng: np.random.Generator) -> None:
    kernel, stride, padding, h, w = _conv_geometry(rng)
    n, groups = int(rng.integers(1, 3)), int(rng.integers(2, 5))
    ci, co = int(rng.integers(1, 3)), int(rng.integers(1, 3))
    x = rng.standard_normal((n, groups, ci, h, w))
    weight = rng.standard_normal((groups, co, ci, kernel, kernel))
    with use_backend(NumpyBackend()):
        probe = conv2d_grouped(Tensor(x), Tensor(weight), stride=stride, padding=padding)
    proj = _projection(rng, probe.data)
    if rng.integers(0, 2):
        _check(
            lambda t: (
                conv2d_grouped(t, Tensor(weight), stride=stride, padding=padding) * proj
            ).sum(),
            x,
        )
    else:
        _check(
            lambda t: (
                conv2d_grouped(Tensor(x), t, stride=stride, padding=padding) * proj
            ).sum(),
            weight,
        )


def _family_ring_conv(rng: np.random.Generator) -> None:
    """RCONV: ring weights expanded through M, then a real convolution."""
    spec = get_ring(RING_KEYS[int(rng.integers(0, len(RING_KEYS)))])
    n = spec.ring.n
    kernel, stride, padding, h, w = _conv_geometry(rng)
    cit, cot = 1, int(rng.integers(1, 3))
    x = rng.standard_normal((1, cit * n, h, w))
    g = rng.standard_normal((cot, cit, n, kernel, kernel))
    m_tensor = spec.ring.m_tensor
    with use_backend(NumpyBackend()):
        probe = conv2d(
            Tensor(x), ring_expand(Tensor(g), m_tensor), stride=stride, padding=padding
        )
    proj = _projection(rng, probe.data)
    if rng.integers(0, 2):
        _check(
            lambda t: (
                conv2d(t, ring_expand(Tensor(g), m_tensor), stride=stride, padding=padding)
                * proj
            ).sum(),
            x,
        )
    else:
        _check(
            lambda t: (
                conv2d(Tensor(x), ring_expand(t, m_tensor), stride=stride, padding=padding)
                * proj
            ).sum(),
            g,
        )


def _family_frconv(rng: np.random.Generator) -> None:
    """FRCONV: the three-step fast pipeline, trainable end to end."""
    spec = get_ring(RING_KEYS[int(rng.integers(0, len(RING_KEYS)))])
    n = spec.n
    kernel = int(rng.integers(1, 4))
    stride = int(rng.integers(1, 3))
    padding = int(rng.integers(0, 2))
    h = kernel + stride * int(rng.integers(0, 2))
    w = kernel + stride * int(rng.integers(0, 2)) + int(rng.integers(0, 2))
    cit, cot = 1, int(rng.integers(1, 3))
    x = rng.standard_normal((1, cit * n, h, w))
    g = rng.standard_normal((cot, cit, n, kernel, kernel))
    bias = Tensor(rng.standard_normal(cot * n)) if rng.integers(0, 2) else None
    with use_backend(NumpyBackend()):
        probe = frconv2d(Tensor(x), Tensor(g), spec, bias=bias, stride=stride, padding=padding)
    proj = _projection(rng, probe.data)
    if rng.integers(0, 2):
        _check(
            lambda t: (
                frconv2d(t, Tensor(g), spec, bias=bias, stride=stride, padding=padding)
                * proj
            ).sum(),
            x,
        )
    else:
        _check(
            lambda t: (
                frconv2d(Tensor(x), t, spec, bias=bias, stride=stride, padding=padding)
                * proj
            ).sum(),
            g,
        )


def _family_avg_pool(rng: np.random.Generator) -> None:
    kernel = int(rng.integers(2, 4))
    n, c = int(rng.integers(1, 3)), int(rng.integers(1, 4))
    h = kernel * int(rng.integers(1, 3))
    w = kernel * int(rng.integers(1, 3))
    x = rng.standard_normal((n, c, h, w))
    proj = _projection(rng, np.zeros((n, c, h // kernel, w // kernel)))
    _check(lambda t: (avg_pool2d(t, kernel) * proj).sum(), x)


def _family_matmul(rng: np.random.Generator) -> None:
    rows, inner, cols = (int(rng.integers(1, 5)) for _ in range(3))
    x = rng.standard_normal((rows, inner))
    weight = Tensor(rng.standard_normal((cols, inner)))
    bias = Tensor(rng.standard_normal(cols))
    proj = _projection(rng, np.zeros((rows, cols)))
    _check(lambda t: ((t @ weight.transpose(1, 0) + bias) * proj).sum(), x)


def _family_directional_relu(rng: np.random.Generator) -> None:
    _, nonlinearity = proposed_pair(4)
    layer = DirectionalReLU2d(nonlinearity)
    tuples = int(rng.integers(1, 3))
    h, w = int(rng.integers(1, 4)), int(rng.integers(1, 4))
    x = rng.standard_normal((1, 4 * tuples, h, w))
    proj = _projection(rng, x)
    _check(lambda t: (layer(t) * proj).sum(), x)


def _family_pixel_shuffle(rng: np.random.Generator) -> None:
    factor = int(rng.integers(2, 4))
    n, c = int(rng.integers(1, 3)), int(rng.integers(1, 3))
    h = factor * int(rng.integers(1, 3))
    w = factor * int(rng.integers(1, 3))
    x = rng.standard_normal((n, c * factor**2, h, w))
    proj = _projection(rng, np.zeros((n, c * factor**2, h, w)))
    _check(
        lambda t: (pixel_unshuffle(pixel_shuffle(t, factor), factor) * proj).sum(), x
    )


def _family_conv_stack(rng: np.random.Generator) -> None:
    """Two chained convs with a ReLU — gradients through composition."""
    c_mid = int(rng.integers(1, 4))
    h, w = int(rng.integers(3, 6)), int(rng.integers(3, 6))
    x = rng.standard_normal((1, 2, h, w))
    w1 = Tensor(rng.standard_normal((c_mid, 2, 3, 3)))
    w2 = Tensor(rng.standard_normal((1, c_mid, 1, 1)))
    proj = _projection(rng, np.zeros((1, 1, h, w)))

    def build(t: Tensor) -> Tensor:
        hidden = conv2d(t, w1, stride=1, padding=1).relu()
        return (conv2d(hidden, w2) * proj).sum()

    _check(build, x)


def _family_grouped_strided_wide(rng: np.random.Generator) -> None:
    """FRCONV-shaped grouped conv: many groups, batch 1 (exercises the
    threaded backend's group-axis fallback spans)."""
    groups = int(rng.integers(4, 9))
    kernel = int(rng.integers(1, 3))
    stride = int(rng.integers(1, 3))
    h = kernel + stride * int(rng.integers(0, 2))
    w = kernel + stride * int(rng.integers(0, 2))
    x = rng.standard_normal((1, groups, 1, h, w))
    weight = rng.standard_normal((groups, 1, 1, kernel, kernel))
    with use_backend(NumpyBackend()):
        probe = conv2d_grouped(Tensor(x), Tensor(weight), stride=stride)
    proj = _projection(rng, probe.data)
    _check(
        lambda t: (conv2d_grouped(t, Tensor(weight), stride=stride) * proj).sum(), x
    )


FAMILIES = (
    _family_conv2d,
    _family_conv2d_grouped,
    _family_ring_conv,
    _family_frconv,
    _family_avg_pool,
    _family_matmul,
    _family_directional_relu,
    _family_pixel_shuffle,
    _family_conv_stack,
    _family_grouped_strided_wide,
)


def _run_case(case: int) -> None:
    rng = np.random.default_rng(0xA11CE + 7919 * case)
    FAMILIES[case % len(FAMILIES)](rng)


@pytest.mark.smoke
@pytest.mark.parametrize("case", range(SMOKE_COUNT), ids=lambda c: f"case{c:03d}")
def test_property_case_smoke(case: int) -> None:
    _run_case(case)


@pytest.mark.parametrize(
    "case", range(SMOKE_COUNT, CASE_COUNT), ids=lambda c: f"case{c:03d}"
)
def test_property_case(case: int) -> None:
    _run_case(case)
