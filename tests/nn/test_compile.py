"""Compiled inference (Predictor.compile / build_plan) bit-identity tests.

The contract under test is absolute: a compiled :class:`ExecutionPlan`
replays the exact bytes the eager forward produces — across backends,
conv geometries, ring tuple sizes, batched and tiled dispatch — and the
per-predictor plan cache goes stale exactly when the eval weight caches
do (``load_state_dict``, ``train()``, in-place weight mutation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.ernet import dn_ernet_pu, sr4_ernet
from repro.models.factory import make_factory
from repro.nn.backend import (
    BlockedBackend,
    EinsumBackend,
    NumpyBackend,
    ThreadedBackend,
    current_backend,
    use_backend,
)
from repro.nn.compile import (
    CompileError,
    TraceError,
    Tracer,
    build_plan,
    model_stamp,
)
from repro.nn.fastconv import FastRingConv2d
from repro.nn.inference import CompiledPredictor, Predictor
from repro.nn.layers import Conv2d, ReLU, RingConv2d, Sequential
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad
from repro.rings.catalog import get_ring

# Ring keys covering tuple sizes n = 2 and n = 4 (cheap and expensive m).
RING_KEYS = ("c", "ri4", "h")


def _threaded_forced() -> ThreadedBackend:
    backend = ThreadedBackend(jobs=2)
    backend.MIN_PARALLEL_ELEMENTS = 0  # parallelize even tiny test shapes
    return backend


def _backends():
    return [
        ("numpy", NumpyBackend()),
        ("threaded", _threaded_forced()),
        ("blocked1", BlockedBackend(block=1)),
        ("blocked2", BlockedBackend(block=2)),
    ]


def _assert_compiled_matches_eager(model, x: np.ndarray, backend=None) -> None:
    """The core check: plan replay == eager forward, bit for bit, on the
    traced input, a second distinct input, and a repeated replay (arena
    buffers are reused in steady state, so a second run catches any
    stale-buffer dependence)."""
    model.eval()
    plan = build_plan(model, x, backend=backend)
    run_backend = backend if backend is not None else current_backend()
    for probe in (x, x * -0.5 + 0.25):
        with use_backend(run_backend), no_grad():
            eager = model(Tensor(probe)).data
        for _ in range(2):
            replayed = plan.run(probe, run_backend)
            assert replayed.shape == eager.shape
            assert replayed.tobytes() == eager.tobytes()


class TestParityMatrix:
    """Compiled-vs-eager bit identity across the cross-backend matrix."""

    @pytest.mark.parametrize("ring_key", RING_KEYS)
    @pytest.mark.parametrize("name_backend", _backends(), ids=lambda nb: nb[0])
    def test_ring_denoiser(self, ring_key, name_backend):
        _, backend = name_backend
        model = dn_ernet_pu(blocks=1, ratio=1, factory=make_factory(ring_key), seed=3)
        _randomize(model, seed=7)
        x = np.random.default_rng(11).standard_normal((2, 1, 16, 16))
        _assert_compiled_matches_eager(model, x, backend=backend)

    @pytest.mark.parametrize("name_backend", _backends(), ids=lambda nb: nb[0])
    def test_sr4_with_bicubic_skip(self, name_backend):
        """The SR model routes through traced_call (bicubic upsample) and
        pixel_shuffle(4) — the 'call' record must replay, not constant-fold."""
        _, backend = name_backend
        model = sr4_ernet(blocks=1, ratio=1, factory=make_factory("h"), seed=5)
        _randomize(model, seed=9)
        x = np.random.default_rng(13).standard_normal((1, 1, 8, 8))
        _assert_compiled_matches_eager(model, x, backend=backend)

    @pytest.mark.parametrize("stride", [1, 2])
    @pytest.mark.parametrize("padding", [0, 1, 2])
    def test_stride_padding_grid(self, stride, padding):
        """Plain and ring convs across the stride/padding grid."""
        spec = get_ring("ri4")
        model = Sequential(
            Conv2d(2, spec.ring.n, 3, stride=stride, padding=padding, seed=1),
            ReLU(),
            RingConv2d(spec.ring.n, spec.ring.n, 3, spec.ring, padding=1, seed=2),
            ReLU(),
            Conv2d(spec.ring.n, 1, 1, seed=3),
        ).eval()
        x = np.random.default_rng(17).standard_normal((2, 2, 11, 13))
        for _, backend in _backends():
            _assert_compiled_matches_eager(model, x, backend=backend)

    @pytest.mark.parametrize("ring_key", ["c", "h"])
    def test_frconv_stack(self, ring_key):
        """The FRCONV fast path (grouped conv + tuple transforms)."""
        spec = get_ring(ring_key)
        n = spec.n
        model = Sequential(
            FastRingConv2d(n, n, 3, spec, padding=1, seed=1),
            ReLU(),
            FastRingConv2d(n, n, 3, spec, stride=2, padding=1, seed=2),
        ).eval()
        x = np.random.default_rng(19).standard_normal((1, n, 10, 10))
        for _, backend in _backends():
            _assert_compiled_matches_eager(model, x, backend=backend)

    def test_einsum_backend(self):
        """EinsumBackend has different GEMM semantics; the compiled path
        must fall back to its compute-then-copy kernels and still match."""
        model = dn_ernet_pu(blocks=1, ratio=1, factory=make_factory("h"), seed=3)
        _randomize(model, seed=7)
        x = np.random.default_rng(23).standard_normal((1, 1, 16, 16))
        _assert_compiled_matches_eager(model, x, backend=EinsumBackend())


def _randomize(model, seed=0):
    rng = np.random.default_rng(seed)
    for param in model.parameters():
        param.data[...] += 0.05 * rng.standard_normal(param.shape)
    model.eval()
    return model


class TestCompiledPredictor:
    @pytest.mark.smoke
    def test_batched_predict_matches_eager(self):
        model = _randomize(dn_ernet_pu(blocks=1, ratio=1, seed=0))
        x = np.random.default_rng(0).standard_normal((5, 1, 16, 16))
        eager = Predictor(model, batch_size=2)
        compiled = eager.compile()
        assert isinstance(compiled, CompiledPredictor)
        assert compiled.predict(x).tobytes() == eager.predict(x).tobytes()

    def test_tiled_predict_matches_eager(self):
        """Images above the tile size go through the halo-tiled path; the
        per-crop forwards run the compiled plan and must match eager."""
        model = _randomize(dn_ernet_pu(blocks=1, ratio=1, seed=0))
        x = np.random.default_rng(1).standard_normal((1, 1, 48, 64))
        eager = Predictor(model, tile=16)
        compiled = Predictor(model, tile=16).compile()
        assert compiled.predict(x).tobytes() == eager.predict(x).tobytes()

    def test_compile_is_idempotent(self):
        pred = Predictor(_randomize(dn_ernet_pu(blocks=1, ratio=1)))
        compiled = pred.compile()
        assert compiled.compile() is compiled

    def test_clone_shares_plan_cache(self):
        compiled = Predictor(_randomize(dn_ernet_pu(blocks=1, ratio=1))).compile()
        clone = compiled.clone()
        x = np.random.default_rng(2).standard_normal((1, 1, 16, 16))
        clone.predict(x)
        assert len(compiled._plans) == 1
        # The original reuses the clone-built plan: same object, no rebuild.
        plan = next(iter(compiled._plans.values()))[1]
        compiled.predict(x)
        assert next(iter(compiled._plans.values()))[1] is plan

    def test_plan_cached_per_shape(self):
        compiled = Predictor(_randomize(dn_ernet_pu(blocks=1, ratio=1))).compile()
        a = np.random.default_rng(3).standard_normal((1, 1, 16, 16))
        b = np.random.default_rng(4).standard_normal((2, 1, 24, 24))
        compiled.predict(a)
        compiled.predict(a)
        assert len(compiled._plans) == 1
        compiled.predict(b)
        assert len(compiled._plans) == 2


class TestPlanInvalidation:
    def _compiled(self):
        model = _randomize(dn_ernet_pu(blocks=1, ratio=1, seed=0))
        compiled = Predictor(model).compile()
        x = np.random.default_rng(5).standard_normal((1, 1, 16, 16))
        compiled.predict(x)
        return model, compiled, x

    def _plan(self, compiled):
        return next(iter(compiled._plans.values()))[1]

    @pytest.mark.smoke
    def test_load_state_dict_rebuilds_and_tracks_new_weights(self):
        model, compiled, x = self._compiled()
        before = self._plan(compiled)
        donor = _randomize(dn_ernet_pu(blocks=1, ratio=1, seed=0), seed=99)
        model.load_state_dict(donor.state_dict())
        out = compiled.predict(x)
        assert self._plan(compiled) is not before
        with no_grad():
            assert out.tobytes() == model(Tensor(x)).data.tobytes()

    def test_train_mode_roundtrip_rebuilds(self):
        model, compiled, x = self._compiled()
        before = self._plan(compiled)
        model.train()  # predict() flips back to eval, but state moved on
        compiled.predict(x)
        assert self._plan(compiled) is not before

    def test_inplace_weight_mutation_rebuilds(self):
        """Optimizer-style in-place edits change the weight fingerprint,
        so the stamp (and therefore the plan) must go stale."""
        model, compiled, x = self._compiled()
        before = self._plan(compiled)
        stamp_before = model_stamp(model)
        model.parameters()[0].data[...] *= 1.1
        assert model_stamp(model) != stamp_before
        out = compiled.predict(x)
        assert self._plan(compiled) is not before
        with no_grad():
            assert out.tobytes() == model(Tensor(x)).data.tobytes()

    def test_unchanged_weights_do_not_rebuild(self):
        _, compiled, x = self._compiled()
        before = self._plan(compiled)
        compiled.predict(x)
        assert self._plan(compiled) is before


class _RawNumpyDetour(Module):
    """Forward that routes input-dependent data around the Tensor layer —
    the tracer cannot see np.tanh, so the plan would bake one input's
    result in as a constant.  build_plan's probe verification must refuse."""

    def forward(self, x):
        return Tensor(np.tanh(x.data)) + x * 0.0


class _UntracedMake(Module):
    """A custom autograd op built directly on Tensor._make: it consumes
    traced data with no trace hook, which the pending-op protocol turns
    into a hard TraceError instead of a silently wrong plan."""

    def forward(self, x):
        out = Tensor._make(np.tanh(x.data), (x,), lambda: None)
        return out + 1.0


class TestRefusals:
    def test_training_model_is_rejected(self):
        model = dn_ernet_pu(blocks=1, ratio=1).train()
        x = np.zeros((1, 1, 16, 16))
        with pytest.raises(TraceError, match="eval"):
            build_plan(model, x)

    def test_tracers_do_not_nest(self):
        with no_grad(), Tracer():
            with pytest.raises(TraceError, match="nest"), Tracer():
                pass  # pragma: no cover

    def test_tracing_requires_no_grad(self):
        with pytest.raises(TraceError, match="no_grad"), Tracer():
            pass  # pragma: no cover

    def test_raw_numpy_detour_is_caught_by_probe(self):
        model = _RawNumpyDetour().eval()
        x = np.random.default_rng(6).standard_normal((1, 1, 4, 4))
        with pytest.raises(CompileError, match="diverges|cannot be compiled"):
            build_plan(model, x)

    def test_unhooked_op_is_a_trace_error(self):
        model = _UntracedMake().eval()
        x = np.random.default_rng(7).standard_normal((1, 1, 4, 4))
        with pytest.raises(TraceError, match="trace hook"):
            build_plan(model, x)

    def test_plan_rejects_wrong_shape(self):
        model = _randomize(dn_ernet_pu(blocks=1, ratio=1))
        plan = build_plan(model, np.zeros((1, 1, 16, 16)))
        with pytest.raises(ValueError, match="shape"):
            plan.run(np.zeros((1, 1, 24, 24)), NumpyBackend())


class TestPlanStructure:
    @pytest.mark.smoke
    def test_elementwise_chains_fuse_into_producers(self):
        """bias-add + relu must ride as epilogue steps on the producing
        record, not as standalone elementwise records."""
        model = Sequential(
            Conv2d(2, 3, 3, padding=1, seed=1), ReLU(), Conv2d(3, 1, 3, padding=1, seed=2)
        ).eval()
        plan = build_plan(model, np.random.default_rng(8).standard_normal((1, 2, 8, 8)))
        assert all(rec.kind != "ew" for rec in plan.records)
        assert any("relu" in [s[0] for s in rec.steps] for rec in plan.records)

    def test_frconv_bias_relu_fuse_as_one_epilogue(self):
        """FRCONV's bias lands after the tuple recombination, so for an
        interior layer bias-add and relu must chain as a two-step
        epilogue on the producing record (a view-producing model *tail*
        legitimately keeps its elementwise chain standalone)."""
        spec = get_ring("h")
        width = 4 * spec.n  # multiple tuples: the recombining reshape copies
        model = Sequential(
            FastRingConv2d(width, width, 3, spec, padding=1, seed=1),
            ReLU(),
            FastRingConv2d(width, width, 3, spec, padding=1, seed=2),
        ).eval()
        plan = build_plan(
            model, np.random.default_rng(8).standard_normal((1, width, 8, 8))
        )
        assert any(
            [s[0] for s in rec.steps] == ["add", "relu"]
            for rec in plan.records
            if rec.kind != "ew"
        )

    def test_arena_slots_are_reused(self):
        """A deep straight-line stack needs O(1) live buffers, not one per
        layer — the liveness pass must recycle slots."""
        layers = []
        for i in range(6):
            layers += [Conv2d(2, 2, 3, padding=1, seed=i), ReLU()]
        model = Sequential(*layers).eval()
        plan = build_plan(model, np.random.default_rng(9).standard_normal((1, 2, 8, 8)))
        slotted = [rec for rec in plan.records if rec.slot >= 0]
        assert len(slotted) > len(plan.slots)  # strictly fewer buffers than ops

    def test_each_run_returns_a_fresh_output(self):
        """Outputs must never alias the arena, or a later run would
        silently overwrite an earlier result the caller still holds."""
        model = _randomize(dn_ernet_pu(blocks=1, ratio=1))
        x = np.random.default_rng(10).standard_normal((1, 1, 16, 16))
        plan = build_plan(model, x)
        backend = NumpyBackend()
        first = plan.run(x, backend)
        snapshot = first.copy()
        plan.run(x * 2.0, backend)
        assert np.array_equal(first, snapshot)
