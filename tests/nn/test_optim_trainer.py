"""Tests for optimizers, schedules, data loading and the training loop."""

import numpy as np
import pytest

from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.layers import Conv2d, RingConv2d, Sequential
from repro.nn.loss import charbonnier_loss, l1_loss, mse_loss
from repro.nn.optim import SGD, Adam, CosineLR, StepLR, clip_grad_norm
from repro.nn.tensor import Parameter, Tensor
from repro.nn.trainer import TrainConfig, evaluate_mse, train_model
from repro.rings.catalog import get_ring


class TestOptimizers:
    def _quadratic_param(self):
        return Parameter(np.array([4.0, -2.0]))

    @pytest.mark.smoke
    def test_sgd_descends_quadratic(self):
        p = self._quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            ((Tensor(np.zeros(2)) + p) ** 2).sum().backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-4

    def test_sgd_momentum_faster_than_plain(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = self._quadratic_param()
            opt = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(40):
                opt.zero_grad()
                loss = (p**2).sum()
                loss.backward()
                opt.step()
            losses[momentum] = float((p.data**2).sum())
        assert losses[0.9] < losses[0.0]

    def test_adam_descends(self):
        p = self._quadratic_param()
        opt = Adam([p], lr=0.2)
        for _ in range(150):
            opt.zero_grad()
            (p**2).sum().backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-3

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.step()  # no grad: decay-free path skips
        assert p.data[0] == 1.0
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_clip_grad_norm(self):
        p = Parameter(np.array([3.0, 4.0]))
        p.grad = np.array([3.0, 4.0])
        total = clip_grad_norm([p], 1.0)
        assert total == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_step_lr_halves(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == [1.0, 0.5, 0.5, 0.25]

    def test_cosine_lr_endpoints(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = CosineLR(opt, total=10, min_lr=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1)


class TestOptimizerState:
    """state_dict round trips: a restored optimizer continues bit-for-bit."""

    def _steps(self, opt, p, count):
        for _ in range(count):
            opt.zero_grad()
            ((p - 1.0) ** 2).sum().backward()
            opt.step()

    @pytest.mark.parametrize("make", [
        lambda p: SGD([p], lr=0.1, momentum=0.9),
        lambda p: Adam([p], lr=0.1),
    ])
    def test_resume_matches_straight_run(self, make):
        p_straight = Parameter(np.array([4.0, -2.0]))
        opt = make(p_straight)
        self._steps(opt, p_straight, 10)

        p_first = Parameter(np.array([4.0, -2.0]))
        opt_first = make(p_first)
        self._steps(opt_first, p_first, 5)
        state = opt_first.state_dict()

        p_second = Parameter(p_first.data.copy())
        opt_second = make(p_second)
        opt_second.load_state_dict(state)
        self._steps(opt_second, p_second, 5)
        np.testing.assert_array_equal(p_second.data, p_straight.data)

    def test_state_dict_copies_buffers(self):
        p = Parameter(np.array([3.0]))
        opt = SGD([p], lr=0.1, momentum=0.9)
        self._steps(opt, p, 1)
        state = opt.state_dict()
        self._steps(opt, p, 1)  # must not mutate the captured copy
        assert not np.array_equal(state["velocity"][0], opt._velocity[0])

    def test_buffer_shape_mismatch_raises(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        state = opt.state_dict()
        state["m"] = [np.zeros(3)]
        with pytest.raises(ValueError, match="shape"):
            opt.load_state_dict(state)

    @pytest.mark.parametrize("make", [
        lambda opt: StepLR(opt, step_size=2, gamma=0.5),
        lambda opt: CosineLR(opt, total=8, min_lr=0.01),
    ])
    def test_scheduler_resume_matches_straight(self, make):
        def trace(sched, opt, steps):
            out = []
            for _ in range(steps):
                sched.step()
                out.append(opt.lr)
            return out

        opt_a = SGD([Parameter(np.zeros(1))], lr=1.0)
        straight = trace(make(opt_a), opt_a, 8)

        opt_b = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched_b = make(opt_b)
        first = trace(sched_b, opt_b, 4)
        state = sched_b.state_dict()

        opt_c = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched_c = make(opt_c)
        sched_c.load_state_dict(state)
        assert opt_c.lr == first[-1]  # load restores the current lr
        assert first + trace(sched_c, opt_c, 4) == straight


class TestLosses:
    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert float(mse_loss(pred, np.array([0.0, 0.0])).data) == pytest.approx(2.5)

    def test_l1_value(self):
        pred = Tensor(np.array([1.0, -2.0]))
        assert float(l1_loss(pred, np.zeros(2)).data) == pytest.approx(1.5)

    def test_charbonnier_close_to_l1_for_large_errors(self):
        pred = Tensor(np.array([10.0]))
        val = float(charbonnier_loss(pred, np.zeros(1)).data)
        assert val == pytest.approx(10.0, abs=1e-3)


class TestDataLoader:
    def test_batching_covers_dataset(self):
        ds = ArrayDataset(np.arange(10)[:, None], np.arange(10)[:, None])
        loader = DataLoader(ds, batch_size=3, shuffle=False)
        seen = np.concatenate([x[:, 0] for x, _ in loader])
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))
        assert len(loader) == 4

    def test_drop_last(self):
        ds = ArrayDataset(np.arange(10)[:, None], np.arange(10)[:, None])
        loader = DataLoader(ds, batch_size=3, shuffle=False, drop_last=True)
        assert len(loader) == 3
        assert sum(1 for _ in loader) == 3

    def test_shuffle_deterministic_by_seed(self):
        ds = ArrayDataset(np.arange(8)[:, None], np.arange(8)[:, None])
        a = [x[:, 0].tolist() for x, _ in DataLoader(ds, 4, seed=1)]
        b = [x[:, 0].tolist() for x, _ in DataLoader(ds, 4, seed=1)]
        assert a == b

    def test_shuffle_order_pinned_across_platforms(self):
        # PCG64 is platform-independent, so seed 0 must yield exactly
        # this order everywhere — pinned so a silent RNG change (numpy
        # upgrade, generator swap) fails loudly instead of invalidating
        # every "same seed, same run" guarantee downstream.
        ds = ArrayDataset(np.arange(10)[:, None], np.arange(10)[:, None])
        loader = DataLoader(ds, batch_size=10, seed=0)
        epoch1 = [x[:, 0].tolist() for x, _ in loader]
        epoch2 = [x[:, 0].tolist() for x, _ in loader]
        assert epoch1 == [[4, 6, 2, 7, 3, 5, 9, 0, 8, 1]]
        assert epoch2 == [[2, 9, 3, 6, 0, 4, 8, 7, 5, 1]]

    def test_drop_last_with_seeded_shuffle(self):
        ds = ArrayDataset(np.arange(10)[:, None], np.arange(10)[:, None])
        loader = DataLoader(ds, batch_size=4, seed=0, drop_last=True)
        batches = [x[:, 0].tolist() for x, _ in loader]
        # Same seed-0 permutation as above, truncated to full batches.
        assert batches == [[4, 6, 2, 7], [3, 5, 9, 0]]

    def test_state_dict_replays_batch_order(self):
        ds = ArrayDataset(np.arange(10)[:, None], np.arange(10)[:, None])
        a = DataLoader(ds, batch_size=4, seed=2)
        for _ in a:
            pass
        state = a.state_dict()
        expected = [x[:, 0].tolist() for x, _ in a]
        b = DataLoader(ds, batch_size=4, seed=2)
        b.load_state_dict(state)
        assert [x[:, 0].tolist() for x, _ in b] == expected

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros(3), np.zeros(4))


class TestTrainModel:
    def _toy_problem(self, seed=0):
        """Learn a fixed 3x3 blur: easily reachable by a small conv net."""
        rng = np.random.default_rng(seed)
        kernel = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=float) / 16
        x = rng.standard_normal((16, 1, 8, 8))
        from scipy.ndimage import convolve

        y = np.stack([[convolve(img[0], kernel, mode="constant")] for img in x])
        return x, y

    def test_real_model_learns_blur(self):
        x, y = self._toy_problem()
        model = Sequential(Conv2d(1, 1, 3, seed=0))
        loader = DataLoader(ArrayDataset(x, y), batch_size=8, seed=0)
        result = train_model(model, loader, TrainConfig(epochs=30, lr=5e-2))
        assert result.final_loss < 1e-3
        assert result.train_losses[0] > result.final_loss

    def test_ring_model_trains(self):
        spec = get_ring("ri2")
        rng = np.random.default_rng(1)
        x = rng.standard_normal((8, 2, 6, 6))
        y = x * 0.5
        model = Sequential(RingConv2d(2, 2, 3, spec.ring, seed=0))
        loader = DataLoader(ArrayDataset(x, y), batch_size=4, seed=0)
        result = train_model(model, loader, TrainConfig(epochs=25, lr=3e-2))
        assert result.final_loss < 0.05

    def test_evaluate_mse(self):
        model = Sequential(Conv2d(1, 1, 1, seed=0))
        model[0].weight.data[...] = 1.0
        model[0].bias.data[...] = 0.0
        x = np.ones((2, 1, 3, 3))
        assert evaluate_mse(model, x, x) == pytest.approx(0.0)

    def test_training_is_deterministic(self):
        x, y = self._toy_problem()
        losses = []
        for _ in range(2):
            model = Sequential(Conv2d(1, 1, 3, seed=7))
            loader = DataLoader(ArrayDataset(x, y), batch_size=8, seed=3)
            res = train_model(model, loader, TrainConfig(epochs=3, lr=1e-2))
            losses.append(res.train_losses)
        assert losses[0] == losses[1]
