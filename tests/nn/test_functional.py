"""Tests for conv2d / ring_expand / pixel-shuffle primitives."""

import numpy as np
import pytest
from scipy import signal

from repro.nn.functional import (
    avg_pool2d,
    col2im,
    conv2d,
    conv2d_grouped,
    im2col,
    pixel_shuffle,
    pixel_unshuffle,
    ring_expand,
    softmax_cross_entropy,
)
from repro.nn.gradcheck import check_gradients
from repro.nn.tensor import Tensor
from repro.rings.catalog import get_ring


class TestConvForward:
    @pytest.mark.smoke
    def test_against_scipy_correlate(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 1, 8, 8))
        w = rng.standard_normal((1, 1, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), padding=1).data
        ref = signal.correlate2d(x[0, 0], w[0, 0], mode="same")
        np.testing.assert_allclose(out[0, 0], ref, atol=1e-10)

    def test_multichannel_shapes(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((2, 3, 10, 12)))
        w = Tensor(rng.standard_normal((5, 3, 3, 3)))
        assert conv2d(x, w, padding=1).shape == (2, 5, 10, 12)

    def test_stride_two(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.standard_normal((1, 2, 8, 8)))
        w = Tensor(rng.standard_normal((4, 2, 3, 3)))
        assert conv2d(x, w, stride=2, padding=1).shape == (1, 4, 4, 4)

    def test_1x1_is_channel_matmul(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((1, 4, 5, 5))
        w = rng.standard_normal((6, 4, 1, 1))
        out = conv2d(Tensor(x), Tensor(w), padding=0).data
        ref = np.einsum("oc,nchw->nohw", w[:, :, 0, 0], x)
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_bias_added_per_channel(self):
        x = Tensor(np.zeros((1, 1, 4, 4)))
        w = Tensor(np.zeros((2, 1, 3, 3)))
        b = Tensor(np.array([1.0, -2.0]))
        out = conv2d(x, w, b, padding=1).data
        assert np.all(out[0, 0] == 1.0) and np.all(out[0, 1] == -2.0)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            conv2d(Tensor(np.zeros((1, 3, 4, 4))), Tensor(np.zeros((2, 4, 3, 3))))

    def test_error_messages_name_the_offending_dimension(self):
        x = Tensor(np.zeros((1, 3, 4, 4)))
        w = Tensor(np.zeros((2, 3, 3, 3)))
        with pytest.raises(ValueError, match=r"input must be 4-D \(N, C, H, W\), got 3-D"):
            conv2d(Tensor(np.zeros((3, 4, 4))), w)
        with pytest.raises(ValueError, match=r"weight must be 4-D \(Co, Ci, kh, kw\), got 5-D"):
            conv2d(x, Tensor(np.zeros((1, 2, 3, 3, 3))))
        with pytest.raises(ValueError, match="3 channels but weight expects Ci=4"):
            conv2d(x, Tensor(np.zeros((2, 4, 3, 3))))
        with pytest.raises(ValueError, match="stride must be a positive integer, got 0"):
            conv2d(x, w, stride=0)
        with pytest.raises(ValueError, match="padding must be a non-negative integer, got -1"):
            conv2d(x, w, padding=-1)
        with pytest.raises(ValueError, match=r"kernel height 7 exceeds padded input height 6"):
            conv2d(x, Tensor(np.zeros((2, 3, 7, 3))), padding=1)
        with pytest.raises(ValueError, match=r"kernel width 9 exceeds padded input width 4"):
            conv2d(x, Tensor(np.zeros((2, 3, 3, 9))))
        with pytest.raises(ValueError, match="bias has 3 entries .* Co=2 output channels"):
            conv2d(x, w, bias=Tensor(np.zeros(3)), padding=1)

    def test_grouped_error_messages_name_the_offending_dimension(self):
        x = Tensor(np.zeros((1, 2, 3, 4, 4)))
        w = Tensor(np.zeros((2, 5, 3, 3, 3)))
        with pytest.raises(ValueError, match=r"input must be 5-D \(N, G, Ci, H, W\), got 4-D"):
            conv2d_grouped(Tensor(np.zeros((2, 3, 4, 4))), w)
        with pytest.raises(ValueError, match="2 groups but weight has G=3"):
            conv2d_grouped(x, Tensor(np.zeros((3, 5, 3, 3, 3))))
        with pytest.raises(ValueError, match="3 channels per group but weight expects Ci=4"):
            conv2d_grouped(x, Tensor(np.zeros((2, 5, 4, 3, 3))))
        with pytest.raises(ValueError, match="kernel height 5 exceeds padded input height 4"):
            conv2d_grouped(x, Tensor(np.zeros((2, 5, 3, 5, 3))))
        with pytest.raises(ValueError, match=r"bias has 4 entries .* G\*Co=10 output channels"):
            conv2d_grouped(x, w, bias=Tensor(np.zeros((2, 2))), padding=1)

    def test_im2col_col2im_adjoint(self):
        # <im2col(x), y> == <x, col2im(y)> : exact adjointness.
        rng = np.random.default_rng(4)
        x = rng.standard_normal((2, 3, 6, 6))
        cols, (hp, wp, ho, wo) = im2col(x, 3, 3, 1, 1)
        y = rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        back = col2im(y, x.shape, 3, 3, 1, 1, ho, wo)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConvBackward:
    def test_gradcheck_input(self):
        rng = np.random.default_rng(5)
        w = rng.standard_normal((2, 2, 3, 3))
        x = rng.standard_normal((1, 2, 5, 5))
        check_gradients(lambda t: (conv2d(t, Tensor(w), padding=1) ** 2).sum(), x)

    def test_gradcheck_weight(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((2, 2, 3, 3))

        def build(t):
            return (conv2d(Tensor(x), t, padding=1) ** 2).sum()

        check_gradients(build, w)

    def test_gradcheck_bias(self):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((1, 2, 4, 4))
        w = rng.standard_normal((3, 2, 3, 3))
        b = rng.standard_normal(3)

        def build(t):
            return (conv2d(Tensor(x), Tensor(w), t, padding=1) ** 2).sum()

        check_gradients(build, b)

    def test_gradcheck_strided(self):
        rng = np.random.default_rng(8)
        x = rng.standard_normal((1, 1, 6, 6))
        w = rng.standard_normal((1, 1, 3, 3))
        check_gradients(
            lambda t: (conv2d(t, Tensor(w), stride=2, padding=1) ** 2).sum(), x
        )


class TestConvGrouped:
    def test_matches_per_group_conv2d(self):
        # The fused grouped conv equals G independent conv2d calls.
        rng = np.random.default_rng(10)
        x = rng.standard_normal((2, 3, 4, 8, 8))
        w = rng.standard_normal((3, 5, 4, 3, 3))
        out = conv2d_grouped(Tensor(x), Tensor(w), padding=1).data
        for g in range(3):
            ref = conv2d(Tensor(x[:, g]), Tensor(w[g]), padding=1).data
            np.testing.assert_allclose(out[:, g], ref, atol=1e-10)

    def test_stride_and_padding(self):
        rng = np.random.default_rng(11)
        x = rng.standard_normal((1, 2, 3, 9, 9))
        w = rng.standard_normal((2, 4, 3, 3, 3))
        out = conv2d_grouped(Tensor(x), Tensor(w), stride=2, padding=1).data
        assert out.shape == (1, 2, 4, 5, 5)
        for g in range(2):
            ref = conv2d(Tensor(x[:, g]), Tensor(w[g]), stride=2, padding=1).data
            np.testing.assert_allclose(out[:, g], ref, atol=1e-10)

    def test_bias_added_per_group_channel(self):
        x = Tensor(np.zeros((1, 2, 1, 3, 3)))
        w = Tensor(np.zeros((2, 2, 1, 1, 1)))
        b = Tensor(np.arange(4.0).reshape(2, 2))
        out = conv2d_grouped(x, w, bias=b).data
        np.testing.assert_allclose(out[0, :, :, 0, 0], np.arange(4.0).reshape(2, 2))

    def test_shape_validation(self):
        x = Tensor(np.zeros((1, 2, 3, 4, 4)))
        with pytest.raises(ValueError):
            conv2d_grouped(x, Tensor(np.zeros((3, 2, 3, 3, 3))))
        with pytest.raises(ValueError):
            conv2d_grouped(x, Tensor(np.zeros((2, 2, 4, 3, 3))))

    def test_gradcheck_input(self):
        rng = np.random.default_rng(12)
        w = rng.standard_normal((2, 2, 2, 3, 3))

        def build(t):
            return (conv2d_grouped(t, Tensor(w), padding=1) ** 2).sum()

        check_gradients(build, rng.standard_normal((1, 2, 2, 4, 4)))

    def test_gradcheck_weight(self):
        rng = np.random.default_rng(13)
        x = rng.standard_normal((1, 2, 2, 4, 4))

        def build(t):
            return (conv2d_grouped(Tensor(x), t, padding=1) ** 2).sum()

        check_gradients(build, rng.standard_normal((2, 2, 2, 3, 3)))

    def test_gradcheck_strided_and_bias(self):
        rng = np.random.default_rng(14)
        x = rng.standard_normal((1, 2, 1, 5, 5))
        w = rng.standard_normal((2, 2, 1, 3, 3))

        def build_bias(t):
            return (conv2d_grouped(Tensor(x), Tensor(w), bias=t, stride=2, padding=1) ** 2).sum()

        check_gradients(build_bias, rng.standard_normal((2, 2)))

        def build_x(t):
            return (conv2d_grouped(t, Tensor(w), stride=2) ** 2).sum()

        check_gradients(build_x, rng.standard_normal((1, 2, 1, 5, 5)))


class TestRingExpand:
    @pytest.mark.parametrize("name", ["ri4", "c", "rh4", "ro4", "h", "rh4i"])
    def test_expansion_matches_isomorphic_matrix(self, name):
        spec = get_ring(name)
        n = spec.n
        rng = np.random.default_rng(9)
        g = rng.standard_normal((2, 3, n, 1, 1))
        w = ring_expand(Tensor(g), spec.ring.m_tensor).data
        for ot in range(2):
            for ct in range(3):
                block = w[ot * n : (ot + 1) * n, ct * n : (ct + 1) * n, 0, 0]
                np.testing.assert_allclose(
                    block, spec.ring.isomorphic_matrix(g[ot, ct, :, 0, 0]), atol=1e-12
                )

    def test_weight_count_reduction(self):
        # n-times fewer real weights than the real-valued layer (Section III-D).
        spec = get_ring("ri4")
        g = np.zeros((8 // 4, 8 // 4, 4, 3, 3))
        w = ring_expand(Tensor(g), spec.ring.m_tensor)
        assert w.shape == (8, 8, 3, 3)
        assert g.size * 4 == w.size

    def test_gradcheck(self):
        spec = get_ring("rh4")
        rng = np.random.default_rng(10)
        g = rng.standard_normal((1, 2, 4, 3, 3))
        check_gradients(
            lambda t: (ring_expand(t, spec.ring.m_tensor) ** 2).sum(), g
        )

    def test_ring_conv_equals_tuplewise_ring_multiply(self):
        # A 1x1 RCONV on a single spatial position is the ring product sum.
        spec = get_ring("rh4")
        rng = np.random.default_rng(11)
        g = rng.standard_normal((1, 2, 4, 1, 1))
        x = rng.standard_normal((1, 8, 1, 1))
        w = ring_expand(Tensor(g), spec.ring.m_tensor)
        out = conv2d(Tensor(x), w, padding=0).data[0, :, 0, 0]
        expect = sum(
            spec.ring.multiply(g[0, ct, :, 0, 0], x[0, ct * 4 : (ct + 1) * 4, 0, 0])
            for ct in range(2)
        )
        np.testing.assert_allclose(out, expect, atol=1e-10)

    def test_mismatched_tensor_raises(self):
        with pytest.raises(ValueError):
            ring_expand(Tensor(np.zeros((1, 1, 2, 1, 1))), np.zeros((4, 4, 4)))


class TestPixelShuffle:
    def test_round_trip(self):
        rng = np.random.default_rng(12)
        x = rng.standard_normal((2, 4, 3, 5))
        up = pixel_shuffle(Tensor(x), 2)
        assert up.shape == (2, 1, 6, 10)
        down = pixel_unshuffle(up, 2)
        np.testing.assert_allclose(down.data, x, atol=1e-12)

    def test_unshuffle_round_trip(self):
        rng = np.random.default_rng(13)
        x = rng.standard_normal((1, 3, 8, 8))
        down = pixel_unshuffle(Tensor(x), 2)
        assert down.shape == (1, 12, 4, 4)
        np.testing.assert_allclose(pixel_shuffle(down, 2).data, x, atol=1e-12)

    def test_gradchecks(self):
        rng = np.random.default_rng(14)
        x = rng.standard_normal((1, 4, 2, 2))
        check_gradients(lambda t: (pixel_shuffle(t, 2) ** 2).sum(), x)
        y = rng.standard_normal((1, 1, 4, 4))
        check_gradients(lambda t: (pixel_unshuffle(t, 2) ** 2).sum(), y)

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            pixel_shuffle(Tensor(np.zeros((1, 3, 2, 2))), 2)
        with pytest.raises(ValueError):
            pixel_unshuffle(Tensor(np.zeros((1, 3, 5, 4))), 2)


class TestPoolingAndLoss:
    def test_avg_pool_value(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradcheck(self):
        rng = np.random.default_rng(15)
        x = rng.standard_normal((1, 2, 4, 4))
        check_gradients(lambda t: (avg_pool2d(t, 2) ** 2).sum(), x)

    def test_cross_entropy_value_uniform(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = softmax_cross_entropy(logits, np.array([0, 3]))
        assert float(loss.data) == pytest.approx(np.log(4), abs=1e-6)

    def test_cross_entropy_gradcheck(self):
        rng = np.random.default_rng(16)
        logits = rng.standard_normal((3, 5))
        labels = np.array([0, 2, 4])
        check_gradients(
            lambda t: softmax_cross_entropy(t, labels), logits, rtol=1e-3, atol=1e-6
        )
