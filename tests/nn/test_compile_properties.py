"""Seeded randomized sweep: compiled replay == eager forward, bitwise.

Mirrors the machinery of ``tests/nn/test_properties.py``: every case
index seeds its own rng, draws one model family (conv stacks, ring
convs, the FRCONV fast path, shuffle/pool mixes), a conv geometry, a
kernel backend, and asserts that the traced :class:`ExecutionPlan`
reproduces the eager forward bit for bit — on the traced input, on a
second input, and on a repeated replay (steady-state arena reuse).

Cases are fully deterministic (fixed seeds), so the sweep never flakes:
a failing index reproduces with ``-k case042``.  The first
``SMOKE_COUNT`` indices are the ``smoke``-marked fast subset CI runs in
every matrix job.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.backend import BlockedBackend, NumpyBackend, ThreadedBackend, use_backend
from repro.nn.compile import build_plan
from repro.nn.fastconv import FastRingConv2d
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    LeakyReLU,
    PixelShuffle,
    PixelUnshuffle,
    ReLU,
    RingConv2d,
    Sequential,
)
from repro.nn.tensor import Tensor, no_grad
from repro.rings.catalog import get_ring

CASE_COUNT = 160
SMOKE_COUNT = 16

# Rings covering tuple sizes n = 2 and n = 4, cheap and expensive m.
RING_KEYS = ("c", "ri4", "h")


def _threaded_forced() -> ThreadedBackend:
    backend = ThreadedBackend(jobs=2)
    backend.MIN_PARALLEL_ELEMENTS = 0
    return backend


def _backend(rng: np.random.Generator):
    return [
        NumpyBackend,
        _threaded_forced,
        lambda: BlockedBackend(block=1),
        lambda: BlockedBackend(block=2),
    ][int(rng.integers(0, 4))]()


def _check(model, x: np.ndarray, backend) -> None:
    model.eval()
    plan = build_plan(model, x, backend=backend)
    for probe in (x, x * -0.5 + 0.25):
        with use_backend(backend), no_grad():
            eager = model(Tensor(probe)).data
        for _ in range(2):
            replayed = plan.run(probe, backend)
            assert replayed.shape == eager.shape
            assert replayed.tobytes() == eager.tobytes()


def _act(rng: np.random.Generator):
    return ReLU() if rng.integers(0, 2) else LeakyReLU(0.1)


def _family_conv_stack(rng: np.random.Generator):
    """Plain conv stacks with random kernels/strides/paddings."""
    depth = int(rng.integers(1, 4))
    channels = [int(rng.integers(1, 4)) for _ in range(depth + 1)]
    h, w = int(rng.integers(6, 12)), int(rng.integers(6, 12))
    x = rng.standard_normal((int(rng.integers(1, 3)), channels[0], h, w))
    layers = []
    for i in range(depth):
        padding = int(rng.integers(0, 3))
        # Keep the kernel inside the running (padded) feature map.
        kernel = min(int(rng.integers(1, 4)), h + 2 * padding, w + 2 * padding)
        stride = int(rng.integers(1, 3))
        layers.append(
            Conv2d(
                channels[i],
                channels[i + 1],
                kernel,
                stride=stride,
                padding=padding,
                bias=bool(rng.integers(0, 2)),
                seed=int(rng.integers(0, 1000)),
            )
        )
        layers.append(_act(rng))
        h = (h + 2 * padding - kernel) // stride + 1
        w = (w + 2 * padding - kernel) // stride + 1
    return Sequential(*layers), x


def _family_ring_conv(rng: np.random.Generator):
    """RCONV layers (ring weights expanded through M)."""
    spec = get_ring(RING_KEYS[int(rng.integers(0, len(RING_KEYS)))])
    n = spec.ring.n
    tuples = int(rng.integers(1, 3))
    model = Sequential(
        RingConv2d(
            n * tuples,
            n * tuples,
            3,
            spec.ring,
            stride=int(rng.integers(1, 3)),
            padding=int(rng.integers(0, 2)),
            seed=int(rng.integers(0, 1000)),
        ),
        _act(rng),
    )
    h, w = int(rng.integers(5, 10)), int(rng.integers(5, 10))
    x = rng.standard_normal((1, n * tuples, h, w))
    return model, x


def _family_frconv(rng: np.random.Generator):
    """The FRCONV fast pipeline (grouped conv + tuple transforms)."""
    spec = get_ring(RING_KEYS[int(rng.integers(0, len(RING_KEYS)))])
    n = spec.n
    tuples = int(rng.integers(1, 3))
    width = n * tuples
    layers = []
    for i in range(int(rng.integers(1, 3))):
        layers.append(
            FastRingConv2d(
                width,
                width,
                int(rng.integers(1, 4)),
                spec,
                stride=int(rng.integers(1, 3)),
                padding=int(rng.integers(0, 2)),
                bias=bool(rng.integers(0, 2)),
                seed=int(rng.integers(0, 1000)),
            )
        )
        layers.append(_act(rng))
    h = int(rng.integers(6, 10))
    x = rng.standard_normal((1, width, h, h))
    return Sequential(*layers), x


def _family_shuffle_pool(rng: np.random.Generator):
    """pixel_unshuffle -> conv -> act -> pixel_shuffle, sometimes pooled."""
    factor = int(rng.integers(2, 4))
    c = int(rng.integers(1, 3))
    mid = c * factor**2
    layers = [
        PixelUnshuffle(factor),
        Conv2d(mid, mid, 3, padding=1, seed=int(rng.integers(0, 1000))),
        _act(rng),
        PixelShuffle(factor),
    ]
    if rng.integers(0, 2):
        layers.append(AvgPool2d(2))
    h = factor * 2 * int(rng.integers(1, 3))
    x = rng.standard_normal((int(rng.integers(1, 3)), c, h, h))
    return Sequential(*layers), x


FAMILIES = (
    _family_conv_stack,
    _family_ring_conv,
    _family_frconv,
    _family_shuffle_pool,
)


def _run_case(case: int) -> None:
    rng = np.random.default_rng(0xA11CE + 7919 * case)
    model, x = FAMILIES[case % len(FAMILIES)](rng)
    _check(model, x, _backend(rng))


@pytest.mark.smoke
@pytest.mark.parametrize("case", range(SMOKE_COUNT), ids=lambda c: f"case{c:03d}")
def test_compiled_property_case_smoke(case: int) -> None:
    _run_case(case)


@pytest.mark.parametrize(
    "case", range(SMOKE_COUNT, CASE_COUNT), ids=lambda c: f"case{c:03d}"
)
def test_compiled_property_case(case: int) -> None:
    _run_case(case)
