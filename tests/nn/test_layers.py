"""Tests for layers: ring conv, directional ReLU, module plumbing."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradients
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    DirectionalReLU2d,
    Flatten,
    GlobalAvgPool,
    Identity,
    LeakyReLU,
    Linear,
    PixelShuffle,
    PixelUnshuffle,
    ReLU,
    RingConv2d,
    Sequential,
    make_activation,
)
from repro.nn.tensor import Tensor
from repro.rings.catalog import get_ring
from repro.rings.nonlinearity import ComponentReLU, hadamard_relu


class TestConv2dLayer:
    @pytest.mark.smoke
    def test_shapes_and_param_count(self):
        layer = Conv2d(3, 8, 3, seed=0)
        assert layer.weight.shape == (8, 3, 3, 3)
        out = layer(Tensor(np.zeros((2, 3, 6, 6))))
        assert out.shape == (2, 8, 6, 6)
        assert layer.num_parameters() == 8 * 3 * 9 + 8

    def test_no_bias(self):
        layer = Conv2d(2, 2, 1, bias=False, seed=0)
        assert layer.bias is None
        assert layer.num_parameters() == 4

    def test_macs_per_pixel(self):
        assert Conv2d(16, 32, 3).macs_per_pixel() == 16 * 32 * 9


class TestRingConv2d:
    @pytest.mark.parametrize("name", ["ri2", "ri4", "c", "rh4", "h"])
    def test_forward_shape(self, name):
        spec = get_ring(name)
        layer = RingConv2d(8, 8, 3, spec.ring, seed=0)
        out = layer(Tensor(np.zeros((1, 8, 5, 5))))
        assert out.shape == (1, 8, 5, 5)

    def test_weight_reduction_factor_n(self):
        # Paper: n-times fewer real-valued weights.
        real = Conv2d(8, 8, 3, bias=False)
        for name, n in (("ri2", 2), ("ri4", 4)):
            ring_layer = RingConv2d(8, 8, 3, get_ring(name).ring, bias=False)
            assert ring_layer.num_parameters() * n == real.num_parameters()

    def test_channel_divisibility_enforced(self):
        with pytest.raises(ValueError):
            RingConv2d(6, 8, 3, get_ring("ri4").ring)

    def test_identity_ring_is_grouped_conv(self):
        # R_I ring conv == group convolution with n groups interleaved.
        spec = get_ring("ri2")
        layer = RingConv2d(4, 4, 3, spec.ring, bias=False, seed=1)
        w = layer.expanded_weight()
        # Cross-component blocks must be exactly zero.
        for ot in range(2):
            for ct in range(2):
                block = w[ot * 2 : ot * 2 + 2, ct * 2 : ct * 2 + 2]
                assert np.all(block[0, 1] == 0) and np.all(block[1, 0] == 0)

    def test_gradient_flows_to_ring_weights(self):
        spec = get_ring("rh4")
        layer = RingConv2d(4, 4, 3, spec.ring, seed=2)
        out = layer(Tensor(np.random.default_rng(0).standard_normal((1, 4, 4, 4))))
        (out**2).sum().backward()
        assert layer.g.grad is not None
        assert np.abs(layer.g.grad).max() > 0

    def test_gradcheck_through_layer(self):
        spec = get_ring("c")
        layer = RingConv2d(4, 4, 3, spec.ring, bias=False, seed=3)
        x = np.random.default_rng(1).standard_normal((1, 4, 4, 4))

        def build(t):
            layer.g = type(layer.g)(t.data) if not isinstance(t, type(layer.g)) else t
            # rebuild forward by hand to keep t in the graph
            from repro.nn.functional import conv2d, ring_expand

            w = ring_expand(t, spec.ring.m_tensor)
            return (conv2d(Tensor(x), w, padding=1) ** 2).sum()

        check_gradients(build, layer.g.data.copy())

    def test_macs_per_pixel_with_fast_algorithm(self):
        spec = get_ring("rh4i")  # m = 5
        layer = RingConv2d(8, 8, 3, spec.ring)
        assert layer.macs_per_pixel(spec.fast.num_products) == 2 * 2 * 5 * 9
        # Default assumes m = n.
        assert layer.macs_per_pixel() == 2 * 2 * 4 * 9


class TestDirectionalReLU2d:
    def test_matches_reference_nonlinearity(self):
        nonlin = hadamard_relu(4)
        layer = DirectionalReLU2d(nonlin)
        rng = np.random.default_rng(2)
        x = rng.standard_normal((2, 8, 3, 3))
        out = layer(Tensor(x)).data
        # Reference: move tuples to the trailing axis and apply directly.
        ref = np.zeros_like(x)
        for t in range(2):
            tup = x[:, t * 4 : (t + 1) * 4].transpose(0, 2, 3, 1)
            ref[:, t * 4 : (t + 1) * 4] = nonlin(tup).transpose(0, 3, 1, 2)
        np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_rejects_indivisible_channels(self):
        layer = DirectionalReLU2d(hadamard_relu(4))
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((1, 6, 2, 2))))

    def test_gradcheck(self):
        layer = DirectionalReLU2d(hadamard_relu(2))
        x = np.random.default_rng(3).standard_normal((1, 4, 3, 3)) + 0.05
        check_gradients(lambda t: (layer(t) ** 2).sum(), x, atol=1e-5)

    def test_make_activation_dispatch(self):
        assert isinstance(make_activation(hadamard_relu(4)), DirectionalReLU2d)
        assert isinstance(make_activation(ComponentReLU(n=4)), ReLU)


class TestMiscLayers:
    def test_sequential_compose_and_index(self):
        model = Sequential(Conv2d(1, 2, 3, seed=0), ReLU(), Conv2d(2, 1, 3, seed=1))
        out = model(Tensor(np.zeros((1, 1, 5, 5))))
        assert out.shape == (1, 1, 5, 5)
        assert len(model) == 3
        assert isinstance(model[1], ReLU)

    def test_linear(self):
        layer = Linear(4, 3, seed=0)
        out = layer(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 3)

    def test_batchnorm_normalizes(self):
        layer = BatchNorm2d(3)
        rng = np.random.default_rng(4)
        x = rng.standard_normal((8, 3, 6, 6)) * 5 + 2
        out = layer(Tensor(x)).data
        assert abs(out.mean()) < 0.1
        assert abs(out.std() - 1.0) < 0.1

    def test_batchnorm_eval_uses_running_stats(self):
        layer = BatchNorm2d(2, momentum=1.0)
        rng = np.random.default_rng(5)
        x = rng.standard_normal((4, 2, 4, 4)) * 3 + 1
        layer(Tensor(x))  # capture stats
        layer.eval()
        out = layer(Tensor(x)).data
        assert abs(out.mean()) < 0.2

    def test_pixelshuffle_layers(self):
        up = PixelShuffle(2)(Tensor(np.zeros((1, 8, 2, 2))))
        assert up.shape == (1, 2, 4, 4)
        down = PixelUnshuffle(2)(Tensor(np.zeros((1, 2, 4, 4))))
        assert down.shape == (1, 8, 2, 2)

    def test_global_pool_flatten_identity(self):
        x = Tensor(np.ones((2, 3, 4, 4)))
        assert GlobalAvgPool()(x).shape == (2, 3)
        assert Flatten()(x).shape == (2, 48)
        assert Identity()(x) is x
        assert LeakyReLU(0.3)(Tensor(np.array([-1.0]))).data[0] == pytest.approx(-0.3)


class TestModulePlumbing:
    def test_named_parameters_paths(self):
        model = Sequential(Conv2d(1, 1, 1, seed=0), ReLU())
        names = [n for n, _ in model.named_parameters()]
        assert "layers.0.weight" in names and "layers.0.bias" in names

    def test_state_dict_round_trip(self):
        a = Conv2d(2, 2, 3, seed=0)
        b = Conv2d(2, 2, 3, seed=99)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_raises(self):
        a = Conv2d(2, 2, 3)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": a.weight.data})

    def test_train_eval_propagates(self):
        model = Sequential(BatchNorm2d(2), ReLU())
        model.eval()
        assert not model[0].training
        model.train()
        assert model[0].training

    def test_zero_grad(self):
        layer = Conv2d(1, 1, 1, seed=0)
        out = layer(Tensor(np.ones((1, 1, 2, 2))))
        (out**2).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestEvalWeightCacheConcurrency:
    """Regression: eval-mode weight caches under concurrent forwards.

    Before the snapshot-read + locked-fill fix, ``_expanded_eval_weight``
    read ``self._weight_cache`` three times — a concurrent ``train()`` /
    ``load_state_dict()`` clearing the cache between the staleness check
    and the ``[1]`` subscript could crash with ``TypeError: 'NoneType'
    object is not subscriptable`` (an interleaving whose reachability
    depends on where the interpreter can switch threads — it is real on
    free-threaded builds and older eval loops), and concurrent
    first-touch raced duplicate fills.  These tests hammer exactly those
    interleavings so the guarantee is pinned behaviorally, not by code
    inspection.
    """

    @staticmethod
    def _hammer(layer, x, expected, clear, iterations=300, threads=4):
        import threading

        from repro.nn.tensor import no_grad

        errors: list[BaseException] = []
        stop = threading.Event()

        def forward_loop() -> None:
            try:
                with no_grad():
                    for _ in range(iterations):
                        out = layer(Tensor(x)).data
                        if not np.array_equal(out, expected):
                            raise AssertionError("stale or torn cached weights")
            except BaseException as exc:
                errors.append(exc)
            finally:
                stop.set()

        def clear_loop() -> None:
            while not stop.is_set():
                clear()

        workers = [threading.Thread(target=forward_loop) for _ in range(threads)]
        clearer = threading.Thread(target=clear_loop)
        for thread in workers:
            thread.start()
        clearer.start()
        for thread in workers:
            thread.join()
        clearer.join()
        assert not errors, errors[0]

    def test_ring_conv_cache_survives_concurrent_clears(self):
        spec = get_ring("ri4")
        layer = RingConv2d(4, 4, 3, ring=spec.ring, seed=0)
        layer.eval()
        x = np.random.default_rng(0).standard_normal((1, 4, 6, 6))
        from repro.nn.tensor import no_grad

        with no_grad():
            expected = layer(Tensor(x)).data
        self._hammer(layer, x, expected, layer._clear_weight_cache)

    def test_fastconv_cache_survives_concurrent_clears(self):
        from repro.nn.fastconv import FastRingConv2d

        spec = get_ring("ri4")
        layer = FastRingConv2d(4, 4, 3, spec, seed=0)
        layer.eval()
        x = np.random.default_rng(1).standard_normal((1, 4, 6, 6))
        from repro.nn.tensor import no_grad

        with no_grad():
            expected = layer(Tensor(x)).data
        self._hammer(layer, x, expected, layer._clear_weight_cache)

    def test_concurrent_first_touch_fills_once(self):
        """Many threads racing the very first eval forward must agree
        bit-for-bit and leave one coherent cache behind."""
        import threading

        from repro.nn.tensor import no_grad

        spec = get_ring("h")
        layer = RingConv2d(4, 4, 3, ring=spec.ring, seed=2)
        layer.eval()
        x = np.random.default_rng(2).standard_normal((1, 4, 6, 6))
        outputs: list[np.ndarray] = [None] * 8  # type: ignore[list-item]
        barrier = threading.Barrier(8)

        def first_touch(slot: int) -> None:
            barrier.wait()
            with no_grad():
                outputs[slot] = layer(Tensor(x)).data

        threads = [
            threading.Thread(target=first_touch, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for out in outputs[1:]:
            assert np.array_equal(out, outputs[0])
        assert layer._weight_cache is not None
