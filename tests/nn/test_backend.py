"""Backend protocol tests: selection precedence and bit-exact parity.

Every registered backend must produce **bit-identical** outputs and
gradients to the reference :class:`NumpyBackend` — the acceptance bar
for the pluggable-kernel API, since experiment artifacts and cache
fingerprints must never depend on the execution substrate.
"""

import os

import numpy as np
import pytest

from repro.nn.backend import (
    BACKEND_ENV_VAR,
    Backend,
    BlockedBackend,
    NumpyBackend,
    ThreadedBackend,
    available_backends,
    current_backend,
    default_backend,
    get_backend,
    make_backend,
    use_backend,
)
from repro.nn.fastconv import FastRingConv2d
from repro.nn.functional import avg_pool2d, conv2d, conv2d_grouped
from repro.nn.inference import Predictor
from repro.nn.tensor import Tensor, no_grad
from repro.rings.catalog import get_ring


def _threaded_forced() -> ThreadedBackend:
    """A ThreadedBackend that parallelizes even tiny test problems."""
    backend = ThreadedBackend(jobs=3)
    backend.MIN_PARALLEL_ELEMENTS = 0
    return backend


def _alternative_backends() -> list[Backend]:
    """Every non-reference backend, configured so its special path runs."""
    return [_threaded_forced(), BlockedBackend(block=1), BlockedBackend(block=2)]


def _alt_ids() -> list[str]:
    return ["threaded:3", "blocked:1", "blocked:2"]


# ----------------------------------------------------------------------
# selection
# ----------------------------------------------------------------------
class TestSelection:
    @pytest.mark.smoke
    def test_default_is_numpy_and_context_overrides(self, monkeypatch):
        # CI runs this suite under a REPRO_BACKEND matrix; neutralize it
        # here — this test pins down the *no-environment* precedence.
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert isinstance(current_backend(), NumpyBackend)
        assert current_backend() is default_backend()
        threaded = ThreadedBackend(jobs=2)
        with use_backend(threaded):
            assert current_backend() is threaded
            with use_backend("blocked"):
                assert isinstance(current_backend(), BlockedBackend)
            assert current_backend() is threaded
        assert current_backend() is default_backend()

    def test_env_var_between_default_and_context(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "threaded:2")
        env_backend = current_backend()
        assert isinstance(env_backend, ThreadedBackend) and env_backend.jobs == 2
        assert current_backend() is env_backend  # instance cached per spec
        with use_backend("numpy"):
            assert isinstance(current_backend(), NumpyBackend)
        monkeypatch.delenv(BACKEND_ENV_VAR)
        assert current_backend() is default_backend()

    def test_env_var_invalid_raises_by_name(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "cuda")
        with pytest.raises(ValueError, match=BACKEND_ENV_VAR):
            current_backend()

    def test_make_backend_specs(self):
        assert isinstance(make_backend("numpy"), NumpyBackend)
        assert make_backend("threaded:5").jobs == 5
        assert make_backend("blocked:4").block == 4
        assert make_backend("Blocked").block == 1  # case-insensitive, default arg
        instance = BlockedBackend()
        assert make_backend(instance) is instance

    def test_make_backend_errors_name_alternatives(self):
        with pytest.raises(ValueError, match="unknown backend 'gpu'"):
            make_backend("gpu")
        with pytest.raises(ValueError, match="numpy"):
            make_backend("gpu")  # message lists what IS available
        with pytest.raises(ValueError, match="bad backend spec"):
            make_backend("threaded:lots")
        with pytest.raises(ValueError):
            ThreadedBackend(jobs=0)
        with pytest.raises(ValueError):
            BlockedBackend(block=0)

    def test_available_backends_registered(self):
        names = available_backends()
        assert {"numpy", "threaded", "blocked"} <= set(names)

    def test_get_backend_shares_one_instance_per_spec(self):
        shared = get_backend("threaded:7")
        assert get_backend("threaded:7") is shared  # no thread-pool churn
        assert make_backend("threaded:7") is not shared  # explicit fresh copy
        instance = BlockedBackend()
        assert get_backend(instance) is instance


# ----------------------------------------------------------------------
# primitive parity (bit-exact, not allclose)
# ----------------------------------------------------------------------
def _conv_case(backend, xd, wd, bd, stride, padding, grouped):
    op = conv2d_grouped if grouped else conv2d
    x = Tensor(xd.copy(), requires_grad=True)
    w = Tensor(wd.copy(), requires_grad=True)
    b = Tensor(bd.copy(), requires_grad=True)
    with use_backend(backend):
        out = op(x, w, b, stride=stride, padding=padding)
        (out**2).sum().backward()
        with no_grad():
            inferred = op(Tensor(xd), Tensor(wd), Tensor(bd), stride=stride, padding=padding)
    return out.data, inferred.data, x.grad, w.grad, b.grad


@pytest.mark.parametrize("backend", _alternative_backends(), ids=_alt_ids())
@pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (3, 2)])
class TestConvParity:
    def test_conv2d_bit_identical(self, backend, stride, padding):
        rng = np.random.default_rng(0)
        xd = rng.standard_normal((5, 3, 12, 12))
        wd = rng.standard_normal((4, 3, 3, 3))
        bd = rng.standard_normal(4)
        base = _conv_case(NumpyBackend(), xd, wd, bd, stride, padding, grouped=False)
        got = _conv_case(backend, xd, wd, bd, stride, padding, grouped=False)
        for name, ref, other in zip(("out", "infer", "dx", "dw", "db"), base, got, strict=True):
            assert np.array_equal(ref, other), f"{name} differs on {backend!r}"

    def test_conv2d_grouped_bit_identical(self, backend, stride, padding):
        rng = np.random.default_rng(1)
        xd = rng.standard_normal((5, 4, 2, 11, 11))
        wd = rng.standard_normal((4, 3, 2, 3, 3))
        bd = rng.standard_normal((4, 3))
        base = _conv_case(NumpyBackend(), xd, wd, bd, stride, padding, grouped=True)
        got = _conv_case(backend, xd, wd, bd, stride, padding, grouped=True)
        for name, ref, other in zip(("out", "infer", "dx", "dw", "db"), base, got, strict=True):
            assert np.array_equal(ref, other), f"{name} differs on {backend!r}"


def test_grouped_batch_one_splits_group_axis_bit_identical():
    """Batch-1 FRCONV-style work parallelizes over the m products."""
    rng = np.random.default_rng(20)
    xd = rng.standard_normal((1, 8, 2, 10, 10))
    wd = rng.standard_normal((8, 3, 2, 3, 3))
    bd = rng.standard_normal((8, 3))
    base = _conv_case(NumpyBackend(), xd, wd, bd, 1, 1, grouped=True)
    got = _conv_case(_threaded_forced(), xd, wd, bd, 1, 1, grouped=True)
    for name, ref, other in zip(("out", "infer", "dx", "dw", "db"), base, got, strict=True):
        assert np.array_equal(ref, other), f"{name} differs on group-axis split"


@pytest.mark.parametrize("backend", _alternative_backends(), ids=_alt_ids())
def test_infer_preserves_float32_dtype(backend):
    """The raw ndarray API must match the reference dtype, not force f64."""
    rng = np.random.default_rng(21)
    x = rng.standard_normal((6, 2, 9, 9)).astype(np.float32)
    w = rng.standard_normal((3, 18)).astype(np.float32)
    ref = NumpyBackend().conv2d_infer(x, w, 3, 3, 1, 1)
    got = backend.conv2d_infer(x, w, 3, 3, 1, 1)
    assert got.dtype == ref.dtype == np.float32
    np.testing.assert_allclose(got, ref, rtol=1e-6)
    xg = rng.standard_normal((6, 4, 2, 9, 9)).astype(np.float32)
    wg = rng.standard_normal((4, 3, 18)).astype(np.float32)
    ref_g = NumpyBackend().conv2d_grouped_infer(xg, wg, 3, 3, 1, 1)
    got_g = backend.conv2d_grouped_infer(xg, wg, 3, 3, 1, 1)
    assert got_g.dtype == ref_g.dtype == np.float32
    np.testing.assert_allclose(got_g, ref_g, rtol=1e-6)


@pytest.mark.parametrize("backend", _alternative_backends(), ids=_alt_ids())
class TestOtherPrimitiveParity:
    def test_matmul_and_pooling_bit_identical(self, backend):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((32, 12))
        b = rng.standard_normal((12, 8))
        batched = rng.standard_normal((6, 9, 7))
        batched_b = rng.standard_normal((6, 7, 5))
        pool_in = rng.standard_normal((4, 3, 8, 8))
        ref = NumpyBackend()
        assert np.array_equal(backend.matmul(a, b), ref.matmul(a, b))
        assert np.array_equal(backend.matmul(batched, batched_b), ref.matmul(batched, batched_b))
        assert np.array_equal(
            backend.matmul(batched, batched_b[0]), ref.matmul(batched, batched_b[0])
        )
        assert np.array_equal(backend.avg_pool2d(pool_in, 2), ref.avg_pool2d(pool_in, 2))

    def test_linear_and_pool_layers_through_graph(self, backend):
        rng = np.random.default_rng(3)
        xd = rng.standard_normal((16, 2, 4, 4))

        def run(chosen):
            x = Tensor(xd.copy(), requires_grad=True)
            with use_backend(chosen):
                out = avg_pool2d(x, 2)
                (out**2).sum().backward()
            return out.data, x.grad

        base_out, base_grad = run(NumpyBackend())
        got_out, got_grad = run(backend)
        assert np.array_equal(base_out, got_out)
        assert np.array_equal(base_grad, got_grad)


# ----------------------------------------------------------------------
# full-model parity: FastRingConv2d forward/backward, Predictor
# ----------------------------------------------------------------------
@pytest.mark.parametrize("ring_name,n", [("c", 2), ("ri4", 4), ("h", 4)])
@pytest.mark.parametrize("stride,padding", [(1, 1), (2, 0)])
def test_fastringconv_forward_backward_bit_identical(ring_name, n, stride, padding):
    spec = get_ring(ring_name)
    rng = np.random.default_rng(4)
    xd = rng.standard_normal((4, 2 * n, 8, 8))

    def run(backend):
        layer = FastRingConv2d(2 * n, 2 * n, 3, spec, stride=stride, padding=padding, seed=0)
        x = Tensor(xd.copy(), requires_grad=True)
        with use_backend(backend):
            out = layer(x)
            (out**2).sum().backward()
        return out.data, x.grad, layer.g.grad, layer.bias.grad

    base = run(NumpyBackend())
    for backend in _alternative_backends():
        got = run(backend)
        for name, ref, other in zip(("out", "dx", "dg", "dbias"), base, got, strict=True):
            assert np.array_equal(ref, other), f"{name} differs on {backend!r} ({ring_name})"


@pytest.mark.smoke
def test_fastringconv_parity_smoke():
    spec = get_ring("ri4")
    rng = np.random.default_rng(5)
    xd = rng.standard_normal((2, 4, 6, 6))
    outs = []
    for backend in ["numpy", "threaded:2", "blocked"]:
        layer = FastRingConv2d(4, 4, 3, spec, seed=0)
        with use_backend(backend):
            outs.append(layer(Tensor(xd.copy())).data)
    assert np.array_equal(outs[0], outs[1])
    assert np.array_equal(outs[0], outs[2])


def test_predictor_backend_parity_batched_and_tiled():
    from repro.models.ernet import dn_ernet_pu

    model = dn_ernet_pu(blocks=1, ratio=1, seed=0)
    rng = np.random.default_rng(6)
    for param in model.parameters():
        param.data[...] += 0.05 * rng.standard_normal(param.shape)
    x = rng.standard_normal((5, 1, 24, 24))
    base = Predictor(model, batch_size=2, tile=24, backend="numpy")(x)
    for backend in [_threaded_forced(), BlockedBackend(block=1)]:
        assert np.array_equal(Predictor(model, batch_size=2, tile=24, backend=backend)(x), base)
        # tile smaller than the image => the tiled-with-halo path
        tiled = Predictor(model, batch_size=2, tile=12, backend=backend)(x)
        assert np.array_equal(tiled, base)


def test_predictor_without_backend_uses_ambient(monkeypatch):
    from repro.models.ernet import dn_ernet_pu

    model = dn_ernet_pu(blocks=1, ratio=1, seed=0)
    x = np.random.default_rng(7).standard_normal((2, 1, 16, 16))
    base = Predictor(model, tile=16)(x)
    monkeypatch.setenv(BACKEND_ENV_VAR, "blocked")
    assert np.array_equal(Predictor(model, tile=16)(x), base)
    with use_backend("threaded:2"):
        assert np.array_equal(Predictor(model, tile=16)(x), base)


# ----------------------------------------------------------------------
# backward uses the forward-time backend
# ----------------------------------------------------------------------
def test_backward_captures_forward_backend():
    calls = []

    class Spy(ThreadedBackend):
        def conv2d_grad_input(self, *args, **kwargs):
            calls.append("grad_input")
            return super().conv2d_grad_input(*args, **kwargs)

    rng = np.random.default_rng(8)
    x = Tensor(rng.standard_normal((2, 2, 6, 6)), requires_grad=True)
    w = Tensor(rng.standard_normal((2, 2, 3, 3)), requires_grad=True)
    with use_backend(Spy(jobs=1)):
        out = conv2d(x, w, padding=1)
    # graph built under the spy; backward after the context has exited
    (out**2).sum().backward()
    assert calls == ["grad_input"]


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCliBackendFlag:
    def test_backend_flag_exports_env(self, monkeypatch, capsys):
        from repro.experiments.cli import main

        # setenv first so monkeypatch records (and later restores) the
        # pre-test state even though main() writes os.environ itself.
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert main(["list", "--backend", "threaded:2"]) == 0
        assert os.environ.get(BACKEND_ENV_VAR) == "threaded:2"
        capsys.readouterr()

    def test_bad_backend_flag_is_a_clean_error(self, monkeypatch):
        from repro.experiments.cli import main

        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        with pytest.raises(SystemExit, match="unknown backend"):
            main(["list", "--backend", "gpu"])
        assert BACKEND_ENV_VAR not in os.environ


# ----------------------------------------------------------------------
# EinsumBackend: the deterministic (shape-invariant) substrate
# ----------------------------------------------------------------------
class TestEinsumBackend:
    """EinsumBackend trades BLAS parity for shape-invariance: its outputs
    agree with numpy only to rounding, but never change with the batch
    size or pixel extent they were computed inside — the property the
    tiled bit-identity tests in test_inference.py build on."""

    def test_not_registered(self):
        # Registered backends promise bit-parity with numpy (artifacts
        # are backend-invariant); einsum's rounding differs by design,
        # so it must stay out of the spec-string registry.
        from repro.nn.backend import EinsumBackend

        assert "einsum" not in available_backends()
        with pytest.raises(ValueError):
            make_backend("einsum")
        assert isinstance(get_backend(EinsumBackend()), EinsumBackend)

    def test_close_to_numpy_within_rounding(self):
        from repro.nn.backend import EinsumBackend

        rng = np.random.default_rng(0)
        xd = rng.standard_normal((2, 3, 6, 6))
        wd = rng.standard_normal((4, 3, 3, 3))
        bd = rng.standard_normal(4)
        with use_backend(EinsumBackend()), no_grad():
            out = conv2d(Tensor(xd), Tensor(wd), Tensor(bd), padding=1)
        with use_backend(NumpyBackend()), no_grad():
            ref = conv2d(Tensor(xd), Tensor(wd), Tensor(bd), padding=1)
        np.testing.assert_allclose(out.data, ref.data, rtol=1e-12, atol=1e-13)

    def test_conv_output_is_batch_and_extent_invariant(self):
        """The defining property: slicing the batch, or computing the
        same window inside a wider image, returns identical bits."""
        from repro.nn.backend import EinsumBackend

        backend = EinsumBackend()
        rng = np.random.default_rng(1)
        xd = rng.standard_normal((5, 2, 8, 8))
        wd = rng.standard_normal((3, 2, 3, 3))
        with use_backend(backend), no_grad():
            full = conv2d(Tensor(xd), Tensor(wd)).data
            one = conv2d(Tensor(xd[2:3]), Tensor(wd)).data
            # Same receptive fields, narrower extent (valid conv of a
            # width-6 slab covers output columns 0..3 of the full run).
            slab = conv2d(Tensor(xd[:, :, :, :6].copy()), Tensor(wd)).data
        assert np.array_equal(one, full[2:3])
        assert np.array_equal(slab, full[:, :, :, :4])

    def test_grouped_matches_numpy_within_rounding_and_is_invariant(self):
        from repro.nn.backend import EinsumBackend

        backend = EinsumBackend()
        rng = np.random.default_rng(2)
        xd = rng.standard_normal((3, 4, 2, 5, 5))
        wd = rng.standard_normal((4, 2, 2, 3, 3))
        with use_backend(backend), no_grad():
            full = conv2d_grouped(Tensor(xd), Tensor(wd), padding=1).data
            one = conv2d_grouped(Tensor(xd[1:2]), Tensor(wd), padding=1).data
        assert np.array_equal(one, full[1:2])
        with use_backend(NumpyBackend()), no_grad():
            ref = conv2d_grouped(Tensor(xd), Tensor(wd), padding=1).data
        np.testing.assert_allclose(full, ref, rtol=1e-12, atol=1e-13)
