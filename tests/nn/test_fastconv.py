"""Tests for FRCONV — the fast ring convolution (paper eq. 12)."""

import numpy as np
import pytest

from repro.nn.fastconv import FastRingConv2d, frconv2d
from repro.nn.gradcheck import check_gradients
from repro.nn.layers import RingConv2d
from repro.nn.tensor import Tensor, no_grad
from repro.rings.catalog import get_ring


class TestFrconvEquivalence:
    @pytest.mark.smoke
    @pytest.mark.parametrize("name", ["ri2", "ri4", "c", "rh2", "rh4", "ro4", "rh4i", "h"])
    def test_matches_direct_rconv(self, name):
        # FRCONV(g) == RCONV(g) for identical ring weights (Section IV-C).
        spec = get_ring(name)
        n = spec.n
        rconv = RingConv2d(2 * n, 2 * n, 3, spec.ring, seed=0)
        frconv = FastRingConv2d(2 * n, 2 * n, 3, spec, seed=1)
        frconv.load_from_rconv(rconv)
        x = Tensor(np.random.default_rng(2).standard_normal((1, 2 * n, 6, 6)))
        np.testing.assert_allclose(frconv(x).data, rconv(x).data, atol=1e-8)

    def test_stride_and_padding_match(self):
        spec = get_ring("rh4")
        rconv = RingConv2d(4, 4, 3, spec.ring, stride=2, padding=1, seed=0)
        frconv = FastRingConv2d(4, 4, 3, spec, stride=2, padding=1, seed=0)
        frconv.load_from_rconv(rconv)
        x = Tensor(np.random.default_rng(0).standard_normal((2, 4, 8, 8)))
        np.testing.assert_allclose(frconv(x).data, rconv(x).data, atol=1e-8)

    def test_identity_ring_frconv_is_rconv(self):
        # For R_I, FRCONV degenerates to RCONV (identity transforms).
        spec = get_ring("ri4")
        assert np.array_equal(spec.fast.tx, np.eye(4))

    def test_channel_validation(self):
        spec = get_ring("ri4")
        with pytest.raises(ValueError):
            FastRingConv2d(6, 8, 3, spec)
        layer = FastRingConv2d(8, 8, 3, spec, seed=0)
        with pytest.raises(ValueError):
            frconv2d(Tensor(np.zeros((1, 4, 4, 4))), layer.g, spec)

    def test_load_shape_mismatch(self):
        spec = get_ring("ri2")
        frconv = FastRingConv2d(4, 4, 3, spec, seed=0)
        rconv = RingConv2d(2, 2, 3, spec.ring, seed=0)
        with pytest.raises(ValueError):
            frconv.load_from_rconv(rconv)


class TestFrconvTraining:
    def test_gradients_flow_to_g(self):
        spec = get_ring("rh4")
        layer = FastRingConv2d(4, 4, 3, spec, seed=0)
        out = layer(Tensor(np.random.default_rng(1).standard_normal((1, 4, 5, 5))))
        (out**2).sum().backward()
        assert layer.g.grad is not None
        assert np.abs(layer.g.grad).max() > 0

    def test_gradcheck_through_frconv(self):
        spec = get_ring("c")
        x = np.random.default_rng(3).standard_normal((1, 2, 4, 4))
        g0 = np.random.default_rng(4).standard_normal((1, 1, 2, 3, 3))

        def build(t):
            return (frconv2d(Tensor(x), t, spec, padding=1) ** 2).sum()

        check_gradients(build, g0)

    def test_gradient_matches_rconv_gradient(self):
        # Same parameterization => identical weight gradients.
        spec = get_ring("rh4")
        rconv = RingConv2d(4, 4, 3, spec.ring, bias=False, seed=0)
        frconv = FastRingConv2d(4, 4, 3, spec, bias=False, seed=0)
        frconv.g.data[...] = rconv.g.data
        x = np.random.default_rng(5).standard_normal((1, 4, 5, 5))
        (rconv(Tensor(x)) ** 2).sum().backward()
        (frconv(Tensor(x)) ** 2).sum().backward()
        np.testing.assert_allclose(frconv.g.grad, rconv.g.grad, atol=1e-8)


class TestEvalWeightCache:
    @pytest.mark.parametrize("layer_cls", ["rconv", "frconv"])
    def test_eval_cache_matches_train_forward(self, layer_cls):
        spec = get_ring("rh4")
        layer = (
            RingConv2d(4, 4, 3, spec.ring, seed=0)
            if layer_cls == "rconv"
            else FastRingConv2d(4, 4, 3, spec, seed=0)
        )
        x = Tensor(np.random.default_rng(7).standard_normal((2, 4, 6, 6)))
        train_out = layer(x).data
        layer.eval()
        with no_grad():
            first = layer(x).data
            second = layer(x).data  # served from the cache
        np.testing.assert_allclose(first, train_out, atol=1e-12)
        np.testing.assert_allclose(second, train_out, atol=1e-12)
        assert layer._weight_cache is not None

    def test_cache_invalidated_by_weight_mutation(self):
        spec = get_ring("ri4")
        layer = FastRingConv2d(4, 4, 3, spec, seed=0)
        x = Tensor(np.random.default_rng(8).standard_normal((1, 4, 5, 5)))
        layer.eval()
        with no_grad():
            before = layer(x).data
            layer.g.data[...] *= 2.0  # in-place mutation, no notification
            after = layer(x).data
        np.testing.assert_allclose(after, 2.0 * before, atol=1e-10)

    def test_cache_invalidated_by_value_permuting_mutation(self):
        # A swap of two weight slices preserves the abs-sum and the
        # buffer address; only a content-exact fingerprint catches it.
        spec = get_ring("rh4")
        layer = FastRingConv2d(4, 4, 3, spec, seed=0)
        x = Tensor(np.random.default_rng(11).standard_normal((1, 4, 5, 5)))
        layer.eval()
        with no_grad():
            before = layer(x).data
            a = layer.g.data[0, 0, 1].copy()
            layer.g.data[0, 0, 1] = layer.g.data[0, 0, 2]
            layer.g.data[0, 0, 2] = a
            after = layer(x).data
            fresh = FastRingConv2d(4, 4, 3, spec, seed=1)
            fresh.g.data[...] = layer.g.data
            fresh.eval()
            expected = fresh(x).data
        assert np.abs(after - before).max() > 1e-8
        np.testing.assert_allclose(after, expected, atol=1e-12)

    def test_cache_survives_repeated_predict_calls(self):
        from repro.models.ernet import dn_ernet_pu
        from repro.models.factory import make_factory
        from repro.nn.inference import Predictor

        model = dn_ernet_pu(blocks=1, ratio=1, factory=make_factory("ri4+fh"), seed=0)
        predictor = Predictor(model)
        x = np.random.default_rng(12).standard_normal((1, 1, 16, 16))
        predictor(x)
        assert not model.training
        ring_layers = [m for m in model.modules() if hasattr(m, "_weight_cache")]
        caches = [layer._weight_cache for layer in ring_layers]
        assert ring_layers and all(c is not None for c in caches)
        # A second predict must not wipe the caches by re-entering eval().
        predictor(x)
        for layer, cache in zip(ring_layers, caches, strict=True):
            assert layer._weight_cache is cache

    def test_cache_cleared_by_train_and_load(self):
        spec = get_ring("rh2")
        layer = RingConv2d(2, 2, 3, spec.ring, seed=0)
        x = Tensor(np.random.default_rng(9).standard_normal((1, 2, 4, 4)))
        layer.eval()
        with no_grad():
            layer(x)
        assert layer._weight_cache is not None
        layer.train()
        assert layer._weight_cache is None
        layer.eval()
        with no_grad():
            layer(x)
        assert layer._weight_cache is not None
        state = {k: v * 3.0 for k, v in layer.state_dict().items()}
        layer.load_state_dict(state)
        assert layer._weight_cache is None

    def test_gradients_still_flow_in_eval_without_no_grad(self):
        # The cache must not swallow gradients when autograd is active.
        spec = get_ring("rh4")
        layer = FastRingConv2d(4, 4, 3, spec, seed=0)
        layer.eval()
        out = layer(Tensor(np.random.default_rng(10).standard_normal((1, 4, 5, 5))))
        (out**2).sum().backward()
        assert layer.g.grad is not None
        assert np.abs(layer.g.grad).max() > 0


class TestSelectOp:
    def test_forward_and_backward(self):
        x = np.random.default_rng(0).standard_normal((2, 3, 4))
        t = Tensor(x, requires_grad=True)
        out = t.select(axis=1, index=2)
        np.testing.assert_array_equal(out.data, x[:, 2])
        (out**2).sum().backward()
        expect = np.zeros_like(x)
        expect[:, 2] = 2 * x[:, 2]
        np.testing.assert_allclose(t.grad, expect)
