"""Tests for the batched/tiled inference pipeline (repro.nn.inference)."""

import numpy as np
import pytest

from repro.models.ernet import dn_ernet_pu, sr4_ernet
from repro.models.factory import make_factory
from repro.nn.backend import EinsumBackend
from repro.nn.inference import DEFAULT_TILE, Predictor, TilingPlan, plan_for_model
from repro.nn.layers import Conv2d, ReLU, Sequential


def _randomize(model, seed=0):
    """Give every parameter non-trivial values (the tail is zero-init)."""
    rng = np.random.default_rng(seed)
    for param in model.parameters():
        param.data[...] += 0.05 * rng.standard_normal(param.shape)


class TestTilingPlan:
    @pytest.mark.smoke
    def test_validation(self):
        with pytest.raises(ValueError):
            TilingPlan(tile=0, halo=2)
        with pytest.raises(ValueError):
            TilingPlan(tile=8, halo=-1)
        with pytest.raises(ValueError):
            TilingPlan(tile=9, halo=2, divisor=2)
        assert TilingPlan(tile=8, halo=4, divisor=2).crop == 16

    def test_plan_for_denoise_ernet(self):
        model = dn_ernet_pu(blocks=1, ratio=1)
        plan = plan_for_model(model, tile=32)
        assert plan.scale == 1 and plan.divisor == 2
        # 4 same-padded 3x3 convs behind a pixel-unshuffle by 2.
        assert plan.halo == 8
        assert plan.tile % 2 == 0

    def test_plan_for_sr_ernet(self):
        model = sr4_ernet(blocks=1, ratio=1)
        plan = plan_for_model(model, tile=8)
        assert plan.scale == 4 and plan.divisor == 1
        assert plan.halo == 6  # 4 convs + bicubic-skip support 2

    def test_plan_generic_conv_stack(self):
        model = Sequential(Conv2d(1, 4, 3, seed=0), ReLU(), Conv2d(4, 1, 3, seed=1))
        plan = plan_for_model(model)
        assert plan.scale == 1 and plan.divisor == 1 and plan.halo == 2

    def test_predictor_rejects_zero_tile(self):
        # tile=0 must surface TilingPlan's ValueError, not be silently
        # coerced to the default (the old `tile or 48` truthiness bug).
        model = dn_ernet_pu(blocks=1, ratio=1)
        from repro.nn.inference import CompiledPredictor

        with pytest.raises(ValueError):
            Predictor(model, tile=0)
        with pytest.raises(ValueError):
            CompiledPredictor(model, tile=0)
        # None still means "the shared default".
        assert Predictor(model, tile=None).plan == plan_for_model(model, tile=DEFAULT_TILE)
        assert plan_for_model(model).tile == DEFAULT_TILE


class TestBatching:
    def test_batched_equals_single_batch(self):
        model = dn_ernet_pu(blocks=1, ratio=1, seed=3)
        _randomize(model, seed=3)
        x = np.random.default_rng(4).standard_normal((5, 1, 16, 16))
        whole = Predictor(model, batch_size=16)(x)
        chunked = Predictor(model, batch_size=2)(x)
        np.testing.assert_allclose(chunked, whole, atol=1e-12)

    def test_input_validation(self):
        model = dn_ernet_pu(blocks=1, ratio=1)
        with pytest.raises(ValueError):
            Predictor(model, batch_size=0)
        with pytest.raises(ValueError):
            Predictor(model)(np.zeros((1, 16, 16)))
        with pytest.raises(ValueError):
            Predictor(model)(np.zeros((1, 1, 15, 16)))  # odd size vs divisor 2

    def test_predict_image_convenience(self):
        model = dn_ernet_pu(blocks=1, ratio=1, seed=5)
        _randomize(model, seed=5)
        img = np.random.default_rng(6).standard_normal((1, 16, 16))
        out = Predictor(model).predict_image(img)
        np.testing.assert_allclose(out, Predictor(model)(img[None])[0], atol=1e-12)


class TestTiledEqualsWhole:
    def test_denoise_tiled_equals_whole(self):
        model = dn_ernet_pu(blocks=1, ratio=1, seed=0)
        _randomize(model, seed=0)
        x = np.random.default_rng(1).standard_normal((2, 1, 64, 48))
        whole = Predictor(model, tile=64)(x)
        tiled = Predictor(model, batch_size=1, tile=16)(x)
        np.testing.assert_allclose(tiled, whole, atol=1e-10)

    def test_denoise_ring_model_tiled(self):
        model = dn_ernet_pu(blocks=1, ratio=1, factory=make_factory("ri4+fh"), seed=1)
        _randomize(model, seed=1)
        x = np.random.default_rng(2).standard_normal((1, 1, 48, 48))
        whole = Predictor(model, tile=48)(x)
        tiled = Predictor(model, tile=16)(x)
        np.testing.assert_allclose(tiled, whole, atol=1e-10)

    def test_sr_tiled_equals_whole(self):
        # The x4-SR model's bicubic global skip replicates borders; the
        # clamped-window tiling must still reproduce it exactly.
        model = sr4_ernet(blocks=1, ratio=1, seed=2)
        _randomize(model, seed=2)
        x = np.random.default_rng(3).standard_normal((1, 1, 32, 24))
        whole = Predictor(model, tile=32)(x)
        assert whole.shape == (1, 1, 128, 96)
        tiled = Predictor(model, tile=8)(x)
        np.testing.assert_allclose(tiled, whole, atol=1e-10)

    def test_image_larger_than_any_training_tile(self):
        # Bounded-memory path: a 96x96 image through 16-pixel tiles.
        model = dn_ernet_pu(blocks=1, ratio=1, seed=4)
        _randomize(model, seed=4)
        x = np.random.default_rng(5).standard_normal((1, 1, 96, 96))
        plan = plan_for_model(model, tile=16)
        out = Predictor(model, batch_size=1, plan=plan)(x)
        assert out.shape == x.shape
        whole = Predictor(model, tile=96)(x)
        np.testing.assert_allclose(out, whole, atol=1e-10)

    def test_non_tile_multiple_edges(self):
        # Image size not a multiple of the tile: ragged last row/column.
        model = dn_ernet_pu(blocks=1, ratio=1, seed=6)
        _randomize(model, seed=6)
        x = np.random.default_rng(7).standard_normal((1, 1, 44, 36))
        whole = Predictor(model, tile=44)(x)
        tiled = Predictor(model, tile=16)(x)
        np.testing.assert_allclose(tiled, whole, atol=1e-10)


class TestAdversarialTilingParity:
    """Adversarial tiling geometries, pinned at two strengths.

    Under the shape-invariant :class:`EinsumBackend` (each output
    element's reduction never depends on the GEMM extent around it),
    tiled output must be **bit-identical** to whole-image inference —
    the strongest form of the module's exactness claim.  On the BLAS
    reference backend the same operands may be reassociated when crop
    extents change the GEMM dimensions, so there the assertion is exact
    math up to reassociation: ``rtol=0, atol=1e-13``.
    """

    @staticmethod
    def _tiled_vs_whole(model, x, tile, batch_size=8):
        einsum = EinsumBackend()
        whole = Predictor(model, tile=max(x.shape[2:]), backend=einsum)(x)
        tiled = Predictor(model, batch_size=batch_size, tile=tile, backend=einsum)(x)
        assert np.array_equal(tiled, whole), "einsum tiled != whole (bit-level)"
        whole_blas = Predictor(model, tile=max(x.shape[2:]))(x)
        tiled_blas = Predictor(model, batch_size=batch_size, tile=tile)(x)
        np.testing.assert_allclose(tiled_blas, whole_blas, rtol=0, atol=1e-13)

    def test_tile_equals_image_edge(self):
        # tile == one image edge: tiling degenerates along that axis but
        # still cuts the other; both axes hit the clamped-crop edge case.
        model = dn_ernet_pu(blocks=1, ratio=1, seed=10)
        _randomize(model, seed=10)
        x = np.random.default_rng(20).standard_normal((2, 1, 32, 48))
        self._tiled_vs_whole(model, x, tile=32)

    def test_minimal_halo(self):
        # The smallest halo that still covers the receptive field: every
        # retained pixel sits exactly at the coverage boundary, so an
        # off-by-one in the halo arithmetic flips bits here first.
        model = dn_ernet_pu(blocks=1, ratio=1, seed=11)
        _randomize(model, seed=11)
        derived = plan_for_model(model, tile=16)
        plan = TilingPlan(
            tile=16, halo=derived.halo, scale=derived.scale, divisor=derived.divisor
        )
        x = np.random.default_rng(21).standard_normal((1, 1, 48, 32))
        einsum = EinsumBackend()
        whole = Predictor(model, tile=48, backend=einsum)(x)
        tiled = Predictor(model, plan=plan, backend=einsum)(x)
        assert np.array_equal(tiled, whole)
        # One step below the sound halo must *not* match: proves the
        # assertion above has teeth (the halo is minimal, not slack).
        short = TilingPlan(
            tile=16,
            halo=derived.halo - derived.divisor,
            scale=derived.scale,
            divisor=derived.divisor,
        )
        under = Predictor(model, plan=short, backend=einsum)(x)
        assert not np.array_equal(under, whole)

    def test_non_square_and_prime_sizes(self):
        # Prime extents guarantee ragged final tiles on both axes and
        # defeat any accidental reliance on divisibility.
        sr = sr4_ernet(blocks=1, ratio=1, seed=12)
        _randomize(sr, seed=12)
        x = np.random.default_rng(22).standard_normal((1, 1, 37, 53))
        self._tiled_vs_whole(sr, x, tile=16)

    def test_prime_tile_on_denoiser(self):
        model = dn_ernet_pu(blocks=1, ratio=1, seed=13)
        _randomize(model, seed=13)
        x = np.random.default_rng(23).standard_normal((1, 1, 38, 54))
        self._tiled_vs_whole(model, x, tile=22)

    def test_batch_remainder_of_one(self):
        # 9 images through batch_size 8: the final forward carries a
        # single crop — the degenerate GEMM batch.
        model = dn_ernet_pu(blocks=1, ratio=1, seed=14)
        _randomize(model, seed=14)
        x = np.random.default_rng(24).standard_normal((9, 1, 16, 16))
        einsum = EinsumBackend()
        whole = Predictor(model, batch_size=16, backend=einsum)(x)
        chunked = Predictor(model, batch_size=8, backend=einsum)(x)
        assert np.array_equal(chunked, whole)
        # Batch-axis chunking is bit-exact on the BLAS backend too (the
        # per-slice GEMM dimensions never change) — the guarantee the
        # serving layer's micro-batching rests on.
        whole_blas = Predictor(model, batch_size=16)(x)
        chunked_blas = Predictor(model, batch_size=8)(x)
        assert np.array_equal(chunked_blas, whole_blas)

    def test_tiled_jobs_batch_remainder(self):
        # Tiled path, 2x2 tile grid per image + batch_size 3: crop
        # batches straddle images and end on a remainder of 1.
        model = dn_ernet_pu(blocks=1, ratio=1, seed=15)
        _randomize(model, seed=15)
        x = np.random.default_rng(25).standard_normal((1, 1, 32, 32))
        einsum = EinsumBackend()
        whole = Predictor(model, tile=32, backend=einsum)(x)
        tiled = Predictor(model, batch_size=3, tile=16, backend=einsum)(x)
        assert np.array_equal(tiled, whole)
