"""Tests for the concurrent micro-batching inference service."""

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np
import pytest

from repro.nn.inference import Predictor
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.serving import (
    InferenceServer,
    ServerClosed,
    ServerOverloaded,
    make_workload,
    run_closed_loop,
    serial_reference,
)
from repro.serving.bench import make_bench_model


class SlowIdentity(Module):
    """Identity model with a controllable per-forward delay."""

    def __init__(self, delay_s: float = 0.0, fail: bool = False) -> None:
        super().__init__()
        self.delay_s = delay_s
        self.fail = fail
        self.batch_sizes: list[int] = []
        self._record_lock = threading.Lock()

    def forward(self, x: Tensor) -> Tensor:
        with self._record_lock:
            self.batch_sizes.append(x.shape[0])
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.fail:
            raise ValueError("injected model failure")
        return x * 1.0


class TestRoundTrip:
    @pytest.mark.smoke
    def test_predict_matches_serial_predictor(self):
        model = make_bench_model(seed=0)
        image = np.random.default_rng(1).standard_normal((1, 16, 16))
        expected = Predictor(model, batch_size=8).predict(image[None])[0]
        with InferenceServer(model, workers=2, max_batch=4) as server:
            out = server.predict(image)
        assert np.array_equal(out, expected)

    def test_input_validation(self):
        with InferenceServer(SlowIdentity(), workers=1) as server, pytest.raises(ValueError):
            server.submit(np.zeros((16, 16)))  # missing channel axis
        with pytest.raises(ValueError):
            InferenceServer(SlowIdentity(), workers=0)
        with pytest.raises(ValueError):
            InferenceServer(SlowIdentity(), max_batch=0)
        with pytest.raises(ValueError):
            InferenceServer(SlowIdentity(), max_wait_ms=-1)
        with pytest.raises(ValueError):
            InferenceServer(SlowIdentity(), queue_depth=0)

    def test_tiled_large_image_request(self):
        model = make_bench_model(seed=2)
        image = np.random.default_rng(3).standard_normal((1, 96, 64))
        expected = Predictor(model, batch_size=8, tile=32).predict(image[None])[0]
        with InferenceServer(model, workers=2, max_batch=4, tile=32) as server:
            out = server.predict(image)
        assert np.array_equal(out, expected)


class TestBitIdentityUnderConcurrency:
    def test_100_concurrent_requests_bit_identical(self):
        """The CI serving-smoke contract: 100 concurrent single-image
        requests from 10 clients come back bit-identical to running the
        Predictor serially on each request alone."""
        model = make_bench_model(seed=0)
        workload = make_workload(10, 10, (1, 16, 16), seed=4)
        reference = serial_reference(Predictor(model, batch_size=8), workload)
        with InferenceServer(model, workers=3, max_batch=8, max_wait_ms=4.0) as server:
            result = run_closed_loop(server, workload)
            stats = server.stats()
        assert result.bit_identical_to(reference)
        assert stats.requests == 100
        assert stats.failed == 0

    def test_mixed_shapes_are_bucketed_and_exact(self):
        model = make_bench_model(seed=0)
        workload = make_workload(
            6, 5, [(1, 16, 16), (1, 24, 24), (1, 16, 32)], seed=5
        )
        reference = serial_reference(Predictor(model, batch_size=8), workload)
        with InferenceServer(model, workers=2, max_batch=4, max_wait_ms=4.0) as server:
            result = run_closed_loop(server, workload)
        assert result.bit_identical_to(reference)

    def test_100_concurrent_compiled_requests_bit_identical(self):
        """The serving side of the compiled-inference contract: a
        ``compiled=True`` server (workers replay shared execution plans)
        returns the same bytes as the serial *eager* Predictor for 100
        concurrent requests — compiling changes latency, never outputs."""
        model = make_bench_model(seed=0)
        workload = make_workload(10, 10, (1, 16, 16), seed=4)
        reference = serial_reference(Predictor(model, batch_size=8), workload)
        with InferenceServer(
            model, workers=3, max_batch=8, max_wait_ms=4.0, compiled=True
        ) as server:
            result = run_closed_loop(server, workload)
            stats = server.stats()
        assert result.bit_identical_to(reference)
        assert stats.requests == 100
        assert stats.failed == 0

    def test_compiled_mixed_shapes_are_bucketed_and_exact(self):
        """Mixed request shapes build one plan per shape bucket; every
        bucket must still match eager bit for bit."""
        model = make_bench_model(seed=0)
        workload = make_workload(6, 5, [(1, 16, 16), (1, 24, 24), (1, 16, 32)], seed=5)
        reference = serial_reference(Predictor(model, batch_size=8), workload)
        with InferenceServer(
            model, workers=2, max_batch=4, max_wait_ms=4.0, compiled=True
        ) as server:
            result = run_closed_loop(server, workload)
        assert result.bit_identical_to(reference)

    def test_batches_are_shape_pure(self):
        """A worker must never stack two request shapes into one batch."""
        model = SlowIdentity(delay_s=0.002)
        shapes = [(1, 8, 8), (1, 12, 12)]
        workload = make_workload(4, 6, shapes, seed=6)
        with InferenceServer(model, workers=2, max_batch=8, max_wait_ms=5.0) as server:
            result = run_closed_loop(server, workload)
        for client, sequence in enumerate(workload.images):
            for k, image in enumerate(sequence):
                assert np.array_equal(result.outputs[client][k], image)


class TestMicroBatching:
    def test_flush_on_max_batch(self):
        """With a generous wait budget, queued same-shape requests
        coalesce into one full micro-batch."""
        model = SlowIdentity()
        with InferenceServer(
            model, workers=1, max_batch=8, max_wait_ms=500.0, queue_depth=64
        ) as server:
            futures = [
                server.submit(np.full((1, 4, 4), float(i))) for i in range(8)
            ]
            for i, future in enumerate(futures):
                assert np.array_equal(future.result(timeout=10), np.full((1, 4, 4), float(i)))
            stats = server.stats()
        assert stats.requests == 8
        assert stats.batches == 1
        assert stats.max_batch_size == 8

    def test_flush_on_deadline(self):
        """A lone request can't wait out the whole batch budget forever."""
        model = SlowIdentity()
        with InferenceServer(model, workers=1, max_batch=64, max_wait_ms=30.0) as server:
            started = time.perf_counter()
            server.predict(np.zeros((1, 4, 4)), timeout=10)
            elapsed = time.perf_counter() - started
            stats = server.stats()
        assert stats.batches == 1 and stats.max_batch_size == 1
        assert elapsed < 5.0

    def test_under_full_batch_flushes_early_for_other_shapes(self):
        """With one worker, an under-full shape bucket must not hold
        other-shape requests hostage for the whole wait budget."""
        model = SlowIdentity(delay_s=0.002)
        with InferenceServer(
            model, workers=1, max_batch=8, max_wait_ms=5000.0
        ) as server:
            started = time.perf_counter()
            future_a = server.submit(np.zeros((1, 4, 4)))
            future_b = server.submit(np.zeros((1, 6, 6)))
            # A's bucket is under-full, but B (another shape) is queued
            # and no idle worker exists: A must flush early, nowhere
            # near its 5s straggler budget.
            future_a.result(timeout=10)
            elapsed_a = time.perf_counter() - started
            assert elapsed_a < 2.0
        # Context exit drains: B (a lone bucket that would otherwise sit
        # out its own wait budget) is flushed by shutdown.
        np.testing.assert_array_equal(future_b.result(timeout=0), np.zeros((1, 6, 6)))

    def test_zero_wait_dispatches_per_request(self):
        model = SlowIdentity()
        with InferenceServer(model, workers=1, max_batch=8, max_wait_ms=0.0) as server:
            server.predict(np.zeros((1, 4, 4)), timeout=10)
            server.predict(np.ones((1, 4, 4)), timeout=10)
            stats = server.stats()
        assert stats.batches == 2


class TestBackpressure:
    def test_reject_when_full(self):
        model = SlowIdentity(delay_s=0.2)
        server = InferenceServer(
            model,
            workers=1,
            max_batch=1,
            max_wait_ms=0.0,
            queue_depth=1,
            reject_when_full=True,
        )
        try:
            futures = []
            with pytest.raises(ServerOverloaded):
                # Worker capacity 1 + queue depth 1: the first two submits
                # can be absorbed; a third within the 200ms service time
                # must bounce.
                for _ in range(3):
                    futures.append(server.submit(np.zeros((1, 4, 4))))
            assert server.stats().rejected >= 1
            for future in futures:
                future.result(timeout=10)
        finally:
            server.close()

    def test_blocking_submit_times_out(self):
        model = SlowIdentity(delay_s=0.2)
        server = InferenceServer(
            model, workers=1, max_batch=1, max_wait_ms=0.0, queue_depth=1
        )
        try:
            futures = [server.submit(np.zeros((1, 4, 4))) for _ in range(2)]
            with pytest.raises(ServerOverloaded):
                # The queue stays full for ~400ms; a 50ms budget expires.
                while True:
                    futures.append(server.submit(np.zeros((1, 4, 4)), timeout=0.05))
            for future in futures:
                future.result(timeout=10)
        finally:
            server.close()

    def test_predict_timeout_sheds_queued_work(self):
        """A timed-out predict cancels its still-queued request instead
        of leaving zombie work for the workers."""
        model = SlowIdentity(delay_s=0.3)
        with InferenceServer(
            model, workers=1, max_batch=1, max_wait_ms=0.0, queue_depth=8
        ) as server:
            blocker = server.submit(np.zeros((1, 4, 4)))  # occupies the worker
            # On py3.10 concurrent.futures.TimeoutError is not the
            # builtin TimeoutError; catch the futures one explicitly.
            with pytest.raises(FutureTimeoutError):
                server.predict(np.ones((1, 4, 4)), timeout=0.05)
            blocker.result(timeout=10)
            forwards_before = len(model.batch_sizes)
            time.sleep(0.4)  # were the zombie queued, the worker would run it
            assert len(model.batch_sizes) == forwards_before

    def test_blocking_submit_waits_for_space(self):
        model = SlowIdentity(delay_s=0.05)
        with InferenceServer(
            model, workers=1, max_batch=1, max_wait_ms=0.0, queue_depth=2
        ) as server:
            futures = [server.submit(np.zeros((1, 4, 4))) for _ in range(6)]
            for future in futures:
                future.result(timeout=10)
            assert server.stats().requests == 6


class TestShutdown:
    def test_drain_completes_pending_work(self):
        model = SlowIdentity(delay_s=0.02)
        server = InferenceServer(model, workers=1, max_batch=1, max_wait_ms=0.0)
        futures = [server.submit(np.full((1, 4, 4), float(i))) for i in range(5)]
        server.close(drain=True)
        for i, future in enumerate(futures):
            assert np.array_equal(future.result(timeout=0), np.full((1, 4, 4), float(i)))

    def test_abort_fails_queued_requests(self):
        model = SlowIdentity(delay_s=0.1)
        server = InferenceServer(model, workers=1, max_batch=1, max_wait_ms=0.0)
        futures = [server.submit(np.zeros((1, 4, 4))) for _ in range(4)]
        time.sleep(0.03)  # let the worker claim the first request
        server.close(drain=False)
        outcomes = []
        for future in futures:
            try:
                future.result(timeout=10)
                outcomes.append("ok")
            except ServerClosed:
                outcomes.append("closed")
        assert "closed" in outcomes  # queued requests were failed fast
        assert outcomes[0] == "ok"  # the claimed request still completed

    def test_submit_after_close_raises(self):
        server = InferenceServer(SlowIdentity(), workers=1)
        server.close()
        with pytest.raises(ServerClosed):
            server.submit(np.zeros((1, 4, 4)))

    def test_close_is_idempotent_and_context_manager_drains(self):
        with InferenceServer(SlowIdentity(), workers=2) as server:
            future = server.submit(np.zeros((1, 4, 4)))
        future.result(timeout=0)
        server.close()  # second close is a no-op


class TestCancellation:
    def test_cancelled_request_is_dropped_and_batchmates_survive(self):
        """Cancelling a queued future must not kill the worker or hang
        the other requests coalesced into the same micro-batch."""
        model = SlowIdentity(delay_s=0.05)
        with InferenceServer(
            model, workers=1, max_batch=4, max_wait_ms=200.0
        ) as server:
            blocker = server.submit(np.zeros((1, 4, 4)))  # occupies the worker
            victim = server.submit(np.full((1, 4, 4), 1.0))
            survivor = server.submit(np.full((1, 4, 4), 2.0))
            assert victim.cancel()
            assert np.array_equal(
                survivor.result(timeout=10), np.full((1, 4, 4), 2.0)
            )
            blocker.result(timeout=10)
            # The worker is still alive and serving after the cancel.
            out = server.predict(np.full((1, 4, 4), 3.0), timeout=10)
        assert np.array_equal(out, np.full((1, 4, 4), 3.0))
        assert victim.cancelled()

    def test_abort_close_tolerates_cancelled_queued_requests(self):
        model = SlowIdentity(delay_s=0.1)
        server = InferenceServer(model, workers=1, max_batch=1, max_wait_ms=0.0)
        futures = [server.submit(np.zeros((1, 4, 4))) for _ in range(4)]
        cancelled = futures[-1].cancel()
        server.close(drain=False)  # must not raise InvalidStateError
        if cancelled:  # the worker usually hasn't reached the last request
            assert futures[-1].cancelled()


class TestErrorsAndStats:
    def test_model_exception_propagates_and_server_survives(self):
        model = SlowIdentity(fail=True)
        with InferenceServer(model, workers=1, max_batch=2, max_wait_ms=0.0) as server:
            future = server.submit(np.zeros((1, 4, 4)))
            with pytest.raises(ValueError, match="injected model failure"):
                future.result(timeout=10)
            model.fail = False
            out = server.predict(np.ones((1, 4, 4)), timeout=10)
            stats = server.stats()
        assert np.array_equal(out, np.ones((1, 4, 4)))
        assert stats.failed >= 1 and stats.requests >= 2

    def test_stats_snapshot_is_coherent(self):
        model = make_bench_model(seed=0)
        workload = make_workload(4, 4, (1, 16, 16), seed=7)
        with InferenceServer(model, workers=2, max_batch=4, max_wait_ms=3.0) as server:
            run_closed_loop(server, workload)
            stats = server.stats()
        assert stats.requests == 16
        assert 1 <= stats.batches <= 16
        assert stats.mean_batch_size >= 1.0
        assert stats.throughput_rps > 0
        assert stats.latency_ms_p50 <= stats.latency_ms_p95 <= stats.latency_ms_max
        assert "req/s" in stats.format()
