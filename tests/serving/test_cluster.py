"""Tests for the process-sharded inference server (repro.serving.cluster)."""

import dataclasses
import functools

import numpy as np
import pytest

from repro.nn.inference import Predictor
from repro.serving import (
    ClusterStats,
    ServerClosed,
    ServerOverloaded,
    ServerStats,
    ShardedInferenceServer,
    WorkerCrashed,
    active_segments,
    make_poisson_trace,
    make_workload,
    run_closed_loop,
    run_open_loop,
    serial_reference,
)
from repro.serving.bench import make_bench_model

FACTORY = functools.partial(make_bench_model, 0)
SHAPES = [(1, 16, 16), (1, 24, 24), (1, 32, 32)]


@pytest.fixture(scope="module")
def serial_predictor():
    return Predictor(make_bench_model(0), batch_size=8)


def _images(count: int, seed: int = 3) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(SHAPES[i % len(SHAPES)]) for i in range(count)]


def _assert_bit_identical(outputs, images, serial_predictor):
    for output, image in zip(outputs, images, strict=True):
        assert np.array_equal(output, serial_predictor.predict(image[None])[0])


class TestBitIdentity:
    def test_mixed_shapes_100_concurrent(self, serial_predictor):
        images = _images(100)
        with ShardedInferenceServer(
            FACTORY, procs=2, queue_depth=100, slot_bytes=1 << 16
        ) as server:
            futures = [server.submit(image) for image in images]
            outputs = [future.result(300) for future in futures]
            assert server.workers_alive() == 2
            stats = server.stats()
            assert stats.requests == 100 and stats.failed == 0
        _assert_bit_identical(outputs, images, serial_predictor)
        assert active_segments() == []

    def test_closed_loop_loadgen_matches_serial(self, serial_predictor):
        workload = make_workload(4, 2, SHAPES, seed=5)
        reference = serial_reference(serial_predictor, workload)
        with ShardedInferenceServer(FACTORY, procs=2, queue_depth=16) as server:
            result = run_closed_loop(server, workload)
        assert result.bit_identical_to(reference)
        # The unified latency schema is populated.
        assert np.isfinite(result.latency_ms_p99)
        assert 0.0 <= result.slo_attainment <= 1.0


class TestCrashRecovery:
    def test_no_accepted_request_dropped_across_crash(self, serial_predictor):
        images = _images(32)
        with ShardedInferenceServer(FACTORY, procs=2, queue_depth=32) as server:
            futures = [server.submit(image) for image in images[:16]]
            server.inject_worker_crash(0)
            futures += [server.submit(image) for image in images[16:]]
            outputs = [future.result(300) for future in futures]
            stats = server.stats()
            assert stats.respawns >= 1
            assert stats.failed == 0
            assert server.workers_alive() == 2
        _assert_bit_identical(outputs, images, serial_predictor)
        assert active_segments() == []

    def test_retry_budget_exhaustion_raises_worker_crashed(self):
        image = _images(1)[0]
        with ShardedInferenceServer(
            FACTORY, procs=1, queue_depth=4, max_retries=0
        ) as server:
            # The crash descriptor is queued first, so the request lands
            # on a worker already doomed to die before serving it.
            server.inject_worker_crash(0)
            future = server.submit(image)
            with pytest.raises(WorkerCrashed):
                future.result(120)
            # The slot was released and the respawned worker serves on.
            assert server.predict(image, timeout=120).shape == image.shape
        assert active_segments() == []

    def test_request_survives_crash_with_retry_budget(self, serial_predictor):
        image = _images(1)[0]
        with ShardedInferenceServer(
            FACTORY, procs=1, queue_depth=4, max_retries=2
        ) as server:
            server.inject_worker_crash(0)
            output = server.submit(image).result(120)
            assert server.stats().retried >= 1
        assert np.array_equal(output, serial_predictor.predict(image[None])[0])


class TestAdmission:
    def test_reject_policy_raises_when_full(self):
        images = _images(8, seed=9)
        with ShardedInferenceServer(
            FACTORY, procs=1, queue_depth=2, overload="reject"
        ) as server:
            admitted = []
            rejections = 0
            for image in images:
                try:
                    admitted.append(server.submit(image))
                except ServerOverloaded:
                    rejections += 1
            assert rejections > 0, "8 instant submits into depth 2 must overflow"
            for future in admitted:
                future.result(120)
            assert server.stats().rejected == rejections

    def test_degrade_policy_serves_degraded_bit_identical(self, serial_predictor):
        # Requests fit one tile even at the degraded (coarser) tiling, so
        # degraded service must still be bit-identical to the reference.
        images = _images(6, seed=11)
        with ShardedInferenceServer(
            FACTORY, procs=1, queue_depth=6, overload="degrade", degrade_at=1
        ) as server:
            futures = [server.submit(image) for image in images]
            outputs = [future.result(120) for future in futures]
            stats = server.stats()
            assert stats.degraded >= 1
        _assert_bit_identical(outputs, images, serial_predictor)

    def test_block_policy_times_out_as_overloaded(self):
        images = _images(3, seed=13)
        with ShardedInferenceServer(
            FACTORY, procs=1, queue_depth=1, overload="block"
        ) as server:
            first = server.submit(images[0])
            with pytest.raises(ServerOverloaded):
                # Depth 1 and the worker is busy warming up: a 1ms
                # admission budget cannot be met.
                server.submit(images[1], timeout=0.001)
            first.result(120)

    def test_open_loop_overload_rejects_and_stays_bounded(self):
        trace = make_poisson_trace(400.0, 40, SHAPES, seed=17)
        with ShardedInferenceServer(
            FACTORY, procs=1, queue_depth=2, overload="reject"
        ) as server:
            result = run_open_loop(server, trace, slo_ms=250.0)
        assert result.offered == 40
        assert result.rejected > 0
        assert result.completed > 0
        assert result.completed + result.rejected + result.failed == 40
        assert np.isfinite(result.latency_ms_p99)
        assert active_segments() == []


class TestLifecycle:
    def test_submit_after_close_raises(self):
        server = ShardedInferenceServer(FACTORY, procs=1, queue_depth=2)
        server.close()
        with pytest.raises(ServerClosed):
            server.submit(_images(1)[0])
        server.close()  # idempotent
        assert active_segments() == []

    def test_abort_fails_pending_and_cleans_up(self):
        images = _images(6, seed=19)
        server = ShardedInferenceServer(FACTORY, procs=1, queue_depth=8)
        futures = [server.submit(image) for image in images]
        server.close(drain=False)
        resolved = 0
        for future in futures:
            try:
                future.result(5)
                resolved += 1
            except ServerClosed:
                pass
        # Everything resolved one way or the other, nothing hung.
        assert resolved <= len(futures)
        assert active_segments() == []

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="procs must be positive"):
            ShardedInferenceServer(FACTORY, procs=0)
        with pytest.raises(ValueError, match="overload must be one of"):
            ShardedInferenceServer(FACTORY, overload="shrug")
        with pytest.raises(ValueError, match="backend spec string"):
            ShardedInferenceServer(FACTORY, backend=object())

    def test_request_validation(self):
        with ShardedInferenceServer(FACTORY, procs=1, queue_depth=2) as server:
            with pytest.raises(ValueError, match="expected one"):
                server.submit(np.zeros((2, 2)))
            with pytest.raises(ValueError, match="raise slot_bytes"):
                server.submit(np.zeros((1, 512, 512)))


class TestRoutingAndStats:
    def test_shape_affinity_pins_each_shape_to_one_replica(self):
        images = _images(9, seed=23)
        with ShardedInferenceServer(
            FACTORY, procs=2, queue_depth=16, replicas_per_shape=1
        ) as server:
            for image in images:
                server.predict(image, timeout=120)
            affinity = dict(server._affinity)
        assert set(affinity) == set(SHAPES)
        for group in affinity.values():
            assert len(group) == 1
        # Shapes spread across workers instead of piling on rank 0.
        assert len({group[0] for group in affinity.values()}) == 2

    def test_stats_schema_matches_thread_server(self):
        shared = {
            "requests",
            "rejected",
            "failed",
            "latency_ms_mean",
            "latency_ms_p50",
            "latency_ms_p95",
            "latency_ms_p99",
            "latency_ms_max",
            "slo_ms",
            "slo_attainment",
            "wall_s",
            "throughput_rps",
        }
        cluster_fields = {f.name for f in dataclasses.fields(ClusterStats)}
        server_fields = {f.name for f in dataclasses.fields(ServerStats)}
        assert shared <= cluster_fields
        assert shared <= server_fields

    def test_stats_format_mentions_slo(self):
        with ShardedInferenceServer(FACTORY, procs=1, queue_depth=2) as server:
            server.predict(_images(1)[0], timeout=120)
            text = server.stats().format()
        assert "SLO" in text and "respawns" in text
