"""Tests for the shared-memory slot-ring transport (repro.serving.shm)."""

import threading
import time

import numpy as np
import pytest

from repro.serving.shm import RingClient, ShmRing, active_segments


class TestSlotRoundtrip:
    def test_request_then_response_share_one_slot(self):
        with ShmRing(slots=2, slot_bytes=1 << 14) as ring:
            rng = np.random.default_rng(0)
            request = rng.standard_normal((1, 8, 8))
            response = rng.standard_normal((1, 8, 8))
            slot = ring.acquire()
            end = ring.put_array(slot, 0, request)
            assert end == request.nbytes
            offset = ring.response_offset(request.shape)
            assert offset == request.nbytes
            ring.put_array(slot, offset, response)
            # The response write must not clobber the request payload —
            # crash-retry reads the request again after a response write.
            assert np.array_equal(ring.get_array(slot, 0, request.shape), request)
            assert np.array_equal(
                ring.get_array(slot, offset, response.shape), response
            )

    def test_get_returns_a_copy(self):
        with ShmRing(slots=1, slot_bytes=1 << 12) as ring:
            ring.put_array(0, 0, np.ones((2, 2)))
            out = ring.get_array(0, 0, (2, 2))
            ring.put_array(0, 0, np.zeros((2, 2)))
            assert np.array_equal(out, np.ones((2, 2)))

    def test_fits(self):
        with ShmRing(slots=1, slot_bytes=2 * 64 * 8) as ring:
            assert ring.fits((1, 8, 8), (1, 8, 8))
            assert not ring.fits((1, 8, 8), (1, 8, 9))

    def test_oversized_array_rejected(self):
        with ShmRing(slots=1, slot_bytes=64) as ring:
            with pytest.raises(ValueError, match="does not fit"):
                ring.put_array(0, 0, np.zeros((3, 3)))
            with pytest.raises(ValueError, match="does not fit"):
                ring.get_array(0, 32, (5,))

    def test_bad_slot_rejected(self):
        with ShmRing(slots=2, slot_bytes=64) as ring:
            with pytest.raises(ValueError, match="out of range"):
                ring.put_array(2, 0, np.zeros(2))


class TestFreeList:
    def test_exhaustion_is_nonblocking_none(self):
        with ShmRing(slots=2, slot_bytes=64) as ring:
            assert ring.acquire() == 0
            assert ring.acquire() == 1
            assert ring.acquire() is None  # timeout=0 never blocks
            assert ring.free_slots() == 0

    def test_release_recycles(self):
        with ShmRing(slots=1, slot_bytes=64) as ring:
            slot = ring.acquire()
            assert ring.acquire() is None
            ring.release(slot)
            assert ring.acquire() == slot

    def test_double_release_raises(self):
        with ShmRing(slots=2, slot_bytes=64) as ring:
            slot = ring.acquire()
            ring.release(slot)
            with pytest.raises(ValueError, match="released twice"):
                ring.release(slot)

    def test_acquire_waits_for_release(self):
        with ShmRing(slots=1, slot_bytes=64) as ring:
            slot = ring.acquire()

            def _release_soon():
                time.sleep(0.05)
                ring.release(slot)

            thread = threading.Thread(target=_release_soon)
            thread.start()
            try:
                assert ring.acquire(timeout=5.0) == slot
            finally:
                thread.join()

    def test_destroy_wakes_blocked_acquire(self):
        ring = ShmRing(slots=1, slot_bytes=64)
        ring.acquire()
        result = []

        def _blocked():
            result.append(ring.acquire(timeout=5.0))

        thread = threading.Thread(target=_blocked)
        thread.start()
        time.sleep(0.05)
        ring.destroy()
        thread.join(timeout=5.0)
        assert result == [None]


class TestHygiene:
    def test_registry_tracks_owner_lifecycle(self):
        assert active_segments() == []
        ring = ShmRing(slots=1, slot_bytes=64)
        assert active_segments() == [ring.name]
        ring.destroy()
        assert active_segments() == []

    def test_destroy_idempotent(self):
        ring = ShmRing(slots=1, slot_bytes=64)
        ring.destroy()
        ring.destroy()
        assert active_segments() == []

    def test_context_manager_destroys(self):
        with ShmRing(slots=1, slot_bytes=64) as ring:
            name = ring.name
            assert name in active_segments()
        assert active_segments() == []

    def test_client_attach_never_owns(self):
        with ShmRing(slots=1, slot_bytes=1 << 12) as ring:
            ring.put_array(0, 0, np.arange(4.0))
            with RingClient(ring.name, ring.slots, ring.slot_bytes) as client:
                # Client sees the owner's writes and vice versa.
                assert np.array_equal(client.get_array(0, 0, (4,)), np.arange(4.0))
                client.put_array(0, 0, np.full(4, 7.0))
            assert np.array_equal(ring.get_array(0, 0, (4,)), np.full(4, 7.0))
            # Client close must not have removed the owner's registration.
            assert ring.name in active_segments()
        assert active_segments() == []

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="slots must be positive"):
            ShmRing(slots=0, slot_bytes=64)
        with pytest.raises(ValueError, match="slot_bytes must be positive"):
            ShmRing(slots=1, slot_bytes=0)
