"""Tests for grank estimation and the proper-ring search (Section III-C)."""

import numpy as np
import pytest

from repro.rings.base import Ring, indexing_tensor_from_sp
from repro.rings.catalog import get_ring
from repro.rings.grank import cp_decompose, cp_fit, estimate_grank
from repro.rings.search import (
    are_isomorphic,
    cyclic_sign_patterns,
    proper_permutations,
    search_proper_rings,
)


class TestGrank:
    @pytest.mark.smoke
    def test_rank_one_tensor(self):
        a, b, c = np.array([1.0, 2.0]), np.array([3.0, -1.0]), np.array([0.5, 2.0])
        tensor = np.einsum("i,k,j->ikj", a, b, c)
        assert estimate_grank(tensor, max_rank=4) == 1

    def test_identity_ring_grank_n(self):
        spec = get_ring("ri4")
        assert estimate_grank(spec.ring.m_tensor, max_rank=6) == 4

    def test_complex_grank_three(self):
        # Paper Section III-B: grank(M) = 3 for C while rank(G) = 2.
        spec = get_ring("c")
        assert estimate_grank(spec.ring.m_tensor, max_rank=4) == 3

    @pytest.mark.slow
    def test_quaternion_grank_eight(self):
        spec = get_ring("h")
        assert estimate_grank(spec.ring.m_tensor, min_rank=7, max_rank=8, restarts=8) == 8

    def test_circulant_grank_five(self):
        spec = get_ring("rh4i")
        assert estimate_grank(spec.ring.m_tensor, min_rank=4, max_rank=6, restarts=12) == 5

    def test_cp_decompose_returns_exact_factors(self):
        spec = get_ring("c")
        factors = cp_decompose(spec.ring.m_tensor, 3, restarts=20)
        assert factors is not None
        approx = np.einsum("ip,kp,jp->ikj", *factors)
        np.testing.assert_allclose(approx, spec.ring.m_tensor, atol=1e-5)

    def test_cp_fit_monotone_in_rank(self):
        tensor = get_ring("rh4i").ring.m_tensor
        fits = [cp_fit(tensor, r, restarts=8) for r in (3, 4, 5)]
        assert fits[0] >= fits[1] >= fits[2]
        assert fits[2] < 1e-10

    def test_zero_tensor(self):
        assert cp_fit(np.zeros((2, 2, 2)), 1) == 0.0


class TestPermutationEnumeration:
    def test_n2_single_permutation(self):
        perms = proper_permutations(2)
        assert len(perms) == 1
        np.testing.assert_array_equal(perms[0], [[0, 1], [1, 0]])

    def test_n4_rows_are_involutions(self):
        for p_mat in proper_permutations(4):
            for i in range(4):
                for j in range(4):
                    assert p_mat[i, p_mat[i, j]] == j

    def test_n4_first_column_and_diagonal(self):
        for p_mat in proper_permutations(4):
            np.testing.assert_array_equal(p_mat[:, 0], np.arange(4))
            np.testing.assert_array_equal(np.diag(p_mat), np.zeros(4))

    def test_n4_columns_are_permutations(self):
        for p_mat in proper_permutations(4):
            for j in range(4):
                assert sorted(p_mat[:, j]) == [0, 1, 2, 3]

    def test_xor_and_circulant_present(self):
        perms = [p.tolist() for p in proper_permutations(4)]
        xor = [[i ^ j for j in range(4)] for i in range(4)]
        circ = [[(i - j) % 4 for j in range(4)] for i in range(4)]
        assert xor in perms
        assert circ in perms


class TestSignPatterns:
    def test_n2_two_patterns(self):
        p_mat = np.array([[0, 1], [1, 0]])
        patterns = cyclic_sign_patterns(p_mat)
        assert len(patterns) == 2  # R_H2 (all +) and C (S01 = -1)

    def test_patterns_satisfy_c2(self):
        p_mat = np.array([[(i - j) % 4 for j in range(4)] for i in range(4)])
        for s_mat in cyclic_sign_patterns(p_mat):
            ring = Ring("cand", indexing_tensor_from_sp(s_mat, p_mat))
            assert ring.satisfies_c2()

    def test_first_column_and_diagonal_positive(self):
        p_mat = np.array([[i ^ j for j in range(4)] for i in range(4)])
        for s_mat in cyclic_sign_patterns(p_mat):
            assert np.all(s_mat[:, 0] == 1)
            assert np.all(np.diag(s_mat) == 1)


class TestIsomorphism:
    def test_ring_isomorphic_to_itself(self):
        ring = get_ring("rh4").ring
        assert are_isomorphic(ring, ring)

    def test_rh4_isomorphic_to_ro4_abstractly(self):
        # Both diagonalize over R, so both are R^4 in a rotated basis; the
        # paper nevertheless counts them as distinct *variants* because
        # their transform hardware (H vs O) differs.
        assert are_isomorphic(get_ring("rh4").ring, get_ring("ro4").ring)

    def test_different_n_not_isomorphic(self):
        assert not are_isomorphic(get_ring("rh2").ring, get_ring("rh4").ring)

    def test_complex_not_isomorphic_to_rh2(self):
        assert not are_isomorphic(get_ring("c").ring, get_ring("rh2").ring)


class TestFullSearch:
    def test_n2_reproduces_paper(self):
        # Paper: "For n = 2, only R_H2 and C can satisfy [C1-C2]."
        result = search_proper_rings(2, restarts=8)
        assert len(result.permutation_classes) == 1
        assert len(result.candidates) == 2
        granks = sorted(c.grank for c in result.candidates)
        assert granks == [2, 3]  # R_H2 then C
        found = {c.grank: c.ring for c in result.candidates}
        assert are_isomorphic(found[2], get_ring("rh2").ring)
        assert are_isomorphic(found[3], get_ring("c").ring)

    @pytest.mark.slow
    def test_n4_reproduces_paper(self):
        # Paper: two non-isomorphic permutations with min granks 4 and 5;
        # the grank-4 one yields 2 variants, the grank-5 one yields 4.
        result = search_proper_rings(4, restarts=10, grank_cap=6)
        assert len(result.permutation_classes) == 2
        by_perm = {}
        for cand in result.minimal:
            by_perm.setdefault(cand.perm.tobytes(), []).append(cand)
        counts = sorted(
            (min(c.grank for c in group), len(group)) for group in by_perm.values()
        )
        assert counts == [(4, 2), (5, 4)]
        # The grank-4 variants are R_H4 and R_O4.
        g4 = [c for c in result.minimal if c.grank == 4]
        assert any(are_isomorphic(c.ring, get_ring("rh4").ring) for c in g4)
        assert any(are_isomorphic(c.ring, get_ring("ro4").ring) for c in g4)
