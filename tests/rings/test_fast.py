"""Tests for fast bilinear ring-multiplication algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rings.base import Ring, indexing_tensor_from_sp
from repro.rings.catalog import get_ring, ring_names
from repro.rings.fast import (
    FastAlgorithm,
    fast_from_cp,
    fast_from_diagonalization,
    identity_fast,
    solve_reconstruction,
    synthesize_fast,
)


class TestCatalogAlgorithms:
    @pytest.mark.smoke
    @pytest.mark.parametrize("name", ring_names())
    def test_exact_against_indexing_tensor(self, name):
        spec = get_ring(name)
        assert spec.fast.verify(spec.ring, atol=1e-6)

    @pytest.mark.parametrize("name", ring_names())
    def test_apply_matches_direct_multiply(self, name):
        spec = get_ring(name)
        rng = np.random.default_rng(11)
        g = rng.standard_normal((6, spec.n))
        x = rng.standard_normal((6, spec.n))
        # CP-synthesized algorithms (rh4ii/ro4ii) carry ~1e-7 numeric noise.
        np.testing.assert_allclose(
            spec.fast.apply(g, x), spec.ring.multiply(g, x), atol=1e-5
        )

    def test_paper_product_counts(self):
        # Table I: m = n for R_I/R_H/R_O4, 3 for C, 5 for circulants, 8 for H.
        expected = {
            "ri2": 2, "rh2": 2, "c": 3,
            "ri4": 4, "rh4": 4, "ro4": 4,
            "rh4i": 5, "rh4ii": 5, "ro4i": 5, "ro4ii": 5,
            "h": 8, "ri8": 8, "real": 1,
        }
        for key, m in expected.items():
            assert get_ring(key).fast.num_products == m, key

    def test_three_step_pipeline_composition(self):
        spec = get_ring("rh4i")
        rng = np.random.default_rng(1)
        g, x = rng.standard_normal((2, 4))
        g_t = spec.fast.transform_filter(g)
        x_t = spec.fast.transform_data(x)
        z = spec.fast.reconstruct(g_t * x_t)
        np.testing.assert_allclose(z, spec.ring.multiply(g, x), atol=1e-10)


class TestConstructors:
    def test_identity_fast(self):
        algo = identity_fast(4)
        assert algo.num_products == 4
        rng = np.random.default_rng(0)
        g, x = rng.standard_normal((2, 4))
        np.testing.assert_allclose(algo.apply(g, x), g * x)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            FastAlgorithm(tg=np.eye(3), tx=np.eye(3), tz=np.eye(3)[:2])

    def test_solve_reconstruction_success(self):
        spec = get_ring("c")
        algo = solve_reconstruction(spec.ring, spec.fast.tg, spec.fast.tx)
        assert algo is not None and algo.verify(spec.ring)

    def test_solve_reconstruction_failure(self):
        spec = get_ring("c")
        # Identity transforms cannot realize the complex product.
        assert solve_reconstruction(spec.ring, np.eye(2), np.eye(2)) is None

    def test_diagonalization_gives_minimal_m(self):
        spec = get_ring("rh4")
        algo = fast_from_diagonalization(spec.ring)
        assert algo is not None
        assert algo.num_products == 4  # Theorem A.1(b): m = rank(G)
        assert algo.verify(spec.ring)

    def test_diagonalization_fails_for_complex(self):
        assert fast_from_diagonalization(get_ring("c").ring) is None

    def test_cp_synthesis_complex_rank3(self):
        spec = get_ring("c")
        algo = fast_from_cp(spec.ring, rank=3, seed=0)
        assert algo is not None and algo.verify(spec.ring, atol=1e-6)

    def test_cp_synthesis_impossible_rank(self):
        spec = get_ring("c")
        assert fast_from_cp(spec.ring, rank=2, seed=0, restarts=6) is None

    @pytest.mark.parametrize("name", ["ri4", "rh4", "c", "rh4i"])
    def test_synthesize_fast_any_ring(self, name):
        spec = get_ring(name)
        algo = synthesize_fast(spec.ring)
        assert algo.verify(spec.ring, atol=1e-6)
        assert algo.num_products <= spec.n * spec.n

    def test_synthesize_fast_fallback_outer_product(self):
        # A ring that CP at <= cap ranks cannot catch: force tiny cap.
        spec = get_ring("h")
        algo = synthesize_fast(spec.ring, max_rank=4)
        assert algo.verify(spec.ring)
        assert algo.num_products == 16  # fallback n^2

    def test_fold_scale_into_filter_preserves_algorithm(self):
        spec = get_ring("rh4i")
        folded = spec.fast.fold_scale_into_filter()
        assert folded.verify(spec.ring, atol=1e-8)
        # Tz becomes pure +-1/0 adder pattern.
        assert np.all(np.isin(folded.tz, [-1.0, 0.0, 1.0, 2.0, -2.0]))


class TestBilinearTensor:
    def test_bilinear_tensor_shape(self):
        spec = get_ring("h")
        assert spec.fast.bilinear_tensor().shape == (4, 4, 4)

    def test_residual_zero_for_exact(self):
        spec = get_ring("ro4")
        assert spec.fast.residual(spec.ring) < 1e-10

    def test_residual_positive_for_mismatch(self):
        a, b = get_ring("rh4"), get_ring("ro4")
        assert a.fast.residual(b.ring) > 0.5


class TestHypothesisFast:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_fast_equals_direct_on_random_inputs(self, data):
        name = data.draw(st.sampled_from(["c", "h", "rh4", "ro4", "rh4i", "ro4i", "rh4ii", "ro4ii"]))
        spec = get_ring(name)
        n = spec.n
        g = np.array(data.draw(st.lists(st.floats(-8, 8, allow_nan=False), min_size=n, max_size=n)))
        x = np.array(data.draw(st.lists(st.floats(-8, 8, allow_nan=False), min_size=n, max_size=n)))
        np.testing.assert_allclose(
            spec.fast.apply(g, x), spec.ring.multiply(g, x), atol=1e-5
        )

    @settings(max_examples=15, deadline=None)
    @given(
        s01=st.sampled_from([1.0, -1.0]),
    )
    def test_solve_reconstruction_on_generated_2tuple_rings(self, s01):
        sign = np.array([[1.0, s01], [1.0, 1.0]])
        perm = np.array([[0, 1], [1, 0]])
        ring = Ring("gen", indexing_tensor_from_sp(sign, perm))
        algo = synthesize_fast(ring)
        assert algo.verify(ring, atol=1e-6)
