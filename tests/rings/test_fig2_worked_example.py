"""Paper Fig. 2: one layer computed in R, C, and the proposed 2-tuple ring.

The figure's point: four real inputs (x0, x1, y0, y1) and two outputs can
be computed as two 2-tuples through C or (R_I2, f_H2), with the weight
DoF per sub-matrix dropping from four to two while the tensor
formulation ``z = (g h)(x y)^t`` stays isomorphic to ``z = Gx + Hy``.
"""

import numpy as np
import pytest

from repro.rings.catalog import get_ring
from repro.rings.nonlinearity import hadamard_relu


class TestFig2:
    @pytest.mark.smoke
    def test_complex_layer_isomorphic_to_real(self):
        spec = get_ring("c")
        rng = np.random.default_rng(0)
        g, h = rng.standard_normal((2, 2))  # two complex weights
        x, y = rng.standard_normal((2, 2))  # two complex inputs
        # Ring form: z = g.x + h.y
        z_ring = spec.ring.multiply(g, x) + spec.ring.multiply(h, y)
        # Real form: z = G x + H y with the isomorphic rotation matrices.
        g_mat = spec.ring.isomorphic_matrix(g)
        h_mat = spec.ring.isomorphic_matrix(h)
        np.testing.assert_allclose(z_ring, g_mat @ x + h_mat @ y, atol=1e-12)

    def test_dof_reduction_four_to_two(self):
        # Each 2x2 sub-matrix G is described by 2 reals instead of 4.
        spec = get_ring("c")
        g = np.array([1.7, -0.3])
        g_mat = spec.ring.isomorphic_matrix(g)
        # Entries are +-g0 / +-g1 only: 2 degrees of freedom.
        assert set(np.round(np.abs(g_mat).reshape(-1), 12)) == {1.7, 0.3}

    def test_proposed_ring_layer_with_fh2(self):
        # Bottom row of Fig. 2: (R_I2, f_H2) — component products plus the
        # directional non-linearity.
        spec = get_ring("ri2")
        f_h = hadamard_relu(2)
        rng = np.random.default_rng(1)
        g, h, x, y = rng.standard_normal((4, 2))
        pre = spec.ring.multiply(g, x) + spec.ring.multiply(h, y)
        np.testing.assert_allclose(pre, g * x + h * y, atol=1e-12)  # diagonal G
        out = f_h(pre)
        # f_H mixes the two components: both outputs depend on both inputs.
        bumped = pre + np.array([0.5, 0.0])
        assert not np.allclose(f_h(bumped)[1], out[1])

    def test_real_layer_has_double_weights(self):
        # The real-valued layer of Fig. 2 needs 4 weights per sub-matrix,
        # the algebra layers need 2: count through actual layers.
        from repro.nn.layers import Conv2d, RingConv2d

        real = Conv2d(2, 2, 1, bias=False, seed=0)
        ring = RingConv2d(2, 2, 1, get_ring("ri2").ring, bias=False, seed=0)
        assert real.num_parameters() == 2 * ring.num_parameters()
