"""Unit tests for the core ring machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rings.base import (
    Ring,
    indexing_tensor_from_sp,
    sp_from_indexing_tensor,
)
from repro.rings.catalog import get_ring, ring_names


def _tuples(n, count=1):
    return st.lists(
        st.lists(st.floats(-8, 8, allow_nan=False), min_size=n, max_size=n),
        min_size=count,
        max_size=count,
    ).map(np.array)


class TestIndexingTensor:
    @pytest.mark.smoke
    def test_round_trip_sign_perm(self):
        sign = np.array([[1, -1], [1, 1]], dtype=float)
        perm = np.array([[0, 1], [1, 0]])
        m_tensor = indexing_tensor_from_sp(sign, perm)
        recovered = sp_from_indexing_tensor(m_tensor)
        assert recovered is not None
        np.testing.assert_array_equal(recovered[0], sign)
        np.testing.assert_array_equal(recovered[1], perm)

    def test_non_exclusive_tensor_returns_none(self):
        m_tensor = np.zeros((2, 2, 2))
        m_tensor[0, 0, 0] = 1.0
        m_tensor[0, 1, 0] = 1.0  # two contributions to one fibre
        assert sp_from_indexing_tensor(m_tensor) is None

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            indexing_tensor_from_sp(np.ones((2, 3)), np.zeros((2, 3), dtype=int))

    def test_rejects_non_cubical_ring(self):
        with pytest.raises(ValueError):
            Ring("bad", np.zeros((2, 3, 2)))


class TestIsomorphicMatrix:
    @pytest.mark.parametrize("name", ring_names())
    def test_multiply_matches_matrix_form(self, name):
        spec = get_ring(name)
        rng = np.random.default_rng(3)
        g, x = rng.standard_normal((2, spec.n))
        via_matrix = spec.ring.isomorphic_matrix(g) @ x
        np.testing.assert_allclose(spec.ring.multiply(g, x), via_matrix, atol=1e-12)

    def test_isomorphic_matrix_batched(self):
        spec = get_ring("c")
        rng = np.random.default_rng(0)
        g = rng.standard_normal((5, 3, 2))
        mats = spec.ring.isomorphic_matrix(g)
        assert mats.shape == (5, 3, 2, 2)
        np.testing.assert_allclose(mats[2, 1], spec.ring.isomorphic_matrix(g[2, 1]))

    def test_complex_matrix_is_rotation_form(self):
        spec = get_ring("c")
        mat = spec.ring.isomorphic_matrix(np.array([3.0, 4.0]))
        np.testing.assert_array_equal(mat, np.array([[3.0, -4.0], [4.0, 3.0]]))

    def test_multiply_broadcasts_batches(self):
        spec = get_ring("ri4")
        rng = np.random.default_rng(1)
        g = rng.standard_normal((7, 4))
        x = rng.standard_normal((7, 4))
        out = spec.ring.multiply(g, x)
        np.testing.assert_allclose(out, g * x)  # identity ring: component-wise


class TestUnity:
    @pytest.mark.parametrize("name", ring_names())
    def test_unity_exists(self, name):
        spec = get_ring(name)
        e = spec.ring.unity()
        assert e is not None
        if spec.family in ("identity", "real"):
            # Component-wise product: unity is the all-ones tuple.
            np.testing.assert_allclose(e, np.ones(spec.n), atol=1e-9)
        else:
            # Proper rings (condition C1): unity is e0.
            np.testing.assert_allclose(e, np.eye(spec.n)[0], atol=1e-9)

    @pytest.mark.parametrize("name", ["c", "h", "rh4", "ro4", "rh4i"])
    def test_unity_acts_as_identity(self, name):
        spec = get_ring(name)
        rng = np.random.default_rng(5)
        x = rng.standard_normal(spec.n)
        e = spec.ring.unity()
        np.testing.assert_allclose(spec.ring.multiply(e, x), x, atol=1e-12)
        np.testing.assert_allclose(spec.ring.multiply(x, e), x, atol=1e-12)

    def test_ring_without_unity(self):
        m_tensor = np.zeros((2, 2, 2))  # zero multiplication: no unity
        ring = Ring("zero", m_tensor)
        assert ring.unity() is None


class TestAlgebraicProperties:
    @pytest.mark.parametrize("name", ring_names())
    def test_distributive(self, name):
        assert get_ring(name).ring.is_distributive()

    @pytest.mark.parametrize("name", ring_names())
    def test_associative(self, name):
        assert get_ring(name).ring.is_associative()

    def test_quaternion_not_commutative(self):
        assert not get_ring("h").ring.is_commutative()

    @pytest.mark.parametrize(
        "name", [k for k in ring_names() if k != "h"]
    )
    def test_others_commutative(self, name):
        assert get_ring(name).ring.is_commutative()

    def test_quaternion_ij_equals_k(self):
        ring = get_ring("h").ring
        e = np.eye(4)
        np.testing.assert_allclose(ring.multiply(e[1], e[2]), e[3])
        np.testing.assert_allclose(ring.multiply(e[2], e[1]), -e[3])
        np.testing.assert_allclose(ring.multiply(e[1], e[1]), -e[0])

    def test_commutativity_equals_c2_for_exclusive_rings(self):
        # Paper Section III-C: C2 is derived from g.x = x.g.
        for name in ring_names():
            ring = get_ring(name).ring
            if not ring.is_exclusive() or name.startswith("ri") or name == "real":
                continue
            assert ring.is_commutative() == ring.satisfies_c2()

    @pytest.mark.parametrize("name", ["c", "rh2", "rh4", "ro4", "rh4i", "rh4ii", "ro4i", "ro4ii", "h"])
    def test_c1_satisfied_by_proper_rings(self, name):
        assert get_ring(name).ring.satisfies_c1()

    def test_basis_matrices_reconstruct_g(self):
        spec = get_ring("rh4")
        rng = np.random.default_rng(0)
        g = rng.standard_normal(4)
        basis = spec.ring.basis_matrices()
        total = sum(g[k] * basis[k] for k in range(4))
        np.testing.assert_allclose(total, spec.ring.isomorphic_matrix(g), atol=1e-12)

    def test_permutation_matrices_commute_for_commutative_rings(self):
        # Theorem B.3 condition (iii) holds for all the paper's proper rings.
        for name in ("c", "rh2", "rh4", "ro4", "rh4i", "rh4ii", "ro4i", "ro4ii"):
            assert get_ring(name).ring.permutation_matrices_commute(), name


class TestDiagonalizability:
    @pytest.mark.parametrize("name", ["ri2", "ri4", "rh2", "rh4", "ro4"])
    def test_diagonalizable_rings(self, name):
        spec = get_ring(name)
        t_mat = spec.ring.real_diagonalizer()
        assert t_mat is not None
        rng = np.random.default_rng(2)
        g = rng.standard_normal(spec.n)
        conj = t_mat @ spec.ring.isomorphic_matrix(g) @ np.linalg.inv(t_mat)
        np.testing.assert_allclose(conj, np.diag(np.diag(conj)), atol=1e-8)

    @pytest.mark.parametrize("name", ["c", "h", "rh4i"])
    def test_non_diagonalizable_rings(self, name):
        assert get_ring(name).ring.real_diagonalizer() is None

    @pytest.mark.parametrize("name", ring_names())
    def test_full_rank_g(self, name):
        spec = get_ring(name)
        assert spec.ring.matrix_rank() == spec.n


class TestHypothesisProperties:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_bilinearity(self, data):
        spec = get_ring(data.draw(st.sampled_from(["c", "rh4", "ro4", "h", "rh4i"])))
        n = spec.n
        g = np.array(data.draw(st.lists(st.floats(-4, 4, allow_nan=False), min_size=n, max_size=n)))
        x = np.array(data.draw(st.lists(st.floats(-4, 4, allow_nan=False), min_size=n, max_size=n)))
        y = np.array(data.draw(st.lists(st.floats(-4, 4, allow_nan=False), min_size=n, max_size=n)))
        alpha = data.draw(st.floats(-3, 3, allow_nan=False))
        lhs = spec.ring.multiply(g, alpha * x + y)
        rhs = alpha * spec.ring.multiply(g, x) + spec.ring.multiply(g, y)
        np.testing.assert_allclose(lhs, rhs, atol=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_associativity_random(self, data):
        spec = get_ring(data.draw(st.sampled_from(["c", "h", "rh4", "rh4i", "ro4i"])))
        n = spec.n
        def draw():
            return np.array(
                data.draw(
                    st.lists(st.floats(-3, 3, allow_nan=False), min_size=n, max_size=n)
                )
            )
        a, b, c = draw(), draw(), draw()
        lhs = spec.ring.multiply(spec.ring.multiply(a, b), c)
        rhs = spec.ring.multiply(a, spec.ring.multiply(b, c))
        np.testing.assert_allclose(lhs, rhs, atol=1e-5)
