"""Property tests over *generated* rings (the whole C1-C2 design space).

The catalog covers the paper's named rings; these tests sweep every
commutative sign pattern on both n=4 permutation classes and check that
the library's machinery (axioms, fast-algorithm synthesis, backprop
adjoints, bitwidth analysis) holds uniformly — not just on the
hand-picked entries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rings.base import Ring, indexing_tensor_from_sp
from repro.rings.fast import synthesize_fast
from repro.rings.search import cyclic_sign_patterns

_P_XOR = np.array([[i ^ j for j in range(4)] for i in range(4)])
_P_CIRC = np.array([[(i - j) % 4 for j in range(4)] for i in range(4)])


def _commutative_rings(p_mat):
    out = []
    for s_mat in cyclic_sign_patterns(p_mat):
        ring = Ring("gen", indexing_tensor_from_sp(s_mat, p_mat))
        if ring.is_commutative() and ring.is_associative():
            out.append(ring)
    return out


_XOR_RINGS = _commutative_rings(_P_XOR)
_CIRC_RINGS = _commutative_rings(_P_CIRC)


class TestGeneratedRingAxioms:
    @pytest.mark.smoke
    def test_population_sizes(self):
        # 8 associative rings per permutation class (search scratch result,
        # stable because enumeration is exhaustive).
        assert len(_XOR_RINGS) == 8
        assert len(_CIRC_RINGS) == 8

    @pytest.mark.parametrize("idx", range(8))
    def test_xor_rings_have_unity_and_distribute(self, idx):
        ring = _XOR_RINGS[idx]
        assert ring.unity() is not None
        assert ring.is_distributive()

    @pytest.mark.parametrize("idx", range(8))
    def test_circ_rings_have_unity_and_distribute(self, idx):
        ring = _CIRC_RINGS[idx]
        assert ring.unity() is not None
        assert ring.is_distributive()

    @pytest.mark.parametrize("idx", range(8))
    def test_xor_rings_permutation_matrices_commute(self, idx):
        # Theorem B.3 condition (iii) holds across the commutative family.
        assert _XOR_RINGS[idx].permutation_matrices_commute()

    @pytest.mark.slow
    @pytest.mark.parametrize("idx", range(8))
    def test_synthesized_fast_algorithms_verify(self, idx):
        ring = _CIRC_RINGS[idx]
        algo = synthesize_fast(ring, max_rank=6)
        assert algo.verify(ring, atol=1e-5)
        assert algo.num_products <= 6

    @pytest.mark.parametrize("idx", range(8))
    def test_backprop_adjoint_exists(self, idx):
        # Gradient flow stays a ring multiplication for the whole family.
        ring = _XOR_RINGS[idx]
        g = np.random.default_rng(idx).standard_normal(4)
        basis = ring.basis_matrices()
        design = basis.reshape(4, 16).T
        target = ring.isomorphic_matrix(g).T.reshape(16)
        h, *_ = np.linalg.lstsq(design, target)
        assert np.max(np.abs(design @ h - target)) < 1e-9


class TestHypothesisGeneratedRings:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_matrix_form_isomorphism(self, data):
        ring = data.draw(st.sampled_from(_XOR_RINGS + _CIRC_RINGS))
        g = np.array(data.draw(st.lists(st.floats(-5, 5, allow_nan=False), min_size=4, max_size=4)))
        x = np.array(data.draw(st.lists(st.floats(-5, 5, allow_nan=False), min_size=4, max_size=4)))
        np.testing.assert_allclose(
            ring.multiply(g, x), ring.isomorphic_matrix(g) @ x, atol=1e-8
        )

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_unity_is_two_sided(self, data):
        ring = data.draw(st.sampled_from(_XOR_RINGS + _CIRC_RINGS))
        x = np.array(data.draw(st.lists(st.floats(-5, 5, allow_nan=False), min_size=4, max_size=4)))
        e = ring.unity()
        np.testing.assert_allclose(ring.multiply(e, x), x, atol=1e-8)
        np.testing.assert_allclose(ring.multiply(x, e), x, atol=1e-8)
