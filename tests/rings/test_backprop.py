"""Tests for Backprop in ring terminology (paper Section IV-B)."""

import numpy as np
import pytest

from repro.rings.backprop import (
    adjoint_weight,
    circular_fold,
    grad_input,
    quaternion_conjugate,
    verify_backprop_identity,
)
from repro.rings.catalog import get_ring, ring_names


class TestAdjointWeights:
    @pytest.mark.smoke
    @pytest.mark.parametrize("name", ["ri2", "ri4", "rh2", "rh4", "ro4"])
    def test_symmetric_rings_self_adjoint(self, name):
        # Paper: "grad_x L = g . grad_z L for R_I, R_H, R_O4 since G is
        # symmetric for them."
        spec = get_ring(name)
        g = np.random.default_rng(0).standard_normal(spec.n)
        h = adjoint_weight(spec, g)
        np.testing.assert_allclose(h, g, atol=1e-9)

    def test_circulant_adjoint_is_circular_fold(self):
        # Paper: "g_c . grad_z L for R_H4-I" with circular folding.
        spec = get_ring("rh4i")
        g = np.random.default_rng(1).standard_normal(4)
        h = adjoint_weight(spec, g)
        np.testing.assert_allclose(h, circular_fold(g), atol=1e-9)

    def test_quaternion_adjoint_is_conjugate(self):
        # Paper: "g* . grad_z L for H" with the quaternion conjugate.
        spec = get_ring("h")
        g = np.random.default_rng(2).standard_normal(4)
        h = adjoint_weight(spec, g)
        np.testing.assert_allclose(h, quaternion_conjugate(g), atol=1e-9)

    def test_circular_fold_explicit(self):
        np.testing.assert_array_equal(
            circular_fold(np.array([1.0, 2.0, 3.0, 4.0])), [1.0, 4.0, 3.0, 2.0]
        )

    def test_quaternion_conjugate_explicit(self):
        np.testing.assert_array_equal(
            quaternion_conjugate(np.array([1.0, 2.0, 3.0, 4.0])), [1.0, -2.0, -3.0, -4.0]
        )


class TestBackpropIdentity:
    @pytest.mark.parametrize("name", ring_names())
    def test_identity_holds_for_all_catalog_rings(self, name):
        # The gradient flow of every catalog ring is itself a ring
        # multiplication — Backprop stays inside the algebra.
        assert verify_backprop_identity(get_ring(name))

    def test_grad_input_matches_autodiff(self):
        # Cross-check the matrix-form ground truth against the autodiff
        # engine's ring_expand gradient.
        from repro.nn.functional import conv2d, ring_expand
        from repro.nn.tensor import Tensor

        spec = get_ring("rh4i")
        rng = np.random.default_rng(3)
        g = rng.standard_normal(4)
        x = rng.standard_normal(4)
        g_param = Tensor(g.reshape(1, 1, 4, 1, 1))
        x_t = Tensor(x.reshape(1, 4, 1, 1), requires_grad=True)
        w = ring_expand(g_param, spec.ring.m_tensor)
        out = conv2d(x_t, w, padding=0)
        grad_z = rng.standard_normal(4)
        out.backward(grad_z.reshape(1, 4, 1, 1))
        np.testing.assert_allclose(
            x_t.grad.reshape(4), grad_input(spec, g, grad_z), atol=1e-9
        )

    def test_adjoint_composes(self):
        # adjoint(adjoint(g)) == g (transpose is an involution).
        spec = get_ring("h")
        g = np.random.default_rng(4).standard_normal(4)
        h = adjoint_weight(spec, g)
        np.testing.assert_allclose(adjoint_weight(spec, h), g, atol=1e-9)
