"""Tests for the ring catalog and Table I resource analysis."""

import numpy as np
import pytest

from repro.rings.catalog import (
    get_ring,
    proposed_pair,
    proposed_pair_o4,
    ring_names,
    table1_rings,
)
from repro.rings.properties import (
    analyze_ring,
    format_table1,
    product_bitwidths,
    table1,
)


class TestCatalog:
    @pytest.mark.smoke
    def test_all_names_buildable(self):
        for name in ring_names():
            spec = get_ring(name)
            assert spec.fast.verify(spec.ring, atol=1e-6)

    def test_aliases_and_case_insensitivity(self):
        assert get_ring("R_H4-I") is get_ring("rh4i")
        assert get_ring("C") is get_ring("c")
        assert get_ring("R_O4") is get_ring("ro4")

    def test_unknown_ring_raises(self):
        with pytest.raises(KeyError):
            get_ring("nonexistent")

    def test_table1_membership(self):
        assert [s.key for s in table1_rings(2)] == ["ri2", "rh2", "c"]
        keys4 = [s.key for s in table1_rings(4)]
        assert keys4[0] == "ri4" and "h" in keys4 and len(keys4) == 8

    def test_table1_rejects_other_n(self):
        with pytest.raises(ValueError):
            table1_rings(3)

    def test_proposed_pair(self):
        spec, nonlin = proposed_pair(4)
        assert spec.key == "ri4"
        assert nonlin.name == "f_H"
        assert nonlin.mixes_components()

    def test_proposed_pair_o4(self):
        spec, nonlin = proposed_pair_o4()
        assert spec.key == "ri4" and nonlin.name == "f_O4"

    def test_default_nonlinearity_assignment(self):
        assert get_ring("ri4").default_nonlinearity().name == "f_H"
        assert get_ring("rh4").default_nonlinearity().name == "f_cw"
        assert get_ring("real").default_nonlinearity().name == "f_cw"

    def test_identity_rings_any_power(self):
        for key, n in (("ri2", 2), ("ri4", 4), ("ri8", 8)):
            spec = get_ring(key)
            assert spec.n == n
            rng = np.random.default_rng(0)
            g, x = rng.standard_normal((2, n))
            np.testing.assert_allclose(spec.ring.multiply(g, x), g * x)

    def test_grank_metadata_consistency(self):
        # The recorded grank equals the fast algorithm's product count for
        # every catalog ring (all are grank-optimal).
        for name in ring_names():
            spec = get_ring(name)
            assert spec.fast.num_products == spec.grank, name


class TestTable1Analysis:
    def test_dof_equals_n(self):
        for row in table1():
            assert row.dof == row.n

    def test_storage_efficiency_is_n(self):
        for row in table1():
            assert row.storage_efficiency == row.n

    def test_identity_rings_maximum_efficiency(self):
        # Paper: "only R_I can reach the maximum efficiency".
        rows = {r.key: r for r in table1()}
        assert rows["ri2"].efficiency_8bit == pytest.approx(2.0)
        assert rows["ri4"].efficiency_8bit == pytest.approx(4.0)
        for row in table1():
            assert row.efficiency_8bit <= row.n + 1e-9

    def test_rh4_ro4_efficiency_matches_paper(self):
        # Paper: "R_H4 and R_O4 merely achieve 2.6x ... 1.6x worse than R_I4".
        rows = {r.key: r for r in table1()}
        assert rows["rh4"].efficiency_8bit == pytest.approx(2.56, abs=0.1)
        assert rows["ro4"].efficiency_8bit == pytest.approx(2.56, abs=0.1)
        assert rows["ri4"].efficiency_8bit / rows["rh4"].efficiency_8bit == pytest.approx(
            1.6, abs=0.1
        )

    def test_area_ratios_vs_circulant_and_hadanet(self):
        # Paper Section VI-A: (R_I, f_H) provides 1.8x and 1.5x area
        # efficiency over the CirCNN-alike R_H4-I and HadaNet-alike R_H4.
        rows = {r.key: r for r in table1()}
        assert rows["ri4"].efficiency_8bit / rows["rh4i"].efficiency_8bit == pytest.approx(
            1.8, abs=0.1
        )
        assert rows["ri4"].efficiency_8bit / rows["rh4"].efficiency_8bit == pytest.approx(
            1.5, abs=0.12
        )

    def test_mult_count_efficiencies(self):
        rows = {r.key: r for r in table1()}
        assert rows["c"].mult_efficiency == pytest.approx(4 / 3)
        assert rows["h"].mult_efficiency == pytest.approx(2.0)
        assert rows["rh4i"].mult_efficiency == pytest.approx(16 / 5)

    def test_complex_complexity(self):
        rows = {r.key: r for r in table1()}
        # 3 products of 9x8 bits = 216 for 8-bit features/weights.
        assert rows["c"].complexity_8bit == 216

    def test_product_bitwidths_identity(self):
        widths = product_bitwidths(get_ring("ri4"))
        assert widths == [(8, 8)] * 4

    def test_product_bitwidths_hadamard(self):
        widths = product_bitwidths(get_ring("rh4"))
        assert widths == [(10, 10)] * 4

    def test_bitwidth_scaling_with_word_length(self):
        row16 = analyze_ring(get_ring("rh4"), feature_bits=16, weight_bits=16)
        # 4 products of 18x18 = 1296; baseline 16*256=4096 -> ~3.16x.
        assert row16.complexity_8bit == 4 * 18 * 18
        assert row16.efficiency_8bit == pytest.approx(4096 / 1296)

    def test_format_table1_renders_all_rows(self):
        text = format_table1()
        for symbol in ("R_I2", "R_H2", "C", "R_I4", "R_H4", "R_O4", "R_H4-I", "H"):
            assert symbol in text
