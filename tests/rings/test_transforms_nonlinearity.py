"""Tests for transform matrices and ring non-linearities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rings.nonlinearity import (
    ComponentReLU,
    DirectionalReLU,
    component_relu,
    hadamard_relu,
    householder_relu,
)
from repro.rings.transforms import (
    hadamard,
    is_signed_matrix,
    reflected_householder,
    transform_bit_growth,
)


class TestHadamard:
    @pytest.mark.smoke
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_orthogonality(self, n):
        h_mat = hadamard(n)
        np.testing.assert_allclose(h_mat @ h_mat.T, n * np.eye(n))

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_signed_entries(self, n):
        assert is_signed_matrix(hadamard(n))

    @pytest.mark.parametrize("n", [0, 3, 5, 6])
    def test_rejects_non_power_of_two(self, n):
        with pytest.raises(ValueError):
            hadamard(n)

    def test_sylvester_recursion(self):
        h2 = hadamard(2)
        h4 = hadamard(4)
        np.testing.assert_array_equal(h4[:2, :2], h2)
        np.testing.assert_array_equal(h4[2:, 2:], -h2)


class TestHouseholder:
    def test_entries_and_orthogonality(self):
        o_mat = reflected_householder(4)
        assert is_signed_matrix(o_mat)
        np.testing.assert_allclose(o_mat @ o_mat.T, 4 * np.eye(4))

    def test_first_row_matches_paper(self):
        # O = 2 L1 (I - 2 v v^t): row 0 is (1, -1, -1, -1).
        o_mat = reflected_householder(4)
        np.testing.assert_array_equal(o_mat[0], [1, -1, -1, -1])

    def test_not_a_signed_permutation_of_hadamard_rows(self):
        o_mat = reflected_householder(4)
        h_mat = hadamard(4)
        for row in o_mat:
            assert not any(
                np.array_equal(row, s * hrow) for s in (1, -1) for hrow in h_mat
            )

    def test_only_n4_supported(self):
        with pytest.raises(ValueError):
            reflected_householder(8)


class TestBitGrowth:
    def test_identity_no_growth(self):
        assert transform_bit_growth(np.eye(4)) == 0

    def test_hadamard4_two_bits(self):
        assert transform_bit_growth(hadamard(4)) == 2

    def test_hadamard2_one_bit(self):
        assert transform_bit_growth(hadamard(2)) == 1

    def test_two_term_row_one_bit(self):
        assert transform_bit_growth(np.array([[1.0, -1.0, 0.0]])) == 1

    def test_fractional_entries_no_growth(self):
        assert transform_bit_growth(np.array([[0.5, 0.5]])) == 0

    def test_three_term_row_two_bits(self):
        assert transform_bit_growth(np.array([[1.0, 1.0, 1.0]])) == 2


class TestComponentReLU:
    def test_matches_numpy_maximum(self):
        y = np.array([[-1.0, 2.0], [3.0, -4.0]])
        np.testing.assert_array_equal(component_relu(y), np.maximum(y, 0))

    def test_object_form(self):
        f = ComponentReLU(n=4)
        assert not f.mixes_components()
        y = np.array([-1.0, 1.0, -2.0, 2.0])
        np.testing.assert_array_equal(f(y), [0, 1, 0, 2])


class TestDirectionalReLU:
    def test_fh_identity_on_positive_cone(self):
        # If H y is componentwise positive, f_H(y) = (1/n) H H y = y.
        f = hadamard_relu(4)
        h_mat = hadamard(4)
        u = np.array([1.0, 2.0, 0.5, 3.0])  # positive in H-domain
        y = h_mat.T @ u / 4  # then H y = ... positive by construction
        y = np.linalg.solve(h_mat, u)
        np.testing.assert_allclose(f(y), y, atol=1e-12)

    def test_fh_mixes_components(self):
        f = hadamard_relu(2)
        y = np.array([1.0, -3.0])  # H y = (-2, 4): mixing changes comp 0
        out = f(y)
        assert not np.allclose(out[0], max(y[0], 0.0))
        assert f.mixes_components()

    def test_fh_batched_shapes(self):
        f = hadamard_relu(4)
        y = np.random.default_rng(0).standard_normal((3, 5, 4))
        assert f(y).shape == (3, 5, 4)

    def test_unnormalized_scales_by_n(self):
        f_norm = hadamard_relu(4, normalized=True)
        f_raw = hadamard_relu(4, normalized=False)
        y = np.random.default_rng(1).standard_normal(4)
        np.testing.assert_allclose(f_raw(y), 4 * f_norm(y), atol=1e-12)

    def test_householder_relu_identity_on_cone(self):
        f = householder_relu()
        o_mat = reflected_householder(4)
        y = np.linalg.solve(o_mat, np.array([1.0, 0.5, 2.0, 1.5]))
        np.testing.assert_allclose(f(y), y, atol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DirectionalReLU(n=4, u_mat=np.eye(3), v_mat=np.eye(4))

    @settings(max_examples=30, deadline=None)
    @given(
        y=st.lists(st.floats(-16, 16, allow_nan=False), min_size=4, max_size=4)
    )
    def test_fh_positive_homogeneous(self, y):
        # ReLU is positively homogeneous, so f_H(a y) = a f_H(y) for a >= 0.
        f = hadamard_relu(4)
        y = np.array(y)
        np.testing.assert_allclose(f(2.5 * y), 2.5 * f(y), atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        y=st.lists(st.floats(-16, 16, allow_nan=False), min_size=2, max_size=2)
    )
    def test_fh_idempotent(self, y):
        # f_H o f_H = f_H: after the first pass the H-domain is nonnegative.
        f = hadamard_relu(2)
        y = np.array(y)
        np.testing.assert_allclose(f(f(y)), f(y), atol=1e-8)
