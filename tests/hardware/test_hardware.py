"""Tests for the analytical hardware model against the paper's anchors."""

import pytest

from repro.hardware.accelerator import (
    ECNN,
    ERINGCNN_N2,
    ERINGCNN_N4,
    HD30,
    UHD30,
    dram_bandwidth_gbps,
    model_accelerator,
    supported_3x3_layers,
)
from repro.hardware.compare import (
    diffy_comparison,
    fig14_efficiencies,
    table8_comparison,
)
from repro.hardware.cost import CostModel, Resource
from repro.hardware.engine import engine_for_ring, real_engine


class TestCostPrimitives:
    @pytest.mark.smoke
    def test_resource_arithmetic(self):
        a = Resource(10.0, 1.0)
        b = Resource(5.0, 0.5)
        c = a + 2 * b
        assert c.area_um2 == 20.0 and c.energy_pj == 2.0

    def test_power_scaling_with_frequency(self):
        r = Resource(0.0, 100.0)  # 100 pJ per cycle
        assert r.power_w(1e9) == pytest.approx(0.1)

    def test_multiplier_scales_with_bit_product(self):
        cost = CostModel()
        small = cost.multiplier(8, 8)
        big = cost.multiplier(16, 16)
        assert big.area_um2 == pytest.approx(4 * small.area_um2)

    def test_adder_tree_count(self):
        cost = CostModel(adder_area=1.0, adder_energy=0.0, activity=1.0)
        tree = cost.adder_tree(8, 16)
        # 7 adders of ~(16 + 1.5) bits.
        assert tree.area_um2 == pytest.approx(7 * 18, rel=0.1)

    def test_adder_tree_single_term_free(self):
        assert CostModel().adder_tree(1, 16).area_um2 == 0.0


class TestEngineModel:
    def test_real_engine_mac_count(self):
        report = real_engine(kernel_size=3)
        assert report.macs_per_cycle() == 32 * 32 * 9 * 8

    def test_ring_engine_mac_reduction(self):
        # Paper: MACs reduced by 50% (n2) and 75% (n4).
        real = real_engine(3).macs_per_cycle()
        assert engine_for_ring("ri2", 3).macs_per_cycle() == real // 2
        assert engine_for_ring("ri4", 3).macs_per_cycle() == real // 4

    def test_equivalent_ops_identical_across_rings(self):
        ops = real_engine(3).equivalent_ops_per_cycle()
        for name in ("ri2", "ri4"):
            assert engine_for_ring(name, 3).equivalent_ops_per_cycle() == ops

    def test_41_tops_operating_point(self):
        # 3x3 + 1x1 engines at 250 MHz deliver ~41 equivalent TOPS.
        ops = (
            real_engine(3).equivalent_ops_per_cycle()
            + real_engine(1).equivalent_ops_per_cycle()
        )
        assert ops * 250e6 / 1e12 == pytest.approx(41.0, abs=0.5)

    def test_engine_area_efficiency_near_n(self):
        # Paper Fig. 14: ~2x for n2, ~3.8x for n4 ("near-maximum ~ n").
        base = real_engine(3).total.area_um2
        eff2 = base / engine_for_ring("ri2", 3).total.area_um2
        eff4 = base / engine_for_ring("ri4", 3).total.area_um2
        assert eff2 == pytest.approx(2.0, abs=0.15)
        assert eff4 == pytest.approx(3.77, abs=0.35)

    def test_frconv_transform_overhead(self):
        # R_H4 (FRCONV) pays transform adders and wider multipliers; its
        # engine is bigger than the (R_I4, f_H) engine.
        ri4 = engine_for_ring("ri4", 3).total.area_um2
        rh4 = engine_for_ring("rh4", 3).total.area_um2
        assert rh4 > 1.3 * ri4

    def test_fig12_ordering_matches_table1(self):
        # Area ordering across rings tracks the Table I complexity column.
        areas = {
            name: engine_for_ring(name, 3).total.area_um2
            for name in ("ri4", "rh4", "rh4i", "h")
        }
        assert areas["ri4"] < areas["rh4"] < areas["rh4i"] < areas["h"]

    def test_directional_relu_share_grows_with_n(self):
        # Paper: f_H block is 3.4% of the 3x3 engine for n2, 8.9% for n4.
        shares = {}
        for name in ("ri2", "ri4"):
            rep = engine_for_ring(name, 3)
            shares[name] = rep.nonlinearity.area_um2 / rep.total.area_um2
        assert shares["ri4"] > 2 * shares["ri2"]
        assert 0.01 < shares["ri2"] < 0.08
        assert 0.04 < shares["ri4"] < 0.15

    def test_1x1_engine_smaller(self):
        assert (
            engine_for_ring("ri2", 1).total.area_um2
            < engine_for_ring("ri2", 3).total.area_um2 / 4
        )


class TestAcceleratorModel:
    def test_table5_anchors(self):
        # Paper Table V: 33.73 mm2 / 3.76 W (n2), 23.36 mm2 / 2.22 W (n4).
        n2 = model_accelerator(ERINGCNN_N2)
        n4 = model_accelerator(ERINGCNN_N4)
        assert n2.total_area_mm2 == pytest.approx(33.73, rel=0.08)
        assert n2.total_power_w == pytest.approx(3.76, rel=0.08)
        assert n4.total_area_mm2 == pytest.approx(23.36, rel=0.08)
        assert n4.total_power_w == pytest.approx(2.22, rel=0.08)

    def test_equivalent_tops(self):
        for cfg in (ECNN, ERINGCNN_N2, ERINGCNN_N4):
            assert model_accelerator(cfg).equivalent_tops() == pytest.approx(41.0, abs=0.5)

    def test_table6_conv_fractions(self):
        # Paper Table VI: conv engines 57.42%/86.51% (n2), 45.63%/76.56% (n4).
        n2 = model_accelerator(ERINGCNN_N2)
        n4 = model_accelerator(ERINGCNN_N4)
        assert n2.conv_area_fraction == pytest.approx(0.574, abs=0.08)
        assert n2.conv_power_fraction == pytest.approx(0.865, abs=0.08)
        assert n4.conv_area_fraction == pytest.approx(0.456, abs=0.08)
        assert n4.conv_power_fraction == pytest.approx(0.766, abs=0.10)

    def test_weight_memory_halves_n2_to_n4(self):
        n2 = model_accelerator(ERINGCNN_N2)
        n4 = model_accelerator(ERINGCNN_N4)
        assert n4.areas_mm2["weight_memory"] == pytest.approx(
            n2.areas_mm2["weight_memory"] / 2
        )

    def test_datapath_larger_for_n4(self):
        # Paper: the n4 inference datapath is 0.53 mm2 larger than n2's.
        n2 = model_accelerator(ERINGCNN_N2)
        n4 = model_accelerator(ERINGCNN_N4)
        assert n4.areas_mm2["datapath"] > n2.areas_mm2["datapath"]

    def test_dram_bandwidth_anchor(self):
        # Paper: 1.93 GB/s for 4K UHD applications.
        assert dram_bandwidth_gbps(UHD30) == pytest.approx(1.93, abs=0.1)

    def test_hd30_allows_deeper_models_than_uhd30(self):
        assert supported_3x3_layers(HD30) > 3 * supported_3x3_layers(UHD30)


class TestComparisons:
    def test_fig14_gains(self):
        gains = {g.name: g for g in fig14_efficiencies()}
        n2, n4 = gains["eRingCNN-n2"], gains["eRingCNN-n4"]
        # Paper: engines 2.08x/2.00x and 3.77x/3.84x; chip 1.64x/1.85x and
        # 2.36x/3.12x.
        assert n2.engine_area_gain == pytest.approx(2.08, abs=0.2)
        assert n2.engine_energy_gain == pytest.approx(2.00, abs=0.15)
        assert n4.engine_area_gain == pytest.approx(3.77, abs=0.35)
        assert n4.engine_energy_gain == pytest.approx(3.84, abs=0.25)
        assert n2.chip_area_gain == pytest.approx(1.64, abs=0.2)
        assert n2.chip_energy_gain == pytest.approx(1.85, abs=0.2)
        assert n4.chip_area_gain == pytest.approx(2.36, rel=0.15)
        assert n4.chip_energy_gain == pytest.approx(3.12, rel=0.15)

    def test_table8_ring_beats_other_sparsity(self):
        rows = {r.name: r for r in table8_comparison()}
        ours_n2 = rows["eRingCNN-n2"].equivalent_tops_per_watt
        ours_n4 = rows["eRingCNN-n4"].equivalent_tops_per_watt
        # Paper: 19.1-28.4 equivalent TOPS/W >> SparTen 2.7, CirCNN 10.0.
        assert 15.0 < ours_n2 < 25.0
        assert 25.0 < ours_n4 < 40.0
        assert ours_n2 > rows["SparTen"].equivalent_tops_per_watt * 5
        assert ours_n4 > rows["CirCNN"].equivalent_tops_per_watt * 2

    def test_table8_moderate_compression(self):
        rows = {r.name: r for r in table8_comparison()}
        assert rows["eRingCNN-n4"].compression == 4.0
        assert rows["CirCNN"].compression == 66.0

    def test_diffy_comparison_gains(self):
        # Paper Table VII: 2.71x (n2) and 4.59x (n4) over Diffy at 167 MHz.
        rows = {r.name: r for r in diffy_comparison()}
        assert rows["eRingCNN-n2"].gain_vs_reference == pytest.approx(2.71, rel=0.35)
        assert rows["eRingCNN-n4"].gain_vs_reference == pytest.approx(4.59, rel=0.35)
        assert rows["eRingCNN-n4"].gain_vs_reference > rows[
            "eRingCNN-n2"
        ].gain_vs_reference
