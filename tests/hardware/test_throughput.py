"""Tests for the throughput/scheduling model."""

import math

import pytest

from repro.hardware.accelerator import HD30, UHD30
from repro.hardware.throughput import (
    LayerShape,
    achievable_fps,
    cycles_per_pixel,
    layers_of_model,
    max_blocks_for_target,
)
from repro.models.ernet import sr4_ernet


class TestLayerShape:
    @pytest.mark.smoke
    def test_folds_exact_fit(self):
        assert LayerShape(32, 32, 3).folds() == 1

    def test_folds_wide_layer(self):
        assert LayerShape(64, 96, 3).folds() == 2 * 3

    def test_folds_narrow_layer_still_one_pass(self):
        assert LayerShape(8, 8, 3).folds() == 1


class TestCyclesPerPixel:
    def test_single_layer(self):
        layers = [LayerShape(32, 32, 3)]
        assert cycles_per_pixel(layers) == pytest.approx(1 / 8)

    def test_scale_discounts_low_res_layers(self):
        full = [LayerShape(32, 32, 3, scale=1.0)]
        low = [LayerShape(32, 32, 3, scale=1 / 16)]
        assert cycles_per_pixel(low) == pytest.approx(cycles_per_pixel(full) / 16)

    def test_empty_model_infinite_fps(self):
        assert achievable_fps([], UHD30) == math.inf


class TestAchievableFps:
    def test_uhd30_depth_budget(self):
        # ~8 single-pass layers fit per pixel at UHD30/250 MHz.
        layers = [LayerShape(32, 32, 3) for _ in range(8)]
        assert achievable_fps(layers, UHD30) >= 30.0
        layers_too_deep = [LayerShape(32, 32, 3) for _ in range(12)]
        assert achievable_fps(layers_too_deep, UHD30) < 30.0

    def test_hd30_allows_deeper(self):
        layers = [LayerShape(32, 32, 3) for _ in range(8)]
        assert achievable_fps(layers, HD30) > 4 * achievable_fps(layers, UHD30) * 0.9


class TestCompactConfiguration:
    def test_hd30_deeper_than_uhd30(self):
        # The paper's Section VI-B: deeper compact models at HD30.
        assert max_blocks_for_target(HD30) > max_blocks_for_target(UHD30)

    def test_uhd30_supports_at_least_one_block(self):
        assert max_blocks_for_target(UHD30) >= 1

    def test_frequency_scales_depth(self):
        assert max_blocks_for_target(UHD30, freq_hz=500e6) > max_blocks_for_target(
            UHD30, freq_hz=250e6
        )


class TestModelExtraction:
    def test_layers_of_ernet(self):
        model = sr4_ernet(blocks=2, ratio=2, seed=0)
        layers = layers_of_model(model, scale=1 / 16)  # SR body runs in LR domain
        # head + 2 blocks x 2 convs + tail = 6 convolutions.
        assert len(layers) == 6
        assert all(layer.scale == 1 / 16 for layer in layers)

    def test_ring_model_same_schedule(self):
        # Ring layers reduce MACs inside a pass, not the pass count.
        from repro.models.factory import make_factory

        real = layers_of_model(sr4_ernet(blocks=1, ratio=1, seed=0))
        ring = layers_of_model(
            sr4_ernet(blocks=1, ratio=1, factory=make_factory("proposed"), seed=0)
        )
        assert cycles_per_pixel(real) == cycles_per_pixel(ring)
