"""Tests for quantization-aware fine-tuning as an engine callback."""

import numpy as np
import pytest

from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.layers import Conv2d, Sequential
from repro.nn.trainer import TrainConfig
from repro.quant import WeightQuantCallback, qat_finetune, choose_qformat
from repro.train import TrainEngine


def _setup(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((8, 1, 8, 8))
    y = x * 0.5
    model = Sequential(Conv2d(1, 4, 3, seed=0), Conv2d(4, 1, 3, seed=1))
    loader = DataLoader(ArrayDataset(x, y), batch_size=4, seed=0)
    return model, loader, x, y


def _on_grid(model, word_bits):
    """Every weight must be a fixed point of its dynamically-chosen format."""
    for _, param in model.named_parameters():
        fmt = choose_qformat(param.data, word_bits)
        np.testing.assert_array_equal(fmt.quantize(param.data), param.data)


class TestWeightQuantCallback:
    @pytest.mark.smoke
    def test_weights_stay_on_fixed_point_grid(self):
        model, loader, _, _ = _setup()
        config = TrainConfig(epochs=3, lr=3e-3)
        cb = WeightQuantCallback(word_bits=8)
        TrainEngine(model, config, callbacks=[cb]).fit(loader)
        _on_grid(model, 8)
        assert cb.formats is not None and len(cb.formats) == 4  # 2 convs x (w, b)

    def test_qat_improves_over_posttraining_quantization(self):
        # Fine-tuning on the grid should not do worse than one-shot
        # quantization of the float-trained model.
        from repro.nn.trainer import evaluate_mse, train_model
        from repro.quant import quantize_weights

        config = TrainConfig(epochs=6, lr=3e-3)
        model_ptq, loader_a, x, y = _setup()
        train_model(model_ptq, loader_a, config)
        quantize_weights(model_ptq, 4)
        ptq_mse = evaluate_mse(model_ptq, x, y)

        model_qat, loader_b, _, _ = _setup()
        train_model(model_qat, loader_b, config)
        finetune = TrainConfig(epochs=4, lr=1e-3)
        qat_finetune(model_qat, loader_b, finetune, word_bits=4)
        qat_mse = evaluate_mse(model_qat, x, y)
        assert qat_mse <= ptq_mse * 1.05

    def test_qat_finetune_returns_history(self):
        model, loader, _, _ = _setup()
        result = qat_finetune(model, loader, TrainConfig(epochs=2, lr=1e-3), word_bits=8)
        assert result.epochs == 2
        assert len(result.grad_norms) == 4
        assert all(np.isfinite(loss) for loss in result.train_losses)
        _on_grid(model, 8)
