"""Tests for Q-format arithmetic and model quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.ernet import dn_ernet_pu
from repro.models.factory import make_factory
from repro.nn.tensor import Tensor
from repro.quant.qformat import (
    QFormat,
    choose_qformat,
    componentwise_qformats,
    quantize_dynamic,
)
from repro.quant.quantize import (
    Quantize,
    QuantizedDirectionalReLU2d,
    QuantizingFactory,
    calibrate,
    quantize_weights,
    set_quantization_enabled,
)
from repro.nn.layers import DirectionalReLU2d
from repro.rings.nonlinearity import hadamard_relu


class TestQFormat:
    @pytest.mark.smoke
    def test_step_and_range(self):
        fmt = QFormat(frac_bits=6, word_bits=8)
        assert fmt.step == pytest.approx(1 / 64)
        assert fmt.max_value == pytest.approx(127 / 64)
        assert fmt.min_value == pytest.approx(-2.0)

    def test_quantize_rounds_to_grid(self):
        fmt = QFormat(frac_bits=2, word_bits=8)
        out = fmt.quantize(np.array([0.1, 0.3, -0.6]))
        np.testing.assert_allclose(out, [0.0, 0.25, -0.5])

    def test_quantize_saturates(self):
        fmt = QFormat(frac_bits=7, word_bits=8)  # range ~[-1, 0.992]
        out = fmt.quantize(np.array([5.0, -5.0]))
        assert out[0] == pytest.approx(fmt.max_value)
        assert out[1] == pytest.approx(fmt.min_value)

    def test_error_within_half_step(self):
        fmt = QFormat(frac_bits=4, word_bits=8)
        x = np.linspace(-2, 2, 101)  # inside the representable range
        x = x[(x >= fmt.min_value) & (x <= fmt.max_value)]
        assert np.max(np.abs(fmt.quantize(x) - x)) <= fmt.step / 2 + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(peak=st.floats(0.01, 100.0))
    def test_choose_qformat_never_saturates_peak(self, peak):
        fmt = choose_qformat(np.array([peak, -peak]))
        assert fmt.max_value >= peak * (1 - 2**-7) - fmt.step

    def test_choose_qformat_small_values_use_more_frac_bits(self):
        small = choose_qformat(np.array([0.1]))
        large = choose_qformat(np.array([10.0]))
        assert small.frac_bits > large.frac_bits

    def test_choose_qformat_zero_input(self):
        fmt = choose_qformat(np.zeros(4))
        assert fmt.frac_bits == 7

    def test_quantize_dynamic_round_trip_accuracy(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(1000)
        xq, fmt = quantize_dynamic(x, word_bits=8)
        assert np.sqrt(np.mean((x - xq) ** 2)) < 2 * fmt.step

    def test_componentwise_formats_differ_with_ranges(self):
        x = np.zeros((1, 4, 2, 2))
        x[:, 0::4] = 10.0  # component 0 large
        x[:, 1::4] = 0.05  # component 1 tiny
        fmts = componentwise_qformats(x, n=4, axis=1)
        assert fmts[1].frac_bits > fmts[0].frac_bits

    def test_componentwise_requires_divisible_axis(self):
        with pytest.raises(ValueError):
            componentwise_qformats(np.zeros((1, 6, 2, 2)), n=4, axis=1)


class TestQuantizeLayer:
    def test_calibration_then_freeze(self):
        q = Quantize(word_bits=8)
        q.calibrating = True
        q(Tensor(np.array([[3.5]])))
        q(Tensor(np.array([[-7.0]])))
        q.freeze()
        assert q.formats is not None
        assert q.formats[0].max_value >= 7.0 - q.formats[0].step

    def test_freeze_without_data_raises(self):
        with pytest.raises(RuntimeError):
            Quantize().freeze()

    def test_disabled_passthrough(self):
        q = Quantize()
        q._peak = np.array([1.0])
        q.freeze()
        q.enabled = False
        x = np.array([[0.12345]])
        np.testing.assert_array_equal(q(Tensor(x)).data, x)

    def test_componentwise_quantization_applied(self):
        q = Quantize(word_bits=8, tuple_size=2)
        q.calibrating = True
        x = np.zeros((1, 4, 1, 1))
        x[:, 0::2] = 8.0
        x[:, 1::2] = 0.06
        q(Tensor(x))
        q.freeze()
        out = q(Tensor(x)).data
        # The small component keeps fine resolution.
        assert abs(out[0, 1, 0, 0] - 0.06) < 1e-2


class TestDirectionalReLUQuantization:
    def _setup(self, mode):
        inner = DirectionalReLU2d(hadamard_relu(4))
        layer = QuantizedDirectionalReLU2d(inner, word_bits=8, mode=mode)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 8, 4, 4))
        # calibrate
        for q in (layer.pre, layer.mid, layer.post):
            q.calibrating = True
        layer(Tensor(x))
        for q in (layer.pre, layer.mid, layer.post):
            if q._peak is not None:  # pre/mid are bypassed in onthefly mode
                q.freeze()
            else:
                q.calibrating = False
        return layer, inner, x

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            QuantizedDirectionalReLU2d(DirectionalReLU2d(hadamard_relu(4)), mode="bogus")

    @pytest.mark.parametrize("mode", ["onthefly", "naive"])
    def test_output_close_to_float(self, mode):
        layer, inner, x = self._setup(mode)
        out = layer(Tensor(x)).data
        ref = inner(Tensor(x)).data
        assert np.sqrt(np.mean((out - ref) ** 2)) < 0.1

    def test_onthefly_more_accurate_than_naive(self):
        # The paper's motivation for the on-the-fly pipeline (Section V).
        errs = {}
        for mode in ("onthefly", "naive"):
            layer, inner, x = self._setup(mode)
            out = layer(Tensor(x)).data
            ref = inner(Tensor(x)).data
            errs[mode] = float(np.mean((out - ref) ** 2))
        assert errs["onthefly"] < errs["naive"]


class TestModelQuantization:
    def test_quantize_weights_snaps_parameters(self):
        model = dn_ernet_pu(blocks=1, ratio=1, seed=0)
        formats = quantize_weights(model, word_bits=8)
        assert len(formats) == len(list(model.named_parameters()))
        for name, param in model.named_parameters():
            fmt = formats[name]
            np.testing.assert_allclose(param.data, fmt.quantize(param.data), atol=1e-12)

    def test_quantizing_factory_end_to_end(self):
        factory = QuantizingFactory(make_factory("proposed"), word_bits=8)
        model = dn_ernet_pu(blocks=1, ratio=1, factory=factory, seed=0)
        rng = np.random.default_rng(7)
        for _, p in model.named_parameters():  # un-zero the tail so the
            p.data[...] = 0.2 * rng.standard_normal(p.shape)  # net path is live
        x = np.random.default_rng(1).random((2, 1, 8, 8))
        calibrate(model, x)
        out_q = model(Tensor(x)).data
        set_quantization_enabled(model, False)
        out_f = model(Tensor(x)).data
        # Quantized output tracks float closely but not exactly.
        assert np.sqrt(np.mean((out_q - out_f) ** 2)) < 0.1
        assert not np.allclose(out_q, out_f)

    def test_quantizing_factory_name(self):
        factory = QuantizingFactory(make_factory("real"), word_bits=8)
        assert "real@q8" in factory.name

    def test_compression_passthrough(self):
        factory = QuantizingFactory(make_factory("proposed"))
        assert factory.weight_compression() == 4.0
