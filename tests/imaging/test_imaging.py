"""Tests for the imaging substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging.datasets import (
    TEST_SET_SPECS,
    denoising_pairs,
    make_denoising_task,
    make_sr_task,
    named_test_set,
    super_resolution_pairs,
)
from repro.imaging.degrade import (
    add_gaussian_noise,
    bicubic_downsample,
    bicubic_kernel,
    bicubic_upsample,
)
from repro.imaging.metrics import average_psnr, psnr, ssim
from repro.imaging.synthetic import (
    band_limited_texture,
    checkerboard,
    make_corpus,
    oriented_grating,
    random_image,
    smooth_gradient,
)


class TestSynthetic:
    @pytest.mark.smoke
    def test_generators_in_range(self):
        rng = np.random.default_rng(0)
        for gen in (band_limited_texture, oriented_grating, checkerboard, smooth_gradient):
            img = gen(16, rng)
            assert img.shape == (16, 16)
            assert img.min() >= -1e-9 and img.max() <= 1 + 1e-9

    def test_random_image_clipped(self):
        img = random_image(24, np.random.default_rng(1))
        assert img.min() >= 0 and img.max() <= 1

    def test_corpus_deterministic(self):
        a = make_corpus(3, 16, seed=5)
        b = make_corpus(3, 16, seed=5)
        np.testing.assert_array_equal(a, b)
        c = make_corpus(3, 16, seed=6)
        assert not np.array_equal(a, c)

    def test_corpus_has_high_frequency_content(self):
        # SR/denoising need real detail to restore: check spectral energy.
        imgs = make_corpus(4, 32, seed=0)
        for img in imgs:
            spectrum = np.abs(np.fft.fft2(img - img.mean()))
            high = spectrum[8:24, 8:24].sum()
            assert high > 0.01 * spectrum.sum()


class TestDegrade:
    def test_noise_statistics(self):
        img = np.full((64, 64), 0.5)
        noisy = add_gaussian_noise(img, 0.1, seed=0)
        assert abs(float((noisy - img).std()) - 0.1) < 0.01
        assert abs(float((noisy - img).mean())) < 0.01

    def test_bicubic_kernel_properties(self):
        assert bicubic_kernel(np.array([0.0]))[0] == pytest.approx(1.0)
        assert bicubic_kernel(np.array([1.0]))[0] == pytest.approx(0.0, abs=1e-12)
        assert bicubic_kernel(np.array([2.0]))[0] == pytest.approx(0.0, abs=1e-12)

    def test_downsample_shape_and_constant_preservation(self):
        img = np.full((1, 1, 16, 16), 0.7)
        down = bicubic_downsample(img, 4)
        assert down.shape == (1, 1, 4, 4)
        np.testing.assert_allclose(down, 0.7, atol=1e-9)

    def test_upsample_shape_and_constant_preservation(self):
        img = np.full((2, 8, 8), 0.3)
        up = bicubic_upsample(img, 2)
        assert up.shape == (2, 16, 16)
        np.testing.assert_allclose(up, 0.3, atol=1e-9)

    def test_down_up_recovers_smooth_image(self):
        yy, xx = np.mgrid[0:32, 0:32] / 32.0
        smooth = 0.5 + 0.25 * np.sin(2 * np.pi * yy) * np.cos(2 * np.pi * xx)
        rec = bicubic_upsample(bicubic_downsample(smooth, 2), 2)
        assert psnr(rec, smooth) > 35.0

    def test_downsample_antialiases(self):
        # Nyquist-rate checkerboard must collapse toward its mean, not alias.
        img = np.indices((16, 16)).sum(axis=0) % 2.0
        down = bicubic_downsample(img, 4)
        assert float(np.abs(down - 0.5).max()) < 0.2


class TestMetrics:
    def test_psnr_identity_infinite(self):
        img = np.random.default_rng(0).random((8, 8))
        assert psnr(img, img) == float("inf")

    def test_psnr_known_value(self):
        target = np.zeros((10, 10))
        pred = np.full((10, 10), 0.1)
        assert psnr(pred, target) == pytest.approx(20.0, abs=1e-9)

    def test_psnr_shave_excludes_border(self):
        target = np.zeros((10, 10))
        pred = np.zeros((10, 10))
        pred[0, :] = 1.0  # only border error
        assert psnr(pred, target, shave=1) == float("inf")

    def test_psnr_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((4, 4)), np.zeros((5, 5)))

    def test_average_psnr(self):
        t = np.zeros((2, 8, 8))
        p = np.stack([np.full((8, 8), 0.1), np.full((8, 8), 0.01)])
        avg = average_psnr(p, t)
        assert avg == pytest.approx((20.0 + 40.0) / 2, abs=1e-6)

    def test_ssim_bounds(self):
        rng = np.random.default_rng(1)
        img = rng.random((16, 16))
        assert ssim(img, img) == pytest.approx(1.0, abs=1e-9)
        assert ssim(img, 1 - img) < 0.9

    @settings(max_examples=20, deadline=None)
    @given(scale=st.floats(0.01, 0.2))
    def test_psnr_monotone_in_error(self, scale):
        target = np.zeros((6, 6))
        small = psnr(np.full((6, 6), scale / 2), target)
        big = psnr(np.full((6, 6), scale), target)
        assert small > big


class TestDatasets:
    def test_denoising_pairs_shapes(self):
        imgs = make_corpus(4, 16, seed=0)
        noisy, clean = denoising_pairs(imgs, 0.1, seed=0)
        assert noisy.shape == clean.shape == (4, 1, 16, 16)
        assert not np.array_equal(noisy, clean)

    def test_sr_pairs_shapes(self):
        imgs = make_corpus(3, 16, seed=0)
        low, high = super_resolution_pairs(imgs, 4)
        assert low.shape == (3, 1, 4, 4)
        assert high.shape == (3, 1, 16, 16)

    def test_make_denoising_task(self):
        task = make_denoising_task(train_count=6, test_count=2, size=16)
        assert task.task == "denoise"
        assert task.train_inputs.shape == (6, 1, 16, 16)
        assert task.test_targets.shape == (2, 1, 16, 16)
        # Inputs are noisy versions of targets.
        assert psnr(task.train_inputs, task.train_targets) < 40

    def test_make_sr_task(self):
        task = make_sr_task(train_count=4, test_count=2, size=16, factor=4)
        assert task.train_inputs.shape == (4, 1, 4, 4)
        assert task.train_targets.shape == (4, 1, 16, 16)

    def test_sr_task_size_validation(self):
        with pytest.raises(ValueError):
            make_sr_task(size=10, factor=4)

    def test_named_test_sets(self):
        for name, (count, size, _) in TEST_SET_SPECS.items():
            imgs = named_test_set(name)
            assert imgs.shape == (count, size, size)

    def test_named_test_set_unknown(self):
        with pytest.raises(KeyError):
            named_test_set("set5")  # must use the synthetic- prefix
