"""Tests for the data-parallel training engine (repro.train.parallel).

The load-bearing claim under test: the grain decomposition makes the
trained bytes a pure function of (model, data, recipe, grain) — never
of the worker count — so ``jobs ∈ {1, 2, 4}`` must produce
byte-identical checkpoints and histories, resume must work across a
jobs-count change, and a worker death must fail the fit loudly instead
of corrupting state.
"""

import functools
import json

import numpy as np
import pytest

from repro.comms import active_segments
from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.optim import SGD, Adam
from repro.nn.trainer import TrainConfig
from repro.serving.bench import make_bench_model
from repro.train import ParallelTrainEngine, TrainEngine
from repro.train.parallel import _grain_assignment, _grain_bounds

# Module-level (hence spawn-picklable) architecture builder; weights are
# broadcast every step, so the builder's own init values never matter.
FACTORY = functools.partial(make_bench_model, 0)


def _data(n, seed=5):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, 8, 8))
    return x, x * 0.5


def _loader(n, batch_size=4):
    x, y = _data(n)
    return DataLoader(ArrayDataset(x, y), batch_size=batch_size, seed=11)


def _optimizer(name, model, lr):
    if name == "sgd":
        return SGD(model.parameters(), lr=lr, momentum=0.9)
    return Adam(model.parameters(), lr=lr)


def _run(jobs, opt_name="adam", n=10, epochs=2, grain=2, ckpt=None):
    """One complete training run; returns (model, history result)."""
    model = make_bench_model(0)
    config = TrainConfig(epochs=epochs, lr=5e-3, batch_size=4, seed=11)
    engine = ParallelTrainEngine(
        model,
        config,
        optimizer=_optimizer(opt_name, model, config.lr),
        jobs=jobs,
        grain=grain,
        model_factory=FACTORY,
    )
    try:
        result = engine.fit(_loader(n))
        if ckpt is not None:
            engine.save_checkpoint(ckpt)
    finally:
        engine.close()
    return model, result


def checkpoint_content(path):
    """A checkpoint's exact content: parsed meta + per-array raw bytes.

    Raw .npz file bytes are not comparable (zip entry timestamps), so
    byte-identity means: identical arrays, bit for bit, and identical
    metadata.
    """
    with np.load(path, allow_pickle=False) as data:
        files = dict(data)
    meta = json.loads(bytes(files.pop("meta")).decode())
    arrays = {
        key: (arr.dtype.str, arr.shape, arr.tobytes())
        for key, arr in sorted(files.items())
    }
    return meta, arrays


class TestBitIdentityMatrix:
    @pytest.mark.parametrize("opt_name", ["sgd", "adam"])
    @pytest.mark.parametrize("n", [10, 9])  # both leave a partial final batch
    def test_jobs_1_2_4_byte_identical(self, opt_name, n, tmp_path):
        paths, results = {}, {}
        for jobs in (1, 2, 4):
            paths[jobs] = tmp_path / f"{opt_name}-{n}-j{jobs}.npz"
            _, results[jobs] = _run(jobs, opt_name, n=n, ckpt=paths[jobs])
        reference = checkpoint_content(paths[1])
        for jobs in (2, 4):
            assert checkpoint_content(paths[jobs]) == reference, (
                f"--jobs {jobs} checkpoint differs from --jobs 1 "
                f"({opt_name}, n={n})"
            )
            assert results[jobs].train_losses == results[1].train_losses
            assert results[jobs].grad_norms == results[1].grad_norms
            assert results[jobs].lr_trace == results[1].lr_trace
        assert active_segments() == []

    @pytest.mark.smoke
    def test_jobs_2_matches_serial_reference_quickly(self, tmp_path):
        a = tmp_path / "serial.npz"
        b = tmp_path / "dual.npz"
        _run(1, "adam", n=6, epochs=1, ckpt=a)
        _run(2, "adam", n=6, epochs=1, ckpt=b)
        assert checkpoint_content(a) == checkpoint_content(b)


class TestResumeAcrossJobsChange:
    def test_checkpoint_under_jobs_2_resumes_under_jobs_4(self, tmp_path):
        ckpt = tmp_path / "seg.npz"
        # Segment 1: one epoch under jobs=2.
        model = make_bench_model(0)
        config = TrainConfig(epochs=2, lr=5e-3, batch_size=4, seed=11)
        engine = ParallelTrainEngine(
            model, config, jobs=2, model_factory=FACTORY
        )
        try:
            engine.fit(_loader(10), epochs=1)
            engine.save_checkpoint(ckpt)
        finally:
            engine.close()
        # Segment 2: resume the same file under jobs=4.
        model_b = make_bench_model(0)
        engine_b = ParallelTrainEngine(
            model_b, config, jobs=4, model_factory=FACTORY
        )
        try:
            loader = _loader(10)
            engine_b.load_checkpoint(ckpt, loader=loader)
            result = engine_b.fit(loader, epochs=1)
            engine_b.save_checkpoint(ckpt)
        finally:
            engine_b.close()
        # Oracle: two epochs straight through, in process (jobs=1).
        straight = tmp_path / "straight.npz"
        _, straight_result = _run(1, "adam", n=10, epochs=2, ckpt=straight)
        assert checkpoint_content(ckpt) == checkpoint_content(straight)
        assert result.train_losses == straight_result.train_losses
        assert active_segments() == []


class TestFailureSemantics:
    def test_worker_death_mid_epoch_fails_loudly(self):
        model = make_bench_model(0)
        config = TrainConfig(epochs=4, lr=5e-3, batch_size=4, seed=11)
        engine = ParallelTrainEngine(
            model, config, jobs=2, model_factory=FACTORY
        )
        try:
            engine.fit(_loader(8), epochs=1)  # workers come up healthy
            engine.inject_worker_crash(0)
            with pytest.raises(RuntimeError, match="died mid-epoch"):
                engine.fit(_loader(8), epochs=1)
        finally:
            engine.close()
        assert active_segments() == []

    def test_crash_injection_requires_running_workers(self):
        engine = ParallelTrainEngine(
            make_bench_model(0),
            TrainConfig(epochs=1),
            jobs=2,
            model_factory=FACTORY,
        )
        try:
            with pytest.raises(RuntimeError, match="no workers"):
                engine.inject_worker_crash(0)
        finally:
            engine.close()

    def test_closed_engine_refuses_to_train(self):
        engine = ParallelTrainEngine(make_bench_model(0), TrainConfig(epochs=1))
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.fit(_loader(4), epochs=1)

    def test_larger_batch_than_first_step_is_rejected(self):
        x, y = _data(8)
        engine = ParallelTrainEngine(
            make_bench_model(0), TrainConfig(epochs=1), jobs=2, model_factory=FACTORY
        )
        try:
            engine.fit([(x[:2], y[:2])], epochs=1)  # sizes the transport
            with pytest.raises(ValueError, match="exceeds the transport ring"):
                engine.fit([(x, y)], epochs=1)
        finally:
            engine.close()


class TestConstructionAndGrain:
    def test_rejects_bad_arguments(self):
        model = make_bench_model(0)
        with pytest.raises(ValueError, match="jobs"):
            ParallelTrainEngine(model, TrainConfig(), jobs=0)
        with pytest.raises(ValueError, match="grain"):
            ParallelTrainEngine(model, TrainConfig(), grain=0)
        with pytest.raises(ValueError, match="model_factory"):
            ParallelTrainEngine(model, TrainConfig(), jobs=2)

    def test_grain_covering_whole_batch_matches_classic_engine(self):
        # With grain >= batch size every batch is one grain at scale 1.0,
        # so the grain path degenerates to the classic full-batch
        # backward — bit for bit.  (At smaller grains the two engines are
        # deliberately *different* roundings of the same gradient.)
        config = TrainConfig(epochs=2, lr=5e-3, batch_size=4, seed=11)
        classic = make_bench_model(0)
        TrainEngine(classic, config).fit(_loader(10))
        grained = make_bench_model(0)
        engine = ParallelTrainEngine(grained, config, jobs=1, grain=4)
        engine.fit(_loader(10))
        for key, arr in classic.state_dict().items():
            assert arr.tobytes() == grained.state_dict()[key].tobytes(), key

    def test_default_grain_differs_from_full_batch_engine(self):
        # Honest non-claim: the grain-sharded gradient is a different
        # rounding than TrainEngine's single backward, so the serial
        # reference for the jobs-matrix is this engine at jobs=1.
        config = TrainConfig(epochs=2, lr=5e-3, batch_size=4, seed=11)
        classic = make_bench_model(0)
        TrainEngine(classic, config).fit(_loader(10))
        grained, _ = _run(1, "adam", n=10, epochs=2)
        assert any(
            arr.tobytes() != grained.state_dict()[key].tobytes()
            for key, arr in classic.state_dict().items()
        )

    def test_grain_bounds_cover_exactly_once(self):
        for n in (1, 2, 5, 8, 9):
            for grain in (1, 2, 3, 4, 10):
                bounds = _grain_bounds(n, grain)
                flat = [i for start, stop in bounds for i in range(start, stop)]
                assert flat == list(range(n)), (n, grain)
                assert all(stop - start <= grain for start, stop in bounds)

    def test_grain_assignment_is_contiguous_and_balanced(self):
        for count in (0, 1, 5, 8):
            for jobs in (1, 2, 3, 4, 6):
                ranks = _grain_assignment(count, jobs)
                assert len(ranks) == jobs
                flat = [g for mine in ranks for g in mine]
                assert flat == list(range(count)), (count, jobs)
                sizes = [len(mine) for mine in ranks]
                assert max(sizes) - min(sizes) <= 1
