"""Tests for the callback-driven training engine (repro.train.engine)."""

import numpy as np
import pytest

from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.layers import Conv2d, Sequential
from repro.nn.optim import SGD, Adam, CosineLR, StepLR, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.nn.trainer import TrainConfig, train_model
from repro.train import Callback, EvalCallback, LambdaCallback, TrainEngine


def _problem(n=10, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, 8, 8))
    return x, x * 0.5


def _make(n=10, batch_size=4, model_seed=7, loader_seed=3):
    x, y = _problem(n)
    model = Sequential(Conv2d(1, 1, 3, seed=model_seed))
    loader = DataLoader(ArrayDataset(x, y), batch_size=batch_size, seed=loader_seed)
    return model, loader


def _legacy_train(model, loader, config):
    """The pre-engine train_model loop, verbatim (the bit-identity oracle)."""
    params = model.parameters()
    optimizer = Adam(params, lr=config.lr)
    schedule = CosineLR(optimizer, total=config.epochs, min_lr=config.lr * config.min_lr_ratio)
    model.train()
    for _ in range(config.epochs):
        for inputs, targets in loader:
            optimizer.zero_grad()
            loss = config.loss_fn(model(Tensor(inputs)), targets)
            loss.backward()
            if config.grad_clip:
                clip_grad_norm(params, config.grad_clip)
            optimizer.step()
        schedule.step()
    model.eval()


class TestEngineNumerics:
    @pytest.mark.smoke
    def test_bit_identical_to_legacy_loop(self):
        config = TrainConfig(epochs=3, lr=1e-2)
        ref_model, ref_loader = _make()
        _legacy_train(ref_model, ref_loader, config)
        model, loader = _make()
        TrainEngine(model, config).fit(loader)
        for (name, p), (_, q) in zip(
            ref_model.named_parameters(), model.named_parameters(), strict=True
        ):
            np.testing.assert_array_equal(p.data, q.data, err_msg=name)

    def test_train_model_wrapper_matches_engine(self):
        config = TrainConfig(epochs=2, lr=1e-2)
        model_a, loader_a = _make()
        res_a = train_model(model_a, loader_a, config)
        model_b, loader_b = _make()
        res_b = TrainEngine(model_b, config).fit(loader_b)
        assert res_a.train_losses == res_b.train_losses
        assert res_a.grad_norms == res_b.grad_norms
        for (_, p), (_, q) in zip(
            model_a.named_parameters(), model_b.named_parameters(), strict=True
        ):
            np.testing.assert_array_equal(p.data, q.data)

    def test_epoch_loss_weighted_by_batch_size(self):
        # 10 samples in batches of 4 -> sizes 4, 4, 2: the partial final
        # batch must contribute 2 samples' worth, not a full batch's.
        config = TrainConfig(epochs=1, lr=1e-3)
        model, loader = _make(n=10, batch_size=4)
        seen: list[float] = []
        cb = LambdaCallback(on_batch_end=lambda e, loss, g: seen.append(loss))
        result = TrainEngine(model, config, callbacks=[cb]).fit(loader)
        assert len(seen) == 3
        weighted = (seen[0] * 4 + seen[1] * 4 + seen[2] * 2) / 10
        unweighted = sum(seen) / 3
        assert result.train_losses[0] == pytest.approx(weighted, rel=0, abs=0)
        assert result.train_losses[0] != unweighted

    def test_history_grad_norms_and_lr_trace(self):
        config = TrainConfig(epochs=2, lr=1e-2)
        model, loader = _make(n=8, batch_size=4)
        engine = TrainEngine(model, config)
        result = engine.fit(loader)
        assert len(result.grad_norms) == 2 * 2  # epochs * batches
        assert all(g > 0 for g in result.grad_norms)
        # lr_trace records the lr each epoch *trained at*: base lr first,
        # then the scheduler's decayed values.
        assert result.lr_trace[0] == config.lr
        assert len(result.lr_trace) == 2
        assert result.lr_trace[1] < result.lr_trace[0]

    def test_grad_norms_recorded_with_clipping_disabled(self):
        config = TrainConfig(epochs=1, lr=1e-3, grad_clip=None)
        model, loader = _make(n=8, batch_size=4)
        result = TrainEngine(model, config).fit(loader)
        assert len(result.grad_norms) == 2
        assert all(np.isfinite(g) for g in result.grad_norms)

    def test_grad_clip_zero_clips_to_zero(self):
        # Regression: `grad_clip or float("inf")` once treated 0.0 as
        # "clipping disabled"; 0.0 must freeze the weights instead.
        config = TrainConfig(epochs=2, lr=0.1, grad_clip=0.0)
        model, loader = _make(n=8, batch_size=4)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        opt = SGD(model.parameters(), lr=config.lr)  # stateless: zero grad = no-op
        result = TrainEngine(model, config, optimizer=opt).fit(loader)
        for key, arr in model.state_dict().items():
            np.testing.assert_array_equal(arr, before[key], err_msg=key)
        # The recorded norms are still the true pre-clip norms.
        assert all(g > 0 for g in result.grad_norms)

    def test_grad_clip_none_differs_from_small_threshold(self):
        def run(clip):
            model, loader = _make(n=8, batch_size=4)
            TrainEngine(
                model, TrainConfig(epochs=1, lr=0.05, grad_clip=clip)
            ).fit(loader)
            return model.state_dict()

        unclipped, clipped = run(None), run(1e-3)
        assert any(
            not np.array_equal(unclipped[k], clipped[k]) for k in unclipped
        ), "a tiny clip threshold must change the trajectory vs grad_clip=None"

    def test_custom_optimizer_and_scheduler(self):
        config = TrainConfig(epochs=4, lr=0.5)
        model, loader = _make(n=8, batch_size=4)
        opt = SGD(model.parameters(), lr=config.lr, momentum=0.9)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        result = TrainEngine(model, config, optimizer=opt, scheduler=sched).fit(loader)
        assert result.lr_trace == [0.5, 0.5, pytest.approx(0.05), pytest.approx(0.05)]


class TestFitGuards:
    def test_empty_loader_raises_instead_of_recording_zero_loss(self):
        # Regression: `weighted_loss / max(1, samples)` once recorded a
        # fabricated 0.0 epoch loss when the loader yielded nothing.
        config = TrainConfig(epochs=1, lr=1e-3)
        x, y = _problem(n=2)
        loader = DataLoader(
            ArrayDataset(x, y), batch_size=4, seed=3, drop_last=True
        )
        model = Sequential(Conv2d(1, 1, 3, seed=7))
        engine = TrainEngine(model, config)
        with pytest.raises(ValueError, match="no batches"):
            engine.fit(loader)
        # Nothing was recorded: history is not poisoned by the aborted epoch.
        assert engine.history.train_losses == []
        assert engine.history.lr_trace == []
        assert engine.epoch == 0

    def test_empty_plain_iterable_raises_too(self):
        model = Sequential(Conv2d(1, 1, 3, seed=7))
        engine = TrainEngine(model, TrainConfig(epochs=1, lr=1e-3))
        with pytest.raises(ValueError, match="no batches"):
            engine.fit([])

    def test_save_checkpoint_warns_without_loader_state(self, tmp_path):
        # Regression: fit() over a plain iterable silently dropped the
        # loader RNG from checkpoints; now the save warns that resume
        # cannot restore the shuffle order.
        x, y = _problem(n=4)
        model = Sequential(Conv2d(1, 1, 3, seed=7))
        engine = TrainEngine(model, TrainConfig(epochs=1, lr=1e-3))
        engine.fit([(x, y)])
        with pytest.warns(RuntimeWarning, match="no data-loader RNG state"):
            engine.save_checkpoint(tmp_path / "plain.npz")

    def test_save_checkpoint_silent_with_dataloader(self, tmp_path):
        import warnings

        model, loader = _make(n=8, batch_size=4)
        engine = TrainEngine(model, TrainConfig(epochs=1, lr=1e-3))
        engine.fit(loader)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            engine.save_checkpoint(tmp_path / "tracked.npz")

    def test_save_checkpoint_before_any_fit_is_silent(self, tmp_path):
        # An engine that never ran fit() has nothing to warn about —
        # the warning is specifically about an untracked loader.
        import warnings

        model, _ = _make()
        engine = TrainEngine(model, TrainConfig(epochs=1, lr=1e-3))
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            engine.save_checkpoint(tmp_path / "fresh.npz")


class TestCallbacks:
    def test_hooks_fire_in_order(self):
        events: list[str] = []

        class Recorder(Callback):
            def on_train_start(self, engine):
                events.append("train_start")

            def on_epoch_start(self, engine):
                events.append(f"epoch_start:{engine.epoch}")

            def on_batch_end(self, engine, loss, grad_norm):
                events.append("batch")

            def on_epoch_end(self, engine, epoch_loss):
                events.append(f"epoch_end:{engine.epoch}")

            def on_train_end(self, engine, result):
                events.append("train_end")

        config = TrainConfig(epochs=2, lr=1e-3)
        model, loader = _make(n=8, batch_size=4)
        TrainEngine(model, config, callbacks=[Recorder()]).fit(loader)
        assert events == [
            "train_start",
            "epoch_start:0", "batch", "batch", "epoch_end:1",
            "epoch_start:1", "batch", "batch", "epoch_end:2",
            "train_end",
        ]

    def test_callbacks_do_not_perturb_numerics(self):
        config = TrainConfig(epochs=2, lr=1e-2)
        model_a, loader_a = _make()
        TrainEngine(model_a, config).fit(loader_a)
        x, y = _problem(4, seed=9)
        model_b, loader_b = _make()
        engine = TrainEngine(
            model_b,
            config,
            callbacks=[EvalCallback(x, y), LambdaCallback(on_batch_end=lambda e, l, g: None)],
        )
        engine.fit(loader_b)
        for (_, p), (_, q) in zip(
            model_a.named_parameters(), model_b.named_parameters(), strict=True
        ):
            np.testing.assert_array_equal(p.data, q.data)

    def test_eval_callback_records_val_losses(self):
        config = TrainConfig(epochs=3, lr=1e-2)
        model, loader = _make()
        x, y = _problem(4, seed=9)
        result = TrainEngine(model, config, callbacks=[EvalCallback(x, y)]).fit(loader)
        assert len(result.val_losses) == 3
        assert result.val_losses[-1] < result.val_losses[0]

    def test_lambda_callback_rejects_unknown_hooks(self):
        with pytest.raises(ValueError, match="unknown hook"):
            LambdaCallback(on_banana=lambda e: None)

    def test_fit_remaining_epochs_honors_horizon(self):
        config = TrainConfig(epochs=3, lr=1e-3)
        model, loader = _make(n=8, batch_size=4)
        engine = TrainEngine(model, config)
        engine.fit(loader, epochs=1)
        assert engine.epoch == 1
        engine.fit(loader)  # default: up to the horizon
        assert engine.epoch == 3
        assert len(engine.history.train_losses) == 3
